#include "rise/gpu_model.hpp"

#include <algorithm>
#include <cmath>

namespace baco::rise {

namespace {

// Modelled device limits (K80-class).
const double kSmCount = 13.0;
const double kThreadsPerSm = 2048.0;
const double kMaxWgThreads = 1024.0;
const double kLocalBytes = 48.0 * 1024.0;
const double kDramBw = 240e9;       // bytes/s
const double kFlops = 2.8e12;       // FP32 flop/s
const double kLaunchOverheadMs = 0.015;

// CPU model (MM_CPU host: 8-core Xeon E5-2650 v3).
const double kCpuFlops = 2.2e9;     // per-core scalar flop/s
const double kCpuCores = 8.0;
const double kCpuL2 = 256.0 * 1024.0;

double
clamp01(double x)
{
    return std::clamp(x, 0.0, 1.0);
}

}  // namespace

double
occupancy(double threads_per_wg, double local_bytes_per_wg)
{
    double by_threads = std::floor(kThreadsPerSm / std::max(1.0, threads_per_wg));
    double by_local = local_bytes_per_wg > 0.0
                          ? std::floor(kLocalBytes / local_bytes_per_wg)
                          : 16.0;
    double wgs = std::min({by_threads, by_local, 16.0});
    return clamp01(wgs * threads_per_wg / kThreadsPerSm);
}

double
coalescing(double ls0, double vec)
{
    // A 32-thread warp achieves full bandwidth when the contiguous span
    // (adjacent threads x vector width) covers the 128-byte transaction.
    double span = ls0 * vec;
    return clamp01(std::pow(std::min(1.0, span / 32.0), 0.7));
}

ModelResult
mm_cpu(double tile_i, double tile_j, double tile_k, double vec,
       const Permutation& loop_order)
{
    const double n = 1024.0;

    // Hidden constraint: oversized register tiles make the generated C
    // kernel fail to compile (alloca blow-up) — discovered only by trying.
    if (tile_i * tile_j > 16384.0)
        return ModelResult{0.0, false};

    double flops = 2.0 * n * n * n;

    // Cache residency of one (tile_i x tile_k) + (tile_k x tile_j) +
    // (tile_i x tile_j) working set.
    double ws = (tile_i * tile_k + tile_k * tile_j + tile_i * tile_j) * 8.0;
    double excess = std::max(0.0, std::log2(ws / kCpuL2));
    double loc = 1.0 + 0.4 * std::pow(excess, 1.2);
    loc += 0.2 * std::max(0.0, std::log2(8.0 / tile_k));

    // Loop order: positions of i, j, k. Innermost (position 2) decides
    // vectorizability; k-innermost causes a reduction dependence chain.
    double order_f;
    bool j_inner = loop_order[1] == 2;
    if (loop_order[2] == 2) {
        order_f = 2.2;   // k innermost: serialized accumulation
    } else if (j_inner) {
        order_f = 1.0;   // unit-stride stores, vectorizable
    } else {
        order_f = 1.45;  // i innermost: strided access
    }
    // k outermost re-reads C tile_k times.
    if (loop_order[2] == 0)
        order_f *= 1.25;

    double vec_f = j_inner ? std::pow(std::min(vec, 8.0), 0.75) : 1.0;

    double time_s = flops * loc * order_f / (kCpuFlops * vec_f * kCpuCores);
    return ModelResult{time_s * 1e3, true};
}

ModelResult
mm_gpu(double ls0, double ls1, double tile_m, double tile_n, double tile_k,
       double thread_m, double thread_n, double vec, double stages,
       double swizzle)
{
    const double n = 1024.0;
    double threads = ls0 * ls1;

    // ---- Hidden constraints (launch/compile failures). ----
    if (threads > kMaxWgThreads)
        return ModelResult{0.0, false};
    double local_bytes = (tile_m * tile_k + tile_k * tile_n) * 4.0 * stages;
    if (local_bytes > kLocalBytes)
        return ModelResult{0.0, false};
    double regs = thread_m * thread_n * vec * 2.0 + 24.0;
    if (regs > 255.0)
        return ModelResult{0.0, false};

    double flops = 2.0 * n * n * n;
    double occ = occupancy(threads, local_bytes);

    // Register-tile ILP: more work per thread hides latency, to a point.
    double ilp = std::pow(std::min(thread_m * thread_n, 16.0) / 16.0, 0.35);
    double compute_s = flops / (kFlops * occ * std::max(ilp, 0.15));
    if (stages >= 2.0)
        compute_s *= 0.85;  // double buffering hides load latency

    // DRAM traffic shrinks with larger work-group tiles; L2 swizzling adds
    // modest reuse.
    double traffic =
        n * n * n * (1.0 / tile_m + 1.0 / tile_n) * 4.0 / (0.9 + 0.1 * swizzle);
    double mem_s = traffic / (kDramBw * coalescing(ls0, vec));

    // Tail effect: too few work-groups underutilize the SMs.
    double wgs = (n / tile_m) * (n / tile_n);
    double tail = std::max(1.0, kSmCount * 2.0 / wgs);

    double time_ms = std::max(compute_s, mem_s) * tail * 1e3 +
                     kLaunchOverheadMs;
    return ModelResult{time_ms, true};
}

ModelResult
asum_gpu(double gs, double ls, double seq, double vec, double unroll)
{
    const double n = 33554432.0;  // 2^25 elements

    double local_bytes = ls * 4.0;
    double occ = occupancy(ls, local_bytes);
    double eff = coalescing(ls, vec);

    // Per-thread sequential accumulation is free bandwidth-wise; the
    // tree reduction costs log2(ls) barrier rounds per work-group.
    double mem_s = n * 4.0 / (kDramBw * eff * std::max(occ, 0.05));
    double rounds = std::log2(std::max(2.0, ls));
    double reduce_s = (gs / ls) * rounds * 2e-8;
    // A second, tiny kernel reduces the gs/ls partial sums.
    double final_s = (gs / ls) * 4.0 / kDramBw + kLaunchOverheadMs * 1e-3;

    double unroll_f = 1.0 - 0.05 * std::min(std::log2(unroll), 2.0) +
                      0.04 * std::max(0.0, std::log2(unroll) - 2.0);
    // Very long sequential runs serialize the grid.
    double seq_f = 1.0 + 0.03 * std::max(0.0, std::log2(seq) - 5.0);

    double time_ms =
        (mem_s * unroll_f * seq_f + reduce_s + final_s) * 1e3 +
        kLaunchOverheadMs;
    return ModelResult{time_ms, true};
}

ModelResult
scal_gpu(double gs0, double gs1, double ls0, double ls1, double vec,
         double seq, double unroll)
{
    const double n = 16777216.0;  // 2^24 elements

    // Hidden constraint: the work-group shape is only validated at launch.
    if (ls0 * ls1 > kMaxWgThreads)
        return ModelResult{0.0, false};

    double occ = occupancy(ls0 * ls1, 0.0);
    double eff = coalescing(ls0, vec);
    // Row-major traversal: wide gs1 grids stripe the array and break
    // contiguity between rows.
    double stripe = 1.0 + 0.08 * std::log2(std::max(1.0, gs1));

    double mem_s =
        2.0 * n * 4.0 * stripe / (kDramBw * eff * std::max(occ, 0.05));
    double grid_overhead = (gs0 * gs1 / (ls0 * ls1)) * 1e-8;
    double unroll_f = 1.0 - 0.03 * std::min(std::log2(unroll), 2.0);
    double seq_f = 1.0 + 0.02 * std::max(0.0, std::log2(seq) - 4.0);

    double time_ms = (mem_s * unroll_f * seq_f + grid_overhead) * 1e3 +
                     kLaunchOverheadMs;
    return ModelResult{time_ms, true};
}

ModelResult
kmeans_gpu(double ls, double points_per_thread, double tile_c, double vec)
{
    const double n = 131072.0;  // points
    const double k = 10.0;      // clusters
    const double d = 34.0;      // features

    // Hidden constraint: per-work-group centroid tile in local memory.
    double local_bytes = ls * tile_c * d * 4.0;
    if (local_bytes > kLocalBytes)
        return ModelResult{0.0, false};

    double flops = n * k * d * 3.0;
    double occ = occupancy(ls, local_bytes);
    double eff = coalescing(ls, vec);

    double compute_s = flops / (kFlops * 0.25 * std::max(occ, 0.05));
    double mem_s = n * d * 4.0 / (kDramBw * eff);
    // Too few points per thread wastes launch width; too many serializes.
    double ppt_f = 1.0 +
                   0.06 * std::abs(std::log2(points_per_thread / 8.0));
    double tile_f = 1.0 + 0.15 * std::max(0.0, std::log2(tile_c) - 2.0);

    double time_ms =
        std::max(compute_s, mem_s) * ppt_f * tile_f * 1e3 + kLaunchOverheadMs;
    return ModelResult{time_ms, true};
}

ModelResult
harris_gpu(double tile_x, double tile_y, double ls0, double ls1, double vec,
           double lines_per_thread, double unroll)
{
    const double w = 4096.0, h = 4096.0;
    const double halo = 2.0;  // 5-point derivative + 3x3 sum windows

    double threads = ls0 * ls1;
    if (threads > kMaxWgThreads)
        return ModelResult{0.0, false};  // hidden launch limit

    // Local-memory tile with halo; fused pipeline reads the image once.
    double local_bytes = (tile_x + 2 * halo) * (tile_y + 2 * halo) * 4.0;
    double occ = occupancy(threads, local_bytes);
    if (local_bytes > kLocalBytes)
        return ModelResult{0.0, false};

    double halo_f = ((tile_x + 2 * halo) * (tile_y + 2 * halo)) /
                    (tile_x * tile_y);
    double mem_s = w * h * 4.0 * (1.0 + halo_f) /
                   (kDramBw * coalescing(ls0, vec));
    double flops = w * h * 60.0;  // derivative products + corner response
    double compute_s = flops / (kFlops * 0.3 * std::max(occ, 0.05));

    double lpt_f = 1.0 + 0.05 * std::abs(std::log2(lines_per_thread / 4.0));
    double unroll_f = 1.0 - 0.04 * std::min(std::log2(unroll), 2.0);

    double time_ms = std::max(compute_s, mem_s) * halo_f * lpt_f * unroll_f *
                         1e3 +
                     kLaunchOverheadMs;
    return ModelResult{time_ms, true};
}

ModelResult
stencil_gpu(double ls0, double ls1, double elems_per_thread, double vec)
{
    const double w = 4096.0, h = 4096.0;

    double threads = ls0 * ls1;
    double local_bytes = (ls0 * vec + 2.0) * (ls1 * elems_per_thread + 2.0) *
                         4.0;
    double occ = occupancy(threads, local_bytes);
    double eff = coalescing(ls0, vec);

    double mem_s = 2.0 * w * h * 4.0 / (kDramBw * eff * std::max(occ, 0.05));
    double halo_f = ((ls0 * vec + 2.0) * (ls1 * elems_per_thread + 2.0)) /
                    std::max(1.0, ls0 * vec * ls1 * elems_per_thread);
    double ept_f = 1.0 + 0.05 * std::abs(std::log2(elems_per_thread / 4.0));

    double time_ms = mem_s * halo_f * ept_f * 1e3 + kLaunchOverheadMs;
    return ModelResult{time_ms, true};
}

}  // namespace baco::rise
