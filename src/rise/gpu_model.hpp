#ifndef BACO_RISE_GPU_MODEL_HPP_
#define BACO_RISE_GPU_MODEL_HPP_

/**
 * @file
 * Analytic performance models for the RISE & ELEVATE benchmarks
 * (paper Sec. 5.2): one CPU matrix-multiply model and six OpenCL/GPU
 * kernel models in the style of the NVIDIA K80 the paper used.
 *
 * These replace compiling rewritten RISE programs and executing them on
 * real hardware (DESIGN.md, substitution 2). Hidden constraints are
 * reproduced mechanically: resource overflows (work-group limits, shared
 * memory, registers) make the evaluation *fail*, exactly like the paper's
 * kernels that compile but cannot launch; the tuner can only learn these by
 * trying. Known constraints (divisibility, coverage) are declared in the
 * search spaces (rise/benchmarks.cpp).
 *
 * Modelled device: 13 SMs, 2048 threads/SM, 48 KiB local memory per
 * work-group, 1024 threads/work-group, ~240 GB/s DRAM, ~2.8 TFLOP/s FP32.
 */

#include "core/types.hpp"

namespace baco::rise {

/** Result of a model evaluation: milliseconds, or infeasible. */
struct ModelResult {
  double ms = 0.0;
  bool feasible = true;
};

/** Occupancy fraction given per-work-group threads and local memory use. */
double occupancy(double threads_per_wg, double local_bytes_per_wg);

/** Global-memory efficiency of a warp issuing vec-wide contiguous loads
 *  across ls0 adjacent threads. */
double coalescing(double ls0, double vec);

// ---- Per-benchmark models. Parameters are documented with the search
// ---- space definitions in rise/benchmarks.cpp.

/** Tiled CPU matrix multiply (MM_CPU), 8-core Xeon model. */
ModelResult mm_cpu(double tile_i, double tile_j, double tile_k, double vec,
                   const Permutation& loop_order);

/** Register+local-memory tiled GPU matrix multiply (MM_GPU). */
ModelResult mm_gpu(double ls0, double ls1, double tile_m, double tile_n,
                   double tile_k, double thread_m, double thread_n,
                   double vec, double stages, double swizzle);

/** Absolute-sum reduction (Asum_GPU). */
ModelResult asum_gpu(double gs, double ls, double seq, double vec,
                     double unroll);

/** Vector scaling (Scal_GPU), 2D launch grid. */
ModelResult scal_gpu(double gs0, double gs1, double ls0, double ls1,
                     double vec, double seq, double unroll);

/** K-means point assignment (K-means_GPU). */
ModelResult kmeans_gpu(double ls, double points_per_thread, double tile_c,
                       double vec);

/** Harris corner detection pipeline (Harris_GPU). */
ModelResult harris_gpu(double tile_x, double tile_y, double ls0, double ls1,
                       double vec, double lines_per_thread, double unroll);

/** Jacobi-style 2D stencil (Stencil_GPU). */
ModelResult stencil_gpu(double ls0, double ls1, double elems_per_thread,
                        double vec);

}  // namespace baco::rise

#endif  // BACO_RISE_GPU_MODEL_HPP_
