#include "rise/benchmarks.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/chain_of_trees.hpp"
#include "rise/gpu_model.hpp"

namespace baco::rise {

namespace {

double
ord(const Configuration& c, std::size_t i)
{
    return static_cast<double>(as_int(c[i]));
}

/** Model dispatch on decoded parameters (layout per builder below). */
ModelResult
evaluate_model(const std::string& name, const Configuration& c)
{
    if (name == "MM_CPU") {
        return mm_cpu(ord(c, 0), ord(c, 1), ord(c, 2), ord(c, 3),
                      as_permutation(c[4]));
    }
    if (name == "MM_GPU") {
        return mm_gpu(ord(c, 0), ord(c, 1), ord(c, 2), ord(c, 3), ord(c, 4),
                      ord(c, 5), ord(c, 6), ord(c, 7), ord(c, 8), ord(c, 9));
    }
    if (name == "Asum_GPU")
        return asum_gpu(ord(c, 0), ord(c, 1), ord(c, 2), ord(c, 3), ord(c, 4));
    if (name == "Scal_GPU") {
        return scal_gpu(ord(c, 0), ord(c, 1), ord(c, 2), ord(c, 3), ord(c, 4),
                        ord(c, 5), ord(c, 6));
    }
    if (name == "K-means_GPU")
        return kmeans_gpu(ord(c, 0), ord(c, 1), ord(c, 2), ord(c, 3));
    if (name == "Harris_GPU") {
        return harris_gpu(ord(c, 0), ord(c, 1), ord(c, 2), ord(c, 3),
                          ord(c, 4), ord(c, 5), ord(c, 6));
    }
    if (name == "Stencil_GPU")
        return stencil_gpu(ord(c, 0), ord(c, 1), ord(c, 2), ord(c, 3));
    throw std::runtime_error("unknown RISE benchmark '" + name + "'");
}

std::shared_ptr<SearchSpace>
build_space(const std::string& name, const SpaceVariant& v)
{
    auto s = std::make_shared<SearchSpace>();
    bool lg = v.log_transforms;

    if (name == "MM_CPU") {
        s->add_ordinal("tile_i", {4, 8, 16, 32, 64, 128, 256}, lg);
        s->add_ordinal("tile_j", {4, 8, 16, 32, 64, 128, 256}, lg);
        s->add_ordinal("tile_k", {4, 8, 16, 32, 64, 128, 256}, lg);
        s->add_ordinal("vec", {1, 2, 4, 8}, lg);
        s->add_permutation("loop_perm", 3, v.permutation_metric);
        s->add_constraint("vec <= tile_j");
        return s;
    }
    if (name == "MM_GPU") {
        s->add_ordinal("ls0", {1, 2, 4, 8, 16, 32}, lg);
        s->add_ordinal("ls1", {1, 2, 4, 8, 16, 32}, lg);
        s->add_ordinal("tile_m", {16, 32, 64, 128}, lg);
        s->add_ordinal("tile_n", {16, 32, 64, 128}, lg);
        s->add_ordinal("tile_k", {8, 16, 32, 64}, lg);
        s->add_ordinal("thread_m", {1, 2, 4, 8}, lg);
        s->add_ordinal("thread_n", {1, 2, 4, 8}, lg);
        s->add_ordinal("vec", {1, 2, 4}, lg);
        s->add_ordinal("stages", {1, 2}, lg);
        s->add_ordinal("swizzle", {1, 2, 4, 8}, lg);
        s->add_constraint("tile_m % (ls0 * thread_m) == 0");
        s->add_constraint("tile_n % (ls1 * thread_n) == 0");
        s->add_constraint("vec <= thread_n");
        return s;
    }
    if (name == "Asum_GPU") {
        s->add_ordinal("gs", {256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
                              65536}, lg);
        s->add_ordinal("ls", {32, 64, 128, 256, 512, 1024}, lg);
        s->add_ordinal("seq", {1, 2, 4, 8, 16, 32, 64, 128}, lg);
        s->add_ordinal("vec", {1, 2, 4, 8}, lg);
        s->add_ordinal("unroll", {1, 2, 4, 8}, lg);
        s->add_constraint("gs % ls == 0");
        s->add_constraint("gs * seq * vec >= 33554432");   // cover 2^25
        s->add_constraint("gs * seq * vec <= 67108864");   // <= 2x padding
        return s;
    }
    if (name == "Scal_GPU") {
        s->add_ordinal("gs0", {128, 256, 512, 1024, 2048, 4096, 8192, 16384},
                       lg);
        s->add_ordinal("gs1", {1, 2, 4, 8, 16, 32}, lg);
        s->add_ordinal("ls0", {4, 8, 16, 32, 64, 128, 256, 512}, lg);
        s->add_ordinal("ls1", {1, 2, 4, 8}, lg);
        s->add_ordinal("vec", {1, 2, 4}, lg);
        s->add_ordinal("seq", {1, 2, 4, 8, 16, 32}, lg);
        s->add_ordinal("unroll", {1, 2, 4}, lg);
        s->add_constraint("gs0 % ls0 == 0");
        s->add_constraint("gs1 % ls1 == 0");
        s->add_constraint("gs0 * gs1 * vec * seq >= 16777216");  // 2^24
        s->add_constraint("gs0 * gs1 * vec * seq <= 67108864");
        return s;
    }
    if (name == "K-means_GPU") {
        s->add_ordinal("ls", {8, 16, 32, 64, 128, 256, 512, 1024}, lg);
        s->add_ordinal("points_per_thread", {1, 2, 4, 8, 16, 32, 64, 128},
                       lg);
        s->add_ordinal("tile_c", {1, 2, 4, 8}, lg);
        s->add_ordinal("vec", {1, 2, 4, 8}, lg);
        s->add_constraint("ls * points_per_thread >= 1024");
        s->add_constraint("ls * points_per_thread <= 131072");
        return s;
    }
    if (name == "Harris_GPU") {
        s->add_ordinal("tile_x", {8, 16, 32, 64, 128, 256}, lg);
        s->add_ordinal("tile_y", {2, 4, 8, 16, 32, 64}, lg);
        s->add_ordinal("ls0", {8, 16, 32, 64, 128}, lg);
        s->add_ordinal("ls1", {1, 2, 4, 8, 16}, lg);
        s->add_ordinal("vec", {1, 2, 4, 8}, lg);
        s->add_ordinal("lines_per_thread", {1, 2, 4, 8, 16}, lg);
        s->add_ordinal("unroll", {1, 2, 4}, lg);
        s->add_constraint("tile_x % (ls0 * vec) == 0");
        s->add_constraint("tile_y % ls1 == 0");
        s->add_constraint("ls0 * ls1 <= 1024");
        s->add_constraint("(tile_x + 4) * (tile_y + 4) * 4 <= 49152");
        return s;
    }
    if (name == "Stencil_GPU") {
        s->add_ordinal("ls0", {8, 16, 32, 64, 128, 256}, lg);
        s->add_ordinal("ls1", {1, 2, 4, 8, 16, 32}, lg);
        s->add_ordinal("elems_per_thread", {1, 2, 4, 8, 16, 32}, lg);
        s->add_ordinal("vec", {1, 2, 4, 8}, lg);
        s->add_constraint("ls0 * ls1 <= 1024");
        s->add_constraint(
            "(ls0 * vec + 2) * (ls1 * elems_per_thread + 2) * 4 <= 49152");
        return s;
    }
    throw std::runtime_error("unknown RISE benchmark '" + name + "'");
}

int
benchmark_budget(const std::string& name)
{
    // Table 3's Full Budget column.
    if (name == "MM_CPU" || name == "Harris_GPU")
        return 100;
    if (name == "MM_GPU")
        return 120;
    return 60;
}

Configuration
make_default(const std::string& name)
{
    auto i64 = [](std::int64_t v) { return ParamValue{v}; };
    if (name == "MM_CPU")
        return {i64(32), i64(32), i64(32), i64(1), Permutation{0, 1, 2}};
    if (name == "MM_GPU") {
        return {i64(8), i64(8), i64(32), i64(32), i64(8),
                i64(1), i64(1), i64(1), i64(1), i64(1)};
    }
    if (name == "Asum_GPU")
        return {i64(65536), i64(32), i64(128), i64(4), i64(1)};
    if (name == "Scal_GPU") {
        return {i64(16384), i64(32), i64(16), i64(1), i64(4), i64(8),
                i64(1)};
    }
    if (name == "K-means_GPU")
        return {i64(64), i64(16), i64(1), i64(1)};
    if (name == "Harris_GPU")
        return {i64(32), i64(8), i64(32), i64(8), i64(1), i64(1), i64(1)};
    if (name == "Stencil_GPU")
        return {i64(32), i64(4), i64(1), i64(1)};
    throw std::runtime_error("unknown RISE benchmark '" + name + "'");
}

/**
 * Semi-automated expert: the best of 1200 uniform feasible samples under
 * the noise-free model, with a per-benchmark fixed seed. Strong, but a
 * smart tuner can still beat it — matching the paper's observation that
 * experts occasionally miss better configurations.
 */
Configuration
derive_expert(const std::string& name, const SearchSpace& space)
{
    ChainOfTrees cot = ChainOfTrees::build(space);
    RngEngine rng(0x515e5eedULL ^ std::hash<std::string>{}(name));
    double best = std::numeric_limits<double>::infinity();
    Configuration best_c;
    for (int i = 0; i < 1200; ++i) {
        Configuration c = cot.sample(rng, /*uniform_leaves=*/true);
        ModelResult r = evaluate_model(name, c);
        if (r.feasible && r.ms < best) {
            best = r.ms;
            best_c = std::move(c);
        }
    }
    return best_c;
}

}  // namespace

Benchmark
make_rise_benchmark(const std::string& name)
{
    Benchmark b;
    b.framework = "RISE";
    b.name = name;
    b.full_budget = benchmark_budget(name);
    b.doe_samples = 10;
    b.make_space = [name](const SpaceVariant& v) {
        return build_space(name, v);
    };
    b.true_cost = [name](const Configuration& c) {
        return evaluate_model(name, c).ms;
    };
    b.hidden_feasible = [name](const Configuration& c) {
        return evaluate_model(name, c).feasible;
    };
    b.evaluate = [name](const Configuration& c, RngEngine& rng) -> EvalResult {
        ModelResult r = evaluate_model(name, c);
        if (!r.feasible)
            return EvalResult::infeasible();
        return EvalResult{r.ms * rng.lognormal_factor(0.04), true};
    };
    b.has_hidden_constraints = name == "MM_CPU" || name == "MM_GPU" ||
                               name == "Scal_GPU" || name == "K-means_GPU";
    b.default_config = make_default(name);
    b.expert = derive_expert(name, *build_space(name, SpaceVariant{}));
    b.reference_cost = b.true_cost(*b.expert);
    return b;
}

std::vector<Benchmark>
rise_suite()
{
    std::vector<Benchmark> out;
    for (const char* n : {"MM_CPU", "MM_GPU", "Asum_GPU", "Scal_GPU",
                          "K-means_GPU", "Harris_GPU", "Stencil_GPU"}) {
        out.push_back(make_rise_benchmark(n));
    }
    return out;
}

}  // namespace baco::rise
