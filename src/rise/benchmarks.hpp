#ifndef BACO_RISE_BENCHMARKS_HPP_
#define BACO_RISE_BENCHMARKS_HPP_

/**
 * @file
 * The RISE & ELEVATE benchmark suite (paper Table 3, RISE rows): seven
 * benchmarks over ordinal(+permutation) spaces with known divisibility /
 * capacity constraints and — for MM_CPU, MM_GPU, Scal and K-means — hidden
 * resource constraints discovered only by evaluation.
 *
 * Expert configurations are derived by a fixed-seed semi-automated search
 * (best of 1200 uniform feasible samples), mirroring how the paper's expert
 * schedules came from prior publications' manual/semi-automated tuning.
 */

#include <vector>

#include "suite/benchmark.hpp"

namespace baco::rise {

/** One RISE benchmark by name: "MM_CPU", "MM_GPU", "Asum_GPU", "Scal_GPU",
 *  "K-means_GPU", "Harris_GPU", or "Stencil_GPU". */
Benchmark make_rise_benchmark(const std::string& name);

/** All seven instances. */
std::vector<Benchmark> rise_suite();

}  // namespace baco::rise

#endif  // BACO_RISE_BENCHMARKS_HPP_
