#ifndef BACO_API_EXECUTION_POLICY_HPP_
#define BACO_API_EXECUTION_POLICY_HPP_

/**
 * @file
 * ExecutionPolicy: the one declarative value that selects how a study's
 * evaluations run — serially, batched over a thread pool, fully
 * asynchronously (tell-as-results-land), or sharded across a worker
 * fleet — without changing a single other line of tuning code.
 *
 * Determinism contract (inherited from the exec/serve layers): Serial,
 * Batched and Distributed(async=false) histories are bit-for-bit
 * reproducible from the seed; Async and Distributed(async=true) keep
 * per-result reproducibility but order the history by completion.
 * Batched at batch_size 1, Async with 1 slot and Distributed with
 * batch_size 1 all reproduce the Serial history exactly.
 */

namespace baco {

/** How a Study executes its evaluations. */
struct ExecutionPolicy {
  enum class Mode {
    kSerial,       ///< one evaluation at a time (Tuner::run semantics)
    kBatched,      ///< constant-liar batches on a thread pool (EvalEngine)
    kAsync,        ///< tell-as-results-land, bounded in-flight (EvalEngine)
    kDistributed,  ///< sharded across serve workers (Coordinator)
  };

  Mode mode = Mode::kSerial;

  /**
   * Batched: configurations per suggest() round. Async: the in-flight
   * cap. Distributed: shard size per round (async=false) or the
   * fleet-wide in-flight cap (async=true).
   */
  int batch_size = 1;

  /** Evaluation threads (0 = hardware concurrency); in-process modes. */
  int num_threads = 0;

  /** Distributed: in-process loopback workers to spawn. */
  int workers = 2;

  /** Distributed: drive tell-as-results-land across the fleet. */
  bool async = false;

  /** Distributed: per-worker in-flight cap (coordinator backpressure). */
  int max_inflight_per_worker = 2;

  /** Distributed: straggler re-dispatch deadline in ms; <= 0 disables. */
  int straggler_ms = -1;

  static ExecutionPolicy
  Serial()
  {
      return ExecutionPolicy{};
  }

  static ExecutionPolicy
  Batched(int batch_size, int num_threads = 0)
  {
      ExecutionPolicy p;
      p.mode = Mode::kBatched;
      p.batch_size = batch_size;
      p.num_threads = num_threads;
      return p;
  }

  /** slots = concurrent in-flight evaluations. */
  static ExecutionPolicy
  Async(int slots, int num_threads = 0)
  {
      ExecutionPolicy p;
      p.mode = Mode::kAsync;
      p.batch_size = slots;
      p.num_threads = num_threads;
      return p;
  }

  static ExecutionPolicy
  Distributed(int workers, int batch_size = 4, bool async = false)
  {
      ExecutionPolicy p;
      p.mode = Mode::kDistributed;
      p.workers = workers;
      p.batch_size = batch_size;
      p.async = async;
      return p;
  }
};

/** "serial", "batched", "async", or "distributed". */
inline const char*
execution_mode_name(ExecutionPolicy::Mode m)
{
    switch (m) {
      case ExecutionPolicy::Mode::kSerial: return "serial";
      case ExecutionPolicy::Mode::kBatched: return "batched";
      case ExecutionPolicy::Mode::kAsync: return "async";
      case ExecutionPolicy::Mode::kDistributed: return "distributed";
    }
    return "?";
}

}  // namespace baco

#endif  // BACO_API_EXECUTION_POLICY_HPP_
