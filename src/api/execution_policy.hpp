#ifndef BACO_API_EXECUTION_POLICY_HPP_
#define BACO_API_EXECUTION_POLICY_HPP_

/**
 * @file
 * ExecutionPolicy: the one declarative value that selects how a study's
 * evaluations run — serially, batched over a thread pool, fully
 * asynchronously (tell-as-results-land), or sharded across a worker
 * fleet — without changing a single other line of tuning code.
 *
 * Determinism contract (inherited from the exec/serve layers): Serial,
 * Batched and Distributed(async=false) histories are bit-for-bit
 * reproducible from the seed; Async and Distributed(async=true) keep
 * per-result reproducibility but order the history by completion.
 * Batched at batch_size 1, Async with 1 slot and Distributed with
 * batch_size 1 all reproduce the Serial history exactly.
 *
 * Distributed runs come in three fleet flavours, all sharing the
 * determinism contract (workers derive every noise stream from
 * (seed, index), so worker placement never changes a history):
 *  - Distributed(n): spawn n in-process loopback worker threads;
 *  - Remote({"tcp:HOST:PORT", "unix:PATH", "cmd:ARGV..."}): connect (or
 *    spawn) each named worker — cross-host deployment from the front
 *    door;
 *  - Attached(&coordinator): drive an externally owned, already
 *    registered fleet (e.g. workers that joined a baco_serve --listen
 *    acceptor over the network).
 */

#include <string>
#include <vector>

#include "core/thread_annotations.hpp"

namespace baco {

namespace serve {
class Coordinator;
}

/** How a Study executes its evaluations. */
struct ExecutionPolicy {
  enum class Mode {
    kSerial,       ///< one evaluation at a time (Tuner::run semantics)
    kBatched,      ///< constant-liar batches on a thread pool (EvalEngine)
    kAsync,        ///< tell-as-results-land, bounded in-flight (EvalEngine)
    kDistributed,  ///< sharded across serve workers (Coordinator)
  };

  Mode mode = Mode::kSerial;

  /**
   * Batched: configurations per suggest() round. Async: the in-flight
   * cap. Distributed: shard size per round (async=false) or the
   * fleet-wide in-flight cap (async=true).
   */
  int batch_size = 1;

  /** Evaluation threads (0 = hardware concurrency); in-process modes. */
  int num_threads = 0;

  /** Distributed: in-process loopback workers to spawn. */
  int workers = 2;

  /**
   * Distributed: connect these workers instead of spawning loopback
   * threads. "unix:PATH" / "tcp:HOST:PORT" attach over sockets;
   * "cmd:ARGV..." forks the command (whitespace-split) wired through
   * pipes. Non-empty overrides `workers`.
   */
  std::vector<std::string> worker_addresses;

  /**
   * Distributed: drive this already-attached fleet (not owned, not shut
   * down by the study). Non-null overrides both `workers` and
   * `worker_addresses`.
   */
  serve::Coordinator* fleet = nullptr;

  /**
   * Distributed(Attached): optional strict serialization of fleet use
   * for the run's whole duration. The Coordinator multiplexes
   * concurrent runs internally (fair scheduling + admission control),
   * so sharing a fleet no longer requires a lock — pass one only when
   * this study must observe the fleet with no other tenant's work in
   * flight (e.g. wall-clock benchmarking against an otherwise idle
   * fleet).
   */
  Mutex* fleet_lock = nullptr;

  /** Distributed: drive tell-as-results-land across the fleet. */
  bool async = false;

  /** Distributed: per-worker in-flight cap (coordinator backpressure). */
  int max_inflight_per_worker = 2;

  /** Distributed: straggler re-dispatch deadline in ms; <= 0 disables. */
  int straggler_ms = -1;

  /**
   * Async / Distributed(async=true): suggest-ahead pipelining — while
   * evaluations are in flight, the next suggestion (surrogate refresh +
   * acquisition search) is precomputed on a spare lane so freed slots
   * refill immediately instead of idling on the tuner. The speculative
   * suggestion treats the in-flight set as constant-liar fantasies
   * exactly like a synchronous refill; it just runs one observation
   * early. Ignored with fewer than two slots (nothing to overlap — the
   * run stays bit-for-bit identical to the non-pipelined driver).
   */
  bool suggest_ahead = false;

  static ExecutionPolicy
  Serial()
  {
      return ExecutionPolicy{};
  }

  static ExecutionPolicy
  Batched(int batch_size, int num_threads = 0)
  {
      ExecutionPolicy p;
      p.mode = Mode::kBatched;
      p.batch_size = batch_size;
      p.num_threads = num_threads;
      return p;
  }

  /** slots = concurrent in-flight evaluations. */
  static ExecutionPolicy
  Async(int slots, int num_threads = 0, bool suggest_ahead = false)
  {
      ExecutionPolicy p;
      p.mode = Mode::kAsync;
      p.batch_size = slots;
      p.num_threads = num_threads;
      p.suggest_ahead = suggest_ahead;
      return p;
  }

  static ExecutionPolicy
  Distributed(int workers, int batch_size = 4, bool async = false)
  {
      ExecutionPolicy p;
      p.mode = Mode::kDistributed;
      p.workers = workers;
      p.batch_size = batch_size;
      p.async = async;
      return p;
  }

  /** Sharded over connected/spawned workers named by address. */
  static ExecutionPolicy
  Remote(std::vector<std::string> workers, int batch_size = 4,
         bool async = false)
  {
      ExecutionPolicy p;
      p.mode = Mode::kDistributed;
      p.worker_addresses = std::move(workers);
      p.batch_size = batch_size;
      p.async = async;
      return p;
  }

  /** Sharded over an externally owned, pre-registered fleet. The
   *  Coordinator schedules concurrent tenants fairly on its own;
   *  fleet_lock (see the field) is only for runs that need the fleet
   *  exclusively. */
  static ExecutionPolicy
  Attached(serve::Coordinator* fleet, int batch_size = 4,
           bool async = false, Mutex* fleet_lock = nullptr)
  {
      ExecutionPolicy p;
      p.mode = Mode::kDistributed;
      p.fleet = fleet;
      p.batch_size = batch_size;
      p.async = async;
      p.fleet_lock = fleet_lock;
      return p;
  }
};

/** "serial", "batched", "async", or "distributed". */
inline const char*
execution_mode_name(ExecutionPolicy::Mode m)
{
    switch (m) {
      case ExecutionPolicy::Mode::kSerial: return "serial";
      case ExecutionPolicy::Mode::kBatched: return "batched";
      case ExecutionPolicy::Mode::kAsync: return "async";
      case ExecutionPolicy::Mode::kDistributed: return "distributed";
    }
    return "?";
}

}  // namespace baco

#endif  // BACO_API_EXECUTION_POLICY_HPP_
