#ifndef BACO_API_METHOD_REGISTRY_HPP_
#define BACO_API_METHOD_REGISTRY_HPP_

/**
 * @file
 * String-keyed registry of search-method factories: the single place a
 * method name — from a StudyBuilder, a serve open_session frame, or a
 * command line — becomes an ask-tell tuner.
 *
 * Built-in methods are the paper's competitors ("baco", "baco--",
 * "opentuner", "ytopt", "ytopt-gp", "random", "cot"); the suite's display
 * names ("BaCO", "ATF", "Uniform", "Ytopt(GP)", ...) resolve as aliases,
 * and lookup is case-insensitive, so remote and local construction can no
 * longer drift. User code registers additional methods with add(), which
 * makes them available everywhere a method name is accepted — Study,
 * the suite wrappers and the serve protocol alike.
 */

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_annotations.hpp"
#include "exec/ask_tell.hpp"

namespace baco {

class SearchSpace;

/** Everything a method factory needs besides the space. */
struct MethodSpec {
  int budget = 60;
  /** Initial-phase size; factories clamp it to the budget. */
  int doe_samples = 10;
  std::uint64_t seed = 0;
};

/**
 * Builds an ask-tell tuner over a space. The space reference must outlive
 * the returned tuner.
 */
using MethodFactory = std::function<std::unique_ptr<AskTellTuner>(
    const SearchSpace&, const MethodSpec&)>;

/** The registry. Thread-safe; one process-wide instance via global(). */
class MethodRegistry {
 public:
  /** A fresh registry with the built-in methods pre-registered. */
  MethodRegistry();

  /** The process-wide registry every name-accepting entry point uses. */
  static MethodRegistry& global();

  /**
   * Register (or replace) a method. Lookup of `name` and every alias is
   * case-insensitive. @throws std::invalid_argument when a name or alias
   * already resolves to a *different* method.
   */
  void add(const std::string& name, MethodFactory factory,
           const std::vector<std::string>& aliases = {});

  /** True when name (or an alias of it) is registered. */
  bool contains(const std::string& name) const;

  /** Canonical name for name/alias, or nullopt when unknown. */
  std::optional<std::string> resolve(const std::string& name) const;

  /**
   * Construct the named method's tuner. @throws std::runtime_error with
   * the closest registered names when the name is unknown.
   */
  std::unique_ptr<AskTellTuner> make(const std::string& name,
                                     const SearchSpace& space,
                                     const MethodSpec& spec) const;

  /** All canonical method names, sorted. */
  std::vector<std::string> names() const;

  /** All (alias, canonical) pairs, sorted by alias. */
  std::vector<std::pair<std::string, std::string>> aliases() const;

 private:
  struct IndexEntry {
    std::string canonical;
    std::string spelling;  ///< the name/alias as registered
  };

  mutable Mutex mutex_;
  /** canonical name -> factory. */
  std::map<std::string, MethodFactory> factories_ BACO_GUARDED_BY(mutex_);
  /** case-folded name or alias -> canonical + registered spelling. */
  std::map<std::string, IndexEntry> index_ BACO_GUARDED_BY(mutex_);
};

}  // namespace baco

#endif  // BACO_API_METHOD_REGISTRY_HPP_
