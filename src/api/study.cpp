#include "api/study.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/method_registry.hpp"
#include "exec/eval_cache.hpp"
#include "exec/eval_engine.hpp"
#include "obs/trace.hpp"
#include "serve/coordinator.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"

namespace baco {

namespace {

/**
 * Synthesizes per-evaluation events for the deterministic drivers
 * (serial/batched/distributed-sync), which report whole observed batches:
 * after each round, one event per new history entry, in history order.
 */
class EventEmitter {
 public:
    EventEmitter(AskTellTuner& tuner, const StudyEventFn& fn)
        : tuner_(tuner),
          fn_(fn),
          seen_(tuner.history().size()),
          best_(tuner.history().best_value)
    {
    }

    void
    flush()
    {
        if (!fn_)
            return;
        const TuningHistory& h = tuner_.history();
        for (; seen_ < h.observations.size(); ++seen_) {
            const Observation& o = h.observations[seen_];
            if (o.feasible && o.value < best_)
                best_ = o.value;
            AsyncEvent ev;
            ev.index = seen_;
            ev.config = o.config;
            ev.result = EvalResult{o.value, o.feasible};
            ev.evals = seen_ + 1;
            ev.best = best_;
            fn_(ev);
        }
    }

 private:
    AskTellTuner& tuner_;
    const StudyEventFn& fn_;
    std::size_t seen_;
    double best_;
};

/** EvalEngine options for the in-process modes of a request. */
EvalEngineOptions
engine_options(const ExecRequest& req)
{
    EvalEngineOptions eopt;
    // Serial never has more than one evaluation in flight; a single
    // pool lane avoids spawning hardware_concurrency idle workers.
    eopt.num_threads = req.policy.mode == ExecutionPolicy::Mode::kSerial
                           ? 1
                           : req.policy.num_threads;
    eopt.batch_size = std::max(1, req.policy.batch_size);
    eopt.async_mode = req.policy.mode == ExecutionPolicy::Mode::kAsync;
    eopt.suggest_ahead = req.policy.suggest_ahead;
    eopt.cache = req.cache;
    eopt.cache_namespace = req.cache_namespace;
    eopt.checkpoint_path = req.checkpoint_path;
    return eopt;
}

/**
 * Re-dispatch the in-flight evaluations of a resumed async checkpoint
 * under their original indices before any new round — each is told
 * exactly once regardless of which ExecutionPolicy the resumed study
 * picked. eval_one(pending) produces the result — evaluating under
 * eval_rng_for(seed, index), without consulting the cache (the drain
 * already did; a second lookup would double-count misses).
 *
 * The drain runs one evaluation at a time: telling each result before
 * dispatching the next keeps the checkpoint's exactly-once bookkeeping
 * trivial, at the cost of serialized re-evaluation of a (bounded by
 * the killed run's in-flight cap) backlog. Fanning it across the
 * pool/fleet is safe in principle — the (seed, index) streams are
 * independent — and worth doing if resume latency ever matters.
 */
template <typename EvalOne>
void
drain_resume_pending(AskTellTuner& tuner, const ExecRequest& req,
                     EvalOne&& eval_one)
{
    const std::vector<PendingEval>& pending = req.resume_pending;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const PendingEval& p = pending[i];
        AsyncEvent ev;
        ev.index = p.index;
        ev.config = p.config;
        if (req.cache) {
            if (auto hit = req.cache->lookup(req.cache_namespace,
                                             p.config)) {
                ev.result = *hit;
                ev.from_cache = true;
            }
        }
        if (!ev.from_cache)
            ev.result = eval_one(p, &ev.eval_seconds);
        // Checkpoints written mid-drain keep the not-yet-drained tail
        // as pending, so a second crash still re-dispatches exactly
        // the work that remains.
        std::vector<PendingEval> still_pending(pending.begin() + i + 1,
                                               pending.end());
        tell_async_result(tuner, std::move(ev), req.cache,
                          req.cache_namespace, req.checkpoint_path,
                          still_pending, req.on_event);
    }
}

/**
 * Stepwise round driver shared by the deterministic modes: advancing one
 * round at a time produces the identical suggest()/observe() sequence as
 * a single full drive (each round asks min(batch, remaining cap)), and
 * gives the emitter a per-round hook.
 */
template <typename DriveRound>
void
drive_rounds(AskTellTuner& tuner, const ExecRequest& req, int batch_size,
             DriveRound&& drive_round)
{
    EventEmitter emitter(tuner, req.on_event);
    // Drained resume-pending tells count toward the eval cap, exactly
    // as the async drivers count them — same request, same number of
    // tells under every policy.
    int done = static_cast<int>(req.resume_pending.size());
    while (tuner.remaining() > 0 &&
           (req.max_evals < 0 || done < req.max_evals)) {
        int step = batch_size;
        if (req.max_evals >= 0)
            step = std::min(step, req.max_evals - done);
        std::size_t before = tuner.history().size();
        drive_round(step);
        std::size_t grew = tuner.history().size() - before;
        if (grew == 0)
            break;  // the tuner stopped suggesting
        done += static_cast<int>(grew);
        emitter.flush();
    }
}

/**
 * Attach one ExecutionPolicy::Remote worker: "cmd:ARGV..." forks the
 * (whitespace-split) command over pipes; anything else is a socket
 * address a baco_worker --connect is listening behind. Throws on an
 * unreachable or mis-handshaking worker — a remote study must not
 * silently fall back to a smaller fleet.
 */
void
attach_remote_worker(serve::Coordinator& coordinator,
                     const std::string& addr, std::vector<int>& pids)
{
    std::unique_ptr<serve::Transport> transport;
    if (addr.rfind("cmd:", 0) == 0) {
        std::vector<std::string> argv;
        std::string word;
        for (char c : addr.substr(4)) {
            if (c == ' ' || c == '\t') {
                if (!word.empty())
                    argv.push_back(std::move(word));
                word.clear();
            } else {
                word += c;
            }
        }
        if (!word.empty())
            argv.push_back(std::move(word));
        serve::ChildProcess child = serve::spawn_process(argv);
        if (!child.transport)
            throw std::runtime_error("cannot spawn worker: " + addr);
        pids.push_back(child.pid);
        transport = std::move(child.transport);
    } else {
        std::string error;
        transport = serve::connect_socket(addr, &error);
        if (!transport)
            throw std::runtime_error("cannot attach worker: " + error);
    }
    if (coordinator.add_worker(std::move(transport)) < 0)
        throw std::runtime_error("worker handshake failed: " + addr);
}

}  // namespace

void
execute(AskTellTuner& tuner, const ExecRequest& req)
{
    const ExecutionPolicy& p = req.policy;
    const int batch =
        std::max(1, p.mode == ExecutionPolicy::Mode::kSerial
                        ? 1
                        : p.batch_size);

    if (p.mode == ExecutionPolicy::Mode::kDistributed) {
        if (!req.coordinator)
            throw std::invalid_argument(
                "distributed execution requires a coordinator with "
                "attached workers");
        serve::BatchSpec spec;
        spec.benchmark = req.benchmark;
        spec.run_seed = tuner.run_seed();
        spec.cache = req.cache;
        spec.cache_namespace = req.cache_namespace;
        if (p.async) {
            req.coordinator->drive_async(tuner, spec, batch, req.max_evals,
                                         req.checkpoint_path, req.on_event,
                                         req.resume_pending);
        } else {
            drain_resume_pending(
                tuner, req,
                [&](const PendingEval& pe, double* seconds) {
                    serve::BatchSpec one = spec;
                    one.first_index = pe.index;
                    one.cache = nullptr;  // the drain already looked up
                    return req.coordinator
                        ->evaluate_batch(one, {pe.config}, seconds)
                        .front();
                });
            drive_rounds(tuner, req, batch, [&](int step) {
                req.coordinator->drive(tuner, spec, batch, step,
                                       req.checkpoint_path);
            });
        }
        return;
    }

    if (!req.objective)
        throw std::invalid_argument(
            "in-process execution requires an objective");
    EvalEngine engine(engine_options(req));
    if (p.mode == ExecutionPolicy::Mode::kAsync) {
        engine.drive_async(tuner, req.objective, req.max_evals,
                           req.on_event, req.resume_pending);
        return;
    }
    drain_resume_pending(
        tuner, req, [&](const PendingEval& pe, double* seconds) {
            RngEngine rng = eval_rng_for(tuner.run_seed(), pe.index);
            auto t0 = std::chrono::steady_clock::now();
            EvalResult r = req.objective(pe.config, rng);
            *seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            return r;
        });
    drive_rounds(tuner, req, batch, [&](int step) {
        engine.drive(tuner, req.objective, step);
    });
}

// ---------------------------------------------------------------------------
// Study
// ---------------------------------------------------------------------------

StudyResult
Study::run()
{
    ensure_not_finalized();
    ExecRequest req;
    req.policy = policy_;
    req.cache = cache_;
    req.cache_namespace = cache_namespace_;
    req.checkpoint_path = checkpoint_path_;
    req.on_event = on_event_;
    req.resume_pending = std::move(resume_pending_);
    resume_pending_.clear();

    if (policy_.mode == ExecutionPolicy::Mode::kDistributed) {
        req.benchmark = benchmark_ ? benchmark_->name : std::string{};
        if (policy_.fleet) {
            // Attached fleet: externally owned — drive it, don't shut
            // it down (other studies/clients may share it). The
            // Coordinator multiplexes concurrent tenants itself; the
            // optional fleet_lock is only for runs that need the fleet
            // with nothing else in flight.
            // std::unique_lock over the annotated Mutex: conditional
            // acquisition is outside what the static analysis can
            // express, so this site trades the compile-time proof for
            // the movable handle (see thread_annotations.hpp policy).
            std::unique_lock<Mutex> fleet_guard;
            if (policy_.fleet_lock)
                fleet_guard = std::unique_lock<Mutex>(*policy_.fleet_lock);
            req.coordinator = policy_.fleet;
            execute(*tuner_, req);
            return finalize(tuner_->take_history());
        }
        serve::CoordinatorOptions copt;
        copt.max_inflight_per_worker = policy_.max_inflight_per_worker;
        copt.straggler_ms = policy_.straggler_ms;
        copt.suggest_ahead = policy_.suggest_ahead;
        serve::Coordinator coordinator(copt);
        std::vector<std::thread> worker_threads;
        std::vector<int> worker_pids;
        req.coordinator = &coordinator;
        auto wind_down = [&] {
            coordinator.shutdown();
            for (std::thread& t : worker_threads)
                t.join();
            for (int pid : worker_pids)
                serve::wait_process(pid);
        };
        // Attachment happens inside the guarded region: a fleet that
        // fails to assemble halfway (one worker spawned, the next
        // unreachable) must still shut down and reap what it spawned,
        // or every failed Remote study leaks a zombie child.
        try {
            if (!policy_.worker_addresses.empty()) {
                for (const std::string& addr : policy_.worker_addresses)
                    attach_remote_worker(coordinator, addr, worker_pids);
            } else {
                worker_threads = serve::attach_loopback_workers(
                    coordinator, std::max(1, policy_.workers),
                    policy_.max_inflight_per_worker);
            }
            execute(*tuner_, req);
        } catch (...) {
            wind_down();
            throw;
        }
        wind_down();
    } else {
        req.objective = objective_;
        execute(*tuner_, req);
    }
    return finalize(tuner_->take_history());
}

std::vector<Configuration>
Study::ask(int n)
{
    ensure_not_finalized();
    if (!resume_pending_.empty())
        throw std::logic_error(
            "resumed checkpoint has in-flight evaluations: evaluate "
            "resume_pending() and tell_pending() each before ask() — "
            "or drive with run(), which drains them automatically");
    return tuner_->suggest(n);
}

void
Study::tell(const std::vector<Configuration>& configs,
            const std::vector<EvalResult>& results)
{
    ensure_not_finalized();
    if (!resume_pending_.empty())
        throw std::logic_error(
            "resumed checkpoint has in-flight evaluations: report them "
            "through tell_pending() (under their original indices) "
            "before telling new results, or a later resume would "
            "re-dispatch and double-tell them");
    if (configs.size() != results.size())
        throw std::invalid_argument("tell: configs/results size mismatch");
    if (cache_) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            cache_->insert(cache_namespace_, configs[i], results[i]);
    }
    // The emitter snapshots the incumbent before the observe, so the
    // per-result events carry the same as-if-serial evals/best
    // counters the run() drivers emit.
    EventEmitter emitter(*tuner_, on_event_);
    tuner_->observe(configs, results);
    emitter.flush();
    if (!checkpoint_path_.empty())
        save_checkpoint(checkpoint_path_, *tuner_, resume_pending_);
}

void
Study::tell_pending(const PendingEval& p, const EvalResult& result,
                    double eval_seconds)
{
    ensure_not_finalized();
    auto it = std::find_if(resume_pending_.begin(), resume_pending_.end(),
                           [&](const PendingEval& q) {
                               return q.index == p.index;
                           });
    if (it == resume_pending_.end())
        throw std::invalid_argument(
            "tell_pending: evaluation index is not pending");
    AsyncEvent ev;
    ev.index = it->index;
    ev.config = std::move(it->config);
    ev.result = result;
    ev.eval_seconds = eval_seconds;
    resume_pending_.erase(it);
    // The exec layer's shared per-tell sequence (cache, observe,
    // eval-time charge, checkpoint with the undrained rest, event).
    tell_async_result(*tuner_, std::move(ev), cache_, cache_namespace_,
                      checkpoint_path_, resume_pending_, on_event_);
}

void
Study::tell(const Configuration& config, const EvalResult& result)
{
    tell(std::vector<Configuration>{config},
         std::vector<EvalResult>{result});
}

StudyResult
Study::result()
{
    ensure_not_finalized();
    return finalize(tuner_->take_history());
}

void
Study::ensure_not_finalized() const
{
    // take_history() empties the tuner, so after finalization a second
    // run() would re-drive the whole budget from scratch (overwriting
    // checkpoints), result() would report a zero-eval study, and
    // ask()/tell() would corrupt the checkpoint and cache against a
    // truncated history; make every such misuse loud instead.
    if (finalized_)
        throw std::logic_error(
            "study already finalized: no further run()/result()/"
            "ask()/tell() calls are possible");
}

StudyResult
Study::finalize(TuningHistory history)
{
    finalized_ = true;
    if (!trace_path_.empty()) {
        obs::Trace::disable();
        obs::Trace::export_chrome(trace_path_);
    }
    StudyResult r;
    r.metrics =
        obs::MetricsRegistry::global().snapshot().delta_since(metrics0_);
    r.history = std::move(history);
    r.method = method_;
    r.benchmark = benchmark_ ? benchmark_->name : std::string{};
    r.mode = policy_.mode;
    r.seed = seed_;
    r.resumed = resumed_;
    r.resumed_evals = resumed_evals_;
    r.checkpoint_path = checkpoint_path_;
    if (cache_) {
        r.cache_namespace = cache_namespace_;
        r.cache_hits = cache_->hits() - cache_hits0_;
        r.cache_misses = cache_->misses() - cache_misses0_;
    }
    return r;
}

// ---------------------------------------------------------------------------
// StudyBuilder
// ---------------------------------------------------------------------------

StudyBuilder&
StudyBuilder::benchmark(const std::string& name)
{
    benchmark_ = suite::find_benchmark(name);
    benchmark_is_registry_ = true;
    return *this;
}

StudyBuilder&
StudyBuilder::benchmark(const Benchmark& b)
{
    benchmark_ = b;
    // Distributed workers resolve benchmarks in *their* registry, so
    // remember whether this object IS the registry's instance — a
    // caller-modified copy must not silently stand in for it there.
    benchmark_is_registry_ = false;
    for (const Benchmark& r : suite::all_benchmarks()) {
        if (&r == &b) {
            benchmark_is_registry_ = true;
            break;
        }
    }
    return *this;
}

StudyBuilder&
StudyBuilder::variant(const SpaceVariant& v)
{
    variant_ = v;
    return *this;
}

StudyBuilder&
StudyBuilder::space(std::shared_ptr<SearchSpace> s)
{
    space_ = std::move(s);
    return *this;
}

SearchSpace&
StudyBuilder::inline_space()
{
    if (!inline_space_)
        inline_space_ = std::make_shared<SearchSpace>();
    return *inline_space_;
}

StudyBuilder&
StudyBuilder::real(const std::string& name, double lo, double hi,
                   bool log_scale)
{
    inline_space().add_real(name, lo, hi, log_scale);
    return *this;
}

StudyBuilder&
StudyBuilder::integer(const std::string& name, std::int64_t lo,
                      std::int64_t hi, bool log_scale)
{
    inline_space().add_integer(name, lo, hi, log_scale);
    return *this;
}

StudyBuilder&
StudyBuilder::ordinal(const std::string& name,
                      std::vector<std::int64_t> values, bool log_scale)
{
    inline_space().add_ordinal(name, std::move(values), log_scale);
    return *this;
}

StudyBuilder&
StudyBuilder::categorical(const std::string& name,
                          std::vector<std::string> values)
{
    inline_space().add_categorical(name, std::move(values));
    return *this;
}

StudyBuilder&
StudyBuilder::permutation(const std::string& name, std::size_t n)
{
    inline_space().add_permutation(name, static_cast<int>(n));
    return *this;
}

StudyBuilder&
StudyBuilder::constraint(const std::string& expr)
{
    inline_space().add_constraint(expr);
    return *this;
}

StudyBuilder&
StudyBuilder::objective(BlackBoxFn fn)
{
    objective_ = std::move(fn);
    return *this;
}

StudyBuilder&
StudyBuilder::method(std::string name)
{
    method_ = std::move(name);
    return *this;
}

StudyBuilder&
StudyBuilder::budget(int evaluations)
{
    budget_ = evaluations;
    return *this;
}

StudyBuilder&
StudyBuilder::doe(int samples)
{
    doe_ = samples;
    return *this;
}

StudyBuilder&
StudyBuilder::seed(std::uint64_t run_seed)
{
    seed_ = run_seed;
    return *this;
}

StudyBuilder&
StudyBuilder::execution(ExecutionPolicy policy)
{
    policy_ = policy;
    return *this;
}

StudyBuilder&
StudyBuilder::cache(EvalCache* cache, std::size_t max_entries)
{
    cache_ = cache;
    cache_max_entries_ = max_entries;
    return *this;
}

StudyBuilder&
StudyBuilder::cache_namespace(std::string ns)
{
    cache_namespace_ = std::move(ns);
    return *this;
}

StudyBuilder&
StudyBuilder::checkpoint(std::string path, bool resume)
{
    checkpoint_path_ = std::move(path);
    resume_ = resume;
    return *this;
}

StudyBuilder&
StudyBuilder::on_event(StudyEventFn fn)
{
    on_event_ = std::move(fn);
    return *this;
}

StudyBuilder&
StudyBuilder::trace(std::string path)
{
    trace_path_ = std::move(path);
    return *this;
}

Study
StudyBuilder::build()
{
    int sources = (benchmark_ ? 1 : 0) + (space_ ? 1 : 0) +
                  (inline_space_ ? 1 : 0);
    if (sources == 0) {
        if (inline_space_consumed_)
            throw std::invalid_argument(
                "the builder's inline space was consumed by a previous "
                "build() (the study's tuner owns it now); re-declare "
                "the parameters — or use benchmark()/space(), which "
                "rebuild freely");
        throw std::invalid_argument(
            "study needs a search space: benchmark(), space() or the "
            "inline parameter DSL");
    }
    if (sources > 1)
        throw std::invalid_argument(
            "give exactly one space source: benchmark(), space() or the "
            "inline parameter DSL");

    Study study;
    study.benchmark_ = benchmark_;
    if (benchmark_) {
        study.space_ = benchmark_->make_space(variant_);
    } else if (space_) {
        study.space_ = space_;
    } else {
        // The study's tuner holds a reference to this space, so the
        // builder must give it up: DSL calls after build() start a new
        // space instead of mutating the live study's.
        study.space_ = std::move(inline_space_);
        inline_space_.reset();
        inline_space_consumed_ = true;
    }

    // An explicit objective overrides the benchmark's black box (e.g. a
    // stubbed evaluator in tests); inline studies require one for run().
    study.objective_ =
        objective_ ? objective_
                   : (benchmark_ ? benchmark_->evaluate : BlackBoxFn{});

    if (policy_.mode == ExecutionPolicy::Mode::kDistributed) {
        // Workers resolve the benchmark by name in *their* registry,
        // so anything that diverges from the registry entry — a
        // modified Benchmark copy, or a custom objective the workers
        // would silently ignore — must fail here, not as opaque
        // worker error frames (or silently wrong results) mid-run.
        if (!benchmark_ || !benchmark_is_registry_)
            throw std::invalid_argument(
                "distributed execution requires the registry's own "
                "benchmark (workers resolve it by name); use "
                "benchmark(\"<registry name>\")");
        if (objective_)
            throw std::invalid_argument(
                "distributed execution evaluates the registry "
                "benchmark's own objective on the workers; a custom "
                "objective() cannot be shipped to them");
    }

    MethodSpec spec;
    spec.budget = budget_ > 0
                      ? budget_
                      : (benchmark_ ? benchmark_->full_budget : 0);
    if (spec.budget <= 0)
        throw std::invalid_argument(
            "budget() is required for non-benchmark studies");
    spec.doe_samples =
        doe_ > 0 ? doe_ : (benchmark_ ? benchmark_->doe_samples : 10);
    spec.seed = seed_;

    MethodRegistry& registry = MethodRegistry::global();
    study.tuner_ = registry.make(method_, *study.space_, spec);
    study.method_ = *registry.resolve(method_);
    study.policy_ = policy_;
    study.seed_ = seed_;

    study.cache_ = cache_;
    if (cache_) {
        if (cache_max_entries_ > 0)
            cache_->set_max_entries(cache_max_entries_);
        // The benchmark-identity namespace is only claimed when the
        // study actually evaluates that benchmark's own black box: a
        // custom objective() produces results the benchmark's cached
        // entries must never answer (pin a namespace to opt in).
        bool bench_objective = benchmark_ && !objective_;
        study.cache_namespace_ =
            !cache_namespace_.empty()
                ? cache_namespace_
                : (bench_objective
                       ? EvalCache::namespace_key(benchmark_->name,
                                                  *study.space_)
                       : std::string{});
        study.cache_hits0_ = cache_->hits();
        study.cache_misses0_ = cache_->misses();
    }

    study.checkpoint_path_ = checkpoint_path_;
    if (resume_ && !checkpoint_path_.empty()) {
        // A missing (or unreadable) checkpoint means a fresh start; a
        // present one must match the study's seed and method exactly.
        if (std::optional<CheckpointData> data =
                load_checkpoint(checkpoint_path_)) {
            if (data->seed != study.tuner_->run_seed())
                throw std::runtime_error(
                    "checkpoint seed does not match the study seed");
            if (!study.tuner_->restore(data->history,
                                       data->sampler_state))
                throw std::runtime_error(
                    "checkpoint could not be restored by method '" +
                    study.method_ + "'");
            study.resume_pending_ = std::move(data->pending);
            study.resumed_ = true;
            study.resumed_evals_ = study.tuner_->history().size();
        }
    }

    study.on_event_ = on_event_;
    study.trace_path_ = trace_path_;
    // The metrics baseline is taken at build, not run: the delta then
    // also covers ask/tell embedding, where the tuner works between
    // build() and result() without a run() bracket.
    study.metrics0_ = obs::MetricsRegistry::global().snapshot();
    if (!trace_path_.empty())
        obs::Trace::enable();
    return study;
}

}  // namespace baco
