#ifndef BACO_API_BACO_HPP_
#define BACO_API_BACO_HPP_

/**
 * @file
 * The umbrella header: everything a BaCO user needs through one include.
 *
 *   #include "api/baco.hpp"
 *
 *   baco::Study study = baco::StudyBuilder()
 *                           .ordinal("tile", {4, 8, 16, 32}, true)
 *                           .categorical("sched", {"static", "dynamic"})
 *                           .constraint("tile >= 8")
 *                           .objective(my_compiler_toolchain)
 *                           .method("baco")
 *                           .budget(60)
 *                           .execution(baco::ExecutionPolicy::Batched(4))
 *                           .build();
 *   baco::StudyResult result = study.run();
 *
 * Pulls in the Study front door (study.hpp), the method registry, the
 * execution-policy value, the search-space / tuner / history types and
 * the suite's benchmark registry. The serve layer's wire protocol and
 * transports stay behind their own headers under serve/ — Study drives
 * a distributed fleet without the caller touching them.
 */

#include "api/execution_policy.hpp"
#include "api/method_registry.hpp"
#include "api/study.hpp"
#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "core/tuner.hpp"
#include "exec/ask_tell.hpp"
#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"
#include "exec/eval_engine.hpp"
#include "suite/benchmark.hpp"
#include "suite/registry.hpp"

#endif  // BACO_API_BACO_HPP_
