#include "api/method_registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "baselines/opentuner_like.hpp"
#include "baselines/random_search.hpp"
#include "baselines/ytopt_like.hpp"
#include "core/names.hpp"
#include "core/tuner.hpp"

namespace baco {

namespace {

std::unique_ptr<AskTellTuner>
make_baco(const SearchSpace& space, const MethodSpec& spec,
          bool minus_minus)
{
    TunerOptions opt = minus_minus ? TunerOptions::baco_minus_minus()
                                   : TunerOptions::baco_defaults();
    opt.budget = spec.budget;
    opt.doe_samples = std::min(spec.doe_samples, spec.budget);
    opt.seed = spec.seed;
    return std::make_unique<Tuner>(space, opt);
}

std::unique_ptr<AskTellTuner>
make_opentuner(const SearchSpace& space, const MethodSpec& spec)
{
    OpenTunerLike::Options opt;
    opt.budget = spec.budget;
    opt.initial_random = std::min(spec.doe_samples, spec.budget);
    opt.seed = spec.seed;
    return std::make_unique<OpenTunerLike>(space, opt);
}

std::unique_ptr<AskTellTuner>
make_ytopt(const SearchSpace& space, const MethodSpec& spec, bool gp)
{
    YtoptLike::Options opt;
    opt.budget = spec.budget;
    opt.doe_samples = std::min(spec.doe_samples, spec.budget);
    opt.seed = spec.seed;
    opt.surrogate = gp ? YtoptLike::Surrogate::kGaussianProcess
                       : YtoptLike::Surrogate::kRandomForest;
    return std::make_unique<YtoptLike>(space, opt);
}

std::unique_ptr<AskTellTuner>
make_random(const SearchSpace& space, const MethodSpec& spec,
            bool biased_walk)
{
    RandomSearchOptions opt;
    opt.budget = spec.budget;
    opt.seed = spec.seed;
    return std::make_unique<RandomSearchTuner>(space, opt, biased_walk);
}

}  // namespace

MethodRegistry::MethodRegistry()
{
    using S = const SearchSpace&;
    using M = const MethodSpec&;
    add("baco", [](S s, M m) { return make_baco(s, m, false); });
    add("baco--", [](S s, M m) { return make_baco(s, m, true); });
    add("opentuner", [](S s, M m) { return make_opentuner(s, m); },
        {"ATF"});
    add("ytopt", [](S s, M m) { return make_ytopt(s, m, false); });
    add("ytopt-gp", [](S s, M m) { return make_ytopt(s, m, true); },
        {"Ytopt(GP)"});
    add("random", [](S s, M m) { return make_random(s, m, false); },
        {"Uniform"});
    add("cot", [](S s, M m) { return make_random(s, m, true); },
        {"CoT-sampling"});
}

MethodRegistry&
MethodRegistry::global()
{
    static MethodRegistry registry;
    return registry;
}

void
MethodRegistry::add(const std::string& name, MethodFactory factory,
                    const std::vector<std::string>& aliases)
{
    if (name.empty() || !factory)
        throw std::invalid_argument("method name and factory required");
    MutexLock lock(mutex_);
    // Validate every claim before writing any, so a conflicting alias
    // cannot leave the method half-registered (resolvable but without
    // a factory).
    auto check = [&](const std::string& key) {
        auto it = index_.find(fold_name(key));
        if (it != index_.end() && it->second.canonical != name)
            throw std::invalid_argument(
                "method name '" + key + "' already registered for '" +
                it->second.canonical + "'");
    };
    check(name);
    for (const std::string& alias : aliases)
        check(alias);
    index_[fold_name(name)] = IndexEntry{name, name};
    for (const std::string& alias : aliases)
        index_[fold_name(alias)] = IndexEntry{name, alias};
    factories_[name] = std::move(factory);
}

bool
MethodRegistry::contains(const std::string& name) const
{
    return resolve(name).has_value();
}

std::optional<std::string>
MethodRegistry::resolve(const std::string& name) const
{
    MutexLock lock(mutex_);
    auto it = index_.find(fold_name(name));
    if (it == index_.end())
        return std::nullopt;
    return it->second.canonical;
}

std::unique_ptr<AskTellTuner>
MethodRegistry::make(const std::string& name, const SearchSpace& space,
                     const MethodSpec& spec) const
{
    MethodFactory factory;
    {
        MutexLock lock(mutex_);
        auto it = index_.find(fold_name(name));
        if (it != index_.end())
            factory = factories_.at(it->second.canonical);
    }
    if (!factory) {
        std::vector<std::string> known = names();  // canonical, sorted
        // Suggestions rank over alias spellings too — "Unifrm" should
        // offer 'Uniform' even though the canonical name is "random".
        std::vector<std::string> spellings = known;
        for (const auto& [alias, canonical] : aliases()) {
            (void)canonical;
            spellings.push_back(alias);
        }
        std::string msg = "unknown method '" + name + "'" +
                          did_you_mean(name, spellings) +
                          "; registered: ";
        for (std::size_t i = 0; i < known.size(); ++i)
            msg += (i > 0 ? ", " : "") + known[i];
        throw std::runtime_error(msg);
    }
    return factory(space, spec);
}

std::vector<std::string>
MethodRegistry::names() const
{
    MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) {
        (void)factory;
        out.push_back(name);
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
MethodRegistry::aliases() const
{
    MutexLock lock(mutex_);
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& [key, entry] : index_) {
        if (key != fold_name(entry.canonical))
            out.emplace_back(entry.spelling, entry.canonical);
    }
    return out;
}

}  // namespace baco
