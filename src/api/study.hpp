#ifndef BACO_API_STUDY_HPP_
#define BACO_API_STUDY_HPP_

/**
 * @file
 * The baco::Study front-door API: one declarative entry point — a search
 * space, an objective, a method name and an ExecutionPolicy — over every
 * execution back-end the framework has (serial loop, batched EvalEngine,
 * fully asynchronous engine, distributed Coordinator fleet).
 *
 *   Study study = StudyBuilder()
 *                     .benchmark("SpMM/scircuit")   // or an inline space
 *                     .method("baco")               // MethodRegistry name
 *                     .budget(60)
 *                     .seed(7)
 *                     .execution(ExecutionPolicy::Batched(4))
 *                     .build();
 *   StudyResult r = study.run();
 *
 * Swapping the ExecutionPolicy — Serial to Batched to Async to
 * Distributed — changes no other line; cache, checkpoint/resume, seed
 * and the on_event observer behave uniformly across all four. For
 * embedding into an external loop, ask()/tell() expose the underlying
 * ask-tell exchange and result() finalizes without driving.
 *
 * The lower-level execute() dispatcher — an ExecutionPolicy applied to an
 * *existing* ask-tell tuner — is what Study::run(), the suite's
 * run_method_* wrappers and the serve layer's server-side async runs all
 * share, so local and remote execution cannot drift.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/execution_policy.hpp"
#include "exec/ask_tell.hpp"
#include "exec/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "suite/benchmark.hpp"

namespace baco {

class EvalCache;
class SearchSpace;

namespace serve {
class Coordinator;
}

/**
 * Per-evaluation observer. Fires after every tell, in history order for
 * deterministic modes and completion order for asynchronous ones.
 * eval_seconds and from_cache are populated only by the asynchronous
 * drivers (batched rounds time whole batches, not single evaluations).
 */
using StudyEventFn = AsyncResultFn;

/**
 * One execution request against an existing ask-tell tuner: the shared
 * dispatcher behind Study::run(), the suite wrappers and the serve
 * layer's server-side async runs.
 */
struct ExecRequest {
  ExecutionPolicy policy;
  /** In-process objective (serial/batched/async modes). */
  BlackBoxFn objective;
  /**
   * Sharded evaluation over an attached worker fleet (distributed mode;
   * not owned — the caller manages the fleet's lifetime).
   */
  serve::Coordinator* coordinator = nullptr;
  /** Registry benchmark name workers resolve (distributed mode). */
  std::string benchmark;
  EvalCache* cache = nullptr;
  std::string cache_namespace;
  std::string checkpoint_path;
  /** Stop after this many evaluations; -1 = budget exhaustion. */
  int max_evals = -1;
  StudyEventFn on_event;
  /**
   * In-flight evaluations of a resumed async checkpoint. Every policy
   * re-dispatches them under their original indices before any new
   * round — each is told exactly once even when the resumed run picked
   * a different ExecutionPolicy than the one that was killed.
   */
  std::vector<PendingEval> resume_pending;
};

/**
 * Drive `tuner` under the request's ExecutionPolicy. Serial and batched
 * modes reproduce EvalEngine (and, at batch 1, the serial loop)
 * bit-for-bit; async maps to EvalEngine::drive_async; distributed maps
 * to the Coordinator (which must be supplied with live workers).
 * @throws std::invalid_argument on an unusable request (distributed
 * without a coordinator, in-process without an objective).
 */
void execute(AskTellTuner& tuner, const ExecRequest& req);

/** Everything a finished (or finalized) study reports. */
struct StudyResult {
  TuningHistory history;

  // --- Provenance. ---
  std::string method;              ///< canonical MethodRegistry name
  std::string benchmark;           ///< empty for inline objectives
  ExecutionPolicy::Mode mode = ExecutionPolicy::Mode::kSerial;
  std::uint64_t seed = 0;
  bool resumed = false;            ///< continued from a checkpoint
  std::size_t resumed_evals = 0;   ///< history size restored at build
  std::string checkpoint_path;     ///< empty when checkpointing was off
  std::string cache_namespace;     ///< empty when no cache was attached
  /**
   * Cache traffic during this study, measured as deltas of the shared
   * cache's global counters — exact for a study with the cache to
   * itself; studies running *concurrently* against one cache see each
   * other's lookups in these numbers (entries stay isolated by
   * namespace regardless).
   */
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /**
   * Per-phase observability during this study: the global obs registry
   * as a delta between build() and finalization — counters and
   * histogram buckets subtract, gauges keep their final value. Exact
   * for a study with the process to itself; studies running
   * concurrently in one process appear in each other's deltas (the
   * registry is process-global). `metrics.value("tuner.suggest_seconds")`
   * is the study's total suggest time; see README "Observability" for
   * the metric reference.
   */
  obs::MetricsSnapshot metrics;
};

/** One configured tuning study. Move-only; built by StudyBuilder. */
class Study {
 public:
  Study(Study&&) = default;
  Study& operator=(Study&&) = default;
  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  /**
   * Drive the study to budget exhaustion under its ExecutionPolicy and
   * return the finalized result. Call once: a second run()/result()
   * throws std::logic_error (finalization moves the history out).
   */
  StudyResult run();

  // --- Ask-tell embedding (external evaluation loops). ---
  /** Propose up to n configurations (empty once the budget is spent).
   *  @throws std::logic_error while resume_pending() is undrained — a
   *  resumed async checkpoint's in-flight work must be re-evaluated
   *  (under eval_rng_for(seed, pending.index)) and handed to
   *  tell_pending() first, so it is told exactly once. */
  std::vector<Configuration> ask(int n = 1);
  /** Report results for an ask()ed batch, in ask() order. Feeds the
   *  cache (when attached) and fires on_event per result with the
   *  same as-if-serial evals/best counters run() emits. Like ask(),
   *  throws std::logic_error while resume_pending() is undrained. */
  void tell(const std::vector<Configuration>& configs,
            const std::vector<EvalResult>& results);
  /** Single-result tell. */
  void tell(const Configuration& config, const EvalResult& result);

  /** In-flight evaluations restored from a resumed async checkpoint,
   *  still awaiting tell_pending(). (Study::run() drains these
   *  automatically; the ask/tell path must do it explicitly.) */
  const std::vector<PendingEval>& resume_pending() const
  {
      return resume_pending_;
  }
  /** Report the result of one resume_pending() evaluation: tells it
   *  under its original index (through the exec layer's shared
   *  per-tell sequence) and keeps the not-yet-drained rest in the
   *  checkpoint. @throws std::invalid_argument when p's index is not
   *  pending. */
  void tell_pending(const PendingEval& p, const EvalResult& result,
                    double eval_seconds = 0.0);

  /** Evaluations left before the budget is exhausted. */
  int remaining() const { return tuner_->remaining(); }

  /** Finalize without driving (the ask/tell path's run()). Call once. */
  StudyResult result();

  const SearchSpace& space() const { return *space_; }
  const ExecutionPolicy& policy() const { return policy_; }
  /** The underlying ask-tell tuner (advanced embedding). */
  AskTellTuner& tuner() { return *tuner_; }

 private:
  friend class StudyBuilder;
  Study() = default;

  void ensure_not_finalized() const;
  StudyResult finalize(TuningHistory history);

  std::string trace_path_;        ///< empty = tracing stays off
  obs::MetricsSnapshot metrics0_; ///< registry state at build()

  std::optional<Benchmark> benchmark_;  ///< copied; self-contained
  std::shared_ptr<SearchSpace> space_;
  std::unique_ptr<AskTellTuner> tuner_;
  BlackBoxFn objective_;
  std::string method_;  ///< canonical name
  ExecutionPolicy policy_;
  EvalCache* cache_ = nullptr;
  std::string cache_namespace_;
  std::string checkpoint_path_;
  StudyEventFn on_event_;
  std::vector<PendingEval> resume_pending_;
  bool resumed_ = false;
  std::size_t resumed_evals_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t cache_hits0_ = 0;
  std::uint64_t cache_misses0_ = 0;
  bool finalized_ = false;
};

/** Fluent construction of a Study. All setters return *this. */
class StudyBuilder {
 public:
  // --- Search space: exactly one of benchmark / space / inline DSL. ---
  /** A registered suite benchmark by name (space, objective, budget and
   *  DoE defaults come with it). @throws on an unknown name, with the
   *  closest registered names. */
  StudyBuilder& benchmark(const std::string& name);
  /** A benchmark object (copied; need not be in the registry, but
   *  distributed execution requires the registry's own instance —
   *  workers resolve it by name, so a modified copy would silently be
   *  replaced by the registry version there). */
  StudyBuilder& benchmark(const Benchmark& b);
  /** Space-construction variant for benchmark studies (ablations). */
  StudyBuilder& variant(const SpaceVariant& v);
  /** A ready-made search space. */
  StudyBuilder& space(std::shared_ptr<SearchSpace> s);

  // --- Inline parameter DSL (builds an owned space). ---
  StudyBuilder& real(const std::string& name, double lo, double hi,
                     bool log_scale = false);
  StudyBuilder& integer(const std::string& name, std::int64_t lo,
                        std::int64_t hi, bool log_scale = false);
  StudyBuilder& ordinal(const std::string& name,
                        std::vector<std::int64_t> values,
                        bool log_scale = false);
  StudyBuilder& categorical(const std::string& name,
                            std::vector<std::string> values);
  StudyBuilder& permutation(const std::string& name, std::size_t n);
  StudyBuilder& constraint(const std::string& expr);

  // --- Objective (required unless a benchmark supplies one). ---
  /** The black box. With a benchmark, overrides its evaluator for the
   *  in-process policies; rejected with Distributed (workers always
   *  evaluate the registry benchmark's own objective). */
  StudyBuilder& objective(BlackBoxFn fn);

  // --- Method & run options. ---
  /** MethodRegistry name or alias; default "baco". */
  StudyBuilder& method(std::string name);
  StudyBuilder& budget(int evaluations);
  StudyBuilder& doe(int samples);
  StudyBuilder& seed(std::uint64_t run_seed);
  StudyBuilder& execution(ExecutionPolicy policy);

  // --- Uniform cross-policy options. ---
  /** Shared evaluation cache (not owned). max_entries > 0 applies an
   *  LRU bound to it (EvalCache::set_max_entries). */
  StudyBuilder& cache(EvalCache* cache, std::size_t max_entries = 0);
  /** Pin the cache namespace. Default: benchmark identity when the
   *  study evaluates the benchmark's own objective, the anonymous
   *  namespace otherwise (including when objective() overrides a
   *  benchmark's — its results must not answer for the real ones). */
  StudyBuilder& cache_namespace(std::string ns);
  /** Checkpoint after every observed batch/result; resume=true restores
   *  an existing checkpoint file first (async in-flight work is
   *  re-dispatched under the original indices). */
  StudyBuilder& checkpoint(std::string path, bool resume = false);
  StudyBuilder& on_event(StudyEventFn fn);
  /**
   * Opt into tracing: spans recorded between build() and finalization
   * are exported to `path` as Chrome trace_event JSON (load in
   * chrome://tracing / Perfetto). Tracing is process-global — the
   * export carries every span in the buffers, concurrent studies
   * included — and is a no-op when the library was built with
   * -DBACO_OBS_TRACE=OFF.
   */
  StudyBuilder& trace(std::string path);

  /**
   * Validate and construct the Study (resolving the method through
   * MethodRegistry::global() and restoring any resume checkpoint).
   * @throws std::invalid_argument on an inconsistent specification,
   * std::runtime_error on unknown names or an unusable checkpoint.
   */
  Study build();

 private:
  SearchSpace& inline_space();

  std::optional<Benchmark> benchmark_;
  bool benchmark_is_registry_ = false;
  SpaceVariant variant_;
  std::shared_ptr<SearchSpace> space_;
  std::shared_ptr<SearchSpace> inline_space_;
  bool inline_space_consumed_ = false;
  BlackBoxFn objective_;
  std::string method_ = "baco";
  int budget_ = 0;  ///< 0 = benchmark full_budget
  int doe_ = 0;     ///< 0 = benchmark doe_samples (or 10)
  std::uint64_t seed_ = 0;
  ExecutionPolicy policy_;
  EvalCache* cache_ = nullptr;
  std::size_t cache_max_entries_ = 0;
  std::string cache_namespace_;
  std::string checkpoint_path_;
  bool resume_ = false;
  StudyEventFn on_event_;
  std::string trace_path_;
};

}  // namespace baco

#endif  // BACO_API_STUDY_HPP_
