#include "serve/worker.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "exec/ask_tell.hpp"
#include "serve/coordinator.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "suite/registry.hpp"

namespace baco::serve {

namespace {
using Clock = std::chrono::steady_clock;
}

EvalResult
evaluate_on(const Benchmark& b, const Configuration& c,
            std::uint64_t run_seed, std::uint64_t index,
            double* eval_seconds)
{
    RngEngine rng = eval_rng_for(run_seed, index);
    auto t0 = Clock::now();
    EvalResult r = b.evaluate(c, rng);
    if (eval_seconds) {
        *eval_seconds +=
            std::chrono::duration<double>(Clock::now() - t0).count();
    }
    return r;
}

std::uint64_t
run_worker_loop(Transport& transport, const WorkerOptions& opt)
{
    Message hello;
    hello.type = MsgType::kHello;
    hello.text = "worker";
    hello.capacity = opt.capacity > 0 ? opt.capacity : 1;
    if (!transport.send(encode(hello)))
        return 0;

    std::uint64_t evaluated = 0;
    std::string line;
    for (;;) {
        RecvStatus rs = transport.recv(line);
        if (rs != RecvStatus::kOk)
            break;
        Message req;
        std::string err;
        if (!decode(line, req, &err)) {
            transport.send(encode(make_error(0, err)));
            continue;
        }
        if (req.type == MsgType::kShutdown)
            break;
        if (req.type != MsgType::kEvaluate) {
            transport.send(encode(make_error(
                req.id, std::string("worker cannot handle frame type ") +
                            msg_type_name(req.type))));
            continue;
        }
        Message reply;
        reply.type = MsgType::kResult;
        reply.id = req.id;
        reply.index = req.index;  // lets observers correlate by evaluation
        try {
            const Benchmark& b = suite::find_benchmark(req.benchmark);
            double seconds = 0.0;
            EvalResult r =
                evaluate_on(b, req.config, req.seed, req.index, &seconds);
            reply.value = r.value;
            reply.feasible = r.feasible;
            reply.eval_seconds = seconds;
            ++evaluated;
        } catch (const std::exception& e) {
            reply = make_error(req.id, e.what());
        }
        if (!transport.send(encode(reply)))
            break;
    }
    return evaluated;
}

std::vector<std::thread>
attach_loopback_workers(Coordinator& coordinator, int n, int capacity)
{
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
    for (int w = 0; w < n; ++w) {
        auto [coordinator_end, worker_end] = loopback_pair();
        threads.emplace_back(
            [t = std::shared_ptr<Transport>(std::move(worker_end)),
             capacity] {
                WorkerOptions opt;
                opt.capacity = capacity;
                run_worker_loop(*t, opt);
            });
        // A failed registration drops the coordinator end, which closes
        // the channel and lets the worker thread exit on its own.
        coordinator.add_worker(std::move(coordinator_end));
    }
    return threads;
}

}  // namespace baco::serve
