#include "serve/worker.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/thread_annotations.hpp"
#include "exec/ask_tell.hpp"
#include "serve/coordinator.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "suite/registry.hpp"

namespace baco::serve {

namespace {
using Clock = std::chrono::steady_clock;

/**
 * Background heartbeat sender: one beat every interval for the life of
 * the worker loop, regardless of what the loop itself is doing. The
 * beats MUST come from their own thread — the loop is synchronous, so
 * a beat woven into it goes silent for the length of an evaluation,
 * and the coordinator's missed-heartbeat detection would kill any
 * worker whose black box outruns the grace window (sanitizer builds
 * hit this constantly). Transport::send is thread-safe per endpoint,
 * so beating concurrently with result sends is within contract.
 */
class Beacon {
 public:
  Beacon(Transport& transport, int interval_ms,
         const std::atomic<std::uint64_t>& evaluated,
         const std::atomic<std::uint64_t>& last_run)
      : transport_(transport), interval_ms_(interval_ms),
        evaluated_(evaluated), last_run_(last_run)
  {
      if (interval_ms_ > 0)
          thread_ = std::thread([this] { loop(); });
  }

  ~Beacon() { stop(); }

  void
  stop() BACO_EXCLUDES(mutex_)
  {
      if (!thread_.joinable())
          return;
      {
          MutexLock lock(mutex_);
          stopped_ = true;
          cv_.notify_one();
      }
      thread_.join();
  }

 private:
  void
  loop() BACO_EXCLUDES(mutex_)
  {
      MutexLock lock(mutex_);
      while (!stopped_) {
          auto deadline =
              Clock::now() + std::chrono::milliseconds(interval_ms_);
          bool expired = false;
          while (!stopped_ && !expired) {
              if (!cv_.wait_until(mutex_, deadline))
                  expired = true;
          }
          if (stopped_)
              break;
          Message beat;
          beat.type = MsgType::kHeartbeat;
          beat.evals = evaluated_.load(std::memory_order_relaxed);
          beat.run = last_run_.load(std::memory_order_relaxed);
          lock.unlock();
          bool sent = transport_.send(encode(beat));
          lock.lock();
          if (!sent)
              break;  // peer gone; the main loop sees kClosed and exits
      }
  }

  Transport& transport_;
  const int interval_ms_;
  const std::atomic<std::uint64_t>& evaluated_;
  const std::atomic<std::uint64_t>& last_run_;
  Mutex mutex_;
  CondVar cv_;
  bool stopped_ BACO_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace

EvalResult
evaluate_on(const Benchmark& b, const Configuration& c,
            std::uint64_t run_seed, std::uint64_t index,
            double* eval_seconds)
{
    RngEngine rng = eval_rng_for(run_seed, index);
    auto t0 = Clock::now();
    EvalResult r = b.evaluate(c, rng);
    if (eval_seconds) {
        *eval_seconds +=
            std::chrono::duration<double>(Clock::now() - t0).count();
    }
    return r;
}

std::uint64_t
run_worker_loop(Transport& transport, const WorkerOptions& opt)
{
    Message hello;
    hello.type = MsgType::kHello;
    hello.text = "worker";
    hello.capacity = opt.capacity > 0 ? opt.capacity : 1;
    hello.heartbeat_ms = opt.heartbeat_ms > 0 ? opt.heartbeat_ms : 0;
    if (!transport.send(encode(hello)))
        return 0;

    const auto loop_start = Clock::now();
    auto us_since_start = [&](Clock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t - loop_start)
                .count());
    };

    std::atomic<std::uint64_t> evaluated{0};
    // Last run id served, echoed on heartbeats/goodbyes so a multiplexed
    // coordinator can attribute the beacon to a tenant.
    std::atomic<std::uint64_t> last_run{0};
    // Beats flow from the beacon's own thread (see above) so they keep
    // arriving mid-evaluation; the loop itself just serves frames.
    Beacon beacon(transport, hello.heartbeat_ms, evaluated, last_run);
    bool saw_shutdown = false;
    std::string line;
    for (;;) {
        RecvStatus rs = transport.recv(line, -1);
        if (rs != RecvStatus::kOk)
            break;
        Message req;
        std::string err;
        if (!decode(line, req, &err)) {
            transport.send(encode(make_error(0, err)));
            continue;
        }
        if (req.type == MsgType::kShutdown) {
            saw_shutdown = true;
            break;
        }
        if (req.type != MsgType::kEvaluate) {
            transport.send(encode(make_error(
                req.id, std::string("worker cannot handle frame type ") +
                            msg_type_name(req.type))));
            continue;
        }
        Message reply;
        reply.type = MsgType::kResult;
        reply.id = req.id;
        reply.index = req.index;  // lets observers correlate by evaluation
        reply.run = req.run;      // echo the run tag on the result
        if (req.run > 0)
            last_run.store(req.run, std::memory_order_relaxed);
        bool traced = req.trace_version > 0 && !req.trace_run.empty();
        auto t0 = Clock::now();
        try {
            const Benchmark& b = suite::find_benchmark(req.benchmark);
            double seconds = 0.0;
            EvalResult r =
                evaluate_on(b, req.config, req.seed, req.index, &seconds);
            reply.value = r.value;
            reply.feasible = r.feasible;
            reply.eval_seconds = seconds;
            ++evaluated;
        } catch (const std::exception& e) {
            reply = make_error(req.id, e.what());
        }
        if (traced && reply.type == MsgType::kResult) {
            // The child span under the propagated context. Spans are
            // built directly (not through the process-wide Trace rings)
            // so a loopback worker sharing the server process never
            // steals or double-counts the server's own spans.
            reply.trace_version = kTraceVersion;
            reply.trace_run = req.trace_run;
            reply.span_id = req.span_id;
            WireSpan span;
            span.name = "worker.evaluate";
            span.category = "worker";
            span.thread_id = 1;
            span.start_us = us_since_start(t0);
            span.duration_us = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - t0)
                    .count());
            reply.spans.push_back(std::move(span));
        }
        if (!transport.send(encode(reply)))
            break;
    }
    // Stop beating before the goodbye so it is the last frame on the wire.
    beacon.stop();
    if (saw_shutdown) {
        Message bye;
        bye.type = MsgType::kGoodbye;
        bye.evals = evaluated.load();
        bye.run = last_run.load();
        transport.send(encode(bye));
    }
    return evaluated.load();
}

std::vector<std::thread>
attach_loopback_workers(Coordinator& coordinator, int n, int capacity)
{
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
    for (int w = 0; w < n; ++w) {
        auto [coordinator_end, worker_end] = loopback_pair();
        threads.emplace_back(
            [t = std::shared_ptr<Transport>(std::move(worker_end)),
             capacity] {
                WorkerOptions opt;
                opt.capacity = capacity;
                run_worker_loop(*t, opt);
            });
        // A failed registration drops the coordinator end, which closes
        // the channel and lets the worker thread exit on its own.
        coordinator.add_worker(std::move(coordinator_end));
    }
    return threads;
}

}  // namespace baco::serve
