#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "api/study.hpp"
#include "exec/eval_cache.hpp"
#include "serve/coordinator.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"

namespace baco::serve {

namespace {

/**
 * Async server-side drive of one session: tell-as-results-land over the
 * coordinator's fleet (or the in-process EvalEngine without workers),
 * streaming one result frame per landed evaluation to the client.
 */
Message
handle_run_async(const Message& req, const ServerContext& ctx,
                 Transport& stream)
{
    // The request's n is the in-flight cap AND (without workers) the
    // engine's thread count — clamp the client-supplied value so one
    // frame cannot make the server spawn an unbounded thread fleet.
    constexpr int kMaxAsyncSlots = 64;
    const int slots = std::clamp(
        req.n > 0 ? req.n : std::max(1, ctx.async_slots), 1,
        kMaxAsyncSlots);
    const int max_evals = req.budget > 0 ? req.budget : -1;
    bool sharded = ctx.coordinator && ctx.coordinator->num_workers() > 0;

    Message done;
    done.type = MsgType::kDone;
    done.id = req.id;

    AsyncResultFn progress = [&](const AsyncEvent& ev) {
        Message frame;
        frame.type = MsgType::kResult;
        frame.id = req.id;
        frame.index = ev.index;
        frame.value = ev.result.value;
        frame.feasible = ev.result.feasible;
        frame.eval_seconds = ev.eval_seconds;
        frame.evals = ev.evals;
        frame.best = ev.best;
        if (!stream.send(encode(frame))) {
            // The client is gone: abort the drive instead of burning
            // the session's remaining budget into a dead pipe. (The
            // engine drains its in-flight work before rethrowing; the
            // coordinator absorbs late worker replies as benign.)
            throw std::runtime_error(
                "client disconnected during async run");
        }
        done.evals = ev.evals;
        done.best = ev.best;
    };

    bool drove = ctx.sessions->with_tuner(
        req.session,
        [&](AskTellTuner& tuner, const SessionInfo& info,
            const std::string& checkpoint) {
            done.evals = info.evals;
            done.best = info.best;
            // Server-side runs dispatch through the same execute() the
            // local Study front door uses: the coordinator's fleet when
            // workers are attached, the in-process async engine
            // otherwise.
            ExecRequest run;
            if (sharded) {
                run.policy = ExecutionPolicy::Distributed(
                    /*workers=*/0, slots, /*async=*/true);
                run.coordinator = ctx.coordinator;
            } else {
                run.policy = ExecutionPolicy::Async(slots,
                                                    /*num_threads=*/slots);
                run.objective =
                    suite::find_benchmark(info.benchmark).evaluate;
            }
            run.benchmark = info.benchmark;
            run.cache = ctx.sessions->cache();
            run.cache_namespace = info.cache_namespace;
            run.checkpoint_path = checkpoint;
            run.max_evals = max_evals;
            run.on_event = progress;
            execute(tuner, run);
        });
    if (!drove) {
        return make_error(req.id,
                          "no such session (or a batch is outstanding): " +
                              req.session);
    }
    return done;
}

/**
 * Server-side drive of one session: suggest, evaluate (sharded over the
 * coordinator when workers are attached, in-process otherwise), observe;
 * repeat until the budget — or the request's eval cap — is exhausted.
 */
Message
handle_run(const Message& req, const ServerContext& ctx)
{
    std::optional<SessionInfo> info = ctx.sessions->info(req.session);
    if (!info)
        return make_error(req.id, "no such session: " + req.session);

    const int batch = std::max(1, req.n);
    const int max_evals = req.budget > 0 ? req.budget : -1;
    bool sharded = ctx.coordinator && ctx.coordinator->num_workers() > 0;
    const Benchmark* local_bench = nullptr;
    if (!sharded)
        local_bench = &suite::find_benchmark(info->benchmark);

    int done = 0;
    Message last_ok;
    last_ok.type = MsgType::kDone;
    last_ok.id = req.id;
    last_ok.evals = info->evals;
    last_ok.best = info->best;

    while (max_evals < 0 || done < max_evals) {
        Message ask;
        ask.type = MsgType::kSuggest;
        ask.id = req.id;
        ask.session = req.session;
        ask.n = batch;
        if (max_evals >= 0)
            ask.n = std::min(ask.n, max_evals - done);
        Message configs = ctx.sessions->handle(ask);
        if (configs.type == MsgType::kError)
            return configs;
        if (configs.configs.empty())
            break;  // budget exhausted
        if (max_evals >= 0 &&
            static_cast<int>(configs.configs.size()) > max_evals - done) {
            // An idempotent suggest retry returned a previously
            // outstanding batch larger than the remaining eval cap. A
            // batch can only be observed whole, so refuse rather than
            // silently exceed the requested budget.
            return make_error(req.id,
                              "outstanding batch exceeds the run's eval "
                              "cap; observe it first or raise the cap");
        }

        Message tell;
        tell.type = MsgType::kObserve;
        tell.id = req.id;
        tell.session = req.session;
        double eval_seconds = 0.0;
        std::vector<EvalResult> results;
        EvalCache* cache = ctx.sessions->cache();
        if (sharded) {
            BatchSpec spec;
            spec.benchmark = info->benchmark;
            spec.run_seed = info->seed;
            spec.first_index = configs.index;
            spec.cache = cache;
            spec.cache_namespace = info->cache_namespace;
            results = ctx.coordinator->evaluate_batch(spec, configs.configs,
                                                      &eval_seconds);
        } else {
            results.reserve(configs.configs.size());
            for (std::size_t i = 0; i < configs.configs.size(); ++i) {
                const Configuration& c = configs.configs[i];
                if (cache) {
                    if (auto hit = cache->lookup(info->cache_namespace, c)) {
                        results.push_back(*hit);
                        continue;
                    }
                }
                results.push_back(evaluate_on(*local_bench, c, info->seed,
                                              configs.index + i,
                                              &eval_seconds));
            }
        }
        tell.eval_seconds = eval_seconds;
        tell.results.reserve(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            ObservedResult r;
            r.config = configs.configs[i];
            r.value = results[i].value;
            r.feasible = results[i].feasible;
            tell.results.push_back(std::move(r));
        }
        Message ok = ctx.sessions->handle(tell);
        if (ok.type == MsgType::kError)
            return ok;
        done += static_cast<int>(results.size());
        last_ok.evals = ok.evals;
        last_ok.best = ok.best;
    }
    return last_ok;
}

}  // namespace

ServeStats
serve_connection(Transport& transport, const ServerContext& ctx)
{
    ServeStats stats;
    if (!ctx.sessions)
        return stats;

    // ---- Version handshake. ----
    std::string line;
    if (transport.recv(line) != RecvStatus::kOk)
        return stats;
    Message hello;
    if (!decode(line, hello) || hello.type != MsgType::kHello) {
        transport.send(encode(make_error(0, "expected hello frame")));
        return stats;
    }
    if (hello.version != kProtocolVersion) {
        transport.send(encode(make_error(
            0, "protocol version mismatch: server speaks v" +
                   std::to_string(kProtocolVersion) + ", client sent v" +
                   std::to_string(hello.version))));
        return stats;
    }
    Message welcome;
    welcome.type = MsgType::kWelcome;
    if (!transport.send(encode(welcome)))
        return stats;
    stats.handshake_ok = true;

    // ---- Request/response loop. ----
    auto last_sweep = std::chrono::steady_clock::now();
    for (;;) {
        if (transport.recv(line) != RecvStatus::kOk)
            break;
        stats.requests += 1;
        Message req;
        std::string err;
        if (!decode(line, req, &err)) {
            stats.errors += 1;
            if (!transport.send(encode(make_error(0, err))))
                break;
            continue;
        }
        if (req.type == MsgType::kShutdown)
            break;

        Message reply;
        if (req.type == MsgType::kRun) {
            try {
                reply = (req.async || ctx.async_runs)
                            ? handle_run_async(req, ctx, transport)
                            : handle_run(req, ctx);
            } catch (const std::exception& e) {
                reply = make_error(req.id, e.what());
            }
        } else {
            reply = ctx.sessions->handle(req);
        }
        if (reply.type == MsgType::kError)
            stats.errors += 1;
        if (!transport.send(encode(reply)))
            break;
        // Idle eviction is a full-registry sweep; time-gate it so busy
        // connections don't pay O(sessions) per request.
        auto now = std::chrono::steady_clock::now();
        if (now - last_sweep >= std::chrono::seconds(1)) {
            last_sweep = now;
            ctx.sessions->evict_idle();
        }
    }
    return stats;
}

}  // namespace baco::serve
