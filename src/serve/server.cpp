#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "api/study.hpp"
#include "exec/eval_cache.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/coordinator.hpp"
#include "serve/stats_util.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"

namespace baco::serve {

namespace {

/**
 * Live request totals across every connection (the Acceptor's
 * AcceptorStats aggregates only finished connections, so the stats
 * frame reports these registry counters for an always-current view).
 */
struct ConnMetrics {
  obs::Counter& requests = counter("serve.requests_total");
  obs::Counter& errors = counter("serve.errors_total");
  obs::Counter& connections = counter("serve.connections_total");

  static ConnMetrics& get()
  {
      static ConnMetrics m;
      return m;
  }

 private:
  static obs::Counter& counter(const char* name)
  {
      return obs::MetricsRegistry::global().counter(name);
  }
};

/** The server-wide stats_report: global registry + registry/acceptor
 *  totals (an empty-session stats request). */
Message
handle_server_stats(const Message& req, const ServerContext& ctx)
{
    Message reply;
    reply.type = MsgType::kStatsReport;
    reply.id = req.id;
    reply.stats_version = kStatsVersion;
    append_stats(obs::MetricsRegistry::global().snapshot(), reply.stats);
    reply.stats.push_back(stat_gauge(
        "sessions.live", static_cast<double>(ctx.sessions->size())));
    reply.stats.push_back(stat_gauge(
        "sessions.spilled",
        static_cast<double>(ctx.sessions->spilled_sessions())));
    reply.stats.push_back(stat_counter(
        "sessions.spill_total",
        static_cast<double>(ctx.sessions->spill_count())));
    reply.stats.push_back(stat_counter(
        "sessions.reload_total",
        static_cast<double>(ctx.sessions->reload_count())));
    if (ctx.acceptor) {
        AcceptorStats a = ctx.acceptor->stats();
        reply.stats.push_back(stat_counter(
            "acceptor.accepted_total", static_cast<double>(a.accepted)));
        reply.stats.push_back(
            stat_counter("acceptor.workers_attached_total",
                         static_cast<double>(a.workers_attached)));
        reply.stats.push_back(stat_counter(
            "acceptor.rejected_total", static_cast<double>(a.rejected)));
        reply.stats.push_back(stat_counter(
            "acceptor.finished_requests_total",
            static_cast<double>(a.requests)));
        reply.stats.push_back(stat_counter(
            "acceptor.finished_errors_total",
            static_cast<double>(a.errors)));
        reply.stats.push_back(stat_gauge(
            "acceptor.peak_clients", static_cast<double>(a.peak_clients)));
        reply.stats.push_back(stat_gauge(
            "acceptor.live_clients",
            static_cast<double>(ctx.acceptor->live_clients())));
    }
    if (ctx.coordinator) {
        // Per-run scheduler counters: one gauge triple per active run,
        // so a stats poll shows who is on the fleet right now.
        std::vector<RunStatsSnapshot> runs = ctx.coordinator->run_stats();
        reply.stats.push_back(stat_gauge(
            "coord.runs.active.now", static_cast<double>(runs.size())));
        for (const RunStatsSnapshot& r : runs) {
            std::string prefix = "coord.run." + std::to_string(r.run) + ".";
            reply.stats.push_back(stat_gauge(
                prefix + "inflight", static_cast<double>(r.inflight)));
            reply.stats.push_back(stat_gauge(
                prefix + "queued", static_cast<double>(r.queued)));
            reply.stats.push_back(stat_counter(
                prefix + "landed", static_cast<double>(r.landed)));
        }
        // Fleet health from the WorkerHealth registry (its own mutex, so
        // this is safe while sharded runs are in flight). State is
        // encoded numerically: 2 alive, 1 slow, 0 dead.
        double alive = 0.0;
        double slow = 0.0;
        for (const WorkerHealthSnapshot& h : ctx.coordinator->health()) {
            std::string prefix =
                "coord.worker." + std::to_string(h.worker) + ".";
            double state = h.state == "alive" ? 2.0
                           : h.state == "slow" ? 1.0
                                               : 0.0;
            alive += h.state != "dead" ? 1.0 : 0.0;
            slow += h.state == "slow" ? 1.0 : 0.0;
            reply.stats.push_back(stat_gauge(prefix + "state", state));
            reply.stats.push_back(stat_gauge(
                prefix + "inflight", static_cast<double>(h.inflight)));
            reply.stats.push_back(stat_counter(
                prefix + "completed", static_cast<double>(h.completed)));
            reply.stats.push_back(stat_counter(
                prefix + "heartbeats",
                static_cast<double>(h.heartbeats)));
            reply.stats.push_back(
                stat_gauge(prefix + "ewma_latency_s", h.ewma_latency_s));
            reply.stats.push_back(
                stat_gauge(prefix + "last_seen_s", h.last_seen_s));
        }
        reply.stats.push_back(stat_gauge("coord.fleet.alive", alive));
        reply.stats.push_back(stat_gauge("coord.fleet.slow", slow));
    }
    return reply;
}

/**
 * Async server-side drive of one session: tell-as-results-land over the
 * coordinator's fleet (or the in-process EvalEngine without workers),
 * streaming one result frame per landed evaluation to the client. The
 * Coordinator multiplexes concurrent runs itself — drive_async opens
 * its own run lease (subject to admission control), so nothing here
 * serializes connections against each other.
 */
Message
handle_run_async(const Message& req, const ServerContext& ctx,
                 Transport& stream)
{
    // The request's n is the in-flight cap AND (without workers) the
    // engine's thread count — clamp the client-supplied value so one
    // frame cannot make the server spawn an unbounded thread fleet.
    constexpr int kMaxAsyncSlots = 64;
    const int slots = std::clamp(
        req.n > 0 ? req.n : std::max(1, ctx.async_slots), 1,
        kMaxAsyncSlots);
    const int max_evals = req.budget > 0 ? req.budget : -1;
    bool sharded = ctx.coordinator && ctx.coordinator->num_workers() > 0;

    Message done;
    done.type = MsgType::kDone;
    done.id = req.id;

    AsyncResultFn progress = [&](const AsyncEvent& ev) {
        Message frame;
        frame.type = MsgType::kResult;
        frame.id = req.id;
        frame.index = ev.index;
        frame.value = ev.result.value;
        frame.feasible = ev.result.feasible;
        frame.eval_seconds = ev.eval_seconds;
        frame.evals = ev.evals;
        frame.best = ev.best;
        if (!stream.send(encode(frame))) {
            // The client is gone: abort the drive instead of burning
            // the session's remaining budget into a dead pipe. (The
            // engine drains its in-flight work before rethrowing; the
            // coordinator absorbs late worker replies as benign.)
            throw std::runtime_error(
                "client disconnected during async run");
        }
        done.evals = ev.evals;
        done.best = ev.best;
    };

    bool drove = ctx.sessions->with_tuner(
        req.session,
        [&](AskTellTuner& tuner, const SessionInfo& info,
            const std::string& checkpoint) {
            done.evals = info.evals;
            done.best = info.best;
            // Server-side runs dispatch through the same execute() the
            // local Study front door uses: the coordinator's fleet when
            // workers are attached, the in-process async engine
            // otherwise.
            ExecRequest run;
            if (sharded) {
                run.policy = ExecutionPolicy::Distributed(
                    /*workers=*/0, slots, /*async=*/true);
                run.coordinator = ctx.coordinator;
            } else {
                run.policy = ExecutionPolicy::Async(slots,
                                                    /*num_threads=*/slots);
                run.objective =
                    suite::find_benchmark(info.benchmark).evaluate;
            }
            run.benchmark = info.benchmark;
            run.cache = ctx.sessions->cache();
            run.cache_namespace = info.cache_namespace;
            run.checkpoint_path = checkpoint;
            run.max_evals = max_evals;
            run.on_event = progress;
            execute(tuner, run);
        });
    if (!drove) {
        return make_error(req.id,
                          "no such session (or a batch is outstanding): " +
                              req.session);
    }
    return done;
}

/**
 * Server-side drive of one session: suggest, evaluate (sharded over the
 * coordinator when workers are attached, in-process otherwise), observe;
 * repeat until the budget — or the request's eval cap — is exhausted.
 */
Message
handle_run(const Message& req, const ServerContext& ctx)
{
    std::optional<SessionInfo> info = ctx.sessions->info(req.session);
    if (!info)
        return make_error(req.id, "no such session: " + req.session);

    const int batch = std::max(1, req.n);
    const int max_evals = req.budget > 0 ? req.budget : -1;
    bool sharded = ctx.coordinator && ctx.coordinator->num_workers() > 0;
    // One run lease for the whole request: every round of this run is
    // scheduled fairly against other tenants' rounds, and admission
    // control (CoordinatorBusy → "busy" error frame) happens here, up
    // front, not halfway through the run.
    Coordinator::RunLease lease;
    if (sharded)
        lease = ctx.coordinator->begin_run(/*max_inflight=*/batch);
    const Benchmark* local_bench = nullptr;
    if (!sharded)
        local_bench = &suite::find_benchmark(info->benchmark);

    int done = 0;
    Message last_ok;
    last_ok.type = MsgType::kDone;
    last_ok.id = req.id;
    last_ok.evals = info->evals;
    last_ok.best = info->best;

    while (max_evals < 0 || done < max_evals) {
        Message ask;
        ask.type = MsgType::kSuggest;
        ask.id = req.id;
        ask.session = req.session;
        ask.n = batch;
        if (max_evals >= 0)
            ask.n = std::min(ask.n, max_evals - done);
        Message configs = ctx.sessions->handle(ask);
        if (configs.type == MsgType::kError)
            return configs;
        if (configs.configs.empty())
            break;  // budget exhausted
        if (max_evals >= 0 &&
            static_cast<int>(configs.configs.size()) > max_evals - done) {
            // An idempotent suggest retry returned a previously
            // outstanding batch larger than the remaining eval cap. A
            // batch can only be observed whole, so refuse rather than
            // silently exceed the requested budget.
            return make_error(req.id,
                              "outstanding batch exceeds the run's eval "
                              "cap; observe it first or raise the cap");
        }

        Message tell;
        tell.type = MsgType::kObserve;
        tell.id = req.id;
        tell.session = req.session;
        double eval_seconds = 0.0;
        std::vector<EvalResult> results;
        EvalCache* cache = ctx.sessions->cache();
        if (sharded) {
            BatchSpec spec;
            spec.benchmark = info->benchmark;
            spec.run_seed = info->seed;
            spec.first_index = configs.index;
            spec.cache = cache;
            spec.cache_namespace = info->cache_namespace;
            results = ctx.coordinator->evaluate_batch(
                lease, spec, configs.configs, &eval_seconds);
        } else {
            results.reserve(configs.configs.size());
            for (std::size_t i = 0; i < configs.configs.size(); ++i) {
                const Configuration& c = configs.configs[i];
                if (cache) {
                    if (auto hit = cache->lookup(info->cache_namespace, c)) {
                        results.push_back(*hit);
                        continue;
                    }
                }
                results.push_back(evaluate_on(*local_bench, c, info->seed,
                                              configs.index + i,
                                              &eval_seconds));
            }
        }
        tell.eval_seconds = eval_seconds;
        tell.results.reserve(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            ObservedResult r;
            r.config = configs.configs[i];
            r.value = results[i].value;
            r.feasible = results[i].feasible;
            tell.results.push_back(std::move(r));
        }
        Message ok = ctx.sessions->handle(tell);
        if (ok.type == MsgType::kError)
            return ok;
        done += static_cast<int>(results.size());
        last_ok.evals = ok.evals;
        last_ok.best = ok.best;
    }
    return last_ok;
}

}  // namespace

ServeStats
serve_connection(Transport& transport, const ServerContext& ctx)
{
    ServeStats stats;
    if (!ctx.sessions)
        return stats;

    std::string line;
    if (transport.recv(line) != RecvStatus::kOk)
        return stats;
    Message hello;
    if (!decode(line, hello)) {
        transport.send(encode(make_error(0, "expected hello frame")));
        return stats;
    }
    return serve_connection(transport, ctx, hello);
}

ServeStats
serve_connection(Transport& transport, const ServerContext& ctx,
                 const Message& hello)
{
    ServeStats stats;
    if (!ctx.sessions)
        return stats;

    // ---- Version handshake. ----
    std::string line;
    if (hello.type != MsgType::kHello) {
        transport.send(encode(make_error(0, "expected hello frame")));
        return stats;
    }
    if (hello.version != kProtocolVersion) {
        transport.send(encode(make_error(
            0, "protocol version mismatch: server speaks v" +
                   std::to_string(kProtocolVersion) + ", client sent v" +
                   std::to_string(hello.version))));
        return stats;
    }
    Message welcome;
    welcome.type = MsgType::kWelcome;
    if (!transport.send(encode(welcome)))
        return stats;
    stats.handshake_ok = true;
    ConnMetrics::get().connections.add();

    // ---- Request/response loop. ----
    auto last_sweep = std::chrono::steady_clock::now();
    for (;;) {
        if (transport.recv(line) != RecvStatus::kOk)
            break;
        stats.requests += 1;
        ConnMetrics::get().requests.add();
        Message req;
        std::string err;
        if (!decode(line, req, &err)) {
            stats.errors += 1;
            ConnMetrics::get().errors.add();
            if (!transport.send(encode(make_error(0, err))))
                break;
            continue;
        }
        if (req.type == MsgType::kShutdown)
            break;

        Message reply;
        if (req.type == MsgType::kStats && req.session.empty()) {
            reply = handle_server_stats(req, ctx);
        } else if (req.type == MsgType::kRun) {
            try {
                reply = (req.async || ctx.async_runs)
                            ? handle_run_async(req, ctx, transport)
                            : handle_run(req, ctx);
            } catch (const CoordinatorBusy& e) {
                // Admission refusal: a machine-readable code so clients
                // can back off and retry instead of parsing the text.
                reply = make_error(req.id, e.what());
                reply.code = "busy";
            } catch (const std::exception& e) {
                reply = make_error(req.id, e.what());
            }
        } else {
            reply = ctx.sessions->handle(req);
        }
        if (reply.type == MsgType::kError) {
            stats.errors += 1;
            ConnMetrics::get().errors.add();
        }
        if (!transport.send(encode(reply)))
            break;
        // Idle eviction is a full-registry sweep; time-gate it so busy
        // connections don't pay O(sessions) per request.
        auto now = std::chrono::steady_clock::now();
        if (now - last_sweep >= std::chrono::seconds(1)) {
            last_sweep = now;
            ctx.sessions->evict_idle();
        }
    }
    return stats;
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

Acceptor::Acceptor(Listener listener, ServerContext ctx, AcceptorOptions opt)
    : listener_(std::move(listener)), ctx_(ctx), opt_(opt)
{
    if (opt_.max_clients < 1)
        opt_.max_clients = 1;
    if (opt_.poll_ms < 1)
        opt_.poll_ms = 1;
    // Connections report the acceptor's aggregation in the server-wide
    // stats frame.
    ctx_.acceptor = this;
}

Acceptor::~Acceptor()
{
    stop();
    reap(/*all=*/true);
}

void
Acceptor::stop()
{
    stopping_.store(true);
    listener_.close();
}

std::size_t
Acceptor::live_clients() const
{
    MutexLock lock(mutex_);
    std::size_t live = 0;
    for (const auto& c : connections_)
        if (c->is_client.load() && !c->done.load())
            ++live;
    return live;
}

AcceptorStats
Acceptor::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
Acceptor::reap(bool all)
{
    // Joining with mutex_ held would deadlock against a connection
    // thread recording its stats, so move the finished (or, on
    // shutdown, every) connection out first and join unlocked. A
    // thread's done flag is set strictly after its stats section, so a
    // done connection never touches the mutex again.
    std::vector<std::unique_ptr<Connection>> finished;
    {
        MutexLock lock(mutex_);
        auto it = connections_.begin();
        while (it != connections_.end()) {
            if (all || (*it)->done.load()) {
                finished.push_back(std::move(*it));
                it = connections_.erase(it);
            } else {
                ++it;
            }
        }
    }
    // Close everything first, join second: a connection thread can be
    // mid-run waiting on coordinator results, and only its own
    // transport closing unsticks the streaming path — an interleaved
    // close-then-join could join a thread whose unblocker comes later
    // in the list. Transports whose ownership moved on (attached
    // workers) are left open — the coordinator shuts them down.
    if (all) {
        for (auto& c : finished) {
            if (!c->released.load())
                c->transport->close();
        }
    }
    for (auto& c : finished) {
        if (c->thread.joinable())
            c->thread.join();
    }
}

namespace {

/** Transport view over shared ownership (a worker connection's socket
 *  outlives its Acceptor connection record). */
class SharedTransport : public Transport {
 public:
    explicit SharedTransport(std::shared_ptr<Transport> inner)
        : inner_(std::move(inner))
    {
    }

    bool
    send(const std::string& line) override
    {
        return inner_->send(line);
    }

    RecvStatus
    recv(std::string& line, int timeout_ms) override
    {
        return inner_->recv(line, timeout_ms);
    }

    void
    close() override
    {
        inner_->close();
    }

 private:
    std::shared_ptr<Transport> inner_;
};

}  // namespace

void
Acceptor::route_connection(Connection* conn)
{
    // First frame, read on the connection's own thread — a client that
    // connects and sends nothing stalls only itself, never the accept
    // loop. Routing on it is what lets one listening socket serve both
    // session clients and worker registrations.
    Transport& transport = *conn->transport;
    std::string line;
    std::string reject;
    Message hello;
    if (transport.recv(line, opt_.hello_timeout_ms) != RecvStatus::kOk) {
        reject = "";  // silent connection: nothing to answer
    } else if (!decode(line, hello)) {
        reject = "expected hello frame";
    } else if (hello.type == MsgType::kHello && hello.text == "worker") {
        if (!ctx_.coordinator) {
            reject = "server accepts no workers";
        } else if (hello.version != kProtocolVersion) {
            reject = "protocol version mismatch";
        } else {
            // Attach (or re-attach — a worker killed for heartbeat loss
            // reconnects through this same path) mid-run is safe: the
            // Coordinator synchronizes internally and re-leases the new
            // worker to whatever runs have queued work.
            ctx_.coordinator->add_worker_registered(
                std::make_unique<SharedTransport>(conn->transport),
                hello.capacity, hello.heartbeat_ms);
            conn->released.store(true);
            MutexLock lock(mutex_);
            stats_.workers_attached += 1;
            conn->done.store(true);
            return;
        }
    } else {
        // A session client (or a first frame serve_connection will
        // answer with an error): admit it against the client cap.
        MutexLock lock(mutex_);
        std::size_t live = 0;
        for (const auto& c : connections_)
            if (c->is_client.load() && !c->done.load())
                ++live;
        if (live >= static_cast<std::size_t>(opt_.max_clients)) {
            stats_.rejected += 1;
            lock.unlock();
            obs::log_warn("serve", "client_rejected",
                          obs::LogFields()
                              .str("reason", "server_full")
                              .num("max_clients", opt_.max_clients));
            transport.send(encode(make_error(
                0, "server full: " + std::to_string(opt_.max_clients) +
                       " clients connected")));
            conn->done.store(true);
            return;
        }
        conn->is_client.store(true);
        stats_.accepted += 1;
        stats_.peak_clients = std::max<std::uint64_t>(stats_.peak_clients,
                                                      live + 1);
        lock.unlock();

        ServeStats s = serve_connection(transport, ctx_, hello);
        MutexLock guard(mutex_);
        stats_.requests += s.requests;
        stats_.errors += s.errors;
        conn->done.store(true);
        return;
    }

    if (!reject.empty())
        transport.send(encode(make_error(0, reject)));
    {
        MutexLock lock(mutex_);
        stats_.rejected += 1;
    }
    conn->done.store(true);
}

void
Acceptor::run()
{
    while (!stopping_.load() && !listener_.closed()) {
        std::unique_ptr<Transport> client = listener_.accept(opt_.poll_ms);
        if (client && !stopping_.load()) {
            MutexLock lock(mutex_);
            // Hard bound on connection threads: the per-role caps are
            // enforced post-hello, so allow slack for connections still
            // introducing themselves, but never unbounded growth under
            // a connect flood.
            std::size_t live = 0;
            for (const auto& c : connections_)
                if (!c->done.load())
                    ++live;
            if (live >= static_cast<std::size_t>(opt_.max_clients) + 16) {
                // Dropped without a frame; the flood case by definition
                // has no well-behaved peer waiting for an answer.
            } else {
                // Spawn and publish under the same lock: a shutdown
                // reap must never see a connection whose thread member
                // is not yet assigned. The new thread touches mutex_
                // only under its own locks, so no lock-order issue.
                auto conn = std::make_unique<Connection>();
                conn->transport =
                    std::shared_ptr<Transport>(std::move(client));
                Connection* raw = conn.get();
                raw->thread =
                    std::thread([this, raw] { route_connection(raw); });
                connections_.push_back(std::move(conn));
            }
        }
        reap(/*all=*/false);
    }
    reap(/*all=*/true);
}

}  // namespace baco::serve
