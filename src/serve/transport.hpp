#ifndef BACO_SERVE_TRANSPORT_HPP_
#define BACO_SERVE_TRANSPORT_HPP_

/**
 * @file
 * Line-framed transports for the serve protocol.
 *
 * A Transport moves whole frames (one line, no trailing newline) between
 * two peers. Two implementations:
 *
 *  - loopback_pair(): an in-process pair of endpoints over shared queues,
 *    making the entire coordinator/worker/server stack hermetically
 *    testable in ctest with zero OS dependencies;
 *  - PipeTransport: over a pair of file descriptors (pipes, socketpairs,
 *    or stdin/stdout), which is how the baco_serve / baco_worker binaries
 *    talk — compose with ssh/socat for cross-host deployment.
 *
 * send() is thread-safe per endpoint; recv() is single-consumer.
 */

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace baco::serve {

/** Outcome of a receive attempt. */
enum class RecvStatus {
  kOk,       ///< a frame was received
  kTimeout,  ///< no frame within the timeout (peer still connected)
  kClosed,   ///< peer closed the connection (or transport closed locally)
};

/** One endpoint of a bidirectional frame stream. */
class Transport {
 public:
  virtual ~Transport() = default;

  /** Send one frame. Returns false when the peer is gone. */
  virtual bool send(const std::string& line) = 0;

  /**
   * Receive one frame. timeout_ms < 0 blocks until a frame arrives or the
   * peer closes; timeout_ms >= 0 waits at most that long.
   */
  virtual RecvStatus recv(std::string& line, int timeout_ms = -1) = 0;

  /** Close both directions; pending and future recv()s see kClosed. */
  virtual void close() = 0;
};

/** Two connected in-process endpoints (a's sends arrive at b, and back). */
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
loopback_pair();

/** Frame stream over POSIX file descriptors. */
class PipeTransport : public Transport {
 public:
  /** @param owns_fds close the descriptors on destruction/close(). */
  PipeTransport(int read_fd, int write_fd, bool owns_fds = true);
  ~PipeTransport() override;

  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  bool send(const std::string& line) override;
  RecvStatus recv(std::string& line, int timeout_ms = -1) override;
  void close() override;

 private:
  int read_fd_;
  int write_fd_;
  bool owns_;
  bool closed_ = false;
  std::string buffer_;  ///< bytes read but not yet framed
  std::mutex write_mutex_;
};

/**
 * Two connected PipeTransport endpoints over a pair of anonymous pipes
 * (for tests exercising the fd path without child processes).
 */
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
pipe_pair();

/** A child process wired to the parent through a PipeTransport. */
struct ChildProcess {
  std::unique_ptr<Transport> transport;
  int pid = -1;
};

/**
 * fork/exec argv[0] with its stdin/stdout connected to the returned
 * transport (stderr inherited). Returns a null transport on failure.
 */
ChildProcess spawn_process(const std::vector<std::string>& argv);

/** waitpid on a spawned child; returns its exit code (-1 on error). */
int wait_process(int pid);

}  // namespace baco::serve

#endif  // BACO_SERVE_TRANSPORT_HPP_
