#ifndef BACO_SERVE_TRANSPORT_HPP_
#define BACO_SERVE_TRANSPORT_HPP_

/**
 * @file
 * Line-framed transports for the serve protocol.
 *
 * A Transport moves whole frames (one line, no trailing newline) between
 * two peers. Three implementations:
 *
 *  - loopback_pair(): an in-process pair of endpoints over shared queues,
 *    making the entire coordinator/worker/server stack hermetically
 *    testable in ctest with zero OS dependencies;
 *  - PipeTransport: over a pair of file descriptors (pipes, socketpairs,
 *    or stdin/stdout), which is how the baco_serve / baco_worker binaries
 *    talk on their standard streams;
 *  - SocketTransport: the same poll-based framing over one connected
 *    socket descriptor (Unix-domain or TCP), produced by Listener::accept
 *    on the server side and connect_socket on the client side — this is
 *    what `baco_serve --listen` / `baco_worker --connect` speak, and it
 *    removes the ssh/socat shim from cross-host deployment.
 *
 * send() is thread-safe per endpoint; recv() is single-consumer.
 *
 * Socket addresses are spelled as strings everywhere ("unix:PATH" or
 * "tcp:HOST:PORT"), parsed by parse_socket_address().
 */

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_annotations.hpp"

namespace baco::serve {

/** Outcome of a receive attempt. */
enum class RecvStatus {
  kOk,       ///< a frame was received
  kTimeout,  ///< no frame within the timeout (peer still connected)
  kClosed,   ///< peer closed the connection (or transport closed locally)
};

/** One endpoint of a bidirectional frame stream. */
class Transport {
 public:
  virtual ~Transport() = default;

  /** Send one frame. Returns false when the peer is gone. */
  virtual bool send(const std::string& line) = 0;

  /**
   * Receive one frame. timeout_ms < 0 blocks until a frame arrives or the
   * peer closes; timeout_ms >= 0 waits at most that long.
   */
  virtual RecvStatus recv(std::string& line, int timeout_ms = -1) = 0;

  /** Close both directions; pending and future recv()s see kClosed. */
  virtual void close() = 0;
};

/** Two connected in-process endpoints (a's sends arrive at b, and back). */
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
loopback_pair();

/** Frame stream over POSIX file descriptors. */
class PipeTransport : public Transport {
 public:
  /** @param owns_fds close the descriptors on destruction/close(). */
  PipeTransport(int read_fd, int write_fd, bool owns_fds = true);
  ~PipeTransport() override;

  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  bool send(const std::string& line) override;
  RecvStatus recv(std::string& line, int timeout_ms = -1) override;
  void close() override;

 protected:
  /** One write attempt; ::write here, MSG_NOSIGNAL ::send on sockets. */
  virtual long write_bytes(int fd, const char* data, std::size_t n);

 private:
  // write_mutex_ serializes writers (send is thread-safe per the class
  // contract); recv() is single-consumer and reads read_fd_/buffer_
  // without it by design, so those carry no GUARDED_BY. close() is
  // safe against a concurrent recv(): it flips the atomic closed_
  // flag, pokes the self-pipe so a reader blocked in poll() wakes and
  // re-checks it, and closes only the write descriptor (peer EOF) —
  // the read descriptor is released at destruction, after the owner
  // joined any reader thread, so a woken reader never races a
  // recycled fd number.
  int read_fd_;
  int write_fd_;
  bool owns_;
  std::atomic<bool> closed_{false};
  int wake_fds_[2] = {-1, -1};  ///< self-pipe; close() writes one byte
  std::string buffer_;  ///< bytes read but not yet framed
  Mutex write_mutex_;
};

/**
 * Two connected PipeTransport endpoints over a pair of anonymous pipes
 * (for tests exercising the fd path without child processes).
 */
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
pipe_pair();

/**
 * Frame stream over one connected socket (Unix-domain or TCP): the
 * PipeTransport framing with both directions on the same descriptor.
 *
 * close() only shuts the socket down (both directions) — that wakes a
 * reader blocked in poll() on another thread, which a plain ::close()
 * would NOT — and the descriptor itself is released at destruction, so
 * the woken reader never races a recycled fd number. This is what lets
 * the Acceptor close live connections from the accept thread during
 * shutdown.
 *
 * Sends use MSG_NOSIGNAL: a peer that died mid-exchange surfaces as a
 * failed send (dead-worker handling), never as a process-killing
 * SIGPIPE in programs that embed the library without installing their
 * own handler (ExecutionPolicy::Remote from a plain Study user).
 */
class SocketTransport : public PipeTransport {
 public:
  explicit SocketTransport(int fd, bool owns_fd = true)
      : PipeTransport(fd, fd, owns_fd), fd_(fd)
  {
  }

  void close() override;

 protected:
  long write_bytes(int fd, const char* data, std::size_t n) override;

 private:
  int fd_;
};

/** A parsed "unix:PATH" / "tcp:HOST:PORT" address. */
struct SocketAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< unix: filesystem path of the socket
  std::string host;  ///< tcp: host name or numeric address
  int port = 0;      ///< tcp: port (0 = ephemeral, listeners only)

  /** Back to the "unix:..." / "tcp:..." spelling. */
  std::string str() const;
};

/**
 * Parse "unix:PATH" or "tcp:HOST:PORT" (IPv6 hosts in brackets:
 * "tcp:[::1]:7070"). Returns nullopt — with a diagnostic in *error when
 * non-null — on anything else.
 */
std::optional<SocketAddress> parse_socket_address(const std::string& spec,
                                                  std::string* error = nullptr);

/**
 * A bound, listening server socket. accept() hands out one connected
 * SocketTransport per client. close() (or destruction) unblocks a
 * concurrent accept() and, for Unix sockets, unlinks the path.
 */
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;

  /**
   * Bind + listen on `addr`. A Unix path that already exists is
   * unlinked first (a stale socket from a crashed server); a TCP
   * listener binds with SO_REUSEADDR, and port 0 picks an ephemeral
   * port — address() reports the actual one. Returns false (with a
   * diagnostic in *error) on failure.
   */
  bool open(const SocketAddress& addr, std::string* error = nullptr);

  /**
   * Accept one client. timeout_ms < 0 blocks until a client arrives or
   * the listener is closed; >= 0 waits at most that long (nullptr on
   * timeout or close — check closed() to tell them apart).
   */
  std::unique_ptr<Transport> accept(int timeout_ms = -1);

  /** The bound address (TCP port resolved after an ephemeral bind). */
  const SocketAddress& address() const { return addr_; }

  bool closed() const;
  void close();

 private:
  int fd_ = -1;
  SocketAddress addr_;
  /** close() raced against accept(); true until open() succeeds. */
  std::atomic<bool> closed_{true};
};

/**
 * Connect to a listening "unix:"/"tcp:" address. Returns nullptr — with
 * a diagnostic in *error when non-null — when the peer is unreachable.
 */
std::unique_ptr<Transport> connect_socket(const SocketAddress& addr,
                                          std::string* error = nullptr);

/** Parse + connect in one step (spec as for parse_socket_address). */
std::unique_ptr<Transport> connect_socket(const std::string& spec,
                                          std::string* error = nullptr);

/** A child process wired to the parent through a PipeTransport. */
struct ChildProcess {
  std::unique_ptr<Transport> transport;
  int pid = -1;
};

/**
 * fork/exec argv[0] with its stdin/stdout connected to the returned
 * transport (stderr inherited). Returns a null transport on failure.
 */
ChildProcess spawn_process(const std::vector<std::string>& argv);

/** waitpid on a spawned child; returns its exit code (-1 on error). */
int wait_process(int pid);

}  // namespace baco::serve

#endif  // BACO_SERVE_TRANSPORT_HPP_
