#ifndef BACO_SERVE_SESSION_MANAGER_HPP_
#define BACO_SERVE_SESSION_MANAGER_HPP_

/**
 * @file
 * Multiplexes many named tuning sessions behind the wire protocol.
 *
 * Each session owns one ask-tell tuner (any MethodRegistry method —
 * open_session resolves the request's method string through the same
 * registry local Study construction uses), its search space, and its
 * pending suggest() batch; the manager maps protocol requests onto the
 * ask-tell exchange while enforcing its contract (every suggested batch
 * is observed, in order, before the next one).
 *
 * Concurrency: sessions live in a lock-striped registry — requests for
 * different sessions proceed in parallel, requests for one session
 * serialize on its own mutex. suggest() is idempotent: re-asking with a
 * batch outstanding returns the same batch, so a client that lost a
 * response can simply retry.
 *
 * Durability: with a checkpoint directory configured every observed
 * batch atomically rewrites <dir>/<session>.ckpt.jsonl. A crashed
 * server (or an evicted idle session) resumes by re-opening the session
 * with resume=true: the tuner restores history + sampler state and —
 * because suggest() draws only from the restored sampler stream —
 * finishes with the history the uninterrupted run would have produced.
 * An unobserved in-flight batch is deliberately NOT checkpointed: the
 * on-disk state then corresponds to the moment before that suggest(),
 * so the resumed tuner re-suggests the identical batch.
 *
 * A shared EvalCache (optional) is namespaced per session by benchmark
 * identity, so one cache file serves every session safely.
 *
 * Bounded live registry: with max_live_sessions > 0 (and a checkpoint
 * directory), opening a session beyond the cap spills the least-
 * recently-touched idle session to disk — its tuner is dropped, its
 * checkpoint and a small metadata record remain — so a long-lived
 * multi-client server holds at most the cap's worth of tuner state in
 * memory. A spilled session is still "open" to the protocol: the next
 * request that names it transparently reloads the tuner from its
 * checkpoint (the same bit-for-bit resume path open_session(resume)
 * uses), possibly spilling another session to make room.
 */

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace baco {
class AskTellTuner;
class EvalCache;
class SearchSpace;
struct Benchmark;
}

namespace baco::serve {

/** Manager knobs. */
struct SessionManagerOptions {
  /** Checkpoint directory; empty disables durability. */
  std::string checkpoint_dir;
  /** evict_idle() closes sessions untouched for longer; <= 0 never. */
  double idle_timeout_seconds = 0.0;
  /** Lock stripes (bounded mutex contention across sessions). */
  int stripes = 8;
  /** Optional shared evaluation cache (not owned). */
  EvalCache* cache = nullptr;
  /**
   * Cap on in-memory sessions; 0 = unbounded. Requires a checkpoint
   * directory (spilling drops the tuner, so without a checkpoint to
   * reload from the cap is ignored). Excess sessions are spilled
   * least-recently-touched first; busy or mid-batch sessions are never
   * spilled, so the live count can transiently exceed the cap.
   */
  std::size_t max_live_sessions = 0;
};

/** A read-only snapshot of one session, for drivers and introspection. */
struct SessionInfo {
  std::string name;
  std::string benchmark;
  std::string cache_namespace;
  std::uint64_t seed = 0;
  std::uint64_t evals = 0;
  int budget = 0;
  double best = 0.0;
};

/** The lock-striped session registry behind the serve loop. */
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions opt = SessionManagerOptions{});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /**
   * Handle one protocol request (open_session / suggest / observe /
   * checkpoint / close) and produce its response frame. Never throws:
   * failures become error frames.
   */
  Message handle(const Message& request);

  /** Snapshot of an open session (reloading it when spilled); nullopt
   *  when absent. */
  std::optional<SessionInfo> info(const std::string& name);

  /**
   * Lock session `name` and run fn(tuner, info, checkpoint_path) against
   * its ask-tell tuner directly — the access the server's async run path
   * needs to drive tell-as-results-land (the frame-level suggest/observe
   * exchange is inherently batch-shaped). The session stays locked for
   * fn's whole duration, so concurrent requests for it queue up behind
   * the drive. Returns false — without invoking fn — when the session is
   * absent or has a suggested-but-unobserved protocol batch (an async
   * drive may not interleave with a frame-level exchange).
   */
  bool with_tuner(
      const std::string& name,
      const std::function<void(AskTellTuner&, const SessionInfo&,
                               const std::string&)>& fn);

  /** Number of live (in-memory) sessions. */
  std::size_t size() const;

  /** Sessions currently spilled to disk-only state. */
  std::size_t spilled_sessions() const;

  /** Total spill / reload events (monotonic, for logs and tests). */
  std::uint64_t spill_count() const;
  std::uint64_t reload_count() const;

  /**
   * Evict sessions idle longer than idle_timeout_seconds. Sessions that
   * are mid-request or have a suggested-but-unobserved batch are never
   * evicted, and sessions are NOT re-checkpointed on eviction: the last
   * per-observe checkpoint is already the correct resume point (see
   * file comment). Returns the number evicted.
   */
  std::size_t evict_idle();

  /** Checkpoint every session with no batch in flight. */
  void checkpoint_all();

  /** The checkpoint file of a session name (empty when disabled). */
  std::string checkpoint_path(const std::string& name) const;

  /** The shared evaluation cache (may be null). */
  EvalCache* cache() const { return opt_.cache; }

 private:
  struct Session;
  struct Stripe;

  /** Everything needed to rebuild a spilled session's tuner. */
  struct SpilledSession {
    std::string benchmark;
    std::string method;  ///< canonical MethodRegistry name
    int budget = 0;
    int doe = 0;
    std::uint64_t seed = 0;
    /**
     * Stamped per spill event: a reloader that read the metadata (and
     * the checkpoint) before an intervening reload + re-spill must not
     * install its now-stale tuner — it re-reads when the generation
     * under the insert lock differs.
     */
    std::uint64_t generation = 0;
    std::chrono::steady_clock::time_point spilled_at;
    /**
     * Lifetime request-latency totals, folded in at every spill (the
     * live per-session histograms reset with the tuner). A reload
     * re-attaches these as the session's base, so stats on a reloaded
     * session reports counts across all its incarnations.
     */
    obs::HistogramSnapshot suggest_hist;
    obs::HistogramSnapshot observe_hist;
  };

  Stripe& stripe_for(const std::string& name) const;
  std::shared_ptr<Session> find(const std::string& name) const;
  /** find(), reloading a spilled session from its checkpoint on miss. */
  std::shared_ptr<Session> find_or_reload(const std::string& name);
  /**
   * find_or_reload + lock, re-verifying registry membership under the
   * session mutex (a concurrent spill between lookup and lock retries
   * the reload). lock_out holds the session mutex on success.
   */
  std::shared_ptr<Session> acquire(const std::string& name,
                                   std::unique_lock<std::mutex>& lock_out);
  /** Spill least-recently-touched idle sessions down to the cap. */
  void enforce_live_cap();
  bool spill_one(const std::string& name);

  Message open_session(const Message& req);
  Message suggest(const Message& req);
  Message observe(const Message& req);
  Message checkpoint(const Message& req);
  Message close_session(const Message& req);
  Message session_stats(const Message& req);

  SessionManagerOptions opt_;
  std::unique_ptr<Stripe[]> stripes_;

  // Lock order: a Session's mutex may be held while taking a Stripe's
  // mutex and then spill_mutex_ (spill_one); stripe holders only ever
  // try_lock sessions, so the inverse never blocks.
  mutable Mutex spill_mutex_;
  std::unordered_map<std::string, SpilledSession> spilled_
      BACO_GUARDED_BY(spill_mutex_);
  std::uint64_t spill_count_ BACO_GUARDED_BY(spill_mutex_) = 0;
  std::uint64_t reload_count_ BACO_GUARDED_BY(spill_mutex_) = 0;
  std::uint64_t spill_generation_ BACO_GUARDED_BY(spill_mutex_) = 0;
};

/** True when name is a valid session name ([A-Za-z0-9_.-]+, <= 128). */
bool valid_session_name(const std::string& name);

}  // namespace baco::serve

#endif  // BACO_SERVE_SESSION_MANAGER_HPP_
