#include "serve/protocol.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "exec/jsonl.hpp"

namespace baco::serve {

namespace {

/**
 * A double as a JSON-valid token: plain %.17g when finite, quoted
 * ("inf", "-inf", "nan") otherwise — standard JSON has no non-finite
 * literals, and strtod on the decode side parses the quoted spellings.
 */
std::string
num_token(double v)
{
    if (std::isfinite(v))
        return jsonl::fmt_double(v);
    return "\"" + jsonl::fmt_double(v) + "\"";
}

/** Strip characters that would break one-line JSON framing. */
std::string
sanitize(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"')
            out += '\'';
        else if (c == '\n' || c == '\r')
            out += ' ';
        else if (c == '\\')
            out += '/';
        else
            out += c;
    }
    return out;
}

void
emit_str(std::ostream& out, const char* name, const std::string& v)
{
    out << ",\"" << name << "\":\"" << sanitize(v) << '"';
}

void
emit_u64(std::ostream& out, const char* name, std::uint64_t v)
{
    out << ",\"" << name << "\":" << v;
}

void
emit_int(std::ostream& out, const char* name, int v)
{
    out << ",\"" << name << "\":" << v;
}

void
emit_double(std::ostream& out, const char* name, double v)
{
    out << ",\"" << name << "\":" << num_token(v);
}

void
emit_bool(std::ostream& out, const char* name, bool v)
{
    out << ",\"" << name << "\":" << (v ? "true" : "false");
}

// The read_* helpers are strict: a present-but-non-numeric value is a
// malformed frame (false), never a silent zero.

bool
read_u64(const std::string& line, const char* name, std::uint64_t& out)
{
    std::string raw;
    if (!jsonl::field(line, name, raw))
        return false;
    char* end = nullptr;
    out = std::strtoull(raw.c_str(), &end, 10);
    return end != raw.c_str() && *end == '\0';
}

bool
read_int(const std::string& line, const char* name, int& out)
{
    std::string raw;
    if (!jsonl::field(line, name, raw))
        return false;
    char* end = nullptr;
    out = static_cast<int>(std::strtol(raw.c_str(), &end, 10));
    return end != raw.c_str() && *end == '\0';
}

bool
read_double(const std::string& line, const char* name, double& out)
{
    std::string raw;
    if (!jsonl::field(line, name, raw))
        return false;
    char* end = nullptr;
    out = std::strtod(raw.c_str(), &end);
    return end != raw.c_str() && *end == '\0';
}

bool
read_bool(const std::string& line, const char* name, bool& out)
{
    std::string raw;
    if (!jsonl::field(line, name, raw))
        return false;
    if (raw != "true" && raw != "false")
        return false;
    out = raw == "true";
    return true;
}

/**
 * Parse the configs array ("configs":[[...],[...]]) starting at s[at]
 * (the outer '['). Advances at past the closing ']'.
 */
bool
parse_configs_array(const std::string& s, std::size_t& at,
                    std::vector<Configuration>& out)
{
    if (at >= s.size() || s[at] != '[')
        return false;
    ++at;
    out.clear();
    if (at < s.size() && s[at] == ']') {
        ++at;
        return true;
    }
    while (at < s.size()) {
        Configuration c;
        if (!jsonl::parse_config(s, at, c))
            return false;
        out.push_back(std::move(c));
        if (at < s.size() && s[at] == ',') {
            ++at;
            continue;
        }
        break;
    }
    if (at >= s.size() || s[at] != ']')
        return false;
    ++at;
    return true;
}

/**
 * Parse the results array of an observe frame:
 * "results":[{"config":[...],"value":v,"feasible":b},...].
 */
bool
parse_results_array(const std::string& s, std::size_t& at,
                    std::vector<ObservedResult>& out)
{
    if (at >= s.size() || s[at] != '[')
        return false;
    ++at;
    out.clear();
    if (at < s.size() && s[at] == ']') {
        ++at;
        return true;
    }
    while (at < s.size()) {
        ObservedResult r;
        if (s.compare(at, 10, "{\"config\":") != 0)
            return false;
        at += 10;
        if (!jsonl::parse_config(s, at, r.config))
            return false;
        if (s.compare(at, 9, ",\"value\":") != 0)
            return false;
        at += 9;
        bool quoted = at < s.size() && s[at] == '"';  // non-finite token
        if (quoted)
            ++at;
        if (!jsonl::parse_double_at(s, at, r.value))
            return false;
        if (quoted) {
            if (at >= s.size() || s[at] != '"')
                return false;
            ++at;
        }
        if (s.compare(at, 12, ",\"feasible\":") != 0)
            return false;
        at += 12;
        if (s.compare(at, 4, "true") == 0) {
            r.feasible = true;
            at += 4;
        } else if (s.compare(at, 5, "false") == 0) {
            r.feasible = false;
            at += 5;
        } else {
            return false;
        }
        if (at >= s.size() || s[at] != '}')
            return false;
        ++at;
        out.push_back(std::move(r));
        if (at < s.size() && s[at] == ',') {
            ++at;
            continue;
        }
        break;
    }
    if (at >= s.size() || s[at] != ']')
        return false;
    ++at;
    return true;
}

/** Parse one JSON number token, quoted when non-finite (num_token). */
bool
parse_number_at(const std::string& s, std::size_t& at, double& out)
{
    bool quoted = at < s.size() && s[at] == '"';
    if (quoted)
        ++at;
    if (!jsonl::parse_double_at(s, at, out))
        return false;
    if (quoted) {
        if (at >= s.size() || s[at] != '"')
            return false;
        ++at;
    }
    return true;
}

/**
 * Parse the stats array of a stats_report frame. Fixed shape, every
 * field present in order (see StatEntry):
 * [{"name":"...","kind":"...","value":v,"count":n,"sum":v,
 *   "p50":v,"p90":v,"p99":v},...]
 */
bool
parse_stats_array(const std::string& s, std::size_t& at,
                  std::vector<StatEntry>& out)
{
    auto parse_quoted = [&](std::string& v) -> bool {
        if (at >= s.size() || s[at] != '"')
            return false;
        ++at;
        std::size_t end = s.find('"', at);
        if (end == std::string::npos)
            return false;
        v = s.substr(at, end - at);
        at = end + 1;
        return true;
    };
    auto expect = [&](const char* lit) -> bool {
        std::size_t len = std::char_traits<char>::length(lit);
        if (s.compare(at, len, lit) != 0)
            return false;
        at += len;
        return true;
    };
    if (at >= s.size() || s[at] != '[')
        return false;
    ++at;
    out.clear();
    if (at < s.size() && s[at] == ']') {
        ++at;
        return true;
    }
    while (at < s.size()) {
        StatEntry e;
        double count = 0.0;
        if (!expect("{\"name\":") || !parse_quoted(e.name) ||
            !expect(",\"kind\":") || !parse_quoted(e.kind) ||
            !expect(",\"value\":") || !parse_number_at(s, at, e.value) ||
            !expect(",\"count\":") || !parse_number_at(s, at, count) ||
            !expect(",\"sum\":") || !parse_number_at(s, at, e.sum) ||
            !expect(",\"p50\":") || !parse_number_at(s, at, e.p50) ||
            !expect(",\"p90\":") || !parse_number_at(s, at, e.p90) ||
            !expect(",\"p99\":") || !parse_number_at(s, at, e.p99) ||
            !expect("}")) {
            return false;
        }
        if (count < 0.0)
            return false;
        e.count = static_cast<std::uint64_t>(count);
        out.push_back(std::move(e));
        if (at < s.size() && s[at] == ',') {
            ++at;
            continue;
        }
        break;
    }
    if (at >= s.size() || s[at] != ']')
        return false;
    ++at;
    return true;
}

bool
fail(std::string* error, const std::string& why)
{
    if (error)
        *error = why;
    return false;
}

/**
 * Emit the optional trace context of an evaluate/result frame. Skipped
 * entirely when no run id is set, so untraced frames are byte-identical
 * to the pre-trace wire format.
 */
void
emit_trace_context(std::ostream& out, const Message& m)
{
    if (m.trace_run.empty())
        return;
    emit_int(out, "tcv", kTraceVersion);
    emit_str(out, "trace", m.trace_run);
    emit_u64(out, "span", m.span_id);
}

/** Emit the "spans" array of a result/goodbye frame (skipped if empty). */
void
emit_spans(std::ostream& out, const std::vector<WireSpan>& spans)
{
    if (spans.empty())
        return;
    out << ",\"spans\":[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const WireSpan& s = spans[i];
        if (i > 0)
            out << ',';
        out << "{\"name\":\"" << sanitize(s.name) << "\",\"cat\":\""
            << sanitize(s.category) << "\",\"tid\":" << s.thread_id
            << ",\"ts\":" << s.start_us << ",\"dur\":" << s.duration_us
            << '}';
    }
    out << ']';
}

/**
 * Parse the spans array of a result/goodbye frame. Fixed shape, every
 * field present in order (see WireSpan):
 * [{"name":"...","cat":"...","tid":n,"ts":n,"dur":n},...]
 */
bool
parse_spans_array(const std::string& s, std::size_t& at,
                  std::vector<WireSpan>& out)
{
    auto parse_quoted = [&](std::string& v) -> bool {
        if (at >= s.size() || s[at] != '"')
            return false;
        ++at;
        std::size_t end = s.find('"', at);
        if (end == std::string::npos)
            return false;
        v = s.substr(at, end - at);
        at = end + 1;
        return true;
    };
    auto expect = [&](const char* lit) -> bool {
        std::size_t len = std::char_traits<char>::length(lit);
        if (s.compare(at, len, lit) != 0)
            return false;
        at += len;
        return true;
    };
    auto parse_u64_at = [&](std::uint64_t& v) -> bool {
        double d = 0.0;
        if (!jsonl::parse_double_at(s, at, d) || d < 0.0)
            return false;
        v = static_cast<std::uint64_t>(d);
        return true;
    };
    if (at >= s.size() || s[at] != '[')
        return false;
    ++at;
    out.clear();
    if (at < s.size() && s[at] == ']') {
        ++at;
        return true;
    }
    while (at < s.size()) {
        WireSpan e;
        if (!expect("{\"name\":") || !parse_quoted(e.name) ||
            !expect(",\"cat\":") || !parse_quoted(e.category) ||
            !expect(",\"tid\":") || !parse_u64_at(e.thread_id) ||
            !expect(",\"ts\":") || !parse_u64_at(e.start_us) ||
            !expect(",\"dur\":") || !parse_u64_at(e.duration_us) ||
            !expect("}")) {
            return false;
        }
        out.push_back(std::move(e));
        if (at < s.size() && s[at] == ',') {
            ++at;
            continue;
        }
        break;
    }
    if (at >= s.size() || s[at] != ']')
        return false;
    ++at;
    return true;
}

/** Decode the optional trace context / spans of a result-like frame. */
bool
read_trace_fields(const std::string& line, Message& out, std::string* error)
{
    if (read_int(line, "tcv", out.trace_version)) {
        jsonl::field(line, "trace", out.trace_run);
        read_u64(line, "span", out.span_id);
    }
    std::size_t at = line.find("\"spans\":");
    if (at != std::string::npos) {
        at += 8;
        if (!parse_spans_array(line, at, out.spans))
            return fail(error, "malformed spans array");
    }
    return true;
}

}  // namespace

const char*
msg_type_name(MsgType t)
{
    switch (t) {
      case MsgType::kHello: return "hello";
      case MsgType::kWelcome: return "welcome";
      case MsgType::kOpenSession: return "open_session";
      case MsgType::kOpened: return "opened";
      case MsgType::kSuggest: return "suggest";
      case MsgType::kConfigs: return "configs";
      case MsgType::kObserve: return "observe";
      case MsgType::kOk: return "ok";
      case MsgType::kCheckpoint: return "checkpoint";
      case MsgType::kClose: return "close";
      case MsgType::kRun: return "run";
      case MsgType::kDone: return "done";
      case MsgType::kEvaluate: return "evaluate";
      case MsgType::kResult: return "result";
      case MsgType::kStats: return "stats";
      case MsgType::kStatsReport: return "stats_report";
      case MsgType::kHeartbeat: return "heartbeat";
      case MsgType::kGoodbye: return "goodbye";
      case MsgType::kShutdown: return "shutdown";
      case MsgType::kError: return "error";
    }
    return "?";
}

std::string
encode(const Message& m)
{
    std::ostringstream out;
    out << "{\"type\":\"" << msg_type_name(m.type) << '"';
    switch (m.type) {
      case MsgType::kHello:
        emit_int(out, "v", m.version);
        emit_str(out, "role", m.text.empty() ? "client" : m.text);
        if (m.capacity > 0)
            emit_int(out, "capacity", m.capacity);
        if (m.heartbeat_ms > 0)
            emit_int(out, "heartbeat_ms", m.heartbeat_ms);
        break;
      case MsgType::kWelcome:
        emit_int(out, "v", m.version);
        break;
      case MsgType::kOpenSession:
        emit_u64(out, "id", m.id);
        emit_str(out, "session", m.session);
        emit_str(out, "benchmark", m.benchmark);
        emit_str(out, "method", m.method);
        emit_int(out, "budget", m.budget);
        emit_int(out, "doe", m.doe);
        emit_u64(out, "seed", m.seed);
        emit_bool(out, "resume", m.resume);
        break;
      case MsgType::kOpened:
        emit_u64(out, "id", m.id);
        emit_str(out, "session", m.session);
        emit_u64(out, "evals", m.evals);
        emit_int(out, "budget", m.budget);
        emit_bool(out, "resumed", m.resumed);
        break;
      case MsgType::kSuggest:
        emit_u64(out, "id", m.id);
        emit_str(out, "session", m.session);
        emit_int(out, "n", m.n);
        break;
      case MsgType::kConfigs: {
        emit_u64(out, "id", m.id);
        emit_u64(out, "first_index", m.index);
        out << ",\"configs\":[";
        for (std::size_t i = 0; i < m.configs.size(); ++i) {
            if (i > 0)
                out << ',';
            jsonl::write_config(out, m.configs[i]);
        }
        out << ']';
        break;
      }
      case MsgType::kObserve: {
        emit_u64(out, "id", m.id);
        emit_str(out, "session", m.session);
        emit_double(out, "eval_seconds", m.eval_seconds);
        out << ",\"results\":[";
        for (std::size_t i = 0; i < m.results.size(); ++i) {
            if (i > 0)
                out << ',';
            out << "{\"config\":";
            jsonl::write_config(out, m.results[i].config);
            out << ",\"value\":" << num_token(m.results[i].value)
                << ",\"feasible\":"
                << (m.results[i].feasible ? "true" : "false") << '}';
        }
        out << ']';
        break;
      }
      case MsgType::kOk:
        emit_u64(out, "id", m.id);
        emit_u64(out, "evals", m.evals);
        emit_double(out, "best", m.best);
        if (!m.text.empty())
            emit_str(out, "path", m.text);
        break;
      case MsgType::kCheckpoint:
      case MsgType::kClose:
        emit_u64(out, "id", m.id);
        emit_str(out, "session", m.session);
        break;
      case MsgType::kRun:
        emit_u64(out, "id", m.id);
        emit_str(out, "session", m.session);
        emit_int(out, "n", m.n);
        emit_int(out, "budget", m.budget);
        emit_bool(out, "async", m.async);
        break;
      case MsgType::kDone:
        emit_u64(out, "id", m.id);
        emit_u64(out, "evals", m.evals);
        emit_double(out, "best", m.best);
        break;
      case MsgType::kEvaluate:
        emit_u64(out, "id", m.id);
        emit_str(out, "benchmark", m.benchmark);
        emit_u64(out, "seed", m.seed);
        emit_u64(out, "index", m.index);
        // Run tag only when multiplexed: untagged frames stay
        // byte-identical to the pre-multiplexing wire format.
        if (m.run > 0)
            emit_u64(out, "run", m.run);
        emit_trace_context(out, m);
        out << ",\"config\":";
        jsonl::write_config(out, m.config);
        break;
      case MsgType::kResult:
        emit_u64(out, "id", m.id);
        emit_u64(out, "index", m.index);
        emit_double(out, "value", m.value);
        emit_bool(out, "feasible", m.feasible);
        emit_double(out, "eval_seconds", m.eval_seconds);
        // Streaming-progress fields (async server-side runs); harmless
        // extras on coordinator<->worker replies.
        emit_u64(out, "evals", m.evals);
        emit_double(out, "best", m.best);
        if (m.run > 0)
            emit_u64(out, "run", m.run);
        emit_trace_context(out, m);
        emit_spans(out, m.spans);
        break;
      case MsgType::kStats:
        emit_u64(out, "id", m.id);
        emit_str(out, "session", m.session);
        break;
      case MsgType::kStatsReport: {
        emit_u64(out, "id", m.id);
        emit_str(out, "session", m.session);
        emit_int(out, "sv", m.stats_version);
        out << ",\"stats\":[";
        for (std::size_t i = 0; i < m.stats.size(); ++i) {
            const StatEntry& e = m.stats[i];
            if (i > 0)
                out << ',';
            out << "{\"name\":\"" << sanitize(e.name) << "\",\"kind\":\""
                << sanitize(e.kind) << "\",\"value\":" << num_token(e.value)
                << ",\"count\":" << e.count
                << ",\"sum\":" << num_token(e.sum)
                << ",\"p50\":" << num_token(e.p50)
                << ",\"p90\":" << num_token(e.p90)
                << ",\"p99\":" << num_token(e.p99) << '}';
        }
        out << ']';
        break;
      }
      case MsgType::kHeartbeat:
        emit_u64(out, "id", m.id);
        emit_u64(out, "evals", m.evals);
        if (m.run > 0)
            emit_u64(out, "run", m.run);
        break;
      case MsgType::kGoodbye:
        emit_u64(out, "id", m.id);
        emit_u64(out, "evals", m.evals);
        if (m.run > 0)
            emit_u64(out, "run", m.run);
        emit_spans(out, m.spans);
        break;
      case MsgType::kShutdown:
        break;
      case MsgType::kError:
        emit_u64(out, "id", m.id);
        emit_str(out, "message", m.text);
        if (!m.code.empty())
            emit_str(out, "code", m.code);
        break;
    }
    out << '}';
    return out.str();
}

bool
decode(const std::string& line, Message& out, std::string* error)
{
    out = Message{};
    if (line.empty() || line.front() != '{' || line.back() != '}')
        return fail(error, "frame is not a complete JSON object");
    std::string type;
    if (!jsonl::field(line, "type", type))
        return fail(error, "frame has no type field");

    read_u64(line, "id", out.id);

    if (type == "hello") {
        out.type = MsgType::kHello;
        if (!read_int(line, "v", out.version))
            return fail(error, "hello without protocol version");
        jsonl::field(line, "role", out.text);
        read_int(line, "capacity", out.capacity);
        read_int(line, "heartbeat_ms", out.heartbeat_ms);
        return true;
    }
    if (type == "welcome") {
        out.type = MsgType::kWelcome;
        if (!read_int(line, "v", out.version))
            return fail(error, "welcome without protocol version");
        return true;
    }
    if (type == "open_session") {
        out.type = MsgType::kOpenSession;
        if (!jsonl::field(line, "session", out.session))
            return fail(error, "open_session without session name");
        if (!jsonl::field(line, "benchmark", out.benchmark))
            return fail(error, "open_session without benchmark");
        jsonl::field(line, "method", out.method);
        read_int(line, "budget", out.budget);
        read_int(line, "doe", out.doe);
        read_u64(line, "seed", out.seed);
        read_bool(line, "resume", out.resume);
        return true;
    }
    if (type == "opened") {
        out.type = MsgType::kOpened;
        jsonl::field(line, "session", out.session);
        read_u64(line, "evals", out.evals);
        read_int(line, "budget", out.budget);
        read_bool(line, "resumed", out.resumed);
        return true;
    }
    if (type == "suggest") {
        out.type = MsgType::kSuggest;
        if (!jsonl::field(line, "session", out.session))
            return fail(error, "suggest without session name");
        if (!read_int(line, "n", out.n))
            return fail(error, "suggest without batch size");
        return true;
    }
    if (type == "configs") {
        out.type = MsgType::kConfigs;
        read_u64(line, "first_index", out.index);
        std::size_t at = line.find("\"configs\":");
        if (at == std::string::npos)
            return fail(error, "configs frame without configs array");
        at += 10;
        if (!parse_configs_array(line, at, out.configs))
            return fail(error, "malformed configs array");
        return true;
    }
    if (type == "observe") {
        out.type = MsgType::kObserve;
        if (!jsonl::field(line, "session", out.session))
            return fail(error, "observe without session name");
        read_double(line, "eval_seconds", out.eval_seconds);
        std::size_t at = line.find("\"results\":");
        if (at == std::string::npos)
            return fail(error, "observe frame without results array");
        at += 10;
        if (!parse_results_array(line, at, out.results))
            return fail(error, "malformed results array");
        return true;
    }
    if (type == "ok") {
        out.type = MsgType::kOk;
        read_u64(line, "evals", out.evals);
        read_double(line, "best", out.best);
        jsonl::field(line, "path", out.text);
        return true;
    }
    if (type == "checkpoint" || type == "close") {
        out.type =
            type == "checkpoint" ? MsgType::kCheckpoint : MsgType::kClose;
        if (!jsonl::field(line, "session", out.session))
            return fail(error, type + " without session name");
        return true;
    }
    if (type == "run") {
        out.type = MsgType::kRun;
        if (!jsonl::field(line, "session", out.session))
            return fail(error, "run without session name");
        read_int(line, "n", out.n);
        read_int(line, "budget", out.budget);
        read_bool(line, "async", out.async);
        return true;
    }
    if (type == "done") {
        out.type = MsgType::kDone;
        read_u64(line, "evals", out.evals);
        read_double(line, "best", out.best);
        return true;
    }
    if (type == "evaluate") {
        out.type = MsgType::kEvaluate;
        if (!jsonl::field(line, "benchmark", out.benchmark))
            return fail(error, "evaluate without benchmark");
        if (!read_u64(line, "seed", out.seed))
            return fail(error, "evaluate without seed");
        if (!read_u64(line, "index", out.index))
            return fail(error, "evaluate without index");
        read_u64(line, "run", out.run);  // optional run tag
        if (!read_trace_fields(line, out, error))
            return false;
        std::size_t at = line.find("\"config\":");
        if (at == std::string::npos)
            return fail(error, "evaluate without config");
        at += 9;
        if (!jsonl::parse_config(line, at, out.config))
            return fail(error, "malformed config array");
        return true;
    }
    if (type == "result") {
        out.type = MsgType::kResult;
        if (!read_double(line, "value", out.value))
            return fail(error, "result without value");
        if (!read_bool(line, "feasible", out.feasible))
            return fail(error, "result without feasibility");
        read_double(line, "eval_seconds", out.eval_seconds);
        read_u64(line, "index", out.index);
        read_u64(line, "evals", out.evals);
        read_double(line, "best", out.best);
        read_u64(line, "run", out.run);  // optional run tag
        return read_trace_fields(line, out, error);
    }
    if (type == "stats") {
        out.type = MsgType::kStats;
        jsonl::field(line, "session", out.session);
        return true;
    }
    if (type == "stats_report") {
        out.type = MsgType::kStatsReport;
        jsonl::field(line, "session", out.session);
        if (!read_int(line, "sv", out.stats_version))
            return fail(error, "stats_report without schema version");
        std::size_t at = line.find("\"stats\":");
        if (at == std::string::npos)
            return fail(error, "stats_report without stats array");
        at += 8;
        if (!parse_stats_array(line, at, out.stats))
            return fail(error, "malformed stats array");
        return true;
    }
    if (type == "heartbeat") {
        out.type = MsgType::kHeartbeat;
        read_u64(line, "evals", out.evals);
        read_u64(line, "run", out.run);  // optional run tag
        return true;
    }
    if (type == "goodbye") {
        out.type = MsgType::kGoodbye;
        read_u64(line, "evals", out.evals);
        read_u64(line, "run", out.run);  // optional run tag
        return read_trace_fields(line, out, error);
    }
    if (type == "shutdown") {
        out.type = MsgType::kShutdown;
        return true;
    }
    if (type == "error") {
        out.type = MsgType::kError;
        jsonl::field(line, "message", out.text);
        jsonl::field(line, "code", out.code);  // optional machine code
        return true;
    }
    return fail(error, "unknown frame type: " + type);
}

Message
make_error(std::uint64_t id, const std::string& text)
{
    Message m;
    m.type = MsgType::kError;
    m.id = id;
    m.text = text;
    return m;
}

}  // namespace baco::serve
