#include "serve/session_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include <sys/stat.h>

#include "api/method_registry.hpp"
#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "serve/stats_util.hpp"
#include "suite/registry.hpp"

namespace baco::serve {

namespace {
using Clock = std::chrono::steady_clock;

/** Serve-layer instrumentation handles, registered once per process. */
struct ServeMetrics {
  obs::Histogram& suggest = hist("serve.suggest_seconds");
  obs::Histogram& observe = hist("serve.observe_seconds");
  obs::Histogram& spill = hist("serve.spill_seconds");
  obs::Histogram& reload = hist("serve.reload_seconds");

  static ServeMetrics& get()
  {
      static ServeMetrics m;
      return m;
  }

 private:
  static obs::Histogram& hist(const char* name)
  {
      return obs::MetricsRegistry::global().histogram(name);
  }
};

}  // namespace

struct SessionManager::Session {
  // Deliberately a raw std::mutex, not baco::Mutex: acquire() hands the
  // held lock to its caller through a std::unique_lock out-parameter — a
  // dynamic ownership transfer the static analysis cannot express. The
  // session-level discipline stays TSAN's job; everything registry-level
  // (stripes, spill state) is statically checked.
  std::mutex mutex;
  std::string name;
  const Benchmark* benchmark = nullptr;
  std::shared_ptr<SearchSpace> space;
  std::unique_ptr<AskTellTuner> tuner;
  std::string cache_namespace;
  std::string method;  ///< canonical registry name (for spill/reload)
  int budget = 0;
  int doe = 0;         ///< DoE samples the tuner was built with

  /** The suggested-but-unobserved batch (at most one per session). */
  std::vector<Configuration> pending;
  std::uint64_t pending_first = 0;

  /**
   * Per-session request latencies, served back over the stats frame.
   * The live histograms die with the tuner on spill, so each spill
   * folds their snapshot into the *_base totals (carried through the
   * spill metadata); session_stats reports base merged with current,
   * i.e. lifetime counts across every incarnation.
   */
  obs::Histogram suggest_hist;
  obs::Histogram observe_hist;
  obs::HistogramSnapshot suggest_base;
  obs::HistogramSnapshot observe_base;

  Clock::time_point last_touch = Clock::now();
};

struct SessionManager::Stripe {
  mutable Mutex mutex;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions
      BACO_GUARDED_BY(mutex);
};

bool
valid_session_name(const std::string& name)
{
    if (name.empty() || name.size() > 128)
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

SessionManager::SessionManager(SessionManagerOptions opt) : opt_(opt)
{
    if (opt_.stripes < 1)
        opt_.stripes = 1;
    stripes_ = std::make_unique<Stripe[]>(
        static_cast<std::size_t>(opt_.stripes));
    // Best-effort creation of the (single-level) checkpoint directory;
    // a still-unwritable path surfaces as an error on the first observe.
    if (!opt_.checkpoint_dir.empty())
        ::mkdir(opt_.checkpoint_dir.c_str(), 0777);
}

SessionManager::~SessionManager() = default;

SessionManager::Stripe&
SessionManager::stripe_for(const std::string& name) const
{
    std::size_t h = std::hash<std::string>{}(name);
    return stripes_[h % static_cast<std::size_t>(opt_.stripes)];
}

std::shared_ptr<SessionManager::Session>
SessionManager::find(const std::string& name) const
{
    Stripe& s = stripe_for(name);
    MutexLock lock(s.mutex);
    auto it = s.sessions.find(name);
    return it == s.sessions.end() ? nullptr : it->second;
}

std::shared_ptr<SessionManager::Session>
SessionManager::find_or_reload(const std::string& name)
{
    for (;;) {
        if (std::shared_ptr<Session> session = find(name))
            return session;

        SpilledSession meta;
        {
            MutexLock lock(spill_mutex_);
            auto it = spilled_.find(name);
            if (it == spilled_.end())
                return nullptr;
            meta = it->second;
        }

        // Rebuild the tuner outside all locks (registry + restore can
        // be slow). This is the same resume path open_session(resume)
        // takes, so a reloaded session continues bit-for-bit.
        obs::ScopedTimer reload_timer(ServeMetrics::get().reload,
                                      "serve.reload", "serve");
        const Benchmark& bench = suite::find_benchmark(meta.benchmark);
        auto session = std::make_shared<Session>();
        session->name = name;
        session->benchmark = &bench;
        session->space = bench.make_space(SpaceVariant{});
        session->budget = meta.budget;
        session->doe = meta.doe;
        session->method = meta.method;
        MethodSpec spec;
        spec.budget = meta.budget;
        spec.doe_samples = meta.doe;
        spec.seed = meta.seed;
        session->tuner = MethodRegistry::global().make(meta.method,
                                                       *session->space,
                                                       spec);
        session->cache_namespace =
            EvalCache::namespace_key(bench.name, *session->space);
        if (std::optional<CheckpointData> data =
                load_checkpoint(checkpoint_path(name))) {
            if (data->seed != session->tuner->run_seed())
                throw std::runtime_error(
                    "spilled checkpoint seed mismatch for session " +
                    name);
            if (!session->tuner->restore(data->history,
                                         data->sampler_state)) {
                throw std::runtime_error(
                    "spilled checkpoint could not be restored for "
                    "session " + name);
            }
        }
        // A missing checkpoint file means the session was spilled
        // before it ever observed anything: the fresh tuner IS the
        // correct state.

        Stripe& stripe = stripe_for(name);
        {
            MutexLock lock(stripe.mutex);
            auto it = stripe.sessions.find(name);
            if (it != stripe.sessions.end())
                return it->second;  // a concurrent reload won the race
            MutexLock spill_lock(spill_mutex_);
            auto sit = spilled_.find(name);
            if (sit == spilled_.end())
                return nullptr;  // closed while we were rebuilding
            if (sit->second.generation != meta.generation)
                continue;  // reloaded AND re-spilled since we read the
                           // checkpoint: ours is stale — rebuild from
                           // the newer one
            spilled_.erase(sit);
            ++reload_count_;
            session->suggest_base = meta.suggest_hist;
            session->observe_base = meta.observe_hist;
            stripe.sessions.emplace(name, session);
        }
        obs::log_info("serve", "session_reloaded",
                      obs::LogFields().str("session", name).num(
                          "evals", session->tuner->history().size()));
        enforce_live_cap();
        return session;
    }
}

std::shared_ptr<SessionManager::Session>
SessionManager::acquire(const std::string& name,
                        std::unique_lock<std::mutex>& lock_out)
{
    for (;;) {
        std::shared_ptr<Session> session = find_or_reload(name);
        if (!session)
            return nullptr;
        std::unique_lock<std::mutex> lock(session->mutex);
        // A concurrent cap enforcement may have spilled this session
        // between the lookup and the lock. Its checkpoint then captures
        // exactly this moment's state, so retrying the lookup reloads
        // an identical tuner — mutating the orphaned object instead
        // would record the request on state the registry no longer has.
        if (find(name) == session) {
            lock_out = std::move(lock);
            return session;
        }
    }
}

bool
SessionManager::spill_one(const std::string& name)
{
    std::shared_ptr<Session> session = find(name);
    if (!session)
        return false;
    std::unique_lock<std::mutex> guard(session->mutex, std::try_to_lock);
    // Mid-request or mid-batch sessions are not spillable (exactly the
    // evict_idle rule); and a spill without a durable checkpoint would
    // silently discard history.
    if (!guard.owns_lock() || !session->pending.empty())
        return false;
    obs::ScopedTimer spill_timer(ServeMetrics::get().spill, "serve.spill",
                                 "serve");
    // The session mutex already excludes concurrent mutation, so the
    // checkpoint I/O runs without the stripe lock — the stripe's other
    // sessions keep serving during the disk write. (Holding a session
    // mutex while taking a stripe mutex is the established order:
    // acquire() does the same; stripe holders only ever try_lock
    // sessions, so the inverse never blocks.)
    if (!save_checkpoint(checkpoint_path(name), *session->tuner))
        return false;
    Stripe& stripe = stripe_for(name);
    MutexLock lock(stripe.mutex);
    auto it = stripe.sessions.find(name);
    if (it == stripe.sessions.end() || it->second != session)
        return false;  // closed while we were checkpointing
    {
        MutexLock spill_lock(spill_mutex_);
        SpilledSession meta;
        meta.benchmark = session->benchmark->name;
        meta.method = session->method;
        meta.budget = session->budget;
        meta.doe = session->doe;
        meta.seed = session->tuner->run_seed();
        meta.generation = ++spill_generation_;
        meta.spilled_at = Clock::now();
        // Fold this incarnation's request latencies into the lifetime
        // totals before the histograms die with the session object.
        meta.suggest_hist = session->suggest_base;
        meta.suggest_hist.merge(session->suggest_hist.snapshot());
        meta.observe_hist = session->observe_base;
        meta.observe_hist.merge(session->observe_hist.snapshot());
        spilled_.emplace(name, std::move(meta));
        ++spill_count_;
    }
    stripe.sessions.erase(it);
    obs::log_info("serve", "session_spilled",
                  obs::LogFields().str("session", name).num(
                      "evals", session->tuner->history().size()));
    return true;
}

void
SessionManager::enforce_live_cap()
{
    if (opt_.max_live_sessions == 0 || opt_.checkpoint_dir.empty())
        return;
    std::size_t live = size();
    if (live <= opt_.max_live_sessions)
        return;

    // Snapshot (last_touch, name) of every spillable session, oldest
    // first, then spill until the cap holds. Best-effort: candidates
    // that became busy since the snapshot are skipped — the next open
    // or reload enforces again.
    std::vector<std::pair<Clock::time_point, std::string>> candidates;
    for (int s = 0; s < opt_.stripes; ++s) {
        Stripe& stripe = stripes_[s];
        MutexLock lock(stripe.mutex);
        for (auto& [name, session] : stripe.sessions) {
            std::unique_lock<std::mutex> guard(session->mutex,
                                               std::try_to_lock);
            if (guard.owns_lock() && session->pending.empty())
                candidates.emplace_back(session->last_touch, name);
        }
    }
    std::sort(candidates.begin(), candidates.end());
    std::size_t excess = live - opt_.max_live_sessions;
    for (const auto& [touch, name] : candidates) {
        if (excess == 0)
            break;
        if (spill_one(name))
            --excess;
    }
}

std::string
SessionManager::checkpoint_path(const std::string& name) const
{
    if (opt_.checkpoint_dir.empty())
        return {};
    return opt_.checkpoint_dir + "/" + name + ".ckpt.jsonl";
}

Message
SessionManager::handle(const Message& request)
{
    try {
        switch (request.type) {
          case MsgType::kOpenSession: return open_session(request);
          case MsgType::kSuggest: return suggest(request);
          case MsgType::kObserve: return observe(request);
          case MsgType::kCheckpoint: return checkpoint(request);
          case MsgType::kClose: return close_session(request);
          case MsgType::kStats: return session_stats(request);
          default:
            return make_error(request.id,
                              std::string("unsupported request type ") +
                                  msg_type_name(request.type));
        }
    } catch (const std::exception& e) {
        return make_error(request.id, e.what());
    }
}

Message
SessionManager::open_session(const Message& req)
{
    if (!valid_session_name(req.session))
        return make_error(req.id, "invalid session name");
    const Benchmark& bench = suite::find_benchmark(req.benchmark);

    auto session = std::make_shared<Session>();
    session->name = req.session;
    session->benchmark = &bench;
    session->space = bench.make_space(SpaceVariant{});
    session->budget = req.budget > 0 ? req.budget : bench.full_budget;
    session->doe = req.doe > 0 ? req.doe : bench.doe_samples;
    // Remote construction goes through the same MethodRegistry as local
    // Study construction, so the two can never drift; unknown names
    // throw with the closest registered methods (caught into an error
    // frame by handle()).
    MethodSpec spec;
    spec.budget = session->budget;
    spec.doe_samples = session->doe;
    spec.seed = req.seed;
    session->tuner = MethodRegistry::global().make(
        req.method, *session->space, spec);
    // The canonical name, so a spilled session reloads the exact same
    // method even if the client opened it through an alias.
    session->method = *MethodRegistry::global().resolve(req.method);
    session->cache_namespace =
        EvalCache::namespace_key(bench.name, *session->space);

    bool resumed = false;
    std::string ckpt = checkpoint_path(req.session);
    if (req.resume && !ckpt.empty()) {
        // A missing checkpoint means a fresh session; a present-but-
        // unusable one is an error rather than a silent cold start.
        if (std::optional<CheckpointData> data = load_checkpoint(ckpt)) {
            if (data->seed != session->tuner->run_seed())
                return make_error(req.id,
                                  "checkpoint seed does not match the "
                                  "requested session seed");
            if (!session->tuner->restore(data->history,
                                         data->sampler_state)) {
                return make_error(req.id,
                                  "checkpoint could not be restored");
            }
            resumed = true;
        }
    }

    Stripe& stripe = stripe_for(req.session);
    {
        MutexLock lock(stripe.mutex);
        if (stripe.sessions.count(req.session))
            return make_error(req.id,
                              "session already open: " + req.session);
        {
            // A spilled session is still open — only disk-resident.
            MutexLock spill_lock(spill_mutex_);
            if (spilled_.count(req.session))
                return make_error(req.id, "session already open "
                                          "(spilled to disk): " +
                                              req.session);
        }
        stripe.sessions.emplace(req.session, session);
    }
    enforce_live_cap();

    Message reply;
    reply.type = MsgType::kOpened;
    reply.id = req.id;
    reply.session = req.session;
    reply.evals = session->tuner->history().size();
    reply.budget = session->budget;
    reply.resumed = resumed;
    return reply;
}

Message
SessionManager::suggest(const Message& req)
{
    std::unique_lock<std::mutex> lock;
    std::shared_ptr<Session> session = acquire(req.session, lock);
    if (!session)
        return make_error(req.id, "no such session: " + req.session);
    session->last_touch = Clock::now();

    obs::ScopedTimer session_timer(session->suggest_hist);
    obs::ScopedTimer serve_timer(ServeMetrics::get().suggest,
                                 "serve.suggest", "serve");
    if (session->pending.empty()) {
        int n = std::max(1, req.n);
        session->pending_first = session->tuner->history().size();
        session->pending = session->tuner->suggest(n);
    }
    // else: idempotent retry — re-send the outstanding batch.

    Message reply;
    reply.type = MsgType::kConfigs;
    reply.id = req.id;
    reply.index = session->pending_first;
    reply.configs = session->pending;
    return reply;
}

Message
SessionManager::observe(const Message& req)
{
    std::unique_lock<std::mutex> lock;
    std::shared_ptr<Session> session = acquire(req.session, lock);
    if (!session)
        return make_error(req.id, "no such session: " + req.session);
    session->last_touch = Clock::now();

    obs::ScopedTimer session_timer(session->observe_hist);
    obs::ScopedTimer serve_timer(ServeMetrics::get().observe,
                                 "serve.observe", "serve");
    if (session->pending.empty())
        return make_error(req.id, "observe with no batch outstanding");
    if (req.results.size() != session->pending.size())
        return make_error(req.id, "observe size does not match batch");
    for (std::size_t i = 0; i < req.results.size(); ++i) {
        if (!configs_equal(req.results[i].config, session->pending[i]))
            return make_error(req.id,
                              "observe configs do not match the "
                              "outstanding batch (order matters)");
    }

    std::vector<EvalResult> results;
    results.reserve(req.results.size());
    for (const ObservedResult& r : req.results)
        results.push_back(EvalResult{r.value, r.feasible});
    session->tuner->observe(session->pending, results);
    session->tuner->mutable_history().eval_seconds += req.eval_seconds;

    if (opt_.cache) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            opt_.cache->insert(session->cache_namespace, session->pending[i],
                               results[i]);
        }
    }

    session->pending.clear();
    std::string ckpt = checkpoint_path(session->name);
    if (!ckpt.empty() && !save_checkpoint(ckpt, *session->tuner)) {
        // The observation is recorded in memory, but the durability
        // promise is broken — tell the client instead of a silent ok.
        return make_error(req.id,
                          "results recorded but checkpoint write failed: " +
                              ckpt);
    }

    Message reply;
    reply.type = MsgType::kOk;
    reply.id = req.id;
    reply.evals = session->tuner->history().size();
    reply.best = session->tuner->history().best_value;
    return reply;
}

Message
SessionManager::checkpoint(const Message& req)
{
    std::unique_lock<std::mutex> lock;
    std::shared_ptr<Session> session = acquire(req.session, lock);
    if (!session)
        return make_error(req.id, "no such session: " + req.session);
    session->last_touch = Clock::now();

    std::string ckpt = checkpoint_path(session->name);
    if (ckpt.empty())
        return make_error(req.id, "checkpointing disabled (no directory)");
    if (!session->pending.empty()) {
        // A checkpoint taken mid-batch would capture the sampler stream
        // after the pending suggest() without its observations — resuming
        // from it could not reproduce the uninterrupted run.
        return make_error(req.id, "cannot checkpoint with a batch in "
                                  "flight; observe it first");
    }
    if (!save_checkpoint(ckpt, *session->tuner))
        return make_error(req.id, "checkpoint write failed: " + ckpt);

    Message reply;
    reply.type = MsgType::kOk;
    reply.id = req.id;
    reply.evals = session->tuner->history().size();
    reply.best = session->tuner->history().best_value;
    reply.text = ckpt;
    return reply;
}

Message
SessionManager::close_session(const Message& req)
{
    Stripe& stripe = stripe_for(req.session);
    std::shared_ptr<Session> session;
    {
        // spill_one moves a name from the stripe map to the spill map
        // with the stripe mutex held, so holding it here gives an
        // atomic view of both.
        MutexLock lock(stripe.mutex);
        auto it = stripe.sessions.find(req.session);
        if (it == stripe.sessions.end()) {
            MutexLock spill_lock(spill_mutex_);
            auto sit = spilled_.find(req.session);
            if (sit == spilled_.end())
                return make_error(req.id,
                                  "no such session: " + req.session);
            // Closing a spilled session: its per-observe checkpoint is
            // already the durable resume point — just drop the metadata
            // and report the checkpointed progress.
            spilled_.erase(sit);
            Message reply;
            reply.type = MsgType::kOk;
            reply.id = req.id;
            if (std::optional<CheckpointData> data =
                    load_checkpoint(checkpoint_path(req.session))) {
                reply.evals = data->history.size();
                reply.best = data->history.best_value;
            }
            return reply;
        }
        session = it->second;
        stripe.sessions.erase(it);
    }
    std::lock_guard<std::mutex> lock(session->mutex);
    std::string ckpt = checkpoint_path(session->name);
    if (!ckpt.empty() && session->pending.empty() &&
        !save_checkpoint(ckpt, *session->tuner)) {
        // The session is closed either way; surface the lost durability.
        return make_error(req.id,
                          "session closed but checkpoint write failed: " +
                              ckpt);
    }

    Message reply;
    reply.type = MsgType::kOk;
    reply.id = req.id;
    reply.evals = session->tuner->history().size();
    reply.best = session->tuner->history().best_value;
    return reply;
}

Message
SessionManager::session_stats(const Message& req)
{
    std::unique_lock<std::mutex> lock;
    std::shared_ptr<Session> session = acquire(req.session, lock);
    if (!session)
        return make_error(req.id, "no such session: " + req.session);
    // Deliberately not touching last_touch: polling stats must not keep
    // an otherwise idle session from being evicted or spilled.

    Message reply;
    reply.type = MsgType::kStatsReport;
    reply.id = req.id;
    reply.session = session->name;
    reply.stats_version = kStatsVersion;
    reply.stats.push_back(stat_counter(
        "session.evals",
        static_cast<double>(session->tuner->history().size())));
    reply.stats.push_back(
        stat_gauge("session.best", session->tuner->history().best_value));
    reply.stats.push_back(stat_gauge(
        "session.budget", static_cast<double>(session->budget)));
    reply.stats.push_back(stat_gauge(
        "session.pending", static_cast<double>(session->pending.size())));
    // Lifetime latencies: spill folds the live histograms into the
    // *_base totals, so base + current spans every incarnation.
    obs::HistogramSnapshot suggest_all = session->suggest_base;
    suggest_all.merge(session->suggest_hist.snapshot());
    obs::HistogramSnapshot observe_all = session->observe_base;
    observe_all.merge(session->observe_hist.snapshot());
    reply.stats.push_back(
        stat_histogram("session.suggest_seconds", suggest_all));
    reply.stats.push_back(
        stat_histogram("session.observe_seconds", observe_all));
    return reply;
}

std::optional<SessionInfo>
SessionManager::info(const std::string& name)
{
    std::unique_lock<std::mutex> lock;
    std::shared_ptr<Session> session = acquire(name, lock);
    if (!session)
        return std::nullopt;
    SessionInfo out;
    out.name = session->name;
    out.benchmark = session->benchmark->name;
    out.cache_namespace = session->cache_namespace;
    out.seed = session->tuner->run_seed();
    out.evals = session->tuner->history().size();
    out.budget = session->budget;
    out.best = session->tuner->history().best_value;
    return out;
}

bool
SessionManager::with_tuner(
    const std::string& name,
    const std::function<void(AskTellTuner&, const SessionInfo&,
                             const std::string&)>& fn)
{
    std::unique_lock<std::mutex> lock;
    std::shared_ptr<Session> session = acquire(name, lock);
    if (!session)
        return false;
    if (!session->pending.empty())
        return false;
    session->last_touch = Clock::now();
    SessionInfo info;
    info.name = session->name;
    info.benchmark = session->benchmark->name;
    info.cache_namespace = session->cache_namespace;
    info.seed = session->tuner->run_seed();
    info.evals = session->tuner->history().size();
    info.budget = session->budget;
    info.best = session->tuner->history().best_value;
    fn(*session->tuner, info, checkpoint_path(name));
    session->last_touch = Clock::now();
    return true;
}

std::size_t
SessionManager::size() const
{
    std::size_t n = 0;
    for (int s = 0; s < opt_.stripes; ++s) {
        Stripe& stripe = stripes_[s];
        MutexLock lock(stripe.mutex);
        n += stripe.sessions.size();
    }
    return n;
}

std::size_t
SessionManager::spilled_sessions() const
{
    MutexLock lock(spill_mutex_);
    return spilled_.size();
}

std::uint64_t
SessionManager::spill_count() const
{
    MutexLock lock(spill_mutex_);
    return spill_count_;
}

std::uint64_t
SessionManager::reload_count() const
{
    MutexLock lock(spill_mutex_);
    return reload_count_;
}

std::size_t
SessionManager::evict_idle()
{
    if (opt_.idle_timeout_seconds <= 0.0)
        return 0;
    auto now = Clock::now();
    std::size_t evicted = 0;
    {
        // Spilled sessions are idle by construction (no live tuner);
        // once past the timeout they are closed outright — checkpoint
        // stays on disk, clients re-open with resume=true.
        MutexLock lock(spill_mutex_);
        for (auto it = spilled_.begin(); it != spilled_.end();) {
            if (std::chrono::duration<double>(now - it->second.spilled_at)
                    .count() > opt_.idle_timeout_seconds) {
                it = spilled_.erase(it);
                ++evicted;
            } else {
                ++it;
            }
        }
    }
    for (int s = 0; s < opt_.stripes; ++s) {
        Stripe& stripe = stripes_[s];
        MutexLock lock(stripe.mutex);
        for (auto it = stripe.sessions.begin();
             it != stripe.sessions.end();) {
            // last_touch is written under the session mutex; a session
            // whose mutex is held is mid-request — by definition not
            // idle — so skipping on try_lock failure is both the race
            // fix and the right policy. A session with a suggested-but-
            // unobserved batch is mid-exchange (the client is off
            // evaluating), not idle, no matter how stale last_touch is.
            std::shared_ptr<Session> session = it->second;
            std::unique_lock<std::mutex> guard(session->mutex,
                                               std::try_to_lock);
            if (guard.owns_lock() && session->pending.empty() &&
                std::chrono::duration<double>(now - session->last_touch)
                        .count() > opt_.idle_timeout_seconds) {
                it = stripe.sessions.erase(it);
                ++evicted;
            } else {
                ++it;
            }
        }
    }
    return evicted;
}

void
SessionManager::checkpoint_all()
{
    if (opt_.checkpoint_dir.empty())
        return;
    for (int s = 0; s < opt_.stripes; ++s) {
        std::vector<std::shared_ptr<Session>> sessions;
        {
            Stripe& stripe = stripes_[s];
            MutexLock lock(stripe.mutex);
            for (auto& [name, session] : stripe.sessions)
                sessions.push_back(session);
        }
        for (auto& session : sessions) {
            std::lock_guard<std::mutex> lock(session->mutex);
            if (session->pending.empty())
                save_checkpoint(checkpoint_path(session->name),
                                *session->tuner);
        }
    }
}

}  // namespace baco::serve
