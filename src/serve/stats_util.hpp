#ifndef BACO_SERVE_STATS_UTIL_HPP_
#define BACO_SERVE_STATS_UTIL_HPP_

/**
 * @file
 * Converters from obs metric snapshots to the typed StatEntry array of
 * the stats_report frame, shared by the per-session handler
 * (SessionManager) and the server-wide handler (serve_connection).
 */

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace baco::serve {

/** A gauge-kind entry carrying one number. */
inline StatEntry
stat_gauge(const std::string& name, double value)
{
    StatEntry e;
    e.name = name;
    e.kind = "gauge";
    e.value = value;
    return e;
}

/** A counter-kind entry carrying one monotonic total. */
inline StatEntry
stat_counter(const std::string& name, double value)
{
    StatEntry e;
    e.name = name;
    e.kind = "counter";
    e.value = value;
    return e;
}

/** A histogram-kind entry: count/sum plus extracted percentiles. */
inline StatEntry
stat_histogram(const std::string& name, const obs::HistogramSnapshot& h)
{
    StatEntry e;
    e.name = name;
    e.kind = "histogram";
    e.count = h.count;
    e.sum = h.sum;
    e.p50 = h.percentile(0.50);
    e.p90 = h.percentile(0.90);
    e.p99 = h.percentile(0.99);
    return e;
}

/** Every metric of a registry snapshot, appended in snapshot order. */
inline void
append_stats(const obs::MetricsSnapshot& snap, std::vector<StatEntry>& out)
{
    for (const obs::MetricValue& m : snap.metrics) {
        switch (m.kind) {
          case obs::MetricValue::Kind::kCounter:
            out.push_back(stat_counter(m.name, m.value));
            break;
          case obs::MetricValue::Kind::kGauge:
            out.push_back(stat_gauge(m.name, m.value));
            break;
          case obs::MetricValue::Kind::kHistogram:
            out.push_back(stat_histogram(m.name, m.histogram));
            break;
        }
    }
}

}  // namespace baco::serve

#endif  // BACO_SERVE_STATS_UTIL_HPP_
