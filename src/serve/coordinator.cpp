#include "serve/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"
#include "exec/eval_engine.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace baco::serve {

namespace {
using Clock = std::chrono::steady_clock;

/** Give up on a task after this many worker error frames. */
constexpr int kMaxTaskErrors = 3;

/** How long shutdown() waits for the fleet's goodbye frames. */
constexpr int kGoodbyeWaitMs = 1000;

/** Fleet-dispatch instrumentation handles, registered once per process. */
struct CoordMetrics {
  obs::Counter& dispatched = counter("coord.dispatched_total");
  obs::Counter& results = counter("coord.results_total");
  obs::Counter& worker_errors = counter("coord.worker_errors_total");
  obs::Counter& workers_lost = counter("coord.workers_lost_total");
  obs::Counter& redispatched = counter("coord.straggler_redispatch_total");
  /** Suggest-ahead pipeline accounting (drive_async). */
  obs::Counter& ahead_launched = counter("coord.suggest_ahead_total");
  obs::Counter& ahead_used = counter("coord.suggest_ahead_used_total");
  obs::Histogram& roundtrip = hist("coord.roundtrip_seconds");
  obs::Gauge& inflight_peak = gauge("coord.inflight_peak");
  // Run-multiplexing surface (admission control + scheduler).
  obs::Counter& runs_admitted = counter("coord.runs.admitted_total");
  obs::Counter& runs_rejected = counter("coord.runs.rejected_total");
  obs::Counter& runs_completed = counter("coord.runs.completed_total");
  obs::Gauge& runs_active = gauge("coord.runs.active");
  obs::Histogram& run_seconds = hist("coord.run.seconds");
  // Fleet-health surface (WorkerHealth registry).
  obs::Counter& worker_dead = counter("coord.worker.dead");
  obs::Counter& heartbeats = counter("coord.worker.heartbeats_total");
  obs::Gauge& workers_alive = gauge("coord.worker.alive");

  static CoordMetrics& get()
  {
      static CoordMetrics m;
      return m;
  }

 private:
  static obs::Counter& counter(const char* name)
  {
      return obs::MetricsRegistry::global().counter(name);
  }
  static obs::Histogram& hist(const char* name)
  {
      return obs::MetricsRegistry::global().histogram(name);
  }
  static obs::Gauge& gauge(const char* name)
  {
      return obs::MetricsRegistry::global().gauge(name);
  }
};

void
drop_worker(std::vector<std::size_t>& live_on, std::size_t w)
{
    live_on.erase(std::remove(live_on.begin(), live_on.end(), w),
                  live_on.end());
}

}  // namespace

/**
 * One registered worker. The transport itself is internally synchronized
 * (send is thread-safe; the reader thread is its single receiver); the
 * dispatch-accounting fields are guarded by Coordinator::mu_.
 */
struct Coordinator::Worker {
  std::unique_ptr<Transport> transport;
  std::thread reader;
  int capacity = 1;
  int inflight = 0;
  bool alive = true;
  bool goodbye = false;  ///< clean-exit frame received (shutdown wait)
  /**
   * Dispatch ids awaiting a reply from this worker. Persists across
   * batches: a run can complete with a straggler's duplicated dispatch
   * still in flight, and its late reply must be recognized as benign —
   * only a reply whose id was never dispatched marks the worker dead.
   */
  std::unordered_set<std::uint64_t> outstanding;
};

/** One in-flight or queued evaluation of a run, keyed by wire index. */
struct Coordinator::RunState {
  /** Bookkeeping for one evaluation task. */
  struct TaskRec {
    Configuration config;
    bool queued = true;  ///< in the ready queue, not on a worker
    int errors = 0;
    std::vector<std::size_t> live_on;  ///< workers with a dispatch out
    Clock::time_point last_sent;
  };

  std::uint64_t id = 0;
  std::string benchmark;
  std::uint64_t run_seed = 0;
  int max_inflight = 0;  ///< per-run live-task cap; 0 = fleet-bound only
  int inflight = 0;      ///< live tasks (duplicates count once)
  std::uint64_t landed_total = 0;
  std::map<std::uint64_t, TaskRec> tasks;
  std::deque<std::uint64_t> ready;  ///< task keys awaiting a worker slot
  std::deque<LandedEval> landed;    ///< completed, not yet collected
  /** Signaled on every landing, kill and fleet change (waits on mu_). */
  CondVar cv;
  Clock::time_point started;
};

Coordinator::Coordinator(CoordinatorOptions opt) : opt_(opt)
{
    if (opt_.max_inflight_per_worker < 1)
        opt_.max_inflight_per_worker = 1;
    if (opt_.poll_ms < 1)
        opt_.poll_ms = 1;
}

Coordinator::~Coordinator()
{
    shutdown();
}

int
Coordinator::add_worker(std::unique_ptr<Transport> transport)
{
    if (!transport)
        return -1;
    std::string line;
    if (transport->recv(line, opt_.handshake_ms) != RecvStatus::kOk)
        return -1;
    Message hello;
    if (!decode(line, hello) || hello.type != MsgType::kHello ||
        hello.version != kProtocolVersion || hello.text != "worker") {
        return -1;
    }
    return add_worker_registered(std::move(transport), hello.capacity,
                                 hello.heartbeat_ms);
}

int
Coordinator::add_worker_registered(std::unique_ptr<Transport> transport,
                                   int capacity, int heartbeat_ms)
{
    if (!transport)
        return -1;
    int id = -1;
    int clamped = 1;
    std::size_t active = 0;
    {
        MutexLock lock(mu_);
        if (shutting_down_) {
            transport->close();
            return -1;
        }
        auto w = std::make_unique<Worker>();
        w->transport = std::move(transport);
        w->capacity = std::clamp(capacity > 0 ? capacity : 1, 1,
                                 opt_.max_inflight_per_worker);
        clamped = w->capacity;
        Worker* raw = w.get();
        workers_.push_back(std::move(w));
        id = static_cast<int>(workers_.size()) - 1;
        // Registered under mu_ so workers_ and health_ stay
        // index-parallel when attaches race (lock order mu_ -> health).
        health_register(heartbeat_ms > 0 ? heartbeat_ms : 0);
        raw->reader = std::thread(
            [this, raw, idx = static_cast<std::size_t>(id)] {
                reader_loop(raw, idx);
            });
        active = runs_.size();
        // Re-registration redispatch: a worker re-attaching after a
        // heartbeat death is leased to active runs right away, so their
        // re-queued shards drain onto it without waiting for a reply.
        dispatch_ready();
    }
    obs::log_info("coord", "worker_attached",
                  obs::LogFields()
                      .num("worker", id)
                      .num("capacity", clamped)
                      .num("heartbeat_ms", heartbeat_ms)
                      .num("active_runs", static_cast<int>(active)));
    return id;
}

std::size_t
Coordinator::num_workers() const
{
    // Count from the health registry, not workers_: the Acceptor may be
    // registering a late worker hello on its routing thread while a stats
    // connection (or the Acceptor's own fleet-wait) polls this.
    MutexLock lock(health_mutex_);
    std::size_t n = 0;
    for (const HealthState& h : health_)
        if (h.alive)
            ++n;
    return n;
}

std::size_t
Coordinator::active_runs() const
{
    MutexLock lock(mu_);
    return runs_.size();
}

std::vector<RunStatsSnapshot>
Coordinator::run_stats() const
{
    std::vector<RunStatsSnapshot> out;
    MutexLock lock(mu_);
    out.reserve(runs_.size());
    for (const auto& [id, run] : runs_) {
        RunStatsSnapshot s;
        s.run = id;
        s.inflight = run->inflight;
        s.queued = run->ready.size();
        s.landed = run->landed_total;
        out.push_back(s);
    }
    return out;
}

void
Coordinator::shutdown()
{
    std::vector<std::thread> readers;
    {
        MutexLock lock(mu_);
        if (!shutting_down_) {
            shutting_down_ = true;
            Message bye;
            bye.type = MsgType::kShutdown;
            std::string frame = encode(bye);
            for (auto& w : workers_)
                if (w->alive)
                    w->transport->send(frame);
        }
        // Wait (bounded) for the fleet's goodbye frames — final eval
        // counts plus any unshipped trace spans, absorbed by the reader
        // threads — so a wedged worker cannot hang shutdown.
        auto deadline =
            Clock::now() + std::chrono::milliseconds(kGoodbyeWaitMs);
        for (;;) {
            bool waiting = false;
            for (auto& w : workers_)
                if (w->alive && !w->goodbye)
                    waiting = true;
            if (!waiting || Clock::now() >= deadline)
                break;
            shutdown_cv_.wait_until(mu_, deadline);
        }
        for (auto& w : workers_) {
            if (!w->alive)
                continue;
            w->alive = false;
            w->inflight = 0;
            w->outstanding.clear();
            w->transport->close();
        }
        dispatches_.clear();
        notify_runs();
        admission_cv_.notify_all();
        // Collect the reader handles for joining outside the lock (the
        // readers need mu_ for their final bookkeeping before exiting).
        for (auto& w : workers_)
            if (w->reader.joinable())
                readers.push_back(std::move(w->reader));
    }
    {
        MutexLock lock(health_mutex_);
        for (HealthState& h : health_) {
            h.alive = false;
            h.inflight = 0;
        }
    }
    CoordMetrics::get().workers_alive.set(0.0);
    for (std::thread& t : readers)
        t.join();
}

std::vector<WorkerHealthSnapshot>
Coordinator::health() const
{
    std::vector<WorkerHealthSnapshot> out;
    auto now = Clock::now();
    MutexLock lock(health_mutex_);
    out.reserve(health_.size());
    for (std::size_t i = 0; i < health_.size(); ++i) {
        const HealthState& h = health_[i];
        WorkerHealthSnapshot s;
        s.worker = static_cast<int>(i);
        s.inflight = h.inflight;
        s.completed = h.completed;
        s.heartbeats = h.heartbeats;
        s.ewma_latency_s = h.ewma_latency_s;
        s.last_seen_s =
            std::chrono::duration<double>(now - h.last_seen).count();
        s.heartbeat_ms = h.heartbeat_ms;
        if (!h.alive) {
            s.state = "dead";
        } else if (h.heartbeat_ms > 0 && h.inflight > 0 &&
                   now - h.last_seen >
                       std::chrono::milliseconds(h.heartbeat_ms)) {
            s.state = "slow";
        } else {
            s.state = "alive";
        }
        out.push_back(std::move(s));
    }
    return out;
}

// ---------------------------------------------------------------------
// Run lifecycle: admission, landing queues, completion.
// ---------------------------------------------------------------------

Coordinator::RunLease
Coordinator::begin_run(int max_inflight)
{
    return RunLease(this, begin_run_id(max_inflight));
}

std::uint64_t
Coordinator::begin_run_id(int max_inflight)
{
    MutexLock lock(mu_);
    if (opt_.max_active_runs > 0) {
        auto cap = static_cast<std::size_t>(opt_.max_active_runs);
        if (runs_.size() >= cap && opt_.admission_wait_ms > 0) {
            auto deadline =
                Clock::now() +
                std::chrono::milliseconds(opt_.admission_wait_ms);
            while (runs_.size() >= cap && !shutting_down_ &&
                   Clock::now() < deadline) {
                admission_cv_.wait_until(mu_, deadline);
            }
        }
        if (runs_.size() >= cap) {
            CoordMetrics::get().runs_rejected.add();
            obs::log_warn("coord", "run_rejected",
                          obs::LogFields()
                              .num("active", static_cast<int>(runs_.size()))
                              .num("max_active_runs", opt_.max_active_runs));
            throw CoordinatorBusy(
                "coordinator busy: " + std::to_string(runs_.size()) +
                " active runs (cap " +
                std::to_string(opt_.max_active_runs) + ")");
        }
    }
    std::uint64_t id = next_run_id_++;
    auto run = std::make_unique<RunState>();
    run->id = id;
    run->max_inflight = max_inflight > 0 ? max_inflight : 0;
    run->started = Clock::now();
    runs_.emplace(id, std::move(run));
    CoordMetrics::get().runs_admitted.add();
    CoordMetrics::get().runs_active.set(static_cast<double>(runs_.size()));
    obs::log_info("coord", "run_admitted",
                  obs::LogFields()
                      .num("run", id)
                      .num("active", static_cast<int>(runs_.size()))
                      .num("max_inflight", max_inflight));
    return id;
}

void
Coordinator::end_run(std::uint64_t run_id)
{
    double seconds = 0.0;
    std::size_t active = 0;
    {
        MutexLock lock(mu_);
        auto it = runs_.find(run_id);
        if (it == runs_.end())
            return;
        // Unlink the run's outstanding dispatch ids: the worker-side
        // outstanding sets keep them, so late replies drain as benign
        // slot-frees instead of protocol violations.
        for (auto d = dispatches_.begin(); d != dispatches_.end();) {
            if (d->second.run == run_id)
                d = dispatches_.erase(d);
            else
                ++d;
        }
        seconds = std::chrono::duration<double>(Clock::now() -
                                                it->second->started)
                      .count();
        runs_.erase(it);
        active = runs_.size();
        CoordMetrics::get().runs_active.set(static_cast<double>(active));
        admission_cv_.notify_all();
    }
    CoordMetrics::get().runs_completed.add();
    CoordMetrics::get().run_seconds.record(seconds);
    obs::log_info("coord", "run_completed",
                  obs::LogFields()
                      .num("run", run_id)
                      .num("seconds", seconds)
                      .num("active", static_cast<int>(active)));
}

void
Coordinator::submit_tasks(
    std::uint64_t run_id, const BatchSpec& spec,
    std::vector<std::pair<std::uint64_t, Configuration>> tasks)
{
    MutexLock lock(mu_);
    auto it = runs_.find(run_id);
    if (it == runs_.end())
        throw std::logic_error("coordinator: submit on an ended run");
    RunState& run = *it->second;
    run.benchmark = spec.benchmark;
    run.run_seed = spec.run_seed;
    for (auto& [key, config] : tasks) {
        RunState::TaskRec t;
        t.config = std::move(config);
        run.tasks.emplace(key, std::move(t));
        run.ready.push_back(key);
    }
    dispatch_ready();
}

std::vector<Coordinator::LandedEval>
Coordinator::wait_landed(std::uint64_t run_id, int timeout_ms)
{
    auto deadline =
        Clock::now() + std::chrono::milliseconds(std::max(1, timeout_ms));
    MutexLock lock(mu_);
    auto it = runs_.find(run_id);
    if (it == runs_.end())
        return {};
    RunState& run = *it->second;
    for (;;) {
        if (!run.landed.empty()) {
            std::vector<LandedEval> out(
                std::make_move_iterator(run.landed.begin()),
                std::make_move_iterator(run.landed.end()));
            run.landed.clear();
            return out;
        }
        if (run.tasks.empty())
            return {};
        if (alive_workers() == 0)
            throw std::runtime_error("coordinator: no live workers remain");
        if (!run.cv.wait_until(mu_, deadline))
            return {};  // timeout: the driver sweeps and re-waits
    }
}

void
Coordinator::sweep()
{
    // Stale-worker detection reads only the health registry; collect the
    // victims before taking mu_ so the lock order stays mu_ -> health.
    std::vector<std::size_t> stale = stale_workers();
    MutexLock lock(mu_);
    for (std::size_t w : stale)
        if (w < workers_.size() && workers_[w]->alive)
            kill_worker(w, "heartbeat");

    // Straggler re-dispatch: duplicate an old outstanding task onto a
    // free worker outside its live set; first result wins (harmless —
    // evaluation is deterministic).
    if (opt_.straggler_ms > 0) {
        auto now = Clock::now();
        for (auto& [run_id, runp] : runs_) {
            RunState& run = *runp;
            for (auto& [key, t] : run.tasks) {
                if (t.queued || t.live_on.empty())
                    continue;
                auto age = std::chrono::duration_cast<
                               std::chrono::milliseconds>(now - t.last_sent)
                               .count();
                if (age < opt_.straggler_ms)
                    continue;
                for (std::size_t w = 0; w < workers_.size(); ++w) {
                    Worker& wk = *workers_[w];
                    bool already =
                        std::find(t.live_on.begin(), t.live_on.end(), w) !=
                        t.live_on.end();
                    if (!wk.alive || already ||
                        wk.inflight >= wk.capacity) {
                        continue;
                    }
                    CoordMetrics::get().redispatched.add();
                    dispatch_one(run, key, w, /*duplicate=*/true);
                    break;
                }
            }
        }
    }
    dispatch_ready();
}

// ---------------------------------------------------------------------
// Scheduler: fair worker leasing across active runs.
// ---------------------------------------------------------------------

std::size_t
Coordinator::alive_workers() const
{
    std::size_t n = 0;
    for (const auto& w : workers_)
        if (w->alive)
            ++n;
    return n;
}

void
Coordinator::notify_runs()
{
    for (auto& [id, run] : runs_)
        run->cv.notify_all();
}

void
Coordinator::dispatch_ready()
{
    if (runs_.empty())
        return;
    bool progress = true;
    while (progress) {
        progress = false;
        // One dispatch per eligible run per pass, visiting runs in id
        // order starting after the fairness cursor — a run with a deep
        // queue cannot monopolize freed slots.
        std::vector<RunState*> order;
        order.reserve(runs_.size());
        for (auto it = runs_.upper_bound(rr_cursor_); it != runs_.end();
             ++it)
            order.push_back(it->second.get());
        for (auto it = runs_.begin();
             it != runs_.end() && it->first <= rr_cursor_; ++it)
            order.push_back(it->second.get());
        for (RunState* runp : order) {
            RunState& run = *runp;
            if (run.ready.empty())
                continue;
            if (run.max_inflight > 0 && run.inflight >= run.max_inflight)
                continue;
            std::size_t w = workers_.size();
            for (std::size_t cand = 0; cand < workers_.size(); ++cand) {
                Worker& wk = *workers_[cand];
                if (wk.alive && wk.inflight < wk.capacity) {
                    w = cand;
                    break;
                }
            }
            if (w == workers_.size())
                return;  // fleet saturated (or empty)
            std::uint64_t key = run.ready.front();
            run.ready.pop_front();
            rr_cursor_ = run.id;
            dispatch_one(run, key, w, /*duplicate=*/false);
            progress = true;
        }
    }
}

bool
Coordinator::dispatch_one(RunState& run, std::uint64_t key, std::size_t w,
                          bool duplicate)
{
    auto task_it = run.tasks.find(key);
    if (task_it == run.tasks.end())
        return false;
    RunState::TaskRec& t = task_it->second;
    Message m;
    m.type = MsgType::kEvaluate;
    m.id = next_msg_id_++;
    m.run = run.id;
    m.benchmark = run.benchmark;
    m.seed = run.run_seed;
    m.index = key;
    m.config = t.config;
    stamp_trace(m);
    Worker& wk = *workers_[w];
    if (!wk.transport->send(encode(m))) {
        // The transport died under the send: kill the worker (re-queueing
        // its other tasks) and put this task back in line.
        kill_worker(w, "send_failed");
        if (!duplicate && t.queued)
            run.ready.push_back(key);
        return false;
    }
    wk.inflight += 1;
    wk.outstanding.insert(m.id);
    dispatches_[m.id] = DispatchRec{run.id, key};
    if (!duplicate) {
        t.queued = false;
        run.inflight += 1;
    }
    t.live_on.push_back(w);
    t.last_sent = Clock::now();
    health_dispatch(w);
    CoordMetrics& cm = CoordMetrics::get();
    cm.dispatched.add();
    int inflight = 0;
    for (const auto& each : workers_)
        inflight += each->inflight;
    cm.inflight_peak.set_max(static_cast<double>(inflight));
    return true;
}

void
Coordinator::kill_worker(std::size_t w, const char* reason)
{
    Worker& wk = *workers_[w];
    if (!wk.alive)
        return;
    CoordMetrics::get().workers_lost.add();
    CoordMetrics::get().worker_dead.add();
    wk.alive = false;
    wk.inflight = 0;
    wk.transport->close();
    // Re-queue every task whose only live dispatch was on this worker.
    for (std::uint64_t id : wk.outstanding) {
        auto d_it = dispatches_.find(id);
        if (d_it == dispatches_.end())
            continue;
        DispatchRec d = d_it->second;
        dispatches_.erase(d_it);
        auto run_it = runs_.find(d.run);
        if (run_it == runs_.end())
            continue;
        RunState& run = *run_it->second;
        auto task_it = run.tasks.find(d.key);
        if (task_it == run.tasks.end())
            continue;
        RunState::TaskRec& t = task_it->second;
        drop_worker(t.live_on, w);
        if (!t.queued && t.live_on.empty()) {
            t.queued = true;
            run.ready.push_back(d.key);
        }
    }
    wk.outstanding.clear();
    health_dead(w);
    obs::log_warn("coord", "worker_dead",
                  obs::LogFields()
                      .num("worker", static_cast<int>(w))
                      .str("reason", reason));
    // Waiters re-check fleet liveness; the scheduler re-leases the
    // re-queued shards (possibly to a later re-registered worker).
    notify_runs();
}

// ---------------------------------------------------------------------
// Per-worker reader: demultiplexes the fleet's frames into run queues.
// ---------------------------------------------------------------------

void
Coordinator::reader_loop(Worker* wk, std::size_t w)
{
    std::string line;
    for (;;) {
        RecvStatus rs = wk->transport->recv(line, -1);
        if (rs != RecvStatus::kOk) {
            MutexLock lock(mu_);
            if (wk->alive) {
                if (shutting_down_) {
                    // Clean teardown: not a death worth alarming about.
                    wk->alive = false;
                    wk->inflight = 0;
                    wk->outstanding.clear();
                    health_dead(w);
                } else {
                    kill_worker(w, "closed");
                    dispatch_ready();
                }
            }
            notify_runs();
            shutdown_cv_.notify_all();
            return;
        }
        Message reply;
        if (!decode(line, reply)) {
            // A worker emitting undecodable frames is unreliable; killing
            // it re-queues its tasks instead of leaving them in flight
            // forever (which would wedge its runs).
            MutexLock lock(mu_);
            if (wk->alive && !shutting_down_) {
                kill_worker(w, "bad_frame");
                dispatch_ready();
            }
            shutdown_cv_.notify_all();
            return;
        }
        health_touch(w);
        if (reply.type == MsgType::kHeartbeat) {
            health_heartbeat(w);
            continue;
        }
        if (reply.type == MsgType::kGoodbye) {
            import_spans(w, reply);
            obs::log_info("coord", "worker_goodbye",
                          obs::LogFields()
                              .num("worker", static_cast<int>(w))
                              .num("evals", reply.evals));
            MutexLock lock(mu_);
            wk->goodbye = true;
            shutdown_cv_.notify_all();
            continue;  // the close (ours or the worker's) ends the loop
        }

        MutexLock lock(mu_);
        if (!wk->alive)
            continue;  // killed concurrently; the close ends the loop
        auto out_it = wk->outstanding.find(reply.id);
        if (out_it == wk->outstanding.end()) {
            // Reply to an id this worker was never sent: the worker
            // failed to decode a dispatch (its error frames carry id 0)
            // or has a protocol bug. Same treatment as garbage.
            if (!shutting_down_) {
                kill_worker(w, "protocol");
                dispatch_ready();
            }
            return;
        }
        wk->outstanding.erase(out_it);
        wk->inflight = std::max(0, wk->inflight - 1);
        health_reply(w);
        auto d_it = dispatches_.find(reply.id);
        if (d_it == dispatches_.end()) {
            // A late reply to a dispatch of an already-ended run (or a
            // straggler duplicate that lost): benign, frees the slot.
            dispatch_ready();
            continue;
        }
        DispatchRec d = d_it->second;
        dispatches_.erase(d_it);
        auto run_it = runs_.find(d.run);
        if (run_it == runs_.end()) {
            dispatch_ready();
            continue;
        }
        RunState& run = *run_it->second;
        if (reply.run != 0 && reply.run != run.id) {
            // The worker echoed a different run's tag on this dispatch
            // id: cross-run state corruption, not recoverable.
            kill_worker(w, "protocol");
            dispatch_ready();
            return;
        }
        auto task_it = run.tasks.find(d.key);
        if (task_it == run.tasks.end()) {
            dispatch_ready();
            continue;  // straggler duplicate; first result won
        }
        RunState::TaskRec& t = task_it->second;
        drop_worker(t.live_on, w);
        if (reply.type == MsgType::kResult) {
            double latency =
                std::chrono::duration<double>(Clock::now() - t.last_sent)
                    .count();
            CoordMetrics::get().results.add();
            CoordMetrics::get().roundtrip.record(latency);
            health_result(w, latency);
            import_spans(w, reply);
            LandedEval landed;
            landed.key = d.key;
            landed.result = EvalResult{reply.value, reply.feasible};
            landed.eval_seconds = reply.eval_seconds;
            run.tasks.erase(task_it);
            run.inflight = std::max(0, run.inflight - 1);
            run.landed_total += 1;
            run.landed.push_back(std::move(landed));
            run.cv.notify_all();
        } else if (reply.type == MsgType::kError) {
            CoordMetrics::get().worker_errors.add();
            t.errors += 1;
            if (t.errors >= kMaxTaskErrors) {
                LandedEval landed;
                landed.key = d.key;
                landed.failed = true;
                landed.error = reply.text;
                run.tasks.erase(task_it);
                run.inflight = std::max(0, run.inflight - 1);
                run.landed.push_back(std::move(landed));
                run.cv.notify_all();
            } else if (!t.queued && t.live_on.empty()) {
                t.queued = true;
                run.ready.push_back(d.key);
            }
        }
        dispatch_ready();
    }
}

void
Coordinator::stamp_trace(Message& m)
{
    if (!obs::Trace::enabled())
        return;
    m.trace_version = kTraceVersion;
    m.trace_run = obs::Trace::run_id();
    m.span_id = m.id;
}

void
Coordinator::import_spans(std::size_t w, const Message& reply)
{
    if (reply.spans.empty())
        return;
    std::vector<obs::RemoteSpan> spans;
    spans.reserve(reply.spans.size());
    for (const WireSpan& s : reply.spans) {
        obs::RemoteSpan r;
        r.name = s.name;
        r.category = s.category;
        r.run = reply.trace_run;
        r.thread_id = s.thread_id;
        r.start_us = s.start_us;
        r.duration_us = s.duration_us;
        spans.push_back(std::move(r));
    }
    obs::Trace::add_remote("worker-" + std::to_string(w), std::move(spans));
}

void
Coordinator::health_register(int heartbeat_ms)
{
    std::size_t alive = 0;
    {
        MutexLock lock(health_mutex_);
        HealthState h;
        h.last_seen = Clock::now();
        h.heartbeat_ms = heartbeat_ms;
        health_.push_back(h);
        for (const HealthState& hs : health_)
            alive += hs.alive ? 1 : 0;
    }
    CoordMetrics::get().workers_alive.set(static_cast<double>(alive));
}

void
Coordinator::health_touch(std::size_t w)
{
    MutexLock lock(health_mutex_);
    if (w < health_.size())
        health_[w].last_seen = Clock::now();
}

void
Coordinator::health_dispatch(std::size_t w)
{
    MutexLock lock(health_mutex_);
    if (w < health_.size())
        health_[w].inflight += 1;
}

void
Coordinator::health_reply(std::size_t w)
{
    MutexLock lock(health_mutex_);
    if (w < health_.size())
        health_[w].inflight = std::max(0, health_[w].inflight - 1);
}

void
Coordinator::health_result(std::size_t w, double latency_s)
{
    MutexLock lock(health_mutex_);
    if (w >= health_.size())
        return;
    HealthState& h = health_[w];
    h.completed += 1;
    h.ewma_latency_s = h.completed == 1
                           ? latency_s
                           : 0.3 * latency_s + 0.7 * h.ewma_latency_s;
}

void
Coordinator::health_heartbeat(std::size_t w)
{
    CoordMetrics::get().heartbeats.add();
    MutexLock lock(health_mutex_);
    if (w < health_.size()) {
        health_[w].heartbeats += 1;
        health_[w].last_seen = Clock::now();
    }
}

void
Coordinator::health_dead(std::size_t w)
{
    std::size_t alive = 0;
    {
        MutexLock lock(health_mutex_);
        if (w < health_.size()) {
            health_[w].alive = false;
            health_[w].inflight = 0;
        }
        for (const HealthState& hs : health_)
            alive += hs.alive ? 1 : 0;
    }
    CoordMetrics::get().workers_alive.set(static_cast<double>(alive));
}

std::vector<std::size_t>
Coordinator::stale_workers() const
{
    std::vector<std::size_t> out;
    auto now = Clock::now();
    int grace = std::max(1, opt_.heartbeat_grace);
    MutexLock lock(health_mutex_);
    for (std::size_t i = 0; i < health_.size(); ++i) {
        const HealthState& h = health_[i];
        if (!h.alive || h.heartbeat_ms <= 0 || h.inflight <= 0)
            continue;
        if (now - h.last_seen >
            std::chrono::milliseconds(h.heartbeat_ms) * grace) {
            out.push_back(i);
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Drivers: batch, round-driven and fully asynchronous runs.
// ---------------------------------------------------------------------

std::vector<EvalResult>
Coordinator::evaluate_batch(const BatchSpec& spec,
                            const std::vector<Configuration>& configs,
                            double* eval_seconds)
{
    RunLease lease = begin_run();
    return evaluate_batch(lease, spec, configs, eval_seconds);
}

std::vector<EvalResult>
Coordinator::evaluate_batch(const RunLease& lease, const BatchSpec& spec,
                            const std::vector<Configuration>& configs,
                            double* eval_seconds)
{
    const std::size_t n = configs.size();
    std::vector<EvalResult> results(n);
    if (n == 0)
        return results;
    if (!lease)
        throw std::logic_error("coordinator: evaluate_batch without a run");
    obs::Span batch_span("coord.evaluate_batch", "coord");

    std::vector<char> from_cache(n, 0);
    std::size_t done_count = 0;
    std::vector<std::pair<std::uint64_t, Configuration>> misses;
    for (std::size_t i = 0; i < n; ++i) {
        if (spec.cache) {
            if (auto hit =
                    spec.cache->lookup(spec.cache_namespace, configs[i])) {
                from_cache[i] = 1;
                results[i] = *hit;
                ++done_count;
                continue;
            }
        }
        misses.emplace_back(spec.first_index + i, configs[i]);
    }
    if (!misses.empty())
        submit_tasks(lease.id(), spec, std::move(misses));

    while (done_count < n) {
        std::vector<LandedEval> landed =
            wait_landed(lease.id(), opt_.poll_ms);
        if (landed.empty())
            sweep();
        for (LandedEval& l : landed) {
            if (l.failed) {
                throw std::runtime_error(
                    "coordinator: evaluation failed: " + l.error);
            }
            std::size_t i =
                static_cast<std::size_t>(l.key - spec.first_index);
            if (i >= n || from_cache[i])
                continue;
            results[i] = l.result;
            if (eval_seconds)
                *eval_seconds += l.eval_seconds;
            ++done_count;
        }
    }

    if (spec.cache) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!from_cache[i])
                spec.cache->insert(spec.cache_namespace, configs[i],
                                   results[i]);
        }
    }
    return results;
}

void
Coordinator::drive(AskTellTuner& tuner, const BatchSpec& spec,
                   int batch_size, int max_evals,
                   const std::string& checkpoint_path)
{
    if (batch_size < 1)
        batch_size = 1;
    // One run (one admission slot, one wire run id) for the whole drive:
    // rounds share the lease so a multi-round drive cannot be starved
    // between its own batches by admission control.
    RunLease lease = begin_run();
    int done = 0;
    while (tuner.remaining() > 0 && (max_evals < 0 || done < max_evals)) {
        int want = batch_size;
        if (max_evals >= 0)
            want = std::min(want, max_evals - done);
        std::vector<Configuration> batch = tuner.suggest(want);
        if (batch.empty())
            break;
        BatchSpec round = spec;
        round.first_index = tuner.history().size();
        double eval_seconds = 0.0;
        std::vector<EvalResult> results =
            evaluate_batch(lease, round, batch, &eval_seconds);
        tuner.observe(batch, results);
        tuner.mutable_history().eval_seconds += eval_seconds;
        done += static_cast<int>(batch.size());
        if (!checkpoint_path.empty())
            save_checkpoint(checkpoint_path, tuner);
    }
}

TuningHistory
Coordinator::run(AskTellTuner& tuner, const BatchSpec& spec, int batch_size)
{
    drive(tuner, spec, batch_size, -1);
    return tuner.take_history();
}

void
Coordinator::drive_async(AskTellTuner& tuner, const BatchSpec& spec,
                         int slots, int max_evals,
                         const std::string& checkpoint_path,
                         const AsyncResultFn& on_result,
                         std::vector<PendingEval> resume_pending)
{
    if (slots < 1)
        slots = 1;
    obs::Span drive_span("coord.drive_async", "coord");
    RunLease lease = begin_run(/*max_inflight=*/slots);

    // Driver-side view of the in-flight evaluations (the checkpoint
    // payload and the constant-liar pending list); the scheduler core
    // owns the dispatch state.
    std::map<std::uint64_t, Configuration> active;
    int told = 0;

    // ---- Suggest-ahead pipeline (opt_.suggest_ahead, slots >= 2). ----
    // The speculative call runs on a dedicated side lane; the tuner is
    // single-threaded state, so every tuner access below must absorb the
    // speculation first (collect_ahead). The drain guard makes sure the
    // side task has finished before this frame unwinds on any throw.
    const bool use_ahead = opt_.suggest_ahead && slots >= 2;
    std::unique_ptr<ThreadPool> ahead_pool;
    if (use_ahead)
        ahead_pool = std::make_unique<ThreadPool>(1);
    SuggestAhead ahead;
    std::deque<Configuration> ready;  // prefetched, not yet dispatched
    bool tuner_dry = false;
    auto collect_ahead = [&] {
        if (!ahead.active())
            return;
        std::vector<Configuration> got = ahead.collect();
        if (got.empty())
            tuner_dry = true;
        for (Configuration& c : got)
            ready.push_back(std::move(c));
    };
    struct AheadDrain {
        SuggestAhead& a;
        ~AheadDrain()
        {
            if (a.active()) {
                try {
                    a.collect();
                } catch (...) {
                }
            }
        }
    } ahead_drain{ahead};

    // Indices are dealt sequentially over the run: observed + in-flight
    // always cover a prefix of the index space.
    std::uint64_t next_index = tuner.history().size();
    std::vector<std::pair<std::uint64_t, Configuration>> initial;
    for (PendingEval& p : resume_pending) {
        next_index = std::max(next_index, p.index + 1);
        active.emplace(p.index, p.config);
        initial.emplace_back(p.index, std::move(p.config));
    }
    next_index =
        std::max(next_index, tuner.history().size() + active.size());
    if (!initial.empty())
        submit_tasks(lease.id(), spec, std::move(initial));

    // Observe one landed result: cache it, tell the tuner, checkpoint
    // the run with the work still in flight, notify the caller — the
    // same per-tell sequence as EvalEngine's async drive.
    auto tell = [&](std::uint64_t index, Configuration config,
                    const EvalResult& r, double seconds, bool from_cache) {
        collect_ahead();  // serialize: never tell while a suggest runs
        std::vector<PendingEval> still_pending;
        if (!checkpoint_path.empty()) {
            still_pending.reserve(active.size());
            for (const auto& [i, c] : active)
                still_pending.push_back(PendingEval{i, c});
        }
        AsyncEvent ev;
        ev.index = index;
        ev.config = std::move(config);
        ev.result = r;
        ev.eval_seconds = seconds;
        ev.from_cache = from_cache;
        tell_async_result(tuner, std::move(ev), spec.cache,
                          spec.cache_namespace, checkpoint_path,
                          still_pending, on_result);
        ++told;
    };

    for (;;) {
        // ---- Refill free slots from the tuner (never barrier). ----
        while (static_cast<int>(active.size()) < slots &&
               (max_evals < 0 ||
                told + static_cast<int>(active.size()) < max_evals)) {
            Configuration config;
            if (!ready.empty()) {
                config = std::move(ready.front());
                ready.pop_front();
                CoordMetrics::get().ahead_used.add();
            } else if (!tuner_dry) {
                collect_ahead();
                if (!ready.empty())
                    continue;  // re-check caps with the prefetched config
                std::vector<Configuration> pending;
                pending.reserve(active.size());
                for (const auto& [index, c] : active)
                    pending.push_back(c);
                std::vector<Configuration> next =
                    tuner.suggest_with_pending(1, pending);
                if (next.empty())
                    break;
                config = std::move(next.front());
            } else {
                break;
            }
            std::uint64_t index = next_index++;
            if (spec.cache) {
                if (auto hit =
                        spec.cache->lookup(spec.cache_namespace, config)) {
                    // A cache hit lands instantly; its slot never opens.
                    tell(index, std::move(config), *hit, 0.0, true);
                    continue;
                }
            }
            active.emplace(index, config);
            submit_tasks(lease.id(), spec, {{index, std::move(config)}});
        }
        if (active.empty())
            break;

        // ---- Overlap the next suggestion with the in-flight work. Only
        // launched when the prefetch could actually be dispatched later
        // (budget and caps leave room): a suggestion consumes tuner RNG
        // and dedup state, so an undispatchable one would be lost.
        if (use_ahead && !ahead.active() && !tuner_dry && !active.empty() &&
            ready.empty() &&
            (max_evals < 0 ||
             told + static_cast<int>(active.size()) < max_evals) &&
            tuner.remaining() > static_cast<int>(active.size())) {
            std::vector<Configuration> pending;
            pending.reserve(active.size());
            for (const auto& [index, c] : active)
                pending.push_back(c);
            CoordMetrics::get().ahead_launched.add();
            ahead.launch(*ahead_pool, tuner, std::move(pending));
        }

        // ---- Collect arrivals; tell each one the moment it lands. ----
        std::vector<LandedEval> landed =
            wait_landed(lease.id(), opt_.poll_ms);
        if (landed.empty())
            sweep();
        for (LandedEval& l : landed) {
            if (l.failed) {
                throw std::runtime_error(
                    "coordinator: evaluation failed: " + l.error);
            }
            auto it = active.find(l.key);
            if (it == active.end())
                continue;
            Configuration config = std::move(it->second);
            active.erase(it);
            tell(l.key, std::move(config), l.result, l.eval_seconds,
                 false);
        }
    }
}

TuningHistory
Coordinator::run_async(AskTellTuner& tuner, const BatchSpec& spec, int slots)
{
    drive_async(tuner, spec, slots, -1);
    return tuner.take_history();
}

}  // namespace baco::serve
