#include "serve/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"
#include "exec/eval_engine.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace baco::serve {

namespace {
using Clock = std::chrono::steady_clock;

/** Give up on a task after this many worker error frames. */
constexpr int kMaxTaskErrors = 3;

/** Fleet-dispatch instrumentation handles, registered once per process. */
struct CoordMetrics {
  obs::Counter& dispatched = counter("coord.dispatched_total");
  obs::Counter& results = counter("coord.results_total");
  obs::Counter& worker_errors = counter("coord.worker_errors_total");
  obs::Counter& workers_lost = counter("coord.workers_lost_total");
  obs::Counter& redispatched = counter("coord.straggler_redispatch_total");
  /** Suggest-ahead pipeline accounting (drive_async). */
  obs::Counter& ahead_launched = counter("coord.suggest_ahead_total");
  obs::Counter& ahead_used = counter("coord.suggest_ahead_used_total");
  obs::Histogram& roundtrip = hist("coord.roundtrip_seconds");
  obs::Gauge& inflight_peak = gauge("coord.inflight_peak");
  // Fleet-health surface (WorkerHealth registry).
  obs::Counter& worker_dead = counter("coord.worker.dead");
  obs::Counter& heartbeats = counter("coord.worker.heartbeats_total");
  obs::Gauge& workers_alive = gauge("coord.worker.alive");

  static CoordMetrics& get()
  {
      static CoordMetrics m;
      return m;
  }

 private:
  static obs::Counter& counter(const char* name)
  {
      return obs::MetricsRegistry::global().counter(name);
  }
  static obs::Histogram& hist(const char* name)
  {
      return obs::MetricsRegistry::global().histogram(name);
  }
  static obs::Gauge& gauge(const char* name)
  {
      return obs::MetricsRegistry::global().gauge(name);
  }
};

}  // namespace

struct Coordinator::Worker {
  std::unique_ptr<Transport> transport;
  int capacity = 1;
  int inflight = 0;
  bool alive = true;
  /**
   * Dispatch ids awaiting a reply from this worker. Persists across
   * evaluate_batch calls: a batch can complete with a straggler's
   * duplicated dispatch still in flight, and its late reply (arriving
   * during a later batch) must be recognized as benign — only a reply
   * whose id was never dispatched marks the worker dead.
   */
  std::unordered_set<std::uint64_t> outstanding;
};

Coordinator::Coordinator(CoordinatorOptions opt) : opt_(opt)
{
    if (opt_.max_inflight_per_worker < 1)
        opt_.max_inflight_per_worker = 1;
    if (opt_.poll_ms < 1)
        opt_.poll_ms = 1;
}

Coordinator::~Coordinator()
{
    shutdown();
}

int
Coordinator::add_worker(std::unique_ptr<Transport> transport)
{
    if (!transport)
        return -1;
    std::string line;
    if (transport->recv(line, opt_.handshake_ms) != RecvStatus::kOk)
        return -1;
    Message hello;
    if (!decode(line, hello) || hello.type != MsgType::kHello ||
        hello.version != kProtocolVersion || hello.text != "worker") {
        return -1;
    }
    return add_worker_registered(std::move(transport), hello.capacity,
                                 hello.heartbeat_ms);
}

int
Coordinator::add_worker_registered(std::unique_ptr<Transport> transport,
                                   int capacity, int heartbeat_ms)
{
    if (!transport)
        return -1;
    auto w = std::make_unique<Worker>();
    w->transport = std::move(transport);
    w->capacity = std::clamp(capacity > 0 ? capacity : 1, 1,
                             opt_.max_inflight_per_worker);
    workers_.push_back(std::move(w));
    int id = static_cast<int>(workers_.size()) - 1;
    health_register(heartbeat_ms > 0 ? heartbeat_ms : 0);
    obs::log_info("coord", "worker_attached",
                  obs::LogFields()
                      .num("worker", id)
                      .num("capacity", workers_.back()->capacity)
                      .num("heartbeat_ms", heartbeat_ms));
    return id;
}

std::size_t
Coordinator::num_workers() const
{
    // Count from the health registry, not workers_: the Acceptor may be
    // registering a late worker hello on its routing thread while a stats
    // connection (or the Acceptor's own fleet-wait) polls this.
    MutexLock lock(health_mutex_);
    std::size_t n = 0;
    for (const HealthState& h : health_)
        if (h.alive)
            ++n;
    return n;
}

void
Coordinator::shutdown()
{
    Message bye;
    bye.type = MsgType::kShutdown;
    std::string frame = encode(bye);
    for (auto& w : workers_) {
        if (!w->alive)
            continue;
        w->transport->send(frame);
    }
    // Absorb each worker's goodbye frame — final eval count plus any
    // unshipped trace spans — with a bounded wait so a wedged worker
    // cannot hang shutdown. Results/heartbeats still in the pipe are
    // skipped on the way.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        Worker& wk = *workers_[i];
        if (!wk.alive)
            continue;
        for (int hops = 0; hops < 64; ++hops) {
            std::string line;
            if (wk.transport->recv(line, 200) != RecvStatus::kOk)
                break;
            Message reply;
            if (!decode(line, reply))
                break;
            if (reply.type == MsgType::kGoodbye) {
                import_spans(i, reply);
                obs::log_info("coord", "worker_goodbye",
                              obs::LogFields()
                                  .num("worker", static_cast<int>(i))
                                  .num("evals", reply.evals));
                break;
            }
        }
        wk.transport->close();
        wk.alive = false;
        wk.inflight = 0;
    }
    {
        MutexLock lock(health_mutex_);
        for (HealthState& h : health_) {
            h.alive = false;
            h.inflight = 0;
        }
    }
    CoordMetrics::get().workers_alive.set(0.0);
}

std::vector<WorkerHealthSnapshot>
Coordinator::health() const
{
    std::vector<WorkerHealthSnapshot> out;
    auto now = Clock::now();
    MutexLock lock(health_mutex_);
    out.reserve(health_.size());
    for (std::size_t i = 0; i < health_.size(); ++i) {
        const HealthState& h = health_[i];
        WorkerHealthSnapshot s;
        s.worker = static_cast<int>(i);
        s.inflight = h.inflight;
        s.completed = h.completed;
        s.heartbeats = h.heartbeats;
        s.ewma_latency_s = h.ewma_latency_s;
        s.last_seen_s =
            std::chrono::duration<double>(now - h.last_seen).count();
        s.heartbeat_ms = h.heartbeat_ms;
        if (!h.alive) {
            s.state = "dead";
        } else if (h.heartbeat_ms > 0 && h.inflight > 0 &&
                   now - h.last_seen >
                       std::chrono::milliseconds(h.heartbeat_ms)) {
            s.state = "slow";
        } else {
            s.state = "alive";
        }
        out.push_back(std::move(s));
    }
    return out;
}

void
Coordinator::kill_worker(std::size_t w, const char* reason)
{
    Worker& wk = *workers_[w];
    if (!wk.alive)
        return;
    CoordMetrics::get().workers_lost.add();
    CoordMetrics::get().worker_dead.add();
    wk.alive = false;
    wk.inflight = 0;
    wk.outstanding.clear();
    wk.transport->close();
    health_dead(w);
    obs::log_warn("coord", "worker_dead",
                  obs::LogFields()
                      .num("worker", static_cast<int>(w))
                      .str("reason", reason));
}

void
Coordinator::stamp_trace(Message& m)
{
    if (!obs::Trace::enabled())
        return;
    m.trace_version = kTraceVersion;
    m.trace_run = obs::Trace::run_id();
    m.span_id = m.id;
}

void
Coordinator::import_spans(std::size_t w, const Message& reply)
{
    if (reply.spans.empty())
        return;
    std::vector<obs::RemoteSpan> spans;
    spans.reserve(reply.spans.size());
    for (const WireSpan& s : reply.spans) {
        obs::RemoteSpan r;
        r.name = s.name;
        r.category = s.category;
        r.run = reply.trace_run;
        r.thread_id = s.thread_id;
        r.start_us = s.start_us;
        r.duration_us = s.duration_us;
        spans.push_back(std::move(r));
    }
    obs::Trace::add_remote("worker-" + std::to_string(w), std::move(spans));
}

void
Coordinator::health_register(int heartbeat_ms)
{
    std::size_t alive = 0;
    {
        MutexLock lock(health_mutex_);
        HealthState h;
        h.last_seen = Clock::now();
        h.heartbeat_ms = heartbeat_ms;
        health_.push_back(h);
        for (const HealthState& hs : health_)
            alive += hs.alive ? 1 : 0;
    }
    CoordMetrics::get().workers_alive.set(static_cast<double>(alive));
}

void
Coordinator::health_touch(std::size_t w)
{
    MutexLock lock(health_mutex_);
    if (w < health_.size())
        health_[w].last_seen = Clock::now();
}

void
Coordinator::health_dispatch(std::size_t w)
{
    MutexLock lock(health_mutex_);
    if (w < health_.size())
        health_[w].inflight += 1;
}

void
Coordinator::health_reply(std::size_t w)
{
    MutexLock lock(health_mutex_);
    if (w < health_.size())
        health_[w].inflight = std::max(0, health_[w].inflight - 1);
}

void
Coordinator::health_result(std::size_t w, double latency_s)
{
    MutexLock lock(health_mutex_);
    if (w >= health_.size())
        return;
    HealthState& h = health_[w];
    h.completed += 1;
    h.ewma_latency_s = h.completed == 1
                           ? latency_s
                           : 0.3 * latency_s + 0.7 * h.ewma_latency_s;
}

void
Coordinator::health_heartbeat(std::size_t w)
{
    CoordMetrics::get().heartbeats.add();
    MutexLock lock(health_mutex_);
    if (w < health_.size()) {
        health_[w].heartbeats += 1;
        health_[w].last_seen = Clock::now();
    }
}

void
Coordinator::health_dead(std::size_t w)
{
    std::size_t alive = 0;
    {
        MutexLock lock(health_mutex_);
        if (w < health_.size()) {
            health_[w].alive = false;
            health_[w].inflight = 0;
        }
        for (const HealthState& hs : health_)
            alive += hs.alive ? 1 : 0;
    }
    CoordMetrics::get().workers_alive.set(static_cast<double>(alive));
}

std::vector<std::size_t>
Coordinator::stale_workers() const
{
    std::vector<std::size_t> out;
    auto now = Clock::now();
    int grace = std::max(1, opt_.heartbeat_grace);
    MutexLock lock(health_mutex_);
    for (std::size_t i = 0; i < health_.size(); ++i) {
        const HealthState& h = health_[i];
        if (!h.alive || h.heartbeat_ms <= 0 || h.inflight <= 0)
            continue;
        if (now - h.last_seen >
            std::chrono::milliseconds(h.heartbeat_ms) * grace) {
            out.push_back(i);
        }
    }
    return out;
}

namespace {

/** Per-batch bookkeeping for one evaluation task. */
struct TaskState {
  bool done = false;
  bool from_cache = false;
  bool queued = false;
  int errors = 0;
  EvalResult result;
  std::vector<std::size_t> live_on;  ///< workers with a dispatch in flight
  Clock::time_point last_sent;
};

void
drop_dispatch(TaskState& t, std::size_t w)
{
    t.live_on.erase(std::remove(t.live_on.begin(), t.live_on.end(), w),
                    t.live_on.end());
}

}  // namespace

bool
Coordinator::dispatch_to(std::size_t w, std::size_t task,
                         const BatchSpec& spec,
                         const std::vector<Configuration>& configs)
{
    Message m;
    m.type = MsgType::kEvaluate;
    m.id = next_msg_id_++;
    m.benchmark = spec.benchmark;
    m.seed = spec.run_seed;
    m.index = spec.first_index + task;
    m.config = configs[task];
    stamp_trace(m);
    if (!workers_[w]->transport->send(encode(m)))
        return false;
    workers_[w]->inflight += 1;
    workers_[w]->outstanding.insert(m.id);
    health_dispatch(w);
    CoordMetrics& cm = CoordMetrics::get();
    cm.dispatched.add();
    int inflight = 0;
    for (const auto& wk : workers_)
        inflight += wk->inflight;
    cm.inflight_peak.set_max(static_cast<double>(inflight));
    return true;
}

std::vector<EvalResult>
Coordinator::evaluate_batch(const BatchSpec& spec,
                            const std::vector<Configuration>& configs,
                            double* eval_seconds)
{
    const std::size_t n = configs.size();
    std::vector<EvalResult> results(n);
    if (n == 0)
        return results;
    obs::Span batch_span("coord.evaluate_batch", "coord");

    std::vector<TaskState> tasks(n);
    std::vector<std::size_t> pending;
    std::unordered_map<std::uint64_t, std::size_t> id_to_task;
    std::size_t done_count = 0;

    for (std::size_t i = 0; i < n; ++i) {
        if (spec.cache) {
            if (auto hit = spec.cache->lookup(spec.cache_namespace,
                                              configs[i])) {
                tasks[i].done = true;
                tasks[i].from_cache = true;
                results[i] = *hit;
                ++done_count;
                continue;
            }
        }
        tasks[i].queued = true;
        pending.push_back(i);
    }

    auto mark_dead = [&](std::size_t w, const char* reason) {
        kill_worker(w, reason);
        for (std::size_t i = 0; i < n; ++i) {
            TaskState& t = tasks[i];
            drop_dispatch(t, w);
            if (!t.done && !t.queued && t.live_on.empty()) {
                t.queued = true;
                pending.push_back(i);
            }
        }
    };

    auto send_task = [&](std::size_t w, std::size_t task) -> bool {
        std::uint64_t id_before = next_msg_id_;
        if (!dispatch_to(w, task, spec, configs)) {
            mark_dead(w, "send_failed");
            return false;
        }
        id_to_task[id_before] = task;
        tasks[task].live_on.push_back(w);
        tasks[task].last_sent = Clock::now();
        return true;
    };

    while (done_count < n) {
        // ---- Backpressure-limited assignment of queued tasks. ----
        for (std::size_t w = 0; w < workers_.size() && !pending.empty();
             ++w) {
            Worker& wk = *workers_[w];
            while (wk.alive && wk.inflight < wk.capacity &&
                   !pending.empty()) {
                std::size_t task = pending.back();
                pending.pop_back();
                tasks[task].queued = false;
                if (!send_task(w, task)) {
                    // Worker died on send; the task was re-queued by
                    // mark_dead only if it had no other live dispatch.
                    break;
                }
            }
        }

        bool any_inflight = false;
        for (const auto& w : workers_)
            any_inflight = any_inflight || w->inflight > 0;
        if (!any_inflight) {
            if (num_workers() == 0) {
                throw std::runtime_error(
                    "coordinator: no live workers remain");
            }
            if (!pending.empty())
                continue;  // free slots opened up; assign again
        }

        // ---- Drain results; block briefly on the first busy worker. ----
        bool received = false;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            Worker& wk = *workers_[w];
            if (!wk.alive || wk.inflight == 0)
                continue;
            int timeout = received ? 0 : opt_.poll_ms;
            for (;;) {
                std::string line;
                RecvStatus rs = wk.transport->recv(line, timeout);
                if (rs == RecvStatus::kTimeout)
                    break;
                if (rs == RecvStatus::kClosed) {
                    mark_dead(w, "closed");
                    break;
                }
                received = true;
                timeout = 0;  // drain without blocking
                Message reply;
                if (!decode(line, reply)) {
                    // A worker emitting undecodable frames is unreliable;
                    // killing it re-queues its tasks instead of leaving
                    // them in flight forever (which would wedge the batch).
                    mark_dead(w, "bad_frame");
                    break;
                }
                health_touch(w);
                if (reply.type == MsgType::kHeartbeat) {
                    health_heartbeat(w);
                    continue;
                }
                if (reply.type == MsgType::kGoodbye) {
                    // Worker announcing a clean exit mid-run; keep its
                    // spans, let the subsequent close re-queue its work.
                    import_spans(w, reply);
                    continue;
                }
                auto out_it = wk.outstanding.find(reply.id);
                if (out_it == wk.outstanding.end()) {
                    // Reply to an id this worker was never sent: the
                    // worker failed to decode a dispatch (its error
                    // frames carry id 0) or has a protocol bug. Same
                    // treatment as garbage.
                    mark_dead(w, "protocol");
                    break;
                }
                wk.outstanding.erase(out_it);
                wk.inflight = std::max(0, wk.inflight - 1);
                health_reply(w);
                auto it = id_to_task.find(reply.id);
                if (it == id_to_task.end()) {
                    // A late reply from an earlier batch (a straggler
                    // duplicate that outlived its evaluate_batch call, or
                    // leftover work from an aborted batch): benign, just
                    // frees the worker slot.
                    continue;
                }
                std::size_t task = it->second;
                id_to_task.erase(it);
                TaskState& t = tasks[task];
                drop_dispatch(t, w);
                if (reply.type == MsgType::kResult) {
                    double latency =
                        std::chrono::duration<double>(Clock::now() -
                                                      t.last_sent)
                            .count();
                    CoordMetrics::get().results.add();
                    CoordMetrics::get().roundtrip.record(latency);
                    health_result(w, latency);
                    import_spans(w, reply);
                    if (!t.done) {
                        t.done = true;
                        results[task] =
                            EvalResult{reply.value, reply.feasible};
                        if (eval_seconds)
                            *eval_seconds += reply.eval_seconds;
                        ++done_count;
                    }
                } else {
                    // Worker answered with an error frame.
                    CoordMetrics::get().worker_errors.add();
                    if (!t.done) {
                        t.errors += 1;
                        if (t.errors >= kMaxTaskErrors) {
                            throw std::runtime_error(
                                "coordinator: evaluation failed: " +
                                reply.text);
                        }
                        if (!t.queued && t.live_on.empty()) {
                            t.queued = true;
                            pending.push_back(task);
                        }
                    }
                }
            }
        }

        // ---- Dead-worker detection via missed heartbeats. ----
        // A worker holding outstanding work that has gone silent past
        // the grace window is killed here, re-queueing its shards,
        // instead of the batch wedging until its transport closes.
        for (std::size_t sw : stale_workers())
            mark_dead(sw, "heartbeat");

        // ---- Straggler re-dispatch. ----
        if (opt_.straggler_ms > 0) {
            auto now = Clock::now();
            for (std::size_t i = 0; i < n; ++i) {
                TaskState& t = tasks[i];
                if (t.done || t.queued || t.live_on.empty())
                    continue;
                auto age = std::chrono::duration_cast<
                               std::chrono::milliseconds>(now - t.last_sent)
                               .count();
                if (age < opt_.straggler_ms)
                    continue;
                for (std::size_t w = 0; w < workers_.size(); ++w) {
                    Worker& wk = *workers_[w];
                    bool already = std::find(t.live_on.begin(),
                                             t.live_on.end(),
                                             w) != t.live_on.end();
                    if (!wk.alive || already || wk.inflight >= wk.capacity)
                        continue;
                    CoordMetrics::get().redispatched.add();
                    send_task(w, i);
                    break;
                }
            }
        }
    }

    if (spec.cache) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!tasks[i].from_cache)
                spec.cache->insert(spec.cache_namespace, configs[i],
                                   results[i]);
        }
    }
    return results;
}

void
Coordinator::drive(AskTellTuner& tuner, const BatchSpec& spec,
                   int batch_size, int max_evals,
                   const std::string& checkpoint_path)
{
    if (batch_size < 1)
        batch_size = 1;
    int done = 0;
    while (tuner.remaining() > 0 && (max_evals < 0 || done < max_evals)) {
        int want = batch_size;
        if (max_evals >= 0)
            want = std::min(want, max_evals - done);
        std::vector<Configuration> batch = tuner.suggest(want);
        if (batch.empty())
            break;
        BatchSpec round = spec;
        round.first_index = tuner.history().size();
        double eval_seconds = 0.0;
        std::vector<EvalResult> results =
            evaluate_batch(round, batch, &eval_seconds);
        tuner.observe(batch, results);
        tuner.mutable_history().eval_seconds += eval_seconds;
        done += static_cast<int>(batch.size());
        if (!checkpoint_path.empty())
            save_checkpoint(checkpoint_path, tuner);
    }
}

TuningHistory
Coordinator::run(AskTellTuner& tuner, const BatchSpec& spec, int batch_size)
{
    drive(tuner, spec, batch_size, -1);
    return tuner.take_history();
}

void
Coordinator::drive_async(AskTellTuner& tuner, const BatchSpec& spec,
                         int slots, int max_evals,
                         const std::string& checkpoint_path,
                         const AsyncResultFn& on_result,
                         std::vector<PendingEval> resume_pending)
{
    if (slots < 1)
        slots = 1;
    obs::Span drive_span("coord.drive_async", "coord");

    /** One in-flight evaluation, keyed by its evaluation index. */
    struct AsyncTask {
      Configuration config;
      bool queued = true;  ///< awaiting (re-)dispatch to a worker
      int errors = 0;
      std::vector<std::size_t> live_on;  ///< workers with a dispatch out
      Clock::time_point last_sent;
    };
    std::map<std::uint64_t, AsyncTask> active;
    std::unordered_map<std::uint64_t, std::uint64_t> id_to_index;
    int told = 0;

    // ---- Suggest-ahead pipeline (opt_.suggest_ahead, slots >= 2). ----
    // The speculative call runs on a dedicated side lane; the tuner is
    // single-threaded state, so every tuner access below must absorb the
    // speculation first (collect_ahead). The drain guard makes sure the
    // side task has finished before this frame unwinds on any throw.
    const bool use_ahead = opt_.suggest_ahead && slots >= 2;
    std::unique_ptr<ThreadPool> ahead_pool;
    if (use_ahead)
        ahead_pool = std::make_unique<ThreadPool>(1);
    SuggestAhead ahead;
    std::deque<Configuration> ready;  // prefetched, not yet dispatched
    bool tuner_dry = false;
    auto collect_ahead = [&] {
        if (!ahead.active())
            return;
        std::vector<Configuration> got = ahead.collect();
        if (got.empty())
            tuner_dry = true;
        for (Configuration& c : got)
            ready.push_back(std::move(c));
    };
    struct AheadDrain {
        SuggestAhead& a;
        ~AheadDrain()
        {
            if (a.active()) {
                try {
                    a.collect();
                } catch (...) {
                }
            }
        }
    } ahead_drain{ahead};

    // Indices are dealt sequentially over the run: observed + in-flight
    // always cover a prefix of the index space.
    std::uint64_t next_index = tuner.history().size();
    for (PendingEval& p : resume_pending) {
        AsyncTask t;
        t.config = std::move(p.config);
        next_index = std::max(next_index, p.index + 1);
        active.emplace(p.index, std::move(t));
    }
    next_index =
        std::max(next_index, tuner.history().size() + active.size());

    // Observe one landed result: cache it, tell the tuner, checkpoint
    // the run with the work still in flight, notify the caller — the
    // same per-tell sequence as EvalEngine's async drive.
    auto tell = [&](std::uint64_t index, Configuration config,
                    const EvalResult& r, double seconds, bool from_cache) {
        collect_ahead();  // serialize: never tell while a suggest runs
        std::vector<PendingEval> still_pending;
        if (!checkpoint_path.empty()) {
            still_pending.reserve(active.size());
            for (const auto& [i, t] : active)
                still_pending.push_back(PendingEval{i, t.config});
        }
        AsyncEvent ev;
        ev.index = index;
        ev.config = std::move(config);
        ev.result = r;
        ev.eval_seconds = seconds;
        ev.from_cache = from_cache;
        tell_async_result(tuner, std::move(ev), spec.cache,
                          spec.cache_namespace, checkpoint_path,
                          still_pending, on_result);
        ++told;
    };

    auto mark_dead = [&](std::size_t w, const char* reason) {
        kill_worker(w, reason);
        for (auto& [index, t] : active) {
            t.live_on.erase(
                std::remove(t.live_on.begin(), t.live_on.end(), w),
                t.live_on.end());
            if (t.live_on.empty())
                t.queued = true;
        }
    };

    auto send_task = [&](std::size_t w, std::uint64_t index) -> bool {
        AsyncTask& t = active.at(index);
        Message m;
        m.type = MsgType::kEvaluate;
        m.id = next_msg_id_++;
        m.benchmark = spec.benchmark;
        m.seed = spec.run_seed;
        m.index = index;
        m.config = t.config;
        stamp_trace(m);
        if (!workers_[w]->transport->send(encode(m))) {
            mark_dead(w, "send_failed");
            return false;
        }
        workers_[w]->inflight += 1;
        workers_[w]->outstanding.insert(m.id);
        health_dispatch(w);
        CoordMetrics& cm = CoordMetrics::get();
        cm.dispatched.add();
        int inflight = 0;
        for (const auto& wk : workers_)
            inflight += wk->inflight;
        cm.inflight_peak.set_max(static_cast<double>(inflight));
        id_to_index[m.id] = index;
        t.live_on.push_back(w);
        t.queued = false;
        t.last_sent = Clock::now();
        return true;
    };

    for (;;) {
        // ---- Refill free slots from the tuner (never barrier). ----
        while (static_cast<int>(active.size()) < slots &&
               (max_evals < 0 ||
                told + static_cast<int>(active.size()) < max_evals)) {
            Configuration config;
            if (!ready.empty()) {
                config = std::move(ready.front());
                ready.pop_front();
                CoordMetrics::get().ahead_used.add();
            } else if (!tuner_dry) {
                collect_ahead();
                if (!ready.empty())
                    continue;  // re-check caps with the prefetched config
                std::vector<Configuration> pending;
                pending.reserve(active.size());
                for (const auto& [index, t] : active)
                    pending.push_back(t.config);
                std::vector<Configuration> next =
                    tuner.suggest_with_pending(1, pending);
                if (next.empty())
                    break;
                config = std::move(next.front());
            } else {
                break;
            }
            std::uint64_t index = next_index++;
            if (spec.cache) {
                if (auto hit =
                        spec.cache->lookup(spec.cache_namespace, config)) {
                    // A cache hit lands instantly; its slot never opens.
                    tell(index, std::move(config), *hit, 0.0, true);
                    continue;
                }
            }
            AsyncTask t;
            t.config = std::move(config);
            active.emplace(index, std::move(t));
        }
        if (active.empty())
            break;

        // ---- Assign queued tasks under per-worker backpressure. ----
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            Worker& wk = *workers_[w];
            if (!wk.alive)
                continue;
            for (auto& [index, t] : active) {
                if (wk.inflight >= wk.capacity || !wk.alive)
                    break;
                if (t.queued)
                    send_task(w, index);
            }
        }
        if (num_workers() == 0)
            throw std::runtime_error("coordinator: no live workers remain");

        // ---- Overlap the next suggestion with the in-flight work. Only
        // launched when the prefetch could actually be dispatched later
        // (budget and caps leave room): a suggestion consumes tuner RNG
        // and dedup state, so an undispatchable one would be lost.
        if (use_ahead && !ahead.active() && !tuner_dry && !active.empty() &&
            ready.empty() &&
            (max_evals < 0 ||
             told + static_cast<int>(active.size()) < max_evals) &&
            tuner.remaining() > static_cast<int>(active.size())) {
            std::vector<Configuration> pending;
            pending.reserve(active.size());
            for (const auto& [index, t] : active)
                pending.push_back(t.config);
            CoordMetrics::get().ahead_launched.add();
            ahead.launch(*ahead_pool, tuner, std::move(pending));
        }

        // ---- Drain arrivals; tell each one the moment it lands. ----
        bool received = false;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            Worker& wk = *workers_[w];
            if (!wk.alive || wk.inflight == 0)
                continue;
            int timeout = received ? 0 : opt_.poll_ms;
            for (;;) {
                std::string line;
                RecvStatus rs = wk.transport->recv(line, timeout);
                if (rs == RecvStatus::kTimeout)
                    break;
                if (rs == RecvStatus::kClosed) {
                    mark_dead(w, "closed");
                    break;
                }
                received = true;
                timeout = 0;  // drain without blocking
                Message reply;
                if (!decode(line, reply)) {
                    // Same policy as evaluate_batch: an undecodable
                    // frame marks the worker dead, re-queueing its work.
                    mark_dead(w, "bad_frame");
                    break;
                }
                health_touch(w);
                if (reply.type == MsgType::kHeartbeat) {
                    health_heartbeat(w);
                    continue;
                }
                if (reply.type == MsgType::kGoodbye) {
                    import_spans(w, reply);
                    continue;
                }
                auto out_it = wk.outstanding.find(reply.id);
                if (out_it == wk.outstanding.end()) {
                    mark_dead(w, "protocol");
                    break;
                }
                wk.outstanding.erase(out_it);
                wk.inflight = std::max(0, wk.inflight - 1);
                health_reply(w);
                auto map_it = id_to_index.find(reply.id);
                if (map_it == id_to_index.end())
                    continue;  // late reply from an earlier drive: benign
                std::uint64_t index = map_it->second;
                id_to_index.erase(map_it);
                auto task_it = active.find(index);
                if (task_it == active.end())
                    continue;  // straggler duplicate; first result won
                AsyncTask& t = task_it->second;
                t.live_on.erase(
                    std::remove(t.live_on.begin(), t.live_on.end(), w),
                    t.live_on.end());
                if (reply.type == MsgType::kResult) {
                    double latency =
                        std::chrono::duration<double>(Clock::now() -
                                                      t.last_sent)
                            .count();
                    CoordMetrics::get().results.add();
                    CoordMetrics::get().roundtrip.record(latency);
                    health_result(w, latency);
                    import_spans(w, reply);
                    Configuration config = std::move(t.config);
                    active.erase(task_it);
                    tell(index, std::move(config),
                         EvalResult{reply.value, reply.feasible},
                         reply.eval_seconds, false);
                } else {
                    CoordMetrics::get().worker_errors.add();
                    t.errors += 1;
                    if (t.errors >= kMaxTaskErrors) {
                        throw std::runtime_error(
                            "coordinator: evaluation failed: " + reply.text);
                    }
                    if (t.live_on.empty())
                        t.queued = true;
                }
            }
        }

        // ---- Dead-worker detection via missed heartbeats. ----
        for (std::size_t sw : stale_workers())
            mark_dead(sw, "heartbeat");

        // ---- Straggler re-dispatch. ----
        if (opt_.straggler_ms > 0) {
            auto now = Clock::now();
            for (auto& [index, t] : active) {
                if (t.queued || t.live_on.empty())
                    continue;
                auto age = std::chrono::duration_cast<
                               std::chrono::milliseconds>(now - t.last_sent)
                               .count();
                if (age < opt_.straggler_ms)
                    continue;
                for (std::size_t w = 0; w < workers_.size(); ++w) {
                    Worker& wk = *workers_[w];
                    bool already = std::find(t.live_on.begin(),
                                             t.live_on.end(),
                                             w) != t.live_on.end();
                    if (!wk.alive || already || wk.inflight >= wk.capacity)
                        continue;
                    CoordMetrics::get().redispatched.add();
                    send_task(w, index);
                    break;
                }
            }
        }
    }
}

TuningHistory
Coordinator::run_async(AskTellTuner& tuner, const BatchSpec& spec, int slots)
{
    drive_async(tuner, spec, slots, -1);
    return tuner.take_history();
}

}  // namespace baco::serve
