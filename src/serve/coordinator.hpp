#ifndef BACO_SERVE_COORDINATOR_HPP_
#define BACO_SERVE_COORDINATOR_HPP_

/**
 * @file
 * The multi-worker evaluation coordinator.
 *
 * A Coordinator owns transports to registered workers and shards each
 * suggest(n) batch across them — the batch itself is produced by the
 * tuner's constant-liar machinery, so the coordinator is a drop-in
 * replacement for EvalEngine::evaluate_batch across process/host
 * boundaries.
 *
 * Scheduling is shard-deterministic: results are assembled in batch
 * order and each evaluation's noise stream is derived worker-side from
 * (run seed, evaluation index), so the assembled history is independent
 * of which worker ran what and in which order — a coordinator-driven run
 * reproduces the same-seed EvalEngine run bit-for-bit.
 *
 * Robustness: per-worker backpressure (at most `capacity` frames in
 * flight per worker), straggler re-dispatch (a task outstanding longer
 * than straggler_ms is duplicated onto a free worker; first result
 * wins — duplicates are harmless because evaluation is deterministic),
 * and dead-worker recovery (tasks whose only live dispatch was on a
 * closed transport are re-queued).
 *
 * drive_async() is the tell-as-results-land counterpart of drive(): the
 * fleet never barriers on a full batch — each result frame is told to
 * the tuner the moment it arrives and the freed slot is refilled via
 * suggest_with_pending(), so a straggling compile on one worker never
 * idles the rest of the fleet. Same determinism trade as
 * EvalEngine::drive_async: per-result reproducibility, but multi-slot
 * history order depends on arrival order.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/ask_tell.hpp"
#include "exec/checkpoint.hpp"

namespace baco {
class EvalCache;
}

namespace baco::serve {

class Transport;

/** Coordinator knobs. */
struct CoordinatorOptions {
  /**
   * In-flight cap per worker when the worker's hello does not advertise
   * a capacity (and an upper bound when it does).
   */
  int max_inflight_per_worker = 2;
  /** Re-dispatch tasks outstanding longer than this; <= 0 disables. */
  int straggler_ms = -1;
  /** Poll granularity while waiting for results. */
  int poll_ms = 20;
  /** Handshake timeout for add_worker(). */
  int handshake_ms = 10000;
};

/** Everything identifying one sharded batch. */
struct BatchSpec {
  /** Registry benchmark name (workers resolve it independently). */
  std::string benchmark;
  std::uint64_t run_seed = 0;
  std::uint64_t first_index = 0;
  /** Optional shared cache consulted before dispatch (not owned). */
  EvalCache* cache = nullptr;
  std::string cache_namespace;
};

/** Shards evaluation batches across registered workers. */
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opt = CoordinatorOptions{});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /**
   * Register a worker: waits for its hello frame (capacity handshake).
   * Returns the worker's id, or -1 when the handshake fails.
   */
  int add_worker(std::unique_ptr<Transport> transport);

  /**
   * Register a worker whose hello frame was already consumed and
   * validated by the caller (the Acceptor routes worker connections
   * here after reading their first frame). capacity is the hello's
   * advertised slot count (<= 0 falls back to 1).
   */
  int add_worker_registered(std::unique_ptr<Transport> transport,
                            int capacity);

  /** Workers still believed alive. */
  std::size_t num_workers() const;

  /**
   * Evaluate one batch across the worker fleet. Results are returned in
   * input order; evaluation i uses eval_rng_for(run_seed, first_index+i)
   * worker-side. Cache hits skip dispatch entirely. *eval_seconds
   * (optional) accumulates the summed per-evaluation durations.
   * @throws std::runtime_error when no live worker remains.
   */
  std::vector<EvalResult> evaluate_batch(
      const BatchSpec& spec, const std::vector<Configuration>& configs,
      double* eval_seconds = nullptr);

  /**
   * Drive an ask-tell tuner through the worker fleet, batch_size
   * configurations per round, like EvalEngine::drive. When
   * checkpoint_path is nonempty a resume checkpoint is rewritten after
   * every observed batch.
   */
  void drive(AskTellTuner& tuner, const BatchSpec& spec, int batch_size,
             int max_evals = -1, const std::string& checkpoint_path = {});

  /** drive() to budget exhaustion, then take the finalized history. */
  TuningHistory run(AskTellTuner& tuner, const BatchSpec& spec,
                    int batch_size);

  /**
   * Fully asynchronous drive: keep up to `slots` evaluations in flight
   * across the fleet (per-worker capacity still applies), tell each
   * result as it arrives, refill freed slots via suggest_with_pending().
   * Checkpoints (when checkpoint_path is nonempty) record the in-flight
   * evaluations; resume_pending re-dispatches those of a killed run.
   * on_result (optional) fires after every tell, in arrival order.
   * @throws std::runtime_error when no live worker remains or an
   * evaluation keeps failing.
   */
  void drive_async(AskTellTuner& tuner, const BatchSpec& spec, int slots,
                   int max_evals = -1,
                   const std::string& checkpoint_path = {},
                   const AsyncResultFn& on_result = {},
                   std::vector<PendingEval> resume_pending = {});

  /** drive_async() to budget exhaustion, then take the history. */
  TuningHistory run_async(AskTellTuner& tuner, const BatchSpec& spec,
                          int slots);

  /** Send shutdown to every live worker and close the transports. */
  void shutdown();

 private:
  struct Worker;

  /** Send task `task` to worker w; false when the send fails. */
  bool dispatch_to(std::size_t w, std::size_t task, const BatchSpec& spec,
                   const std::vector<Configuration>& configs);

  CoordinatorOptions opt_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t next_msg_id_ = 1;
};

}  // namespace baco::serve

#endif  // BACO_SERVE_COORDINATOR_HPP_
