#ifndef BACO_SERVE_COORDINATOR_HPP_
#define BACO_SERVE_COORDINATOR_HPP_

/**
 * @file
 * The multi-worker evaluation coordinator.
 *
 * A Coordinator owns transports to registered workers and shards each
 * suggest(n) batch across them — the batch itself is produced by the
 * tuner's constant-liar machinery, so the coordinator is a drop-in
 * replacement for EvalEngine::evaluate_batch across process/host
 * boundaries.
 *
 * Scheduling is shard-deterministic: results are assembled in batch
 * order and each evaluation's noise stream is derived worker-side from
 * (run seed, evaluation index), so the assembled history is independent
 * of which worker ran what and in which order — a coordinator-driven run
 * reproduces the same-seed EvalEngine run bit-for-bit.
 *
 * Robustness: per-worker backpressure (at most `capacity` frames in
 * flight per worker), straggler re-dispatch (a task outstanding longer
 * than straggler_ms is duplicated onto a free worker; first result
 * wins — duplicates are harmless because evaluation is deterministic),
 * and dead-worker recovery (tasks whose only live dispatch was on a
 * closed transport are re-queued).
 *
 * drive_async() is the tell-as-results-land counterpart of drive(): the
 * fleet never barriers on a full batch — each result frame is told to
 * the tuner the moment it arrives and the freed slot is refilled via
 * suggest_with_pending(), so a straggling compile on one worker never
 * idles the rest of the fleet. Same determinism trade as
 * EvalEngine::drive_async: per-result reproducibility, but multi-slot
 * history order depends on arrival order.
 *
 * Fleet health: every received frame refreshes the worker's last-seen
 * time in a WorkerHealth registry (its own mutex, so health() is safe
 * from stats/dump threads while a drive runs). Workers advertising a
 * heartbeat interval in their hello send heartbeat frames when idle
 * between requests; a worker holding outstanding work that goes silent
 * for heartbeat_grace intervals is declared dead inside the drive loop
 * — its shards re-queue through the same path as a closed transport,
 * instead of the batch wedging on a blocked read.
 */

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"
#include "exec/ask_tell.hpp"
#include "exec/checkpoint.hpp"

namespace baco {
class EvalCache;
}

namespace baco::serve {

struct Message;
class Transport;

/** Coordinator knobs. */
struct CoordinatorOptions {
  /**
   * In-flight cap per worker when the worker's hello does not advertise
   * a capacity (and an upper bound when it does).
   */
  int max_inflight_per_worker = 2;
  /** Re-dispatch tasks outstanding longer than this; <= 0 disables. */
  int straggler_ms = -1;
  /** Poll granularity while waiting for results. */
  int poll_ms = 20;
  /** Handshake timeout for add_worker(). */
  int handshake_ms = 10000;
  /**
   * Missed heartbeat intervals before a silent worker with outstanding
   * work is declared dead (only workers advertising heartbeat_ms).
   */
  int heartbeat_grace = 2;
  /**
   * Suggest-ahead pipelining for drive_async(): precompute the next
   * suggestion on a side thread while the fleet evaluates, so a freed
   * slot refills without waiting on the tuner's refit + acquisition.
   * Same semantics and caveats as EvalEngineOptions::suggest_ahead;
   * ignored when slots < 2.
   */
  bool suggest_ahead = false;
};

/** Everything identifying one sharded batch. */
struct BatchSpec {
  /** Registry benchmark name (workers resolve it independently). */
  std::string benchmark;
  std::uint64_t run_seed = 0;
  std::uint64_t first_index = 0;
  /** Optional shared cache consulted before dispatch (not owned). */
  EvalCache* cache = nullptr;
  std::string cache_namespace;
};

/** Point-in-time view of one worker's health (see Coordinator::health). */
struct WorkerHealthSnapshot {
  int worker = 0;
  std::string state;  ///< "alive", "slow" (>1 missed interval), "dead"
  int inflight = 0;
  std::uint64_t completed = 0;   ///< result frames received
  std::uint64_t heartbeats = 0;  ///< heartbeat frames received
  double ewma_latency_s = 0.0;   ///< smoothed result round-trip
  double last_seen_s = 0.0;      ///< seconds since the last frame
  int heartbeat_ms = 0;          ///< advertised interval (0 = none)
};

/** Shards evaluation batches across registered workers. */
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opt = CoordinatorOptions{});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /**
   * Register a worker: waits for its hello frame (capacity handshake).
   * Returns the worker's id, or -1 when the handshake fails.
   */
  int add_worker(std::unique_ptr<Transport> transport);

  /**
   * Register a worker whose hello frame was already consumed and
   * validated by the caller (the Acceptor routes worker connections
   * here after reading their first frame). capacity is the hello's
   * advertised slot count (<= 0 falls back to 1); heartbeat_ms its
   * advertised beacon interval (0 = none).
   */
  int add_worker_registered(std::unique_ptr<Transport> transport,
                            int capacity, int heartbeat_ms = 0);

  /** Workers still believed alive. */
  std::size_t num_workers() const;

  /**
   * Health snapshot of every registered worker, alive or dead.
   * Thread-safe against a concurrently running drive (the registry has
   * its own mutex), so stats connections and periodic dumps can read it
   * mid-run. Staleness ("slow") is only judged while the worker holds
   * outstanding work — an idle worker's frames sit undrained in the
   * socket buffer, which is not silence.
   */
  std::vector<WorkerHealthSnapshot> health() const;

  /**
   * Evaluate one batch across the worker fleet. Results are returned in
   * input order; evaluation i uses eval_rng_for(run_seed, first_index+i)
   * worker-side. Cache hits skip dispatch entirely. *eval_seconds
   * (optional) accumulates the summed per-evaluation durations.
   * @throws std::runtime_error when no live worker remains.
   */
  std::vector<EvalResult> evaluate_batch(
      const BatchSpec& spec, const std::vector<Configuration>& configs,
      double* eval_seconds = nullptr);

  /**
   * Drive an ask-tell tuner through the worker fleet, batch_size
   * configurations per round, like EvalEngine::drive. When
   * checkpoint_path is nonempty a resume checkpoint is rewritten after
   * every observed batch.
   */
  void drive(AskTellTuner& tuner, const BatchSpec& spec, int batch_size,
             int max_evals = -1, const std::string& checkpoint_path = {});

  /** drive() to budget exhaustion, then take the finalized history. */
  TuningHistory run(AskTellTuner& tuner, const BatchSpec& spec,
                    int batch_size);

  /**
   * Fully asynchronous drive: keep up to `slots` evaluations in flight
   * across the fleet (per-worker capacity still applies), tell each
   * result as it arrives, refill freed slots via suggest_with_pending().
   * Checkpoints (when checkpoint_path is nonempty) record the in-flight
   * evaluations; resume_pending re-dispatches those of a killed run.
   * on_result (optional) fires after every tell, in arrival order.
   * @throws std::runtime_error when no live worker remains or an
   * evaluation keeps failing.
   */
  void drive_async(AskTellTuner& tuner, const BatchSpec& spec, int slots,
                   int max_evals = -1,
                   const std::string& checkpoint_path = {},
                   const AsyncResultFn& on_result = {},
                   std::vector<PendingEval> resume_pending = {});

  /** drive_async() to budget exhaustion, then take the history. */
  TuningHistory run_async(AskTellTuner& tuner, const BatchSpec& spec,
                          int slots);

  /** Send shutdown to every live worker and close the transports. */
  void shutdown();

 private:
  struct Worker;

  /** Mirror of one worker's liveness, guarded by health_mutex_. */
  struct HealthState {
    bool alive = true;
    int inflight = 0;
    std::uint64_t completed = 0;
    std::uint64_t heartbeats = 0;
    double ewma_latency_s = 0.0;
    std::chrono::steady_clock::time_point last_seen;
    int heartbeat_ms = 0;
  };

  /** Send task `task` to worker w; false when the send fails. */
  bool dispatch_to(std::size_t w, std::size_t task, const BatchSpec& spec,
                   const std::vector<Configuration>& configs);

  /**
   * Transport-level death: close, clear in-flight accounting, bump the
   * coord.worker.dead counter, log the event. The drive loops' own
   * mark_dead wrappers re-queue the worker's tasks on top of this.
   */
  void kill_worker(std::size_t w, const char* reason);

  /** Stamp the trace context onto an outgoing evaluate frame. */
  static void stamp_trace(Message& m);

  /** Merge a reply's shipped spans into the trace as worker-w's track. */
  static void import_spans(std::size_t w, const Message& reply);

  // WorkerHealth registry updates (all take health_mutex_ themselves,
  // which is why stats/dump threads can call health() mid-drive).
  void health_register(int heartbeat_ms) BACO_EXCLUDES(health_mutex_);
  void health_touch(std::size_t w) BACO_EXCLUDES(health_mutex_);
  void health_dispatch(std::size_t w) BACO_EXCLUDES(health_mutex_);
  void health_reply(std::size_t w) BACO_EXCLUDES(health_mutex_);
  void health_result(std::size_t w, double latency_s)
      BACO_EXCLUDES(health_mutex_);
  void health_heartbeat(std::size_t w) BACO_EXCLUDES(health_mutex_);
  void health_dead(std::size_t w) BACO_EXCLUDES(health_mutex_);
  /** Workers holding outstanding work silent past the grace window. */
  std::vector<std::size_t> stale_workers() const
      BACO_EXCLUDES(health_mutex_);

  CoordinatorOptions opt_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t next_msg_id_ = 1;

  mutable Mutex health_mutex_;
  /** Index-parallel with workers_. */
  std::vector<HealthState> health_ BACO_GUARDED_BY(health_mutex_);
};

}  // namespace baco::serve

#endif  // BACO_SERVE_COORDINATOR_HPP_
