#ifndef BACO_SERVE_COORDINATOR_HPP_
#define BACO_SERVE_COORDINATOR_HPP_

/**
 * @file
 * The run-multiplexed multi-worker evaluation coordinator.
 *
 * A Coordinator owns transports to registered workers and shards
 * evaluation batches across them — each batch is produced by a tuner's
 * constant-liar machinery, so the coordinator is a drop-in replacement
 * for EvalEngine::evaluate_batch across process/host boundaries.
 *
 * Concurrency model: the coordinator multiplexes any number of
 * concurrent *runs* over one shared fleet. A run is opened with
 * begin_run() (an RAII RunLease), its evaluate frames are tagged with
 * the run id on the wire, and one reader thread per worker demultiplexes
 * landed results into per-run completion queues. A small scheduler
 * leases worker slots to runs fairly — round-robin over active runs,
 * one dispatch per run per pass, honoring per-worker capacity and each
 * run's own in-flight cap — so a slow tenant can no longer starve the
 * rest (the old design serialized whole runs behind a fleet mutex).
 * Admission control (max_active_runs) refuses runs past the cap with a
 * CoordinatorBusy error after an optional bounded wait.
 *
 * Scheduling stays shard-deterministic per run: results are assembled
 * in batch order and each evaluation's noise stream is derived
 * worker-side from (run seed, evaluation index), so the assembled
 * history is independent of which worker ran what, in which order, and
 * of whatever other runs shared the fleet — a coordinator-driven run
 * reproduces the same-seed EvalEngine run bit-for-bit, concurrent or
 * not.
 *
 * Robustness: per-worker backpressure (at most `capacity` frames in
 * flight per worker), straggler re-dispatch (a task outstanding longer
 * than straggler_ms is duplicated onto a free worker; first result
 * wins — duplicates are harmless because evaluation is deterministic),
 * dead-worker recovery (tasks whose only live dispatch was on a closed
 * transport are re-queued), and worker re-registration (a worker killed
 * by heartbeat loss can reconnect through add_worker_registered — the
 * late-hello path — and is immediately re-leased to active runs, which
 * is how their re-queued shards drain).
 *
 * drive_async() is the tell-as-results-land counterpart of drive(): the
 * fleet never barriers on a full batch — each result frame is told to
 * the tuner the moment it arrives and the freed slot is refilled via
 * suggest_with_pending(), so a straggling compile on one worker never
 * idles the rest of the fleet. Same determinism trade as
 * EvalEngine::drive_async: per-result reproducibility, but multi-slot
 * history order depends on arrival order.
 *
 * Fleet health: every received frame refreshes the worker's last-seen
 * time in a WorkerHealth registry (its own mutex, so health() is safe
 * from stats/dump threads while a drive runs). Workers advertising a
 * heartbeat interval in their hello send heartbeat frames when idle
 * between requests; a worker holding outstanding work that goes silent
 * for heartbeat_grace intervals is declared dead by the drivers' sweep
 * — its shards re-queue through the same path as a closed transport,
 * instead of the run wedging on a blocked read.
 */

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/thread_annotations.hpp"
#include "exec/ask_tell.hpp"
#include "exec/checkpoint.hpp"

namespace baco {
class EvalCache;
}

namespace baco::serve {

struct Message;
class Transport;

/** Coordinator knobs. */
struct CoordinatorOptions {
  /**
   * In-flight cap per worker when the worker's hello does not advertise
   * a capacity (and an upper bound when it does).
   */
  int max_inflight_per_worker = 2;
  /** Re-dispatch tasks outstanding longer than this; <= 0 disables. */
  int straggler_ms = -1;
  /** Poll granularity while waiting for results. */
  int poll_ms = 20;
  /** Handshake timeout for add_worker(). */
  int handshake_ms = 10000;
  /**
   * Missed heartbeat intervals before a silent worker with outstanding
   * work is declared dead (only workers advertising heartbeat_ms).
   */
  int heartbeat_grace = 2;
  /**
   * Suggest-ahead pipelining for drive_async(): precompute the next
   * suggestion on a side thread while the fleet evaluates, so a freed
   * slot refills without waiting on the tuner's refit + acquisition.
   * Same semantics and caveats as EvalEngineOptions::suggest_ahead;
   * ignored when slots < 2.
   */
  bool suggest_ahead = false;
  /**
   * Admission control: maximum concurrently active runs; a begin_run()
   * past the cap throws CoordinatorBusy. 0 = unlimited.
   */
  int max_active_runs = 0;
  /**
   * How long begin_run() may wait for a slot before throwing
   * CoordinatorBusy when the run cap is reached; <= 0 rejects
   * immediately.
   */
  int admission_wait_ms = 0;
};

/** Everything identifying one sharded batch. */
struct BatchSpec {
  /** Registry benchmark name (workers resolve it independently). */
  std::string benchmark;
  std::uint64_t run_seed = 0;
  std::uint64_t first_index = 0;
  /** Optional shared cache consulted before dispatch (not owned). */
  EvalCache* cache = nullptr;
  std::string cache_namespace;
};

/** Point-in-time view of one worker's health (see Coordinator::health). */
struct WorkerHealthSnapshot {
  int worker = 0;
  std::string state;  ///< "alive", "slow" (>1 missed interval), "dead"
  int inflight = 0;
  std::uint64_t completed = 0;   ///< result frames received
  std::uint64_t heartbeats = 0;  ///< heartbeat frames received
  double ewma_latency_s = 0.0;   ///< smoothed result round-trip
  double last_seen_s = 0.0;      ///< seconds since the last frame
  int heartbeat_ms = 0;          ///< advertised interval (0 = none)
};

/** Point-in-time view of one active run (see Coordinator::run_stats). */
struct RunStatsSnapshot {
  std::uint64_t run = 0;
  int inflight = 0;           ///< tasks live on the fleet
  std::size_t queued = 0;     ///< tasks waiting for a worker slot
  std::uint64_t landed = 0;   ///< results landed so far
};

/** begin_run() refusal: the run cap (max_active_runs) is reached. */
class CoordinatorBusy : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/** Shards evaluation batches of concurrent runs across a worker fleet. */
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opt = CoordinatorOptions{});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /**
   * RAII lease on one multiplexed run: holds the run's admission slot
   * and per-run completion queue; destruction (or reset()) ends the run
   * and wakes admission waiters. Movable, not copyable. A
   * default-constructed lease is empty (operator bool is false).
   */
  class RunLease {
   public:
    RunLease() = default;
    RunLease(RunLease&& o) noexcept : coordinator_(o.coordinator_),
                                      id_(o.id_)
    {
        o.coordinator_ = nullptr;
        o.id_ = 0;
    }
    RunLease&
    operator=(RunLease&& o) noexcept
    {
        if (this != &o) {
            reset();
            coordinator_ = o.coordinator_;
            id_ = o.id_;
            o.coordinator_ = nullptr;
            o.id_ = 0;
        }
        return *this;
    }
    ~RunLease() { reset(); }

    /** The run id stamped on this run's wire frames. */
    std::uint64_t id() const { return id_; }
    explicit operator bool() const { return coordinator_ != nullptr; }
    /** End the run now (idempotent). */
    void
    reset()
    {
        if (coordinator_ != nullptr)
            coordinator_->end_run(id_);
        coordinator_ = nullptr;
        id_ = 0;
    }

   private:
    friend class Coordinator;
    RunLease(Coordinator* coordinator, std::uint64_t id)
        : coordinator_(coordinator), id_(id)
    {
    }
    Coordinator* coordinator_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /**
   * Register a worker: waits for its hello frame (capacity handshake).
   * Returns the worker's id, or -1 when the handshake fails.
   */
  int add_worker(std::unique_ptr<Transport> transport);

  /**
   * Register a worker whose hello frame was already consumed and
   * validated by the caller (the Acceptor routes worker connections
   * here after reading their first frame). capacity is the hello's
   * advertised slot count (<= 0 falls back to 1); heartbeat_ms its
   * advertised beacon interval (0 = none). This is also the
   * re-registration path: a worker killed by heartbeat loss or a broken
   * transport reconnects here under a fresh worker id and is
   * immediately leased to active runs.
   */
  int add_worker_registered(std::unique_ptr<Transport> transport,
                            int capacity, int heartbeat_ms = 0);

  /** Workers still believed alive. */
  std::size_t num_workers() const;

  /**
   * Health snapshot of every registered worker, alive or dead.
   * Thread-safe against concurrently running drives (the registry has
   * its own mutex), so stats connections and periodic dumps can read it
   * mid-run. Staleness ("slow") is only judged while the worker holds
   * outstanding work — an idle worker's frames sit undrained in the
   * socket buffer, which is not silence.
   */
  std::vector<WorkerHealthSnapshot> health() const;

  /**
   * Open a multiplexed run. max_inflight caps how many of this run's
   * tasks may be live on the fleet at once (0 = bounded only by fleet
   * capacity). Thread-safe: any number of threads can hold leases and
   * drive their runs concurrently over the shared fleet.
   * @throws CoordinatorBusy when max_active_runs is reached and no slot
   * frees within admission_wait_ms.
   */
  RunLease begin_run(int max_inflight = 0) BACO_EXCLUDES(mu_);

  /** Number of currently active (leased) runs. */
  std::size_t active_runs() const BACO_EXCLUDES(mu_);

  /** Per-run scheduler counters for stats endpoints. */
  std::vector<RunStatsSnapshot> run_stats() const BACO_EXCLUDES(mu_);

  /**
   * Evaluate one batch across the worker fleet under `lease`'s run.
   * Results are returned in input order; evaluation i uses
   * eval_rng_for(run_seed, first_index+i) worker-side. Cache hits skip
   * dispatch entirely. *eval_seconds (optional) accumulates the summed
   * per-evaluation durations.
   * @throws std::runtime_error when no live worker remains or an
   * evaluation keeps failing.
   */
  std::vector<EvalResult> evaluate_batch(
      const RunLease& lease, const BatchSpec& spec,
      const std::vector<Configuration>& configs,
      double* eval_seconds = nullptr);

  /**
   * evaluate_batch under a transient single-batch run (subject to
   * admission control like any other run).
   */
  std::vector<EvalResult> evaluate_batch(
      const BatchSpec& spec, const std::vector<Configuration>& configs,
      double* eval_seconds = nullptr);

  /**
   * Drive an ask-tell tuner through the worker fleet, batch_size
   * configurations per round, like EvalEngine::drive. The whole drive
   * is one run (one admission slot, one wire run id). When
   * checkpoint_path is nonempty a resume checkpoint is rewritten after
   * every observed batch.
   */
  void drive(AskTellTuner& tuner, const BatchSpec& spec, int batch_size,
             int max_evals = -1, const std::string& checkpoint_path = {});

  /** drive() to budget exhaustion, then take the finalized history. */
  TuningHistory run(AskTellTuner& tuner, const BatchSpec& spec,
                    int batch_size);

  /**
   * Fully asynchronous drive: keep up to `slots` evaluations in flight
   * across the fleet (per-worker capacity still applies), tell each
   * result as it arrives, refill freed slots via suggest_with_pending().
   * The whole drive is one run with max_inflight = slots.
   * Checkpoints (when checkpoint_path is nonempty) record the in-flight
   * evaluations; resume_pending re-dispatches those of a killed run.
   * on_result (optional) fires after every tell, in arrival order.
   * @throws std::runtime_error when no live worker remains or an
   * evaluation keeps failing.
   */
  void drive_async(AskTellTuner& tuner, const BatchSpec& spec, int slots,
                   int max_evals = -1,
                   const std::string& checkpoint_path = {},
                   const AsyncResultFn& on_result = {},
                   std::vector<PendingEval> resume_pending = {});

  /** drive_async() to budget exhaustion, then take the history. */
  TuningHistory run_async(AskTellTuner& tuner, const BatchSpec& spec,
                          int slots);

  /**
   * Send shutdown to every live worker, wait briefly for their goodbye
   * frames (final eval counts + trace spans), close the transports and
   * join the reader threads. Idempotent.
   */
  void shutdown();

 private:
  struct Worker;
  struct RunState;

  /** One landed evaluation, demultiplexed into its run's queue. */
  struct LandedEval {
    std::uint64_t key = 0;  ///< wire evaluation index
    EvalResult result;
    double eval_seconds = 0.0;
    bool failed = false;  ///< kMaxTaskErrors exceeded; see error
    std::string error;
  };

  /** Maps an outstanding dispatch id to its run and task key. */
  struct DispatchRec {
    std::uint64_t run = 0;
    std::uint64_t key = 0;
  };

  /** Mirror of one worker's liveness, guarded by health_mutex_. */
  struct HealthState {
    bool alive = true;
    int inflight = 0;
    std::uint64_t completed = 0;
    std::uint64_t heartbeats = 0;
    double ewma_latency_s = 0.0;
    std::chrono::steady_clock::time_point last_seen;
    int heartbeat_ms = 0;
  };

  /** begin_run() body; returns the new run id. */
  std::uint64_t begin_run_id(int max_inflight) BACO_EXCLUDES(mu_);

  /** Close a run: drop its state, wake admission waiters (RunLease). */
  void end_run(std::uint64_t run) BACO_EXCLUDES(mu_);

  /** Add tasks to a run's queue and kick the scheduler. */
  void submit_tasks(
      std::uint64_t run, const BatchSpec& spec,
      std::vector<std::pair<std::uint64_t, Configuration>> tasks)
      BACO_EXCLUDES(mu_);

  /**
   * Move the run's landed results out, waiting up to timeout_ms for the
   * first one. Returns empty on timeout or when the run has no tasks
   * left. @throws std::runtime_error when tasks remain but no live
   * worker does.
   */
  std::vector<LandedEval> wait_landed(std::uint64_t run, int timeout_ms)
      BACO_EXCLUDES(mu_);

  /**
   * Driver-side maintenance: kill heartbeat-stale workers (re-queueing
   * their shards) and duplicate straggling tasks onto free workers.
   */
  void sweep() BACO_EXCLUDES(mu_);

  /** Per-worker reader: demultiplexes frames until the transport dies. */
  void reader_loop(Worker* wk, std::size_t w) BACO_EXCLUDES(mu_);

  /**
   * Fair scheduler: round-robin over active runs (one dispatch per run
   * per pass) until no run has both a queued task and a free worker
   * slot. Runs with inflight >= their cap are skipped.
   */
  void dispatch_ready() BACO_REQUIRES(mu_);

  /** Send task `key` of `run` to worker w; false when the send fails. */
  bool dispatch_one(RunState& run, std::uint64_t key, std::size_t w,
                    bool duplicate) BACO_REQUIRES(mu_);

  /**
   * Transport-level death: close, clear in-flight accounting, re-queue
   * every task whose only live dispatch was on this worker, bump the
   * coord.worker.dead counter, log the event, wake run waiters.
   */
  void kill_worker(std::size_t w, const char* reason) BACO_REQUIRES(mu_);

  /** Workers currently able to take dispatches. */
  std::size_t alive_workers() const BACO_REQUIRES(mu_);

  /** Wake every run's completion waiters (fleet topology changed). */
  void notify_runs() BACO_REQUIRES(mu_);

  /** Stamp the trace context onto an outgoing evaluate frame. */
  static void stamp_trace(Message& m);

  /** Merge a reply's shipped spans into the trace as worker-w's track. */
  static void import_spans(std::size_t w, const Message& reply);

  // WorkerHealth registry updates (all take health_mutex_ themselves,
  // which is why stats/dump threads can call health() mid-drive).
  // Lock order: mu_ before health_mutex_, never the reverse.
  void health_register(int heartbeat_ms) BACO_EXCLUDES(health_mutex_);
  void health_touch(std::size_t w) BACO_EXCLUDES(health_mutex_);
  void health_dispatch(std::size_t w) BACO_EXCLUDES(health_mutex_);
  void health_reply(std::size_t w) BACO_EXCLUDES(health_mutex_);
  void health_result(std::size_t w, double latency_s)
      BACO_EXCLUDES(health_mutex_);
  void health_heartbeat(std::size_t w) BACO_EXCLUDES(health_mutex_);
  void health_dead(std::size_t w) BACO_EXCLUDES(health_mutex_);
  /** Workers holding outstanding work silent past the grace window. */
  std::vector<std::size_t> stale_workers() const
      BACO_EXCLUDES(health_mutex_);

  CoordinatorOptions opt_;

  /**
   * The scheduler mutex: guards the worker table's mutable dispatch
   * state, the run table and the dispatch-id map. Reader threads and
   * driver threads meet here; per-run condition variables (inside
   * RunState) and the admission/shutdown CVs all wait on it.
   */
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Worker>> workers_ BACO_GUARDED_BY(mu_);
  /** Active runs by id (ordered: the scheduler round-robins over it). */
  std::map<std::uint64_t, std::unique_ptr<RunState>> runs_
      BACO_GUARDED_BY(mu_);
  /** Outstanding dispatch ids -> (run, task key). */
  std::unordered_map<std::uint64_t, DispatchRec> dispatches_
      BACO_GUARDED_BY(mu_);
  std::uint64_t next_msg_id_ BACO_GUARDED_BY(mu_) = 1;
  std::uint64_t next_run_id_ BACO_GUARDED_BY(mu_) = 1;
  /** Last run id served by the scheduler (fairness cursor). */
  std::uint64_t rr_cursor_ BACO_GUARDED_BY(mu_) = 0;
  bool shutting_down_ BACO_GUARDED_BY(mu_) = false;
  /** Signaled when a run ends (admission waiters re-check the cap). */
  CondVar admission_cv_;
  /** Signaled on goodbye frames and reader exits during shutdown(). */
  CondVar shutdown_cv_;

  mutable Mutex health_mutex_;
  /** Index-parallel with workers_. */
  std::vector<HealthState> health_ BACO_GUARDED_BY(health_mutex_);
};

}  // namespace baco::serve

#endif  // BACO_SERVE_COORDINATOR_HPP_
