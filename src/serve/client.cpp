#include "serve/client.hpp"

#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"

namespace baco::serve {

bool
SessionClient::handshake(std::string* error)
{
    Message hello;
    hello.type = MsgType::kHello;
    if (!transport_.send(encode(hello))) {
        if (error)
            *error = "transport closed before hello";
        return false;
    }
    std::string line;
    if (transport_.recv(line, 60000) != RecvStatus::kOk) {
        if (error)
            *error = "no welcome frame";
        return false;
    }
    Message welcome;
    if (!decode(line, welcome) || welcome.type != MsgType::kWelcome) {
        if (error)
            *error = "expected welcome, got: " + line;
        return false;
    }
    return true;
}

Message
SessionClient::rpc(Message request, int timeout_ms)
{
    request.id = next_id_++;
    if (!transport_.send(encode(request)))
        return make_error(request.id, "transport closed on send");
    std::string line;
    for (;;) {
        if (transport_.recv(line, timeout_ms) != RecvStatus::kOk) {
            return make_error(request.id,
                              "transport closed waiting for reply");
        }
        Message reply;
        std::string err;
        if (!decode(line, reply, &err))
            return make_error(request.id, "malformed reply: " + err);
        // Async server runs stream kResult progress frames (same id as
        // the run request) before the terminal kDone — skip them, and
        // skip stale frames from earlier exchanges, or one streamed run
        // would desynchronize every later request/response pair. Server
        // error frames for undecodable requests carry id 0.
        if (reply.type == MsgType::kResult)
            continue;
        if (reply.id == request.id ||
            (reply.type == MsgType::kError && reply.id == 0)) {
            return reply;
        }
    }
}

Message
SessionClient::open(const std::string& session,
                    const std::string& benchmark, const std::string& method,
                    int budget, std::uint64_t seed, bool resume, int doe)
{
    Message m;
    m.type = MsgType::kOpenSession;
    m.session = session;
    m.benchmark = benchmark;
    m.method = method;
    m.budget = budget;
    m.seed = seed;
    m.resume = resume;
    m.doe = doe;
    return rpc(std::move(m));
}

Message
SessionClient::suggest(const std::string& session, int n)
{
    Message m;
    m.type = MsgType::kSuggest;
    m.session = session;
    m.n = n;
    return rpc(std::move(m));
}

Message
SessionClient::observe(const std::string& session,
                       std::vector<ObservedResult> results,
                       double eval_seconds)
{
    Message m;
    m.type = MsgType::kObserve;
    m.session = session;
    m.results = std::move(results);
    m.eval_seconds = eval_seconds;
    return rpc(std::move(m));
}

Message
SessionClient::close(const std::string& session)
{
    Message m;
    m.type = MsgType::kClose;
    m.session = session;
    return rpc(std::move(m));
}

Message
SessionClient::stats(const std::string& session)
{
    Message m;
    m.type = MsgType::kStats;
    m.session = session;
    return rpc(std::move(m));
}

std::vector<double>
drive_session(SessionClient& client, const std::string& session,
              const std::string& benchmark, const std::string& method,
              int budget, std::uint64_t seed, int batch)
{
    auto fail = [&](const std::string& what, const Message& reply) {
        throw std::runtime_error("drive_session " + session + ": " + what +
                                 ": " + reply.text);
    };
    Message opened = client.open(session, benchmark, method, budget, seed);
    if (opened.type != MsgType::kOpened)
        fail("open", opened);

    const Benchmark& bench = suite::find_benchmark(benchmark);
    std::vector<double> values;
    std::uint64_t evals = opened.evals;
    while (evals < static_cast<std::uint64_t>(budget)) {
        Message configs = client.suggest(session, batch);
        if (configs.type != MsgType::kConfigs)
            fail("suggest", configs);
        if (configs.configs.empty())
            break;  // tuner stopped early (budget semantics)
        std::vector<ObservedResult> results;
        results.reserve(configs.configs.size());
        double seconds = 0.0;
        for (std::size_t i = 0; i < configs.configs.size(); ++i) {
            ObservedResult r;
            r.config = configs.configs[i];
            EvalResult e = evaluate_on(bench, r.config, seed,
                                       configs.index + i, &seconds);
            r.value = e.value;
            r.feasible = e.feasible;
            values.push_back(e.value);
            results.push_back(std::move(r));
        }
        Message ok = client.observe(session, std::move(results), seconds);
        if (ok.type != MsgType::kOk)
            fail("observe", ok);
        evals = ok.evals;
    }
    Message closed = client.close(session);
    if (closed.type != MsgType::kOk)
        fail("close", closed);
    return values;
}

std::vector<double>
sequential_session_values(const std::string& session,
                          const std::string& benchmark,
                          const std::string& method, int budget,
                          std::uint64_t seed, int batch)
{
    SessionManager sessions;
    ServerContext ctx;
    ctx.sessions = &sessions;
    auto [client_end, server_end] = loopback_pair();
    std::thread server(
        [&ctx, t = std::shared_ptr<Transport>(std::move(server_end))] {
            serve_connection(*t, ctx);
        });
    SessionClient client(*client_end);
    std::vector<double> values;
    if (client.handshake()) {
        values = drive_session(client, session, benchmark, method, budget,
                               seed, batch);
    }
    Message bye;
    bye.type = MsgType::kShutdown;
    client_end->send(encode(bye));
    server.join();
    return values;
}

SocketParityResult
socket_parity_check(const std::string& listen_spec,
                    const std::string& benchmark, const std::string& method,
                    int budget, int batch, std::uint64_t seed1,
                    std::uint64_t seed2)
{
    SocketParityResult result;
    std::vector<double> ref1 = sequential_session_values(
        "alpha", benchmark, method, budget, seed1, batch);
    std::vector<double> ref2 = sequential_session_values(
        "beta", benchmark, method, budget, seed2, batch);
    if (ref1.empty() || ref2.empty()) {
        result.detail = "sequential reference produced no history";
        return result;
    }
    result.evals_per_client = ref1.size();

    std::optional<SocketAddress> addr =
        parse_socket_address(listen_spec, &result.detail);
    if (!addr)
        return result;
    Listener listener;
    if (!listener.open(*addr, &result.detail))
        return result;
    SessionManager sessions;
    ServerContext ctx;
    ctx.sessions = &sessions;
    Acceptor acceptor(std::move(listener), ctx);
    std::string address = acceptor.address().str();
    std::thread server([&acceptor] { acceptor.run(); });

    std::vector<double> got1, got2;
    auto drive = [&](const std::string& name, std::uint64_t seed,
                     std::vector<double>& out) {
        try {
            std::unique_ptr<Transport> t = connect_socket(address);
            if (!t)
                return;
            SessionClient client(*t);
            if (client.handshake()) {
                out = drive_session(client, name, benchmark, method,
                                    budget, seed, batch);
            }
        } catch (const std::exception&) {
            out.clear();  // diverging is reported below, not thrown
        }
    };
    std::thread c1(drive, "alpha", seed1, std::ref(got1));
    std::thread c2(drive, "beta", seed2, std::ref(got2));
    c1.join();
    c2.join();
    acceptor.stop();
    server.join();

    result.stats = acceptor.stats();
    if (got1 == ref1 && got2 == ref2) {
        result.ok = true;
    } else {
        result.detail =
            "concurrent socket histories diverge from the sequential "
            "references";
    }
    return result;
}

}  // namespace baco::serve
