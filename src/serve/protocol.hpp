#ifndef BACO_SERVE_PROTOCOL_HPP_
#define BACO_SERVE_PROTOCOL_HPP_

/**
 * @file
 * The versioned JSONL wire protocol of the distributed tuning service.
 *
 * Every frame is one flat JSON object on one line, built from the same
 * jsonl vocabulary as the cache and checkpoint files; configurations
 * travel as the checkpoint's typed array ([{"i":4},{"r":0.5},...]). A
 * connection opens with a hello/welcome version handshake and then
 * exchanges request/response pairs correlated by "id".
 *
 * Session-control messages (client <-> server):
 *   hello / welcome            version + role handshake
 *   open_session -> opened     create or resume a named tuning session
 *   suggest -> configs         ask the session's tuner for a batch
 *   observe -> ok              report the batch's evaluation results
 *   checkpoint -> ok           force a crash-safe checkpoint to disk
 *   close -> ok                checkpoint (if enabled) and drop a session
 *   run -> done                server-side drive loop (sharded over the
 *                              coordinator's workers when attached); with
 *                              "async":true the server drives the session
 *                              tell-as-results-land and STREAMS one
 *                              result frame per landed evaluation
 *                              (index/value/feasible/evals/best) before
 *                              the final done frame
 *   stats -> stats_report      observability snapshot: with "session",
 *                              the session's counters and latency
 *                              histograms; with an empty session, the
 *                              server-wide registry plus acceptor and
 *                              session-manager totals. The report carries
 *                              "sv" (stats schema version) and a typed
 *                              entry array; see StatEntry.
 *   shutdown                   end the connection's serve loop
 *
 * Evaluation messages (coordinator <-> worker):
 *   hello (role=worker)        worker registration with capacity and an
 *                              optional advertised heartbeat interval
 *                              ("heartbeat_ms")
 *   evaluate -> result         evaluate one configuration of a registry
 *                              benchmark under eval_rng_for(seed, index)
 *   heartbeat                  unsolicited worker liveness beacon (id 0)
 *                              carrying the worker's completed-eval count;
 *                              the coordinator folds it into WorkerHealth
 *   goodbye                    worker's final frame before a clean exit:
 *                              total evals plus any unshipped trace spans
 *
 * Run multiplexing: evaluate frames dispatched on behalf of a concurrent
 * run carry an optional "run" tag (the coordinator's run id), which the
 * worker echoes on the matching result; heartbeat/goodbye frames carry
 * the last run the worker served. The tag is emitted only when nonzero,
 * so single-run traffic stays byte-identical to the untagged wire
 * format and pre-tag workers remain compatible (the coordinator
 * correlates by dispatch id; the tag is validation + observability).
 * Error frames may carry an optional machine-readable "code" — "busy"
 * marks a run refused by admission control (--max-active-runs).
 *
 * Trace context: when the server runs with tracing enabled, evaluate
 * frames carry an optional versioned trace context ("tcv" =
 * kTraceVersion, "trace" = run id, "span" = parent span id). Workers
 * open child spans under it and ship their span buffers back as a
 * "spans" array on result/goodbye frames (see WireSpan), which the
 * coordinator merges into the server's Chrome trace as per-worker
 * tracks.
 *
 * Any request can be answered with an error frame. Unknown trailing
 * fields are ignored, so adding optional fields is backward-compatible;
 * incompatible changes bump kProtocolVersion and are rejected at the
 * handshake.
 */

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace baco::serve {

/** Bumped on incompatible wire changes; checked at the handshake. */
inline constexpr int kProtocolVersion = 1;

/** Every frame kind of the protocol. */
enum class MsgType {
  kHello,
  kWelcome,
  kOpenSession,
  kOpened,
  kSuggest,
  kConfigs,
  kObserve,
  kOk,
  kCheckpoint,
  kClose,
  kRun,
  kDone,
  kEvaluate,
  kResult,
  kStats,
  kStatsReport,
  kHeartbeat,
  kGoodbye,
  kShutdown,
  kError,
};

/** Schema version of the stats_report entry array ("sv"). */
inline constexpr int kStatsVersion = 1;

/** Schema version of the propagated trace context ("tcv"). */
inline constexpr int kTraceVersion = 1;

/** Wire name of a frame kind ("open_session", "configs", ...). */
const char* msg_type_name(MsgType t);

/** One evaluated configuration inside an observe frame. */
struct ObservedResult {
  Configuration config;
  double value = 0.0;
  bool feasible = true;
};

/**
 * One metric inside a stats_report frame. The wire shape is fixed —
 * every field is always emitted in this order, zeros included — so the
 * strict parser needs no optional-field logic. kind is "counter",
 * "gauge" or "histogram"; counters/gauges use value, histograms use
 * count/sum and the extracted percentiles (seconds).
 */
struct StatEntry {
  std::string name;
  std::string kind = "counter";
  double value = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/**
 * One completed span inside a result/goodbye frame's "spans" array.
 * Like StatEntry the wire shape is fixed — every field always emitted in
 * order — so the strict parser needs no optional-field logic.
 * Timestamps are microseconds on the worker's own clock; the merged
 * export renders each worker as its own track, so cross-process clock
 * alignment is not required.
 */
struct WireSpan {
  std::string name;
  std::string category;
  std::uint64_t thread_id = 0;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
};

/**
 * A decoded protocol frame: the superset of all message fields. encode()
 * emits only the fields its type defines; decode() fills only those it
 * finds. The protocol is small enough that one flat struct beats a
 * variant hierarchy for testability.
 */
struct Message {
  MsgType type = MsgType::kError;

  int version = kProtocolVersion;  ///< hello/welcome
  std::uint64_t id = 0;            ///< request/response correlation

  std::string session;    ///< session name ([A-Za-z0-9_.-]+)
  std::string benchmark;  ///< registry benchmark name (open_session/evaluate)
  std::string method;     ///< suite method name (open_session)
  std::string text;       ///< error message / hello role / checkpoint path

  int n = 0;         ///< suggest: batch size; run: batch size
  int budget = 0;    ///< open_session: evaluations (0 = benchmark default)
  int doe = 0;       ///< open_session: DoE samples (0 = benchmark default)
  int capacity = 0;  ///< worker hello: concurrent evaluation slots
  int heartbeat_ms = 0;  ///< worker hello: beacon interval (0 = none)

  bool resume = false;   ///< open_session: resume from checkpoint if present
  bool resumed = false;  ///< opened: whether a checkpoint was restored
  bool async = false;    ///< run: drive asynchronously, stream result frames

  std::uint64_t seed = 0;   ///< open_session/evaluate: run seed
  std::uint64_t index = 0;  ///< evaluate/result: evaluation index;
                            ///< configs: first index of the batch
  std::uint64_t evals = 0;  ///< responses: history size so far
  std::uint64_t run = 0;    ///< evaluate/result: coordinator run id;
                            ///< heartbeat/goodbye: last run served.
                            ///< 0 = untagged (omitted on the wire)
  std::string code;  ///< error: optional machine-readable code ("busy")

  double value = 0.0;   ///< result: measured objective
  bool feasible = true; ///< result: hidden-constraint outcome
  double best = std::numeric_limits<double>::infinity();  ///< responses
  double eval_seconds = 0.0;  ///< result/observe: black-box wall-clock

  Configuration config;                ///< evaluate
  std::vector<Configuration> configs;  ///< configs response
  std::vector<ObservedResult> results; ///< observe request

  int stats_version = kStatsVersion;   ///< stats_report: entry schema ("sv")
  std::vector<StatEntry> stats;        ///< stats_report payload

  int trace_version = 0;      ///< evaluate/result: "tcv"; 0 = no context
  std::string trace_run;      ///< trace context: run id
  std::uint64_t span_id = 0;  ///< trace context: parent span id
  std::vector<WireSpan> spans;  ///< result/goodbye: worker span buffer
};

/** Serialize m as one JSONL frame (no trailing newline). */
std::string encode(const Message& m);

/**
 * Parse one frame. Returns false on a malformed frame or unknown type,
 * with a diagnostic in *error (when non-null). Strict about framing: the
 * line must be one complete JSON object ('{' ... '}'), so a truncated
 * frame — a crash mid-write, a cut pipe — is rejected rather than parsed
 * as a shorter valid message. Never throws.
 */
bool decode(const std::string& line, Message& out,
            std::string* error = nullptr);

/** Convenience error frame answering request id. */
Message make_error(std::uint64_t id, const std::string& text);

}  // namespace baco::serve

#endif  // BACO_SERVE_PROTOCOL_HPP_
