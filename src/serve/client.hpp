#ifndef BACO_SERVE_CLIENT_HPP_
#define BACO_SERVE_CLIENT_HPP_

/**
 * @file
 * The session-side client of the serve protocol: the counterpart of
 * serve_connection for anything that tunes *through* a server — over
 * stdio pipes, a Unix socket, or TCP (see transport.hpp).
 *
 * SessionClient wraps one Transport with the hello/welcome handshake
 * and typed request/response helpers; drive_session() runs the whole
 * suggest → evaluate-locally → observe exchange to budget exhaustion,
 * evaluating the registry benchmark under the protocol's (seed, index)
 * noise streams — the loop baco_serve --selftest and the socket tests
 * pin for bit-for-bit parity across transports and client interleaving.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace baco::serve {

class Transport;

/** One client endpoint of the session protocol. */
class SessionClient {
 public:
  explicit SessionClient(Transport& transport) : transport_(transport) {}

  /** hello/welcome exchange; false (with *error) when it fails. */
  bool handshake(std::string* error = nullptr);

  /**
   * Send one request (its id assigned here) and wait for the matching
   * response. Error frames come back as-is (type kError); a closed or
   * timed-out transport yields a synthesized kError frame.
   */
  Message rpc(Message request, int timeout_ms = 60000);

  Message open(const std::string& session, const std::string& benchmark,
               const std::string& method, int budget, std::uint64_t seed,
               bool resume = false, int doe = 0);
  Message suggest(const std::string& session, int n);
  Message observe(const std::string& session,
                  std::vector<ObservedResult> results,
                  double eval_seconds = 0.0);
  Message close(const std::string& session);
  /**
   * Observability snapshot (kStatsReport): the named session's counters
   * and suggest/observe latency histograms, or — with an empty session
   * name — the server-wide metrics registry plus acceptor and
   * session-manager totals.
   */
  Message stats(const std::string& session = std::string());

 private:
  Transport& transport_;
  std::uint64_t next_id_ = 1;
};

/**
 * Open `session` and drive it to `budget` evaluations through the
 * suggest/observe exchange, batch configurations at a time, evaluating
 * the registry benchmark client-side. Returns the observed objective
 * values in history order (the session's full history signature, since
 * configs and noise are seed-determined). Throws std::runtime_error on
 * any protocol error.
 */
std::vector<double> drive_session(SessionClient& client,
                                  const std::string& session,
                                  const std::string& benchmark,
                                  const std::string& method, int budget,
                                  std::uint64_t seed, int batch);

/**
 * One single-connection session run over an in-process serve loop with
 * its own SessionManager — the stdio-server shape, and the sequential
 * reference of the multi-client parity contract below.
 */
std::vector<double> sequential_session_values(const std::string& session,
                                              const std::string& benchmark,
                                              const std::string& method,
                                              int budget,
                                              std::uint64_t seed,
                                              int batch);

/** Outcome of socket_parity_check(). */
struct SocketParityResult {
  bool ok = false;                  ///< histories matched, non-vacuously
  std::size_t evals_per_client = 0; ///< history length of each client
  AcceptorStats stats;              ///< the acceptor's final counters
  std::string detail;               ///< failure description when !ok
};

/**
 * The multi-client parity contract in one callable: drive sessions
 * "alpha" (seed1) and "beta" (seed2) sequentially over
 * single-connection serve loops, then drive the same two sessions
 * CONCURRENTLY as socket clients of one Acceptor listening on
 * listen_spec, and compare the histories bit-for-bit. Shared by
 * `baco_serve --selftest` and tests/test_serve_socket.cpp (which pins
 * it over both unix and tcp listeners).
 */
SocketParityResult socket_parity_check(const std::string& listen_spec,
                                       const std::string& benchmark,
                                       const std::string& method,
                                       int budget, int batch,
                                       std::uint64_t seed1,
                                       std::uint64_t seed2);

}  // namespace baco::serve

#endif  // BACO_SERVE_CLIENT_HPP_
