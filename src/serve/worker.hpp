#ifndef BACO_SERVE_WORKER_HPP_
#define BACO_SERVE_WORKER_HPP_

/**
 * @file
 * The evaluation worker client: the remote half of the coordinator's
 * sharded evaluate_batch().
 *
 * A worker registers over its transport with a hello frame (role=worker,
 * capacity), then answers evaluate frames: it looks the benchmark up in
 * the suite registry, derives the measurement-noise stream from the
 * frame's (seed, index) pair via eval_rng_for(), runs the black box and
 * replies with a result frame. Because the noise stream is a pure
 * function of (seed, index), any worker — local thread, child process or
 * remote host — produces the exact same result for the same evaluation,
 * which is what makes sharded runs reproduce EvalEngine histories.
 */

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"

namespace baco {
struct Benchmark;
}

namespace baco::serve {

class Coordinator;
class Transport;

/** Worker knobs. */
struct WorkerOptions {
  /** Advertised concurrent evaluation slots (coordinator backpressure). */
  int capacity = 1;
  /**
   * Heartbeat interval: when > 0 the worker advertises it in the hello
   * frame and a dedicated beacon thread sends a heartbeat frame every
   * interval — including while an evaluation is running, so a worker
   * busy on a slow black box never looks wedged to the coordinator's
   * missed-heartbeat dead-worker detection (only a genuinely silent
   * worker does). 0 disables.
   */
  int heartbeat_ms = 0;
};

/**
 * Evaluate one configuration of a benchmark exactly as EvalEngine would:
 * under eval_rng_for(run_seed, index), timing the black box into
 * *eval_seconds (optional).
 */
EvalResult evaluate_on(const Benchmark& b, const Configuration& c,
                       std::uint64_t run_seed, std::uint64_t index,
                       double* eval_seconds = nullptr);

/**
 * Run the worker loop: register, answer evaluate frames until a shutdown
 * frame or transport close. Unknown benchmarks are answered with error
 * frames (the worker keeps serving). Evaluate frames carrying a trace
 * context get their evaluation wrapped in a child span shipped back on
 * the result frame; a clean shutdown ends with a goodbye frame carrying
 * the final eval count and any unshipped spans. Returns the number of
 * evaluations performed.
 */
std::uint64_t run_worker_loop(Transport& transport,
                              const WorkerOptions& opt = WorkerOptions{});

/**
 * Spawn n in-process loopback workers (each a run_worker_loop thread)
 * and register them with the coordinator. Join the returned threads
 * after Coordinator::shutdown().
 */
std::vector<std::thread> attach_loopback_workers(Coordinator& coordinator,
                                                 int n, int capacity = 1);

}  // namespace baco::serve

#endif  // BACO_SERVE_WORKER_HPP_
