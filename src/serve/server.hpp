#ifndef BACO_SERVE_SERVER_HPP_
#define BACO_SERVE_SERVER_HPP_

/**
 * @file
 * The serve loop: one protocol connection against a SessionManager, with
 * an optional Coordinator for server-side evaluation fan-out.
 *
 * The connection opens with a hello/welcome handshake (protocol-version
 * checked), then answers requests until shutdown or transport close.
 * Session requests go to the SessionManager; the run request is handled
 * here: it drives a session's suggest/observe loop server-side,
 * sharding every batch over the coordinator's workers when any are
 * attached and evaluating in-process otherwise — the same
 * (seed, index)-derived noise streams either way.
 *
 * A run request with "async":true (or a server started with async runs
 * forced on) is driven tell-as-results-land instead: evaluations stream
 * through the api layer's execute() dispatcher — the same one behind
 * baco::Study — onto Coordinator::drive_async (or the EvalEngine's async
 * mode when no workers are attached), and the server emits one result
 * frame per landed evaluation — index, value, feasibility, history size
 * and incumbent — before the final done frame, so the client watches the
 * run progress instead of waiting out the slowest compile.
 */

#include <cstdint>

#include "serve/session_manager.hpp"

namespace baco::serve {

class Coordinator;
class Transport;

/** Everything one connection serves against. */
struct ServerContext {
  SessionManager* sessions = nullptr;
  /** Optional worker fleet for server-side run requests (not owned). */
  Coordinator* coordinator = nullptr;
  /** Treat every run request as async (baco_serve --async). */
  bool async_runs = false;
  /** In-flight cap of an async run when the request's n is 0. */
  int async_slots = 4;
};

/** Connection counters, for logs and tests. */
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  bool handshake_ok = false;
};

/**
 * Serve one connection to completion (shutdown frame, transport close,
 * or failed handshake). Malformed frames are answered with error frames
 * and the connection keeps serving.
 */
ServeStats serve_connection(Transport& transport, const ServerContext& ctx);

}  // namespace baco::serve

#endif  // BACO_SERVE_SERVER_HPP_
