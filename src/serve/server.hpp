#ifndef BACO_SERVE_SERVER_HPP_
#define BACO_SERVE_SERVER_HPP_

/**
 * @file
 * The serve loop — one protocol connection against a SessionManager,
 * with an optional Coordinator for server-side evaluation fan-out — and
 * the Acceptor, which multiplexes many such connections over one
 * listening socket (`baco_serve --listen`).
 *
 * The connection opens with a hello/welcome handshake (protocol-version
 * checked), then answers requests until shutdown or transport close.
 * Session requests go to the SessionManager; the run request is handled
 * here: it drives a session's suggest/observe loop server-side,
 * sharding every batch over the coordinator's workers when any are
 * attached and evaluating in-process otherwise — the same
 * (seed, index)-derived noise streams either way.
 *
 * A run request with "async":true (or a server started with async runs
 * forced on) is driven tell-as-results-land instead: evaluations stream
 * through the api layer's execute() dispatcher — the same one behind
 * baco::Study — onto Coordinator::drive_async (or the EvalEngine's async
 * mode when no workers are attached), and the server emits one result
 * frame per landed evaluation — index, value, feasibility, history size
 * and incumbent — before the final done frame, so the client watches the
 * run progress instead of waiting out the slowest compile.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"
#include "serve/session_manager.hpp"
#include "serve/transport.hpp"

namespace baco::serve {

class Acceptor;
class Coordinator;
struct Message;

/** Everything one connection serves against. */
struct ServerContext {
  SessionManager* sessions = nullptr;
  /** Optional worker fleet for server-side run requests (not owned). */
  Coordinator* coordinator = nullptr;
  /**
   * The accept loop this connection belongs to (not owned; null for a
   * single-connection server). Lets the server-wide stats frame report
   * the acceptor's per-connection aggregation.
   */
  Acceptor* acceptor = nullptr;
  /** Treat every run request as async (baco_serve --async). */
  bool async_runs = false;
  /** In-flight cap of an async run when the request's n is 0. */
  int async_slots = 4;
};

/** Connection counters, for logs and tests. */
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  bool handshake_ok = false;
};

/**
 * Serve one connection to completion (shutdown frame, transport close,
 * or failed handshake). Malformed frames are answered with error frames
 * and the connection keeps serving.
 */
ServeStats serve_connection(Transport& transport, const ServerContext& ctx);

/**
 * Same, but with the connection's first frame already read and decoded
 * (the Acceptor consumes it to route worker registrations): validates it
 * as the hello, replies welcome, and serves the request loop.
 */
ServeStats serve_connection(Transport& transport, const ServerContext& ctx,
                            const Message& hello);

/** Acceptor knobs. */
struct AcceptorOptions {
  /** Concurrent session connections; further clients get an error frame. */
  int max_clients = 64;
  /** stop() latency: the accept loop re-checks its flag this often. */
  int poll_ms = 200;
  /** A connection must present its hello within this window. */
  int hello_timeout_ms = 10000;
};

/** Aggregate accept-loop counters (finished connections included). */
struct AcceptorStats {
  std::uint64_t accepted = 0;          ///< session connections served
  std::uint64_t workers_attached = 0;  ///< role=worker hellos routed
  std::uint64_t rejected = 0;  ///< over max_clients / bad first frame
  std::uint64_t requests = 0;  ///< summed over finished connections
  std::uint64_t errors = 0;    ///< summed over finished connections
  std::uint64_t peak_clients = 0;
};

/**
 * The multi-client accept loop: every accepted connection introduces
 * itself with its hello frame — session clients get their own
 * serve_connection thread against the shared SessionManager; worker
 * hellos (role=worker) are attached to the shared Coordinator, growing
 * the evaluation fleet at runtime (including a worker re-registering
 * after a heartbeat death). The session registry is lock-striped and
 * the Coordinator multiplexes concurrent fleet-driven runs over the
 * shared workers (fair scheduling + admission control), so any number
 * of clients can tune concurrently against one server without
 * serializing behind each other's runs.
 *
 * The accept thread never blocks on a connection: each accepted socket
 * immediately gets its own thread, which reads the first frame (with
 * the hello timeout), routes on it and then serves — so a client that
 * connects and sends nothing delays only its own thread, never the
 * accept loop.
 *
 * run() blocks until stop(). stop() is safe from any thread and from a
 * POSIX signal handler (it only flips an atomic and shuts the listener
 * down); run() then closes every live connection, joins its threads and
 * returns. Destroy the Acceptor only after run() has returned.
 */
class Acceptor {
 public:
  Acceptor(Listener listener, ServerContext ctx,
           AcceptorOptions opt = AcceptorOptions{});
  ~Acceptor();

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /** Accept and serve until stop(); joins every connection thread. */
  void run();

  /** End run(): stop accepting, close live connections. */
  void stop();

  /** The listening address (TCP port resolved after ephemeral bind). */
  const SocketAddress& address() const { return listener_.address(); }

  AcceptorStats stats() const;
  std::size_t live_clients() const;

 private:
  struct Connection {
    std::shared_ptr<Transport> transport;
    std::thread thread;
    /** Counted against max_clients (post-hello session connections). */
    std::atomic<bool> is_client{false};
    /** Transport ownership moved on (worker attach): reap won't close. */
    std::atomic<bool> released{false};
    std::atomic<bool> done{false};
  };

  /** Thread body: read the first frame, route (worker/client), serve. */
  void route_connection(Connection* conn);
  void reap(bool all);

  Listener listener_;
  ServerContext ctx_;
  AcceptorOptions opt_;
  std::atomic<bool> stopping_{false};

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      BACO_GUARDED_BY(mutex_);
  AcceptorStats stats_ BACO_GUARDED_BY(mutex_);
};

}  // namespace baco::serve

#endif  // BACO_SERVE_SERVER_HPP_
