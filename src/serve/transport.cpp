#include "serve/transport.hpp"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace baco::serve {

namespace {

using Clock = std::chrono::steady_clock;

/** One direction of a loopback link. */
struct Channel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::string> queue;
  bool closed = false;

  void
  close()
  {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
      cv.notify_all();
  }
};

class LoopbackTransport : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<Channel> out, std::shared_ptr<Channel> in)
      : out_(std::move(out)), in_(std::move(in))
  {
  }

  ~LoopbackTransport() override { close(); }

  bool
  send(const std::string& line) override
  {
      std::lock_guard<std::mutex> lock(out_->mutex);
      if (out_->closed)
          return false;
      out_->queue.push_back(line);
      out_->cv.notify_one();
      return true;
  }

  RecvStatus
  recv(std::string& line, int timeout_ms) override
  {
      std::unique_lock<std::mutex> lock(in_->mutex);
      auto ready = [this] { return !in_->queue.empty() || in_->closed; };
      if (timeout_ms < 0) {
          in_->cv.wait(lock, ready);
      } else if (!in_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                   ready)) {
          return RecvStatus::kTimeout;
      }
      if (in_->queue.empty())
          return RecvStatus::kClosed;  // closed and drained
      line = std::move(in_->queue.front());
      in_->queue.pop_front();
      return RecvStatus::kOk;
  }

  void
  close() override
  {
      out_->close();
      in_->close();
  }

 private:
  std::shared_ptr<Channel> out_;
  std::shared_ptr<Channel> in_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
loopback_pair()
{
    auto ab = std::make_shared<Channel>();
    auto ba = std::make_shared<Channel>();
    return {std::make_unique<LoopbackTransport>(ab, ba),
            std::make_unique<LoopbackTransport>(ba, ab)};
}

PipeTransport::PipeTransport(int read_fd, int write_fd, bool owns_fds)
    : read_fd_(read_fd), write_fd_(write_fd), owns_(owns_fds)
{
}

PipeTransport::~PipeTransport()
{
    close();
}

bool
PipeTransport::send(const std::string& line)
{
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (closed_ || write_fd_ < 0)
        return false;
    std::string frame = line;
    frame += '\n';
    std::size_t off = 0;
    while (off < frame.size()) {
        ssize_t n = ::write(write_fd_, frame.data() + off, frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;  // EPIPE etc: peer is gone
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

RecvStatus
PipeTransport::recv(std::string& line, int timeout_ms)
{
    auto deadline = Clock::now() + std::chrono::milliseconds(
                                       timeout_ms < 0 ? 0 : timeout_ms);
    for (;;) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return RecvStatus::kOk;
        }
        if (closed_ || read_fd_ < 0)
            return RecvStatus::kClosed;

        int wait_ms = -1;
        if (timeout_ms >= 0) {
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
            if (left < 0)
                return RecvStatus::kTimeout;
            wait_ms = static_cast<int>(left);
        }
        struct pollfd pfd = {};
        pfd.fd = read_fd_;
        pfd.events = POLLIN;
        int pr = ::poll(&pfd, 1, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::kClosed;
        }
        if (pr == 0)
            return RecvStatus::kTimeout;

        char chunk[4096];
        ssize_t n = ::read(read_fd_, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::kClosed;
        }
        if (n == 0)
            return RecvStatus::kClosed;  // EOF (partial line discarded)
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void
PipeTransport::close()
{
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (closed_)
        return;
    closed_ = true;
    if (owns_) {
        if (read_fd_ >= 0)
            ::close(read_fd_);
        if (write_fd_ >= 0)
            ::close(write_fd_);
    }
    read_fd_ = -1;
    write_fd_ = -1;
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
pipe_pair()
{
    int ab[2] = {-1, -1};
    int ba[2] = {-1, -1};
    if (::pipe(ab) != 0)
        return {nullptr, nullptr};
    if (::pipe(ba) != 0) {
        ::close(ab[0]);
        ::close(ab[1]);
        return {nullptr, nullptr};
    }
    // a reads what b writes (ba), b reads what a writes (ab).
    return {std::make_unique<PipeTransport>(ba[0], ab[1]),
            std::make_unique<PipeTransport>(ab[0], ba[1])};
}

ChildProcess
spawn_process(const std::vector<std::string>& argv)
{
    ChildProcess child;
    if (argv.empty())
        return child;
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (::pipe(to_child) != 0)
        return child;
    if (::pipe(from_child) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        return child;
    }
    // Close-on-exec everywhere: without this a later-spawned sibling
    // inherits this worker's parent-side pipe ends, so closing the
    // worker's transport would never deliver EOF to its stdin while any
    // sibling lives. The child's stdio copies are made by dup2, which
    // clears the flag.
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]}) {
            ::close(fd);
        }
        return child;
    }
    if (pid == 0) {
        // Child: stdin <- to_child, stdout -> from_child.
        ::dup2(to_child[0], 0);
        ::dup2(from_child[1], 1);
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]}) {
            ::close(fd);
        }
        std::vector<char*> args;
        args.reserve(argv.size() + 1);
        for (const std::string& a : argv)
            args.push_back(const_cast<char*>(a.c_str()));
        args.push_back(nullptr);
        ::execvp(args[0], args.data());
        ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    child.transport =
        std::make_unique<PipeTransport>(from_child[0], to_child[1]);
    child.pid = static_cast<int>(pid);
    return child;
}

int
wait_process(int pid)
{
    if (pid < 0)
        return -1;
    int status = 0;
    if (::waitpid(static_cast<pid_t>(pid), &status, 0) < 0)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace baco::serve
