#include "serve/transport.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "core/thread_annotations.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

namespace baco::serve {

namespace {

using Clock = std::chrono::steady_clock;

/** One direction of a loopback link. */
struct Channel {
  Mutex mutex;
  CondVar cv;
  std::deque<std::string> queue BACO_GUARDED_BY(mutex);
  bool closed BACO_GUARDED_BY(mutex) = false;

  void
  close() BACO_EXCLUDES(mutex)
  {
      MutexLock lock(mutex);
      closed = true;
      cv.notify_all();
  }
};

class LoopbackTransport : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<Channel> out, std::shared_ptr<Channel> in)
      : out_(std::move(out)), in_(std::move(in))
  {
  }

  ~LoopbackTransport() override { close(); }

  bool
  send(const std::string& line) override
  {
      MutexLock lock(out_->mutex);
      if (out_->closed)
          return false;
      out_->queue.push_back(line);
      out_->cv.notify_one();
      return true;
  }

  RecvStatus
  recv(std::string& line, int timeout_ms) override
  {
      MutexLock lock(in_->mutex);
      if (timeout_ms < 0) {
          while (in_->queue.empty() && !in_->closed)
              in_->cv.wait(in_->mutex);
      } else {
          auto deadline =
              Clock::now() + std::chrono::milliseconds(timeout_ms);
          while (in_->queue.empty() && !in_->closed) {
              if (!in_->cv.wait_until(in_->mutex, deadline) &&
                  in_->queue.empty() && !in_->closed) {
                  return RecvStatus::kTimeout;
              }
          }
      }
      if (in_->queue.empty())
          return RecvStatus::kClosed;  // closed and drained
      line = std::move(in_->queue.front());
      in_->queue.pop_front();
      return RecvStatus::kOk;
  }

  void
  close() override
  {
      out_->close();
      in_->close();
  }

 private:
  std::shared_ptr<Channel> out_;
  std::shared_ptr<Channel> in_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
loopback_pair()
{
    auto ab = std::make_shared<Channel>();
    auto ba = std::make_shared<Channel>();
    return {std::make_unique<LoopbackTransport>(ab, ba),
            std::make_unique<LoopbackTransport>(ba, ab)};
}

PipeTransport::PipeTransport(int read_fd, int write_fd, bool owns_fds)
    : read_fd_(read_fd), write_fd_(write_fd), owns_(owns_fds)
{
    // Self-pipe wake channel for cross-thread close(); on the (rare)
    // pipe() failure the transport still works, close() just cannot
    // interrupt a reader blocked in an unbounded poll().
    if (::pipe(wake_fds_) != 0) {
        wake_fds_[0] = -1;
        wake_fds_[1] = -1;
    }
}

PipeTransport::~PipeTransport()
{
    close();
    // The read descriptor is only released here, once no reader thread
    // can still be inside poll()/read() (the owner joins its reader
    // before destroying the transport), so close() never recycles an
    // fd number out from under a concurrent recv().
    if (owns_ && read_fd_ >= 0)
        ::close(read_fd_);
    if (wake_fds_[0] >= 0)
        ::close(wake_fds_[0]);
    if (wake_fds_[1] >= 0)
        ::close(wake_fds_[1]);
}

long
PipeTransport::write_bytes(int fd, const char* data, std::size_t n)
{
    return static_cast<long>(::write(fd, data, n));
}

bool
PipeTransport::send(const std::string& line)
{
    MutexLock lock(write_mutex_);
    if (closed_.load(std::memory_order_acquire) || write_fd_ < 0)
        return false;
    std::string frame = line;
    frame += '\n';
    std::size_t off = 0;
    while (off < frame.size()) {
        long n = write_bytes(write_fd_, frame.data() + off,
                             frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;  // EPIPE etc: peer is gone
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

RecvStatus
PipeTransport::recv(std::string& line, int timeout_ms)
{
    auto deadline = Clock::now() + std::chrono::milliseconds(
                                       timeout_ms < 0 ? 0 : timeout_ms);
    for (;;) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return RecvStatus::kOk;
        }
        if (closed_.load(std::memory_order_acquire) || read_fd_ < 0)
            return RecvStatus::kClosed;

        int wait_ms = -1;
        if (timeout_ms >= 0) {
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
            if (left < 0)
                return RecvStatus::kTimeout;
            wait_ms = static_cast<int>(left);
        }
        struct pollfd pfds[2] = {};
        pfds[0].fd = read_fd_;
        pfds[0].events = POLLIN;
        pfds[1].fd = wake_fds_[0];
        pfds[1].events = POLLIN;
        nfds_t npfds = wake_fds_[0] >= 0 ? 2 : 1;
        int pr = ::poll(pfds, npfds, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::kClosed;
        }
        if (pr == 0)
            return RecvStatus::kTimeout;
        if (npfds == 2 && pfds[1].revents != 0)
            return RecvStatus::kClosed;  // woken by a concurrent close()
        if (pfds[0].revents == 0)
            continue;

        char chunk[4096];
        ssize_t n = ::read(read_fd_, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::kClosed;
        }
        if (n == 0)
            return RecvStatus::kClosed;  // EOF (partial line discarded)
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void
PipeTransport::close()
{
    // Safe against a concurrent recv() on another thread: flag first,
    // then poke the self-pipe so a blocked poll() wakes and re-checks.
    if (closed_.exchange(true, std::memory_order_acq_rel))
        return;
    if (wake_fds_[1] >= 0) {
        char byte = 0;
        while (::write(wake_fds_[1], &byte, 1) < 0 && errno == EINTR) {
        }
    }
    // Closing the write side delivers EOF to the peer; the read side
    // stays open until destruction (see ~PipeTransport). A
    // SocketTransport carries both directions on one descriptor and
    // signals the peer via shutdown(2) instead (its close() override).
    MutexLock lock(write_mutex_);
    if (owns_ && write_fd_ >= 0 && write_fd_ != read_fd_)
        ::close(write_fd_);
    write_fd_ = -1;
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
pipe_pair()
{
    int ab[2] = {-1, -1};
    int ba[2] = {-1, -1};
    if (::pipe(ab) != 0)
        return {nullptr, nullptr};
    if (::pipe(ba) != 0) {
        ::close(ab[0]);
        ::close(ab[1]);
        return {nullptr, nullptr};
    }
    // a reads what b writes (ba), b reads what a writes (ab).
    return {std::make_unique<PipeTransport>(ba[0], ab[1]),
            std::make_unique<PipeTransport>(ab[0], ba[1])};
}

// ---------------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------------

namespace {

void
set_cloexec(int fd)
{
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

void
fill_error(std::string* error, const std::string& what)
{
    if (error)
        *error = what;
}

/**
 * False when path cannot fit sun_path. Checked at every socket entry
 * point, not just parse_socket_address: SocketAddress is a public
 * struct, so a directly constructed over-long path must fail cleanly
 * instead of overflowing the stack sockaddr.
 */
bool
unix_path_fits(const std::string& path, std::string* error)
{
    sockaddr_un probe;
    if (!path.empty() && path.size() < sizeof probe.sun_path)
        return true;
    fill_error(error, path.empty() ? "unix address needs a path"
                                   : "unix socket path too long: " + path);
    return false;
}

}  // namespace

long
SocketTransport::write_bytes(int fd, const char* data, std::size_t n)
{
    // MSG_NOSIGNAL: a vanished peer is a failed send for the caller to
    // handle, never a SIGPIPE killing a host program that embeds the
    // library without its own handler.
    return static_cast<long>(::send(fd, data, n, MSG_NOSIGNAL));
}

void
SocketTransport::close()
{
    // Wakes any thread blocked in poll() on this socket; both sides of
    // any in-flight exchange then see EOF. ~PipeTransport releases the
    // descriptor once no concurrent recv can still be inside poll/read
    // (the owner joins its reader before destroying the transport).
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

std::string
SocketAddress::str() const
{
    if (kind == Kind::kUnix)
        return "unix:" + path;
    bool ipv6 = host.find(':') != std::string::npos;
    return "tcp:" + (ipv6 ? "[" + host + "]" : host) + ":" +
           std::to_string(port);
}

std::optional<SocketAddress>
parse_socket_address(const std::string& spec, std::string* error)
{
    SocketAddress addr;
    if (spec.rfind("unix:", 0) == 0) {
        addr.kind = SocketAddress::Kind::kUnix;
        addr.path = spec.substr(5);
        if (!unix_path_fits(addr.path, error))
            return std::nullopt;
        return addr;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        addr.kind = SocketAddress::Kind::kTcp;
        std::string rest = spec.substr(4);
        std::string port_str;
        if (!rest.empty() && rest[0] == '[') {
            std::size_t close = rest.find(']');
            if (close == std::string::npos || close + 1 >= rest.size() ||
                rest[close + 1] != ':') {
                fill_error(error, "expected tcp:[IPV6]:PORT, got " + spec);
                return std::nullopt;
            }
            addr.host = rest.substr(1, close - 1);
            port_str = rest.substr(close + 2);
        } else {
            std::size_t colon = rest.rfind(':');
            if (colon == std::string::npos) {
                fill_error(error, "expected tcp:HOST:PORT, got " + spec);
                return std::nullopt;
            }
            addr.host = rest.substr(0, colon);
            port_str = rest.substr(colon + 1);
        }
        if (addr.host.empty() || port_str.empty() ||
            port_str.find_first_not_of("0123456789") != std::string::npos) {
            fill_error(error, "expected tcp:HOST:PORT, got " + spec);
            return std::nullopt;
        }
        long port = std::strtol(port_str.c_str(), nullptr, 10);
        if (port < 0 || port > 65535) {
            fill_error(error, "port out of range: " + port_str);
            return std::nullopt;
        }
        addr.port = static_cast<int>(port);
        return addr;
    }
    fill_error(error,
               "address must start with unix: or tcp:, got " + spec);
    return std::nullopt;
}

namespace {

/** Resolve + apply fn(fd, sockaddr) over candidate TCP addresses. */
int
tcp_socket_for(const SocketAddress& addr, bool passive, std::string* error,
               int (*apply)(int fd, const sockaddr* sa, socklen_t len))
{
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (passive)
        hints.ai_flags = AI_PASSIVE;
    addrinfo* results = nullptr;
    std::string port_str = std::to_string(addr.port);
    int rc = ::getaddrinfo(addr.host.c_str(), port_str.c_str(), &hints,
                           &results);
    if (rc != 0) {
        fill_error(error, "cannot resolve " + addr.str() + ": " +
                              ::gai_strerror(rc));
        return -1;
    }
    int fd = -1;
    int last_errno = 0;
    for (addrinfo* ai = results; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        set_cloexec(fd);
        if (passive) {
            int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        }
        if (apply(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        last_errno = errno;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(results);
    if (fd < 0) {
        fill_error(error, (passive ? "cannot bind " : "cannot connect to ") +
                              addr.str() + ": " +
                              std::strerror(last_errno));
    }
    return fd;
}

int
bind_fn(int fd, const sockaddr* sa, socklen_t len)
{
    return ::bind(fd, sa, len);
}

int
connect_fn(int fd, const sockaddr* sa, socklen_t len)
{
    // A blocking connect interrupted by a signal keeps completing in the
    // background; retrying it is wrong, so treat EINTR as failure — the
    // caller sees a clean error instead of a half-connected socket.
    return ::connect(fd, sa, len);
}

sockaddr_un
unix_sockaddr(const std::string& path)
{
    sockaddr_un sa = {};
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, path.c_str(),
                std::min(path.size(), sizeof sa.sun_path - 1));
    return sa;
}

}  // namespace

Listener::~Listener()
{
    close();
    if (fd_ >= 0)
        ::close(fd_);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), addr_(std::move(other.addr_))
{
    closed_.store(other.closed_.load());
    other.fd_ = -1;
    other.closed_.store(true);
}

Listener&
Listener::operator=(Listener&& other) noexcept
{
    if (this != &other) {
        close();
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        addr_ = std::move(other.addr_);
        closed_.store(other.closed_.load());
        other.fd_ = -1;
        other.closed_.store(true);
    }
    return *this;
}

bool
Listener::open(const SocketAddress& addr, std::string* error)
{
    if (fd_ >= 0) {
        fill_error(error, "listener already open on " + addr_.str());
        return false;
    }
    addr_ = addr;
    if (addr.kind == SocketAddress::Kind::kUnix) {
        if (!unix_path_fits(addr.path, error))
            return false;
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) {
            fill_error(error, std::string("socket: ") +
                                  std::strerror(errno));
            return false;
        }
        set_cloexec(fd_);
        sockaddr_un sa = unix_sockaddr(addr.path);
        // A leftover path from a crashed server would make bind fail
        // forever — but blindly unlinking would silently hijack a LIVE
        // server's socket. Probe first: a connectable path means a
        // server is listening (refuse); anything else is stale.
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
            bool live = ::connect(probe, reinterpret_cast<sockaddr*>(&sa),
                                  sizeof sa) == 0;
            ::close(probe);
            if (live) {
                fill_error(error, "address in use (a live server is "
                                  "listening on " + addr.str() + ")");
                ::close(fd_);
                fd_ = -1;
                return false;
            }
        }
        ::unlink(addr.path.c_str());
        if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
            fill_error(error, "cannot bind " + addr.str() + ": " +
                                  std::strerror(errno));
            ::close(fd_);
            fd_ = -1;
            return false;
        }
    } else {
        fd_ = tcp_socket_for(addr, /*passive=*/true, error, bind_fn);
        if (fd_ < 0)
            return false;
        if (addr.port == 0) {
            // Ephemeral bind: report the kernel-assigned port so tests
            // and tools can hand clients a connectable address.
            sockaddr_storage bound = {};
            socklen_t len = sizeof bound;
            if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                              &len) == 0) {
                if (bound.ss_family == AF_INET) {
                    addr_.port = ntohs(
                        reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
                } else if (bound.ss_family == AF_INET6) {
                    addr_.port = ntohs(
                        reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
                }
            }
        }
    }
    if (::listen(fd_, 64) != 0) {
        fill_error(error, "cannot listen on " + addr.str() + ": " +
                              std::strerror(errno));
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    closed_.store(false);
    return true;
}

std::unique_ptr<Transport>
Listener::accept(int timeout_ms)
{
    auto deadline = Clock::now() + std::chrono::milliseconds(
                                       timeout_ms < 0 ? 0 : timeout_ms);
    while (!closed_.load() && fd_ >= 0) {
        int wait_ms = -1;
        if (timeout_ms >= 0) {
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
            if (left < 0)
                return nullptr;
            wait_ms = static_cast<int>(left);
        }
        struct pollfd pfd = {};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        int pr = ::poll(&pfd, 1, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return nullptr;
        }
        if (pr == 0)
            return nullptr;  // timeout
        int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return nullptr;  // close() shut the listener down
        }
        set_cloexec(client);
        return std::make_unique<SocketTransport>(client);
    }
    return nullptr;
}

bool
Listener::closed() const
{
    return closed_.load() || fd_ < 0;
}

void
Listener::close()
{
    bool was = closed_.exchange(true);
    if (was || fd_ < 0)
        return;
    // shutdown() wakes a concurrent accept() (poll reports the listener
    // readable, accept fails); the descriptor itself is closed in the
    // destructor so the poller never sees a recycled fd.
    ::shutdown(fd_, SHUT_RDWR);
    if (addr_.kind == SocketAddress::Kind::kUnix && !addr_.path.empty())
        ::unlink(addr_.path.c_str());
}

std::unique_ptr<Transport>
connect_socket(const SocketAddress& addr, std::string* error)
{
    if (addr.kind == SocketAddress::Kind::kUnix) {
        if (!unix_path_fits(addr.path, error))
            return nullptr;
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            fill_error(error, std::string("socket: ") +
                                  std::strerror(errno));
            return nullptr;
        }
        set_cloexec(fd);
        sockaddr_un sa = unix_sockaddr(addr.path);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) !=
            0) {
            fill_error(error, "cannot connect to " + addr.str() + ": " +
                                  std::strerror(errno));
            ::close(fd);
            return nullptr;
        }
        return std::make_unique<SocketTransport>(fd);
    }
    int fd = tcp_socket_for(addr, /*passive=*/false, error, connect_fn);
    if (fd < 0)
        return nullptr;
    return std::make_unique<SocketTransport>(fd);
}

std::unique_ptr<Transport>
connect_socket(const std::string& spec, std::string* error)
{
    std::optional<SocketAddress> addr = parse_socket_address(spec, error);
    if (!addr)
        return nullptr;
    return connect_socket(*addr, error);
}

ChildProcess
spawn_process(const std::vector<std::string>& argv)
{
    ChildProcess child;
    if (argv.empty())
        return child;
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (::pipe(to_child) != 0)
        return child;
    if (::pipe(from_child) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        return child;
    }
    // Close-on-exec everywhere: without this a later-spawned sibling
    // inherits this worker's parent-side pipe ends, so closing the
    // worker's transport would never deliver EOF to its stdin while any
    // sibling lives. The child's stdio copies are made by dup2, which
    // clears the flag.
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]}) {
            ::close(fd);
        }
        return child;
    }
    if (pid == 0) {
        // Child: stdin <- to_child, stdout -> from_child.
        ::dup2(to_child[0], 0);
        ::dup2(from_child[1], 1);
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]}) {
            ::close(fd);
        }
        std::vector<char*> args;
        args.reserve(argv.size() + 1);
        for (const std::string& a : argv)
            args.push_back(const_cast<char*>(a.c_str()));
        args.push_back(nullptr);
        ::execvp(args[0], args.data());
        ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    child.transport =
        std::make_unique<PipeTransport>(from_child[0], to_child[1]);
    child.pid = static_cast<int>(pid);
    return child;
}

int
wait_process(int pid)
{
    if (pid < 0)
        return -1;
    int status = 0;
    if (::waitpid(static_cast<pid_t>(pid), &status, 0) < 0)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace baco::serve
