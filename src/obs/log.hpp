#ifndef BACO_OBS_LOG_HPP_
#define BACO_OBS_LOG_HPP_

/**
 * @file
 * Leveled, rate-limited structured event log.
 *
 * Every event is one flat JSON object on one line:
 *
 *   {"ts":1723111845.201,"level":"warn","component":"coord",
 *    "event":"worker_dead","worker":1,"reason":"heartbeat"}
 *
 * ts/level/component/event are always present; everything after them
 * comes from the caller-built LogFields. The sink defaults to stderr at
 * level warn (library code stays quiet in tests but deaths and errors
 * surface); tools reconfigure it from --log-file/--log-level.
 *
 * Rate limiting is a per-second token budget shared by all events below
 * kError: when the budget is exhausted events are counted in dropped()
 * (and the obs.log.dropped_total counter) instead of written, so a
 * pathological hot loop cannot flood the sink. Errors always write.
 */

#include <cstdint>
#include <string>

namespace baco::obs {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/** Wire name ("debug", "info", "warn", "error"). */
const char* log_level_name(LogLevel level);

/** Parse a level name; returns false (and leaves out alone) on junk. */
bool parse_log_level(const std::string& name, LogLevel& out);

/**
 * Builder for the event-specific JSON fields. Chainable; the result is
 * a comma-led fragment spliced verbatim after the "event" field.
 */
class LogFields {
 public:
  LogFields& str(const char* key, const std::string& value);
  LogFields& num(const char* key, double value);
  LogFields& num(const char* key, std::int64_t value);
  LogFields& num(const char* key, std::uint64_t value);
  LogFields& num(const char* key, int value);
  LogFields& flag(const char* key, bool value);

  const std::string& json() const { return out_; }

 private:
  std::string out_;
};

/** Process-wide JSONL event log. */
class EventLog {
 public:
  static EventLog& global();

  /**
   * Point the log at `path` ("" or "-" = stderr) and set the minimum
   * level. Replaces any previous sink (the old file is closed).
   */
  void configure(LogLevel min_level, const std::string& path = "");

  /** Events per second before rate limiting kicks in (<= 0: unlimited). */
  void set_rate_limit(int events_per_second);

  bool enabled(LogLevel level) const;

  /** Emit one event line (no-op below the configured level). */
  void write(LogLevel level, const char* component, const char* event,
             const LogFields& fields = LogFields());

  /** Events suppressed by the rate limiter so far. */
  std::uint64_t dropped() const;

  /** Flush and close a file sink (reverts to stderr). */
  void close();

 private:
  EventLog();
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  struct Impl;
  Impl* impl_;
};

/** Convenience wrappers used at the instrumentation points. */
inline void
log_debug(const char* component, const char* event,
          const LogFields& fields = LogFields())
{
    EventLog::global().write(LogLevel::kDebug, component, event, fields);
}

inline void
log_info(const char* component, const char* event,
         const LogFields& fields = LogFields())
{
    EventLog::global().write(LogLevel::kInfo, component, event, fields);
}

inline void
log_warn(const char* component, const char* event,
         const LogFields& fields = LogFields())
{
    EventLog::global().write(LogLevel::kWarn, component, event, fields);
}

inline void
log_error(const char* component, const char* event,
          const LogFields& fields = LogFields())
{
    EventLog::global().write(LogLevel::kError, component, event, fields);
}

}  // namespace baco::obs

#endif  // BACO_OBS_LOG_HPP_
