#ifndef BACO_OBS_TRACE_HPP_
#define BACO_OBS_TRACE_HPP_

/**
 * @file
 * Opt-in lightweight tracing: RAII spans record (name, category, thread,
 * start, duration) events into bounded per-thread ring buffers, and the
 * collected events export as Chrome trace_event JSON (loadable in
 * chrome://tracing / Perfetto) or as JSONL.
 *
 * Tracing is off by default — Span construction is a single relaxed
 * atomic load when disabled — and compiles to complete no-ops when the
 * build sets BACO_OBS_TRACE_OFF (CMake option BACO_OBS_TRACE=OFF), so
 * release builds can strip it entirely. Each thread owns a fixed-size
 * ring of kBufferCapacity events; when full, the oldest events are
 * overwritten (bounded memory, no allocation on the record path after
 * the first event per thread).
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace baco::obs {

/** One completed span, timestamps in microseconds since Trace::enable(). */
struct TraceEvent {
  const char* name = "";  ///< static string (span names are literals)
  const char* category = "";
  std::uint64_t thread_id = 0;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
};

/**
 * A span imported from another process (a worker shipping its buffer
 * back over the wire). Unlike TraceEvent the strings are owned: wire
 * names have no static lifetime. Timestamps are on the remote clock;
 * each import track renders as its own process in the Chrome export,
 * so no cross-process clock alignment is attempted.
 */
struct RemoteSpan {
  std::string name;
  std::string category;
  std::string run;  ///< trace run id the span was recorded under
  std::uint64_t thread_id = 0;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
};

/** Process-wide trace control and event collection. */
class Trace {
 public:
  static constexpr std::size_t kBufferCapacity = 4096;  ///< per thread

  /** Start capturing spans (resets the time origin; keeps old events). */
  static void enable();
  /** Stop capturing. In-flight spans finishing later are dropped. */
  static void disable();
  static bool enabled();

  /**
   * Run id stamped on propagated trace contexts. enable() generates one
   * ("run-<us>") when none is set; set_run_id overrides it.
   */
  static std::string run_id();
  static void set_run_id(const std::string& id);

  /** Discard all captured events (local buffers, retired, remote). */
  static void clear();

  /**
   * All locally captured events, oldest first per thread (snapshot
   * copy). Includes events retired from buffers of already-exited
   * threads, so collect() after a ThreadPool is destroyed still sees
   * its spans.
   */
  static std::vector<TraceEvent> collect();

  /**
   * Merge spans shipped from another process under a named track
   * ("worker-0", ...). The merged Chrome export renders each track as
   * its own process.
   */
  static void add_remote(const std::string& track,
                         std::vector<RemoteSpan> spans);
  /** Snapshot of the imported spans, grouped by track (insert order). */
  static std::vector<std::pair<std::string, std::vector<RemoteSpan>>>
  remote_tracks();

  /**
   * Write the captured events to `path` as a Chrome trace_event JSON
   * document ({"traceEvents": [...]}, complete "X" events). Local
   * events render as pid 1 ("server"); each remote track as its own
   * pid with the track name as process name and the originating run id
   * in the span args. Returns false on I/O failure.
   */
  static bool export_chrome(const std::string& path);
  /** Local events only, one JSON object per line: name, cat, tid, ts_us,
   *  dur_us. */
  static bool export_jsonl(const std::string& path);
};

#if defined(BACO_OBS_TRACE_OFF)

/** No-op span: the build compiled tracing out. */
class Span {
 public:
  explicit Span(const char*, const char* = "") {}
};

#else

/**
 * RAII span: records a TraceEvent for its lifetime into the calling
 * thread's ring buffer. `name` and `category` must outlive the trace
 * (pass string literals). A span constructed while tracing is disabled
 * costs one relaxed atomic load and records nothing.
 */
class Span {
 public:
  explicit Span(const char* name, const char* category = "");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

#endif  // BACO_OBS_TRACE_OFF

/**
 * RAII timer feeding a metrics histogram (seconds), optionally paired
 * with a trace span of the same name. This is the one-liner used by
 * the instrumentation points:
 *
 *     ScopedTimer t(reg.histogram("tuner.fit_seconds"), "tuner.fit");
 */
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist, const char* span_name = nullptr,
                       const char* category = "");
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /** Seconds since construction (the value the destructor will record). */
  double elapsed() const;

 private:
  Histogram& hist_;
  std::uint64_t start_ns_;
#if !defined(BACO_OBS_TRACE_OFF)
  Span span_;
#endif
};

}  // namespace baco::obs

#endif  // BACO_OBS_TRACE_HPP_
