#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <iterator>

#include "core/thread_annotations.hpp"

namespace baco::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_origin_us{0};

std::uint64_t
now_us()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Bounded per-thread ring of trace events. Threads register their
 * buffer in a global list on first use; when the thread exits, the
 * buffer's events are retired into a bounded global store and the
 * buffer itself is freed, so collect() after a ThreadPool is joined
 * and destroyed still sees its spans without the buffer list growing
 * with every short-lived thread.
 */
struct ThreadBuffer {
  Mutex mutex;  ///< record vs collect/clear; uncontended in practice
  /** Ring storage, up to kBufferCapacity. */
  std::vector<TraceEvent> events BACO_GUARDED_BY(mutex);
  std::size_t next BACO_GUARDED_BY(mutex) = 0;  ///< ring write position
  bool wrapped BACO_GUARDED_BY(mutex) = false;
  std::uint64_t thread_id = 0;  ///< set once at registration, then read-only

  void push(const TraceEvent& e)
  {
      MutexLock lock(mutex);
      if (events.size() < Trace::kBufferCapacity) {
          events.push_back(e);
          next = events.size() % Trace::kBufferCapacity;
      } else {
          events[next] = e;  // overwrite the oldest event
          next = (next + 1) % Trace::kBufferCapacity;
          wrapped = true;
      }
  }
};

struct BufferList {
  Mutex mutex;
  /** Owned; live until their thread exits (then retired + freed). */
  std::vector<ThreadBuffer*> buffers BACO_GUARDED_BY(mutex);
};

BufferList&
buffer_list()
{
    static BufferList* list = new BufferList();  // leaked: survives exit
    return *list;
}

/**
 * Events from exited threads, oldest first. Bounded: when a retirement
 * would exceed the cap the oldest retired events are dropped (same
 * overwrite-oldest policy as the rings themselves).
 */
struct RetiredEvents {
  Mutex mutex;
  std::vector<TraceEvent> events BACO_GUARDED_BY(mutex);
};

constexpr std::size_t kRetiredCapacity = 64 * Trace::kBufferCapacity;

RetiredEvents&
retired_events()
{
    static RetiredEvents* r = new RetiredEvents();  // leaked: survives exit
    return *r;
}

/** Spans imported from other processes, grouped by track. */
struct RemoteStore {
  Mutex mutex;
  std::vector<std::pair<std::string, std::vector<RemoteSpan>>> tracks
      BACO_GUARDED_BY(mutex);
};

RemoteStore&
remote_store()
{
    static RemoteStore* r = new RemoteStore();  // leaked: survives exit
    return *r;
}

Mutex g_run_mutex;
std::string g_run_id BACO_GUARDED_BY(g_run_mutex);

/** Oldest-first snapshot of a ring (caller holds no lock on b). */
std::vector<TraceEvent>
unwind_ring(ThreadBuffer& b)
{
    MutexLock lock(b.mutex);
    std::vector<TraceEvent> out;
    out.reserve(b.events.size());
    if (b.wrapped) {
        for (std::size_t i = 0; i < b.events.size(); ++i)
            out.push_back(b.events[(b.next + i) % b.events.size()]);
    } else {
        out.insert(out.end(), b.events.begin(), b.events.end());
    }
    return out;
}

/** Move an exiting thread's events into the retired store; free the ring. */
void
retire_buffer(ThreadBuffer* b)
{
    {
        BufferList& list = buffer_list();
        MutexLock lock(list.mutex);
        for (std::size_t i = 0; i < list.buffers.size(); ++i) {
            if (list.buffers[i] == b) {
                list.buffers.erase(list.buffers.begin() + i);
                break;
            }
        }
    }
    // The buffer is unreachable now: only its (exiting) owner thread and
    // the list referenced it.
    std::vector<TraceEvent> evs = unwind_ring(*b);
    if (!evs.empty()) {
        RetiredEvents& r = retired_events();
        MutexLock lock(r.mutex);
        r.events.insert(r.events.end(), evs.begin(), evs.end());
        if (r.events.size() > kRetiredCapacity) {
            r.events.erase(r.events.begin(),
                           r.events.begin() +
                               static_cast<std::ptrdiff_t>(r.events.size() -
                                                           kRetiredCapacity));
        }
    }
    delete b;
}

thread_local ThreadBuffer* t_buf = nullptr;

/** Thread-exit hook: constructed alongside the buffer, retires it. */
struct BufferRetirer {
  ~BufferRetirer()
  {
      if (t_buf) {
          retire_buffer(t_buf);
          t_buf = nullptr;
      }
  }
};
thread_local BufferRetirer t_retirer;

ThreadBuffer&
local_buffer()
{
    if (!t_buf) {
        auto* b = new ThreadBuffer();
        static std::atomic<std::uint64_t> next_tid{1};
        b->thread_id = next_tid.fetch_add(1);
        BufferList& list = buffer_list();
        {
            MutexLock lock(list.mutex);
            list.buffers.push_back(b);
        }
        (void)&t_retirer;  // odr-use: arm the thread-exit retirement hook
        t_buf = b;
    }
    return *t_buf;
}

std::string
json_escape(const char* s)
{
    std::string out;
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out += '\\';
        out += *s;
    }
    return out;
}

}  // namespace

void
Trace::enable()
{
    g_origin_us.store(static_cast<std::int64_t>(now_us()),
                      std::memory_order_relaxed);
    {
        MutexLock lock(g_run_mutex);
        if (g_run_id.empty())
            g_run_id = "run-" + std::to_string(now_us());
    }
    g_enabled.store(true, std::memory_order_release);
}

void
Trace::disable()
{
    g_enabled.store(false, std::memory_order_release);
}

bool
Trace::enabled()
{
    return g_enabled.load(std::memory_order_acquire);
}

std::string
Trace::run_id()
{
    MutexLock lock(g_run_mutex);
    return g_run_id;
}

void
Trace::set_run_id(const std::string& id)
{
    MutexLock lock(g_run_mutex);
    g_run_id = id;
}

void
Trace::clear()
{
    {
        BufferList& list = buffer_list();
        MutexLock lock(list.mutex);
        for (ThreadBuffer* b : list.buffers) {
            MutexLock block(b->mutex);
            b->events.clear();
            b->next = 0;
            b->wrapped = false;
        }
    }
    {
        RetiredEvents& r = retired_events();
        MutexLock lock(r.mutex);
        r.events.clear();
    }
    {
        RemoteStore& r = remote_store();
        MutexLock lock(r.mutex);
        r.tracks.clear();
    }
}

std::vector<TraceEvent>
Trace::collect()
{
    std::vector<TraceEvent> out;
    {
        RetiredEvents& r = retired_events();
        MutexLock lock(r.mutex);
        out = r.events;
    }
    BufferList& list = buffer_list();
    MutexLock lock(list.mutex);
    for (ThreadBuffer* b : list.buffers) {
        MutexLock block(b->mutex);
        if (b->wrapped) {
            // Oldest-first: the ring wrapped, so start at the write head.
            for (std::size_t i = 0; i < b->events.size(); ++i) {
                out.push_back(
                    b->events[(b->next + i) % b->events.size()]);
            }
        } else {
            out.insert(out.end(), b->events.begin(), b->events.end());
        }
    }
    return out;
}

void
Trace::add_remote(const std::string& track, std::vector<RemoteSpan> spans)
{
    if (spans.empty())
        return;
    RemoteStore& r = remote_store();
    MutexLock lock(r.mutex);
    for (auto& t : r.tracks) {
        if (t.first == track) {
            t.second.insert(t.second.end(),
                            std::make_move_iterator(spans.begin()),
                            std::make_move_iterator(spans.end()));
            return;
        }
    }
    r.tracks.emplace_back(track, std::move(spans));
}

std::vector<std::pair<std::string, std::vector<RemoteSpan>>>
Trace::remote_tracks()
{
    RemoteStore& r = remote_store();
    MutexLock lock(r.mutex);
    return r.tracks;
}

bool
Trace::export_chrome(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::vector<TraceEvent> events = collect();
    auto remote = remote_tracks();
    std::string run = run_id();
    std::fputs("{\"traceEvents\": [\n", f);
    bool first = true;
    auto sep = [&]() -> const char* {
        if (first) {
            first = false;
            return "";
        }
        return ",\n";
    };
    // Track metadata: the server is pid 1; each remote track (worker
    // process) gets its own pid so the viewer renders distinct tracks.
    std::fprintf(f,
                 "%s{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
                 "\"args\": {\"name\": \"server\"}}",
                 sep());
    if (!run.empty()) {
        std::fprintf(f,
                     "%s{\"name\": \"trace_run\", \"ph\": \"M\", \"pid\": 1, "
                     "\"args\": {\"name\": \"%s\"}}",
                     sep(), json_escape(run.c_str()).c_str());
    }
    for (const TraceEvent& e : events) {
        std::fprintf(
            f,
            "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": %llu, \"ts\": %llu, \"dur\": %llu}",
            sep(), json_escape(e.name).c_str(),
            json_escape(e.category).c_str(),
            static_cast<unsigned long long>(e.thread_id),
            static_cast<unsigned long long>(e.start_us),
            static_cast<unsigned long long>(e.duration_us));
    }
    for (std::size_t t = 0; t < remote.size(); ++t) {
        unsigned long long pid = static_cast<unsigned long long>(t + 2);
        std::fprintf(f,
                     "%s{\"name\": \"process_name\", \"ph\": \"M\", "
                     "\"pid\": %llu, \"args\": {\"name\": \"%s\"}}",
                     sep(), pid,
                     json_escape(remote[t].first.c_str()).c_str());
        for (const RemoteSpan& s : remote[t].second) {
            std::fprintf(
                f,
                "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                "\"pid\": %llu, \"tid\": %llu, \"ts\": %llu, \"dur\": %llu"
                ", \"args\": {\"run\": \"%s\"}}",
                sep(), json_escape(s.name.c_str()).c_str(),
                json_escape(s.category.c_str()).c_str(), pid,
                static_cast<unsigned long long>(s.thread_id),
                static_cast<unsigned long long>(s.start_us),
                static_cast<unsigned long long>(s.duration_us),
                json_escape(s.run.c_str()).c_str());
        }
    }
    std::fputs("\n]}\n", f);
    bool ok = std::fclose(f) == 0;
    return ok;
}

bool
Trace::export_jsonl(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    for (const TraceEvent& e : collect()) {
        std::fprintf(
            f,
            "{\"name\": \"%s\", \"cat\": \"%s\", \"tid\": %llu, "
            "\"ts_us\": %llu, \"dur_us\": %llu}\n",
            json_escape(e.name).c_str(), json_escape(e.category).c_str(),
            static_cast<unsigned long long>(e.thread_id),
            static_cast<unsigned long long>(e.start_us),
            static_cast<unsigned long long>(e.duration_us));
    }
    return std::fclose(f) == 0;
}

#if !defined(BACO_OBS_TRACE_OFF)

Span::Span(const char* name, const char* category)
    : name_(name), category_(category)
{
    if (name_ && g_enabled.load(std::memory_order_relaxed)) {
        active_ = true;
        start_us_ = now_us();
    }
}

Span::~Span()
{
    if (!active_ || !g_enabled.load(std::memory_order_relaxed))
        return;
    std::uint64_t end = now_us();
    std::int64_t origin = g_origin_us.load(std::memory_order_relaxed);
    TraceEvent e;
    e.name = name_;
    e.category = category_;
    ThreadBuffer& buf = local_buffer();
    e.thread_id = buf.thread_id;
    e.start_us = start_us_ >= static_cast<std::uint64_t>(origin)
                     ? start_us_ - static_cast<std::uint64_t>(origin)
                     : 0;
    e.duration_us = end - start_us_;
    buf.push(e);
}

#endif  // !BACO_OBS_TRACE_OFF

ScopedTimer::ScopedTimer(Histogram& hist, const char* span_name,
                         const char* category)
    : hist_(hist),
      start_ns_(now_ns())
#if !defined(BACO_OBS_TRACE_OFF)
      ,
      span_(span_name, category)
#endif
{
#if defined(BACO_OBS_TRACE_OFF)
    (void)span_name;
    (void)category;
#endif
}

double
ScopedTimer::elapsed() const
{
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer()
{
    hist_.record(elapsed());
}

}  // namespace baco::obs
