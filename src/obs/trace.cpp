#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace baco::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_origin_us{0};

std::uint64_t
now_us()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Bounded per-thread ring of trace events. Threads register their
 * buffer in a global list on first use; the list keeps the buffers
 * alive past thread exit (collect() after worker shutdown still sees
 * their events) — acceptable because pools are long-lived and each
 * buffer is bounded.
 */
struct ThreadBuffer {
  std::mutex mutex;  ///< record vs collect/clear; uncontended in practice
  std::vector<TraceEvent> events;  ///< ring storage, up to kBufferCapacity
  std::size_t next = 0;            ///< ring write position
  bool wrapped = false;
  std::uint64_t thread_id = 0;

  void push(const TraceEvent& e)
  {
      std::lock_guard<std::mutex> lock(mutex);
      if (events.size() < Trace::kBufferCapacity) {
          events.push_back(e);
          next = events.size() % Trace::kBufferCapacity;
      } else {
          events[next] = e;  // overwrite the oldest event
          next = (next + 1) % Trace::kBufferCapacity;
          wrapped = true;
      }
  }
};

struct BufferList {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;  ///< owned; live for process lifetime
};

BufferList&
buffer_list()
{
    static BufferList* list = new BufferList();  // leaked: survives exit
    return *list;
}

ThreadBuffer&
local_buffer()
{
    thread_local ThreadBuffer* buf = [] {
        auto* b = new ThreadBuffer();
        static std::atomic<std::uint64_t> next_tid{1};
        b->thread_id = next_tid.fetch_add(1);
        BufferList& list = buffer_list();
        std::lock_guard<std::mutex> lock(list.mutex);
        list.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

std::string
json_escape(const char* s)
{
    std::string out;
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out += '\\';
        out += *s;
    }
    return out;
}

}  // namespace

void
Trace::enable()
{
    g_origin_us.store(static_cast<std::int64_t>(now_us()),
                      std::memory_order_relaxed);
    g_enabled.store(true, std::memory_order_release);
}

void
Trace::disable()
{
    g_enabled.store(false, std::memory_order_release);
}

bool
Trace::enabled()
{
    return g_enabled.load(std::memory_order_acquire);
}

void
Trace::clear()
{
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    for (ThreadBuffer* b : list.buffers) {
        std::lock_guard<std::mutex> block(b->mutex);
        b->events.clear();
        b->next = 0;
        b->wrapped = false;
    }
}

std::vector<TraceEvent>
Trace::collect()
{
    std::vector<TraceEvent> out;
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    for (ThreadBuffer* b : list.buffers) {
        std::lock_guard<std::mutex> block(b->mutex);
        if (b->wrapped) {
            // Oldest-first: the ring wrapped, so start at the write head.
            for (std::size_t i = 0; i < b->events.size(); ++i) {
                out.push_back(
                    b->events[(b->next + i) % b->events.size()]);
            }
        } else {
            out.insert(out.end(), b->events.begin(), b->events.end());
        }
    }
    return out;
}

bool
Trace::export_chrome(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::vector<TraceEvent> events = collect();
    std::fputs("{\"traceEvents\": [\n", f);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        std::fprintf(
            f,
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": %llu, \"ts\": %llu, \"dur\": %llu}%s\n",
            json_escape(e.name).c_str(), json_escape(e.category).c_str(),
            static_cast<unsigned long long>(e.thread_id),
            static_cast<unsigned long long>(e.start_us),
            static_cast<unsigned long long>(e.duration_us),
            i + 1 < events.size() ? "," : "");
    }
    std::fputs("]}\n", f);
    bool ok = std::fclose(f) == 0;
    return ok;
}

bool
Trace::export_jsonl(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    for (const TraceEvent& e : collect()) {
        std::fprintf(
            f,
            "{\"name\": \"%s\", \"cat\": \"%s\", \"tid\": %llu, "
            "\"ts_us\": %llu, \"dur_us\": %llu}\n",
            json_escape(e.name).c_str(), json_escape(e.category).c_str(),
            static_cast<unsigned long long>(e.thread_id),
            static_cast<unsigned long long>(e.start_us),
            static_cast<unsigned long long>(e.duration_us));
    }
    return std::fclose(f) == 0;
}

#if !defined(BACO_OBS_TRACE_OFF)

Span::Span(const char* name, const char* category)
    : name_(name), category_(category)
{
    if (name_ && g_enabled.load(std::memory_order_relaxed)) {
        active_ = true;
        start_us_ = now_us();
    }
}

Span::~Span()
{
    if (!active_ || !g_enabled.load(std::memory_order_relaxed))
        return;
    std::uint64_t end = now_us();
    std::int64_t origin = g_origin_us.load(std::memory_order_relaxed);
    TraceEvent e;
    e.name = name_;
    e.category = category_;
    ThreadBuffer& buf = local_buffer();
    e.thread_id = buf.thread_id;
    e.start_us = start_us_ >= static_cast<std::uint64_t>(origin)
                     ? start_us_ - static_cast<std::uint64_t>(origin)
                     : 0;
    e.duration_us = end - start_us_;
    buf.push(e);
}

#endif  // !BACO_OBS_TRACE_OFF

ScopedTimer::ScopedTimer(Histogram& hist, const char* span_name,
                         const char* category)
    : hist_(hist),
      start_ns_(now_ns())
#if !defined(BACO_OBS_TRACE_OFF)
      ,
      span_(span_name, category)
#endif
{
#if defined(BACO_OBS_TRACE_OFF)
    (void)span_name;
    (void)category;
#endif
}

double
ScopedTimer::elapsed() const
{
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer()
{
    hist_.record(elapsed());
}

}  // namespace baco::obs
