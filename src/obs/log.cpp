#include "obs/log.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/thread_annotations.hpp"

#include "obs/metrics.hpp"

namespace baco::obs {

namespace {

double
wall_seconds()
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count()) *
           1e-3;
}

std::uint64_t
steady_seconds()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Keep one-line JSON framing intact (same policy as the wire protocol). */
void
append_sanitized(std::string& out, const char* s)
{
    for (; *s; ++s) {
        char c = *s;
        if (c == '"')
            out += '\'';
        else if (c == '\n' || c == '\r')
            out += ' ';
        else if (c == '\\')
            out += '/';
        else
            out += c;
    }
}

}  // namespace

const char*
log_level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
    }
    return "?";
}

bool
parse_log_level(const std::string& name, LogLevel& out)
{
    if (name == "debug")
        out = LogLevel::kDebug;
    else if (name == "info")
        out = LogLevel::kInfo;
    else if (name == "warn" || name == "warning")
        out = LogLevel::kWarn;
    else if (name == "error")
        out = LogLevel::kError;
    else
        return false;
    return true;
}

LogFields&
LogFields::str(const char* key, const std::string& value)
{
    out_ += ",\"";
    out_ += key;
    out_ += "\":\"";
    append_sanitized(out_, value.c_str());
    out_ += '"';
    return *this;
}

LogFields&
LogFields::num(const char* key, double value)
{
    char buf[64];
    if (std::isfinite(value))
        std::snprintf(buf, sizeof(buf), "%.6g", value);
    else
        std::snprintf(buf, sizeof(buf), "\"%s\"",
                      std::isnan(value) ? "nan"
                                        : (value > 0 ? "inf" : "-inf"));
    out_ += ",\"";
    out_ += key;
    out_ += "\":";
    out_ += buf;
    return *this;
}

LogFields&
LogFields::num(const char* key, std::int64_t value)
{
    out_ += ",\"";
    out_ += key;
    out_ += "\":";
    out_ += std::to_string(value);
    return *this;
}

LogFields&
LogFields::num(const char* key, std::uint64_t value)
{
    out_ += ",\"";
    out_ += key;
    out_ += "\":";
    out_ += std::to_string(value);
    return *this;
}

LogFields&
LogFields::num(const char* key, int value)
{
    return num(key, static_cast<std::int64_t>(value));
}

LogFields&
LogFields::flag(const char* key, bool value)
{
    out_ += ",\"";
    out_ += key;
    out_ += "\":";
    out_ += value ? "true" : "false";
    return *this;
}

struct EventLog::Impl {
  Mutex mutex;
  LogLevel min_level BACO_GUARDED_BY(mutex) = LogLevel::kWarn;
  /** nullptr = stderr (never closed). */
  std::FILE* file BACO_GUARDED_BY(mutex) = nullptr;
  /** events/second below kError; <=0 unlimited. */
  int rate_limit BACO_GUARDED_BY(mutex) = 500;
  std::uint64_t window_start_s BACO_GUARDED_BY(mutex) = 0;
  int window_count BACO_GUARDED_BY(mutex) = 0;
  std::uint64_t dropped BACO_GUARDED_BY(mutex) = 0;
};

EventLog::EventLog() : impl_(new Impl()) {}

EventLog::~EventLog()
{
    close();
    delete impl_;
}

EventLog&
EventLog::global()
{
    static EventLog* log = new EventLog();  // leaked: usable during exit
    return *log;
}

void
EventLog::configure(LogLevel min_level, const std::string& path)
{
    MutexLock lock(impl_->mutex);
    if (impl_->file) {
        std::fclose(impl_->file);
        impl_->file = nullptr;
    }
    impl_->min_level = min_level;
    if (!path.empty() && path != "-")
        impl_->file = std::fopen(path.c_str(), "a");
}

void
EventLog::set_rate_limit(int events_per_second)
{
    MutexLock lock(impl_->mutex);
    impl_->rate_limit = events_per_second;
}

bool
EventLog::enabled(LogLevel level) const
{
    MutexLock lock(impl_->mutex);
    return level >= impl_->min_level;
}

void
EventLog::write(LogLevel level, const char* component, const char* event,
                const LogFields& fields)
{
    std::string line;
    {
        MutexLock lock(impl_->mutex);
        if (level < impl_->min_level)
            return;
        // Per-second budget; errors always pass.
        if (level < LogLevel::kError && impl_->rate_limit > 0) {
            std::uint64_t now_s = steady_seconds();
            if (now_s != impl_->window_start_s) {
                impl_->window_start_s = now_s;
                impl_->window_count = 0;
            }
            if (impl_->window_count >= impl_->rate_limit) {
                ++impl_->dropped;
                MetricsRegistry::global()
                    .counter("obs.log.dropped_total")
                    .add(1);
                return;
            }
            ++impl_->window_count;
        }
        char head[96];
        std::snprintf(head, sizeof(head), "{\"ts\":%.3f,\"level\":\"%s\"",
                      wall_seconds(), log_level_name(level));
        line = head;
        line += ",\"component\":\"";
        append_sanitized(line, component);
        line += "\",\"event\":\"";
        append_sanitized(line, event);
        line += '"';
        line += fields.json();
        line += "}\n";
        std::FILE* out = impl_->file ? impl_->file : stderr;
        std::fputs(line.c_str(), out);
        std::fflush(out);
    }
}

std::uint64_t
EventLog::dropped() const
{
    MutexLock lock(impl_->mutex);
    return impl_->dropped;
}

void
EventLog::close()
{
    MutexLock lock(impl_->mutex);
    if (impl_->file) {
        std::fclose(impl_->file);
        impl_->file = nullptr;
    }
}

}  // namespace baco::obs
