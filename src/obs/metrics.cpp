#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace baco::obs {

namespace {

/** ratio between adjacent bucket edges: 10^(1/kBucketsPerDecade). */
double
bucket_ratio()
{
    static const double r =
        std::pow(10.0, 1.0 / HistogramLayout::kBucketsPerDecade);
    return r;
}

/** Lock-free add on an atomic<double> (no fetch_add pre-C++20). */
void
atomic_add(std::atomic<double>& a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

void
atomic_min(std::atomic<double>& a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
atomic_max(std::atomic<double>& a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

std::string
fmt_num(double v)
{
    std::ostringstream os;
    os.precision(10);
    os << v;
    return os.str();
}

}  // namespace

int
HistogramLayout::bucket_for(double v)
{
    if (!(v > kMinValue))  // includes NaN and non-positive values
        return 0;
    int i = static_cast<int>(std::log10(v / kMinValue) *
                             kBucketsPerDecade);
    return std::clamp(i, 0, kBuckets - 1);
}

double
HistogramLayout::lower_edge(int i)
{
    return kMinValue * std::pow(bucket_ratio(), i);
}

void
Histogram::record(double v)
{
    buckets_[HistogramLayout::bucket_for(v)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, v);
    if (!has_bounds_.load(std::memory_order_relaxed)) {
        // First recorder seeds the bounds; the CAS publishing has_bounds_
        // may race another first recorder, so seed with updates that are
        // correct either way (min towards -inf, max towards +inf).
        double expected_min = min_.load(std::memory_order_relaxed);
        double expected_max = max_.load(std::memory_order_relaxed);
        bool was_unset = !has_bounds_.exchange(true);
        if (was_unset) {
            min_.compare_exchange_strong(expected_min, v,
                                         std::memory_order_relaxed);
            max_.compare_exchange_strong(expected_max, v,
                                         std::memory_order_relaxed);
        }
    }
    atomic_min(min_, v);
    atomic_max(max_, v);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.buckets.resize(HistogramLayout::kBuckets);
    std::uint64_t total = 0;
    for (int i = 0; i < HistogramLayout::kBuckets; ++i) {
        s.buckets[static_cast<std::size_t>(i)] =
            buckets_[i].load(std::memory_order_relaxed);
        total += s.buckets[static_cast<std::size_t>(i)];
    }
    // Derive count from the buckets so count/buckets stay internally
    // consistent even while writers race the read.
    s.count = total;
    s.sum = sum_.load(std::memory_order_relaxed);
    if (has_bounds_.load(std::memory_order_relaxed)) {
        s.min = min_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
    }
    return s;
}

double
HistogramSnapshot::percentile(double q) const
{
    if (count == 0 || buckets.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target event (0-based, nearest-rank interpolation).
    double rank = q * static_cast<double>(count - 1);
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        std::uint64_t n = buckets[i];
        if (n == 0)
            continue;
        if (rank < static_cast<double>(below + n)) {
            double lo = HistogramLayout::lower_edge(static_cast<int>(i));
            double hi = HistogramLayout::lower_edge(static_cast<int>(i) + 1);
            double within =
                (rank - static_cast<double>(below)) / static_cast<double>(n);
            double v = lo + (hi - lo) * within;
            return std::clamp(v, min, max > 0.0 ? max : v);
        }
        below += n;
    }
    return max;
}

HistogramSnapshot
HistogramSnapshot::delta_since(const HistogramSnapshot& earlier) const
{
    HistogramSnapshot d;
    d.buckets.resize(buckets.size());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        std::uint64_t before =
            i < earlier.buckets.size() ? earlier.buckets[i] : 0;
        d.buckets[i] = buckets[i] >= before ? buckets[i] - before : 0;
        total += d.buckets[i];
    }
    d.count = total;
    d.sum = sum - earlier.sum;
    if (d.sum < 0.0)
        d.sum = 0.0;
    // Exact interval bounds are not recoverable from two snapshots;
    // the lifetime bounds still clamp the interpolated percentiles.
    d.min = min;
    d.max = max;
    return d;
}

void
HistogramSnapshot::merge(const HistogramSnapshot& other)
{
    if (other.count == 0 && other.buckets.empty())
        return;
    if (other.buckets.size() > buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (std::size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else if (other.count > 0) {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
}

const char*
MetricValue::kind_name(Kind k)
{
    switch (k) {
      case Kind::kCounter: return "counter";
      case Kind::kGauge: return "gauge";
      case Kind::kHistogram: return "histogram";
    }
    return "?";
}

const MetricValue*
MetricsSnapshot::find(const std::string& name) const
{
    for (const MetricValue& m : metrics) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

double
MetricsSnapshot::value(const std::string& name) const
{
    const MetricValue* m = find(name);
    if (!m)
        return 0.0;
    return m->kind == MetricValue::Kind::kHistogram ? m->histogram.sum
                                                    : m->value;
}

MetricsSnapshot
MetricsSnapshot::delta_since(const MetricsSnapshot& earlier) const
{
    MetricsSnapshot d;
    d.metrics.reserve(metrics.size());
    for (const MetricValue& m : metrics) {
        const MetricValue* before = earlier.find(m.name);
        MetricValue out = m;
        if (before && before->kind == m.kind) {
            switch (m.kind) {
              case MetricValue::Kind::kCounter:
                out.value = std::max(0.0, m.value - before->value);
                break;
              case MetricValue::Kind::kGauge:
                break;  // gauges are instantaneous: keep the current value
              case MetricValue::Kind::kHistogram:
                out.histogram = m.histogram.delta_since(before->histogram);
                break;
            }
        }
        d.metrics.push_back(std::move(out));
    }
    return d;
}

std::string
MetricsSnapshot::to_json(const std::string& extra_fields) const
{
    std::string out = "{";
    if (!extra_fields.empty())
        out += extra_fields;
    auto field = [&out](const std::string& key, const std::string& value) {
        if (out.size() > 1)
            out += ", ";
        out += "\"" + key + "\": " + value;
    };
    for (const MetricValue& m : metrics) {
        switch (m.kind) {
          case MetricValue::Kind::kCounter:
          case MetricValue::Kind::kGauge:
            field(m.name, fmt_num(m.value));
            break;
          case MetricValue::Kind::kHistogram: {
            const HistogramSnapshot& h = m.histogram;
            field(m.name + ".count",
                  std::to_string(static_cast<unsigned long long>(h.count)));
            field(m.name + ".sum", fmt_num(h.sum));
            field(m.name + ".mean", fmt_num(h.mean()));
            field(m.name + ".p50", fmt_num(h.percentile(0.50)));
            field(m.name + ".p90", fmt_num(h.percentile(0.90)));
            field(m.name + ".p99", fmt_num(h.percentile(0.99)));
            break;
          }
        }
    }
    out += "}";
    return out;
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry&
MetricsRegistry::entry(const std::string& name, MetricValue::Kind kind)
{
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        if (it->second.kind != kind) {
            throw std::logic_error(
                "metric '" + name + "' already registered as " +
                MetricValue::kind_name(it->second.kind));
        }
        return it->second;
    }
    Entry e;
    e.kind = kind;
    switch (kind) {
      case MetricValue::Kind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricValue::Kind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case MetricValue::Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    return entries_.emplace(name, std::move(e)).first->second;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    return *entry(name, MetricValue::Kind::kCounter).counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    return *entry(name, MetricValue::Kind::kGauge).gauge;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    return *entry(name, MetricValue::Kind::kHistogram).histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot s;
    MutexLock lock(mutex_);
    s.metrics.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
        MetricValue m;
        m.name = name;
        m.kind = e.kind;
        switch (e.kind) {
          case MetricValue::Kind::kCounter:
            m.value = static_cast<double>(e.counter->value());
            break;
          case MetricValue::Kind::kGauge:
            m.value = e.gauge->value();
            break;
          case MetricValue::Kind::kHistogram:
            m.histogram = e.histogram->snapshot();
            break;
        }
        s.metrics.push_back(std::move(m));
    }
    return s;
}

}  // namespace baco::obs
