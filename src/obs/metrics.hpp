#ifndef BACO_OBS_METRICS_HPP_
#define BACO_OBS_METRICS_HPP_

/**
 * @file
 * Always-on metrics for the tuner, the execution engines and the serve
 * layer: counters, gauges and fixed-bucket latency histograms behind a
 * named registry.
 *
 * Design constraints (the ISSUE-6 overhead discipline):
 *   - The update fast path is lock-free — one or two relaxed atomic
 *     operations per event — so instrumentation can stay on in the
 *     hot suggest/observe/evaluate loops (< 1% on table10).
 *   - Registration is mutex-protected but happens once per metric name;
 *     call sites cache the returned reference (metrics are never
 *     removed, so references stay valid for the registry's lifetime).
 *   - The read side produces a MetricsSnapshot: a value copy of every
 *     metric taken under the registry mutex, so a reader never observes
 *     a half-registered metric. Individual histogram buckets are read
 *     with relaxed loads while writers keep writing; a snapshot is
 *     therefore exact for quiescent metrics and at worst a few events
 *     stale for hot ones — fine for monitoring, and delta() between two
 *     snapshots is what perf accounting uses.
 *
 * Histograms use fixed log-spaced buckets (8 per decade over
 * [100ns, 1000s]) and extract approximate p50/p90/p99 by linear
 * interpolation inside the owning bucket: the relative quantile error
 * is bounded by the bucket ratio 10^(1/8) ~ 1.33 (tested against exact
 * quantiles in test_obs.cpp).
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"

namespace baco::obs {

/** Monotonic event count. add() is lock-free. */
class Counter {
 public:
  void add(std::uint64_t n = 1)
  {
      value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const
  {
      return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value; set()/set_max() are lock-free. */
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /** High-water update: keep the maximum of the current value and v. */
  void set_max(double v)
  {
      double cur = value_.load(std::memory_order_relaxed);
      while (v > cur &&
             !value_.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
      }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/** Histogram bucket layout: 8 log-spaced buckets per decade. */
struct HistogramLayout {
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecades = 10;
  static constexpr int kBuckets = kBucketsPerDecade * kDecades;
  static constexpr double kMinValue = 1e-7;  ///< lower edge of bucket 0

  /** Bucket index for a value (clamped to [0, kBuckets - 1]). */
  static int bucket_for(double v);
  /** Lower edge of bucket i (kMinValue * ratio^i). */
  static double lower_edge(int i);
};

/** A read-side copy of one histogram (also the delta representation). */
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  ///< kBuckets entries (maybe empty)
  std::uint64_t count = 0;             ///< sum over buckets
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /**
   * Approximate quantile (q in [0,1]) by linear interpolation inside
   * the bucket where the cumulative count crosses q*count, clamped to
   * the observed [min, max]. 0 when empty.
   */
  double percentile(double q) const;

  /** Events recorded here but not in `earlier` (bucket-wise subtract;
   *  min/max fall back to this snapshot's bounds). */
  HistogramSnapshot delta_since(const HistogramSnapshot& earlier) const;

  /** Fold `other` into this snapshot (bucket-wise add, combined
   *  count/sum, widened min/max) — the inverse of delta_since, used to
   *  report lifetime stats across histogram resets (session spill). */
  void merge(const HistogramSnapshot& other);
};

/**
 * Fixed-bucket latency histogram. record() is lock-free: one relaxed
 * bucket increment, one relaxed CAS-add on the sum and (rarely looping)
 * min/max CAS updates.
 */
class Histogram {
 public:
  void record(double v);
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const
  {
      return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> buckets_[HistogramLayout::kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_bounds_{false};
};

/** One metric inside a MetricsSnapshot. */
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;           ///< counter / gauge value
  HistogramSnapshot histogram;  ///< kHistogram only

  static const char* kind_name(Kind k);
};

/** A consistent value copy of a registry, sorted by metric name. */
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /** The named metric, or nullptr. */
  const MetricValue* find(const std::string& name) const;
  /** Counter/gauge value (histograms: the sum); 0 when absent. */
  double value(const std::string& name) const;

  /**
   * Traffic since `earlier`: counters and histograms subtract (metrics
   * absent from `earlier` pass through whole), gauges keep their
   * current value. The basis of per-study and per-bench accounting
   * against the always-on global registry.
   */
  MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  /**
   * One flat JSON object (single line, JSONL-friendly): counters and
   * gauges as numbers, histograms expanded into .count/.sum/.mean/
   * .p50/.p90/.p99 fields. extra_fields (already-serialized "k":v
   * pairs, comma-joined) is prepended verbatim when nonempty.
   */
  std::string to_json(const std::string& extra_fields = {}) const;
};

/**
 * Named metric registry. counter()/gauge()/histogram() register on
 * first use and return a reference that stays valid for the registry's
 * lifetime; the returned objects are the lock-free update handles.
 * Using one name with two different kinds throws std::logic_error.
 */
class MetricsRegistry {
 public:
  /** The process-wide registry every built-in instrumentation point
   *  writes to. */
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    MetricValue::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(const std::string& name, MetricValue::Kind kind)
      BACO_EXCLUDES(mutex_);

  mutable baco::Mutex mutex_;
  std::map<std::string, Entry> entries_ BACO_GUARDED_BY(mutex_);
};

}  // namespace baco::obs

#endif  // BACO_OBS_METRICS_HPP_
