#include "rf/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace baco {

namespace {

/** Mean of y over idx[lo..hi). */
double
subset_mean(const std::vector<double>& y, const std::vector<std::size_t>& idx,
            std::size_t lo, std::size_t hi)
{
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
        acc += y[idx[i]];
    return acc / static_cast<double>(hi - lo);
}

/** Impurity * count: SSE for regression, Gini for classification. */
double
impurity(TreeTask task, double sum, double sum_sq, double count)
{
    if (count <= 0.0)
        return 0.0;
    if (task == TreeTask::kRegression)
        return sum_sq - sum * sum / count;  // sum of squared errors
    double p = sum / count;                 // fraction of class 1
    return count * 2.0 * p * (1.0 - p);     // weighted Gini
}

}  // namespace

void
DecisionTree::fit(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y,
                  const std::vector<std::size_t>& sample_idx, RngEngine& rng)
{
    nodes_.clear();
    std::vector<std::size_t> idx = sample_idx;
    assert(!idx.empty());
    grow(x, y, idx, 0, idx.size(), 0, rng);
}

std::int32_t
DecisionTree::grow(const std::vector<std::vector<double>>& x,
                   const std::vector<double>& y,
                   std::vector<std::size_t>& idx, std::size_t lo,
                   std::size_t hi, int depth, RngEngine& rng)
{
    std::size_t count = hi - lo;
    double node_value = subset_mean(y, idx, lo, hi);

    auto make_leaf = [&]() {
        Node leaf;
        leaf.value = node_value;
        nodes_.push_back(leaf);
        return static_cast<std::int32_t>(nodes_.size() - 1);
    };

    if (depth >= opt_.max_depth || count < opt_.min_samples_split)
        return make_leaf();

    // Pure node?
    bool pure = true;
    for (std::size_t i = lo + 1; i < hi && pure; ++i)
        pure = (y[idx[i]] == y[idx[lo]]);
    if (pure)
        return make_leaf();

    std::size_t n_features = x[idx[lo]].size();
    std::size_t mtry = opt_.max_features == 0
                           ? n_features
                           : std::min(opt_.max_features, n_features);
    std::vector<std::size_t> features =
        rng.sample_without_replacement(n_features, mtry);

    double best_gain = 1e-12;
    int best_feature = -1;
    double best_threshold = 0.0;

    std::vector<std::pair<double, double>> vals;  // (feature value, target)
    vals.reserve(count);

    double total_sum = 0.0, total_sq = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
        total_sum += y[idx[i]];
        total_sq += y[idx[i]] * y[idx[i]];
    }
    double parent_imp = impurity(opt_.task, total_sum, total_sq,
                                 static_cast<double>(count));

    for (std::size_t f : features) {
        vals.clear();
        for (std::size_t i = lo; i < hi; ++i)
            vals.emplace_back(x[idx[i]][f], y[idx[i]]);
        std::sort(vals.begin(), vals.end());
        if (vals.front().first == vals.back().first)
            continue;

        double left_sum = 0.0, left_sq = 0.0;
        for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
            left_sum += vals[i].second;
            left_sq += vals[i].second * vals[i].second;
            if (vals[i].first == vals[i + 1].first)
                continue;  // can't split between equal values
            std::size_t nl = i + 1;
            std::size_t nr = count - nl;
            if (nl < opt_.min_samples_leaf || nr < opt_.min_samples_leaf)
                continue;
            double gain = parent_imp -
                          impurity(opt_.task, left_sum, left_sq,
                                   static_cast<double>(nl)) -
                          impurity(opt_.task, total_sum - left_sum,
                                   total_sq - left_sq,
                                   static_cast<double>(nr));
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = static_cast<int>(f);
                best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
            }
        }
    }

    if (best_feature < 0)
        return make_leaf();

    // Partition idx[lo..hi) in place.
    std::size_t mid = lo;
    for (std::size_t i = lo; i < hi; ++i) {
        if (x[idx[i]][static_cast<std::size_t>(best_feature)] <=
            best_threshold) {
            std::swap(idx[i], idx[mid]);
            ++mid;
        }
    }
    if (mid == lo || mid == hi)
        return make_leaf();  // degenerate split (numerical ties)

    // Reserve this node's slot before growing children.
    Node node;
    node.feature = best_feature;
    node.threshold = best_threshold;
    node.value = node_value;
    nodes_.push_back(node);
    auto self = static_cast<std::int32_t>(nodes_.size() - 1);

    std::int32_t left = grow(x, y, idx, lo, mid, depth + 1, rng);
    std::int32_t right = grow(x, y, idx, mid, hi, depth + 1, rng);
    nodes_[static_cast<std::size_t>(self)].left = left;
    nodes_[static_cast<std::size_t>(self)].right = right;
    return self;
}

double
DecisionTree::predict(const std::vector<double>& x) const
{
    assert(!nodes_.empty());
    std::size_t cur = 0;
    while (nodes_[cur].feature >= 0) {
        const Node& n = nodes_[cur];
        cur = static_cast<std::size_t>(
            x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                  : n.right);
    }
    return nodes_[cur].value;
}

}  // namespace baco
