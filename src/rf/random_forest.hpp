#ifndef BACO_RF_RANDOM_FOREST_HPP_
#define BACO_RF_RANDOM_FOREST_HPP_

/**
 * @file
 * Random forest (bagged CART trees with feature subsampling).
 *
 * Two uses in this repository:
 *  - BaCO's hidden-constraint feasibility classifier (paper Sec. 4.2);
 *  - the Ytopt-like baseline's regression surrogate and the RF-surrogate
 *    ablation in Fig. 8, where the across-tree variance provides the
 *    uncertainty estimate.
 */

#include <vector>

#include "rf/decision_tree.hpp"

namespace baco {

/** Forest configuration. */
struct ForestOptions {
  TreeTask task = TreeTask::kRegression;
  int num_trees = 40;
  int max_depth = 24;
  std::size_t min_samples_leaf = 1;
  /**
   * Features per split; 0 = heuristic default (sqrt(F) for classification,
   * max(1, F/3) for regression).
   */
  std::size_t max_features = 0;
  bool bootstrap = true;
};

/** Mean/variance prediction pair (variance across trees). */
struct ForestPrediction {
  double mean = 0.0;
  double var = 0.0;
};

/** Bagged decision-tree ensemble. */
class RandomForest {
 public:
  explicit RandomForest(ForestOptions opt = ForestOptions{}) : opt_(opt) {}

  /** Fit on feature rows x and targets y (classification: y in {0,1}). */
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, RngEngine& rng);

  /** Mean prediction: regression mean or P(class 1). */
  double predict(const std::vector<double>& x) const;

  /** Mean and across-tree variance (surrogate uncertainty). */
  ForestPrediction predict_with_variance(const std::vector<double>& x) const;

  bool fitted() const { return !trees_.empty(); }
  std::size_t num_trees() const { return trees_.size(); }

 private:
  ForestOptions opt_;
  std::vector<DecisionTree> trees_;
};

}  // namespace baco

#endif  // BACO_RF_RANDOM_FOREST_HPP_
