#include "rf/random_forest.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace baco {

void
RandomForest::fit(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y, RngEngine& rng)
{
    if (x.empty() || x.size() != y.size())
        throw std::runtime_error("RandomForest::fit needs matching samples");

    std::size_t n = x.size();
    std::size_t f = x[0].size();

    std::size_t mtry = opt_.max_features;
    if (mtry == 0) {
        if (opt_.task == TreeTask::kClassification) {
            mtry = static_cast<std::size_t>(
                std::max(1.0, std::sqrt(static_cast<double>(f))));
        } else {
            mtry = std::max<std::size_t>(1, f / 3);
        }
    }

    TreeOptions topt;
    topt.task = opt_.task;
    topt.max_depth = opt_.max_depth;
    topt.min_samples_leaf = opt_.min_samples_leaf;
    topt.max_features = mtry;

    trees_.clear();
    trees_.reserve(static_cast<std::size_t>(opt_.num_trees));
    std::vector<std::size_t> idx(n);
    for (int t = 0; t < opt_.num_trees; ++t) {
        if (opt_.bootstrap) {
            for (std::size_t i = 0; i < n; ++i)
                idx[i] = rng.index(n);
        } else {
            std::iota(idx.begin(), idx.end(), std::size_t{0});
        }
        DecisionTree tree(topt);
        tree.fit(x, y, idx, rng);
        trees_.push_back(std::move(tree));
    }
}

double
RandomForest::predict(const std::vector<double>& x) const
{
    assert(!trees_.empty());
    double acc = 0.0;
    for (const DecisionTree& t : trees_)
        acc += t.predict(x);
    return acc / static_cast<double>(trees_.size());
}

ForestPrediction
RandomForest::predict_with_variance(const std::vector<double>& x) const
{
    assert(!trees_.empty());
    double sum = 0.0, sum_sq = 0.0;
    for (const DecisionTree& t : trees_) {
        double v = t.predict(x);
        sum += v;
        sum_sq += v * v;
    }
    double n = static_cast<double>(trees_.size());
    ForestPrediction p;
    p.mean = sum / n;
    p.var = std::max(0.0, sum_sq / n - p.mean * p.mean);
    return p;
}

}  // namespace baco
