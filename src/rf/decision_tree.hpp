#ifndef BACO_RF_DECISION_TREE_HPP_
#define BACO_RF_DECISION_TREE_HPP_

/**
 * @file
 * CART decision tree over dense numeric features.
 *
 * Used as the building block of the random forest (feasibility prediction,
 * paper Sec. 4.2; Ytopt-style RF surrogate, Sec. 5.1). Supports regression
 * (variance reduction) and binary classification (Gini impurity with leaf
 * probability estimates).
 */

#include <cstdint>
#include <vector>

#include "linalg/rng.hpp"

namespace baco {

/** Tree task type. */
enum class TreeTask { kRegression, kClassification };

/** Tree growth limits. */
struct TreeOptions {
  TreeTask task = TreeTask::kRegression;
  int max_depth = 24;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /** Features examined per split; 0 = all. */
  std::size_t max_features = 0;
};

/** A single CART tree. */
class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions opt = TreeOptions{}) : opt_(opt) {}

  /**
   * Fit on the rows of x indexed by sample_idx (bootstrap support).
   * For classification, y entries must be 0 or 1.
   */
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y,
           const std::vector<std::size_t>& sample_idx, RngEngine& rng);

  /** Predicted value: mean target (regression) or P(class 1). */
  double predict(const std::vector<double>& x) const;

  /** Number of nodes, for tests. */
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;        ///< -1 marks a leaf
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;      ///< leaf prediction
  };

  std::int32_t grow(const std::vector<std::vector<double>>& x,
                    const std::vector<double>& y,
                    std::vector<std::size_t>& idx, std::size_t lo,
                    std::size_t hi, int depth, RngEngine& rng);

  TreeOptions opt_;
  std::vector<Node> nodes_;
};

}  // namespace baco

#endif  // BACO_RF_DECISION_TREE_HPP_
