#include "exec/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "exec/jsonl.hpp"

namespace baco {

bool
save_checkpoint(const std::string& path, const AskTellTuner& tuner)
{
    return save_checkpoint(path, tuner, {});
}

bool
save_checkpoint(const std::string& path, const AskTellTuner& tuner,
                const std::vector<PendingEval>& pending)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        const TuningHistory& h = tuner.history();
        out << "{\"type\":\"meta\",\"version\":1,\"seed\":"
            << tuner.run_seed()
            << ",\"tuner_seconds\":" << jsonl::fmt_double(h.tuner_seconds)
            << ",\"eval_seconds\":" << jsonl::fmt_double(h.eval_seconds)
            << "}\n";
        for (const Observation& o : h.observations) {
            out << "{\"type\":\"obs\",\"config\":";
            jsonl::write_config(out, o.config);
            out << ",\"value\":" << jsonl::fmt_double(o.value)
                << ",\"feasible\":" << (o.feasible ? "true" : "false")
                << "}\n";
        }
        for (const PendingEval& p : pending) {
            out << "{\"type\":\"pending\",\"index\":" << p.index
                << ",\"config\":";
            jsonl::write_config(out, p.config);
            out << "}\n";
        }
        out << "{\"type\":\"state\",\"rng\":\"" << tuner.sampler_state()
            << "\"}\n";
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<CheckpointData>
load_checkpoint(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    CheckpointData data;
    bool saw_meta = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string type;
        if (!jsonl::field(line, "type", type))
            return std::nullopt;
        if (type == "meta") {
            std::string seed, ts, es;
            if (!jsonl::field(line, "seed", seed))
                return std::nullopt;
            data.seed = std::strtoull(seed.c_str(), nullptr, 10);
            if (jsonl::field(line, "tuner_seconds", ts))
                data.history.tuner_seconds = std::strtod(ts.c_str(), nullptr);
            if (jsonl::field(line, "eval_seconds", es))
                data.history.eval_seconds = std::strtod(es.c_str(), nullptr);
            saw_meta = true;
        } else if (type == "obs") {
            std::size_t at = line.find("\"config\":");
            if (at == std::string::npos)
                return std::nullopt;
            at += 9;
            Configuration c;
            if (!jsonl::parse_config(line, at, c))
                return std::nullopt;
            std::string value, feasible;
            if (!jsonl::field(line, "value", value) ||
                !jsonl::field(line, "feasible", feasible)) {
                return std::nullopt;
            }
            EvalResult r;
            r.value = std::strtod(value.c_str(), nullptr);
            r.feasible = feasible == "true";
            data.history.add(std::move(c), r);
        } else if (type == "pending") {
            PendingEval p;
            std::string index;
            if (!jsonl::field(line, "index", index))
                return std::nullopt;
            p.index = std::strtoull(index.c_str(), nullptr, 10);
            std::size_t at = line.find("\"config\":");
            if (at == std::string::npos)
                return std::nullopt;
            at += 9;
            if (!jsonl::parse_config(line, at, p.config))
                return std::nullopt;
            data.pending.push_back(std::move(p));
        } else if (type == "state") {
            if (!jsonl::field(line, "rng", data.sampler_state))
                return std::nullopt;
        }
    }
    if (!saw_meta)
        return std::nullopt;
    return data;
}

bool
resume_from_checkpoint(const std::string& path, AskTellTuner& tuner,
                       std::vector<PendingEval>* pending)
{
    std::optional<CheckpointData> data = load_checkpoint(path);
    if (!data)
        return false;
    // A checkpoint only resumes the run it was written by: the per-
    // evaluation RNG streams are derived from the run seed, so restoring
    // into a tuner seeded differently would silently diverge from the
    // uninterrupted history.
    if (data->seed != tuner.run_seed())
        return false;
    if (!tuner.restore(data->history, data->sampler_state))
        return false;
    if (pending)
        *pending = std::move(data->pending);
    return true;
}

}  // namespace baco
