#include "exec/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "exec/jsonl.hpp"

namespace baco {

namespace {

void
write_config_json(std::ostream& out, const Configuration& c)
{
    out << '[';
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (i > 0)
            out << ',';
        if (const auto* d = std::get_if<double>(&c[i])) {
            out << "{\"r\":" << jsonl::fmt_double(*d) << '}';
        } else if (const auto* v = std::get_if<std::int64_t>(&c[i])) {
            out << "{\"i\":" << *v << '}';
        } else {
            const auto& p = std::get<Permutation>(c[i]);
            out << "{\"p\":[";
            for (std::size_t k = 0; k < p.size(); ++k) {
                if (k > 0)
                    out << ',';
                out << p[k];
            }
            out << "]}";
        }
    }
    out << ']';
}

/** strtod at s[at]; false when no number starts there. Advances at. */
bool
parse_double_at(const std::string& s, std::size_t& at, double& out)
{
    const char* begin = s.c_str() + at;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin)
        return false;
    at += static_cast<std::size_t>(end - begin);
    return true;
}

/** strtoll at s[at]; false when no integer starts there. Advances at. */
bool
parse_int_at(const std::string& s, std::size_t& at, std::int64_t& out)
{
    const char* begin = s.c_str() + at;
    char* end = nullptr;
    out = std::strtoll(begin, &end, 10);
    if (end == begin)
        return false;
    at += static_cast<std::size_t>(end - begin);
    return true;
}

/**
 * Parse the config array emitted by write_config_json starting at s[at]
 * (the '['). Advances at past the closing ']'. Returns false on malformed
 * input (never throws).
 */
bool
parse_config_json(const std::string& s, std::size_t& at, Configuration& out)
{
    if (at >= s.size() || s[at] != '[')
        return false;
    ++at;
    out.clear();
    if (at < s.size() && s[at] == ']') {
        ++at;
        return true;
    }
    while (at < s.size()) {
        if (s.compare(at, 5, "{\"r\":") == 0) {
            at += 5;
            double d;
            if (!parse_double_at(s, at, d))
                return false;
            out.emplace_back(d);
        } else if (s.compare(at, 5, "{\"i\":") == 0) {
            at += 5;
            std::int64_t v;
            if (!parse_int_at(s, at, v))
                return false;
            out.emplace_back(v);
        } else if (s.compare(at, 6, "{\"p\":[") == 0) {
            at += 6;
            Permutation p;
            while (at < s.size() && s[at] != ']') {
                std::int64_t v;
                if (!parse_int_at(s, at, v))
                    return false;
                p.push_back(static_cast<int>(v));
                if (at < s.size() && s[at] == ',')
                    ++at;
            }
            if (at >= s.size())
                return false;
            ++at;  // ']'
            out.emplace_back(std::move(p));
        } else {
            return false;
        }
        if (at >= s.size() || s[at] != '}')
            return false;
        ++at;  // '}'
        if (at < s.size() && s[at] == ',') {
            ++at;
            continue;
        }
        break;
    }
    if (at >= s.size() || s[at] != ']')
        return false;
    ++at;
    return true;
}

}  // namespace

bool
save_checkpoint(const std::string& path, const AskTellTuner& tuner)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        const TuningHistory& h = tuner.history();
        out << "{\"type\":\"meta\",\"version\":1,\"seed\":"
            << tuner.run_seed()
            << ",\"tuner_seconds\":" << jsonl::fmt_double(h.tuner_seconds)
            << ",\"eval_seconds\":" << jsonl::fmt_double(h.eval_seconds)
            << "}\n";
        for (const Observation& o : h.observations) {
            out << "{\"type\":\"obs\",\"config\":";
            write_config_json(out, o.config);
            out << ",\"value\":" << jsonl::fmt_double(o.value)
                << ",\"feasible\":" << (o.feasible ? "true" : "false")
                << "}\n";
        }
        out << "{\"type\":\"state\",\"rng\":\"" << tuner.sampler_state()
            << "\"}\n";
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<CheckpointData>
load_checkpoint(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    CheckpointData data;
    bool saw_meta = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string type;
        if (!jsonl::field(line, "type", type))
            return std::nullopt;
        if (type == "meta") {
            std::string seed, ts, es;
            if (!jsonl::field(line, "seed", seed))
                return std::nullopt;
            data.seed = std::strtoull(seed.c_str(), nullptr, 10);
            if (jsonl::field(line, "tuner_seconds", ts))
                data.history.tuner_seconds = std::strtod(ts.c_str(), nullptr);
            if (jsonl::field(line, "eval_seconds", es))
                data.history.eval_seconds = std::strtod(es.c_str(), nullptr);
            saw_meta = true;
        } else if (type == "obs") {
            std::size_t at = line.find("\"config\":");
            if (at == std::string::npos)
                return std::nullopt;
            at += 9;
            Configuration c;
            if (!parse_config_json(line, at, c))
                return std::nullopt;
            std::string value, feasible;
            if (!jsonl::field(line, "value", value) ||
                !jsonl::field(line, "feasible", feasible)) {
                return std::nullopt;
            }
            EvalResult r;
            r.value = std::strtod(value.c_str(), nullptr);
            r.feasible = feasible == "true";
            data.history.add(std::move(c), r);
        } else if (type == "state") {
            if (!jsonl::field(line, "rng", data.sampler_state))
                return std::nullopt;
        }
    }
    if (!saw_meta)
        return std::nullopt;
    return data;
}

bool
resume_from_checkpoint(const std::string& path, AskTellTuner& tuner)
{
    std::optional<CheckpointData> data = load_checkpoint(path);
    if (!data)
        return false;
    return tuner.restore(data->history, data->sampler_state);
}

}  // namespace baco
