#include "exec/thread_pool.hpp"

#include <algorithm>

namespace baco {

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        num_threads =
            static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    }
    queues_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    // Lane 0 is the caller's; spawn workers for the rest.
    for (std::size_t id = 1; id < queues_.size(); ++id) {
        try {
            workers_.emplace_back([this, id] { worker_loop(id); });
        } catch (...) {
            // Thread creation failed (e.g. absurd num_threads): join the
            // workers already spawned before rethrowing — leaving them
            // joinable would std::terminate in the vector's destructor.
            {
                MutexLock lock(state_mutex_);
                stop_ = true;
            }
            work_cv_.notify_all();
            for (std::thread& t : workers_)
                t.join();
            throw;
        }
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(state_mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
    // A pool without workers (size 1) may still hold queued submits when
    // the submitter raced destruction; drain them here like a worker would.
    while (auto task = take(0))
        execute(task);
}

std::function<void()>
ThreadPool::take(std::size_t self)
{
    // Own queue first (front: LIFO locality is irrelevant here, FIFO keeps
    // batch order roughly intact), then steal from victims' backs.
    {
        WorkerQueue& q = *queues_[self];
        MutexLock lock(q.mutex);
        if (!q.tasks.empty()) {
            auto task = std::move(q.tasks.front());
            q.tasks.pop_front();
            return task;
        }
    }
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        WorkerQueue& q = *queues_[(self + i) % queues_.size()];
        MutexLock lock(q.mutex);
        if (!q.tasks.empty()) {
            auto task = std::move(q.tasks.back());
            q.tasks.pop_back();
            return task;
        }
    }
    return {};
}

void
ThreadPool::finish_one()
{
    MutexLock lock(state_mutex_);
    if (--outstanding_ == 0)
        done_cv_.notify_all();
}

int
ThreadPool::queue_depth() const
{
    int depth = 0;
    for (const auto& q : queues_) {
        MutexLock lock(q->mutex);
        depth += static_cast<int>(q->tasks.size());
    }
    return depth;
}

bool
ThreadPool::work_queued() const
{
    for (const auto& q : queues_) {
        MutexLock lock(q->mutex);
        if (!q->tasks.empty())
            return true;
    }
    return false;
}

void
ThreadPool::execute(std::function<void()>& task)
{
    busy_.fetch_add(1, std::memory_order_relaxed);
    try {
        task();
    } catch (...) {
        MutexLock lock(state_mutex_);
        if (!first_error_)
            first_error_ = std::current_exception();
    }
    busy_.fetch_sub(1, std::memory_order_relaxed);
    finish_one();
}

void
ThreadPool::worker_loop(std::size_t id)
{
    for (;;) {
        if (auto task = take(id)) {
            execute(task);
            continue;
        }
        bool stopping = false;
        {
            MutexLock lock(state_mutex_);
            // Re-check the queues under the state lock: new work is
            // announced after being enqueued, so a wakeup guarantees
            // visibility.
            while (!stop_ && !work_queued())
                work_cv_.wait(state_mutex_);
            stopping = stop_;
        }
        if (stopping) {
            // Drain queued work on shutdown instead of dropping it: a
            // destructor racing pending submits still runs every task.
            while (auto task = take(id))
                execute(task);
            return;
        }
    }
}

void
ThreadPool::drain_and_rethrow()
{
    std::exception_ptr error;
    {
        MutexLock lock(state_mutex_);
        while (outstanding_ != 0)
            done_cv_.wait(state_mutex_);
        std::swap(error, first_error_);
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    {
        // Enqueue and notify under state_mutex_ so the notification
        // synchronizes with a worker mid-predicate (no lost wakeups).
        MutexLock lock(state_mutex_);
        outstanding_ += static_cast<int>(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            WorkerQueue& q = *queues_[i % queues_.size()];
            MutexLock qlock(q.mutex);
            q.tasks.push_back(std::move(tasks[i]));
        }
        work_cv_.notify_all();
    }

    // The caller works its own lane and steals like any worker.
    while (auto task = take(0))
        execute(task);
    drain_and_rethrow();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        // No worker threads to hand off to: run inline so the task still
        // executes exactly once (and a single-lane pipeline stays serial).
        {
            MutexLock lock(state_mutex_);
            ++outstanding_;
        }
        execute(task);
        return;
    }
    {
        MutexLock lock(state_mutex_);
        ++outstanding_;
        // Deal across the worker-owned lanes (1..); lane 0 has no thread
        // behind it in submit mode, though idle workers would steal from it.
        std::size_t lane = 1 + (submit_rr_++ % workers_.size());
        WorkerQueue& q = *queues_[lane];
        MutexLock qlock(q.mutex);
        q.tasks.push_back(std::move(task));
    }
    work_cv_.notify_all();
}

void
ThreadPool::wait_idle()
{
    drain_and_rethrow();
}

}  // namespace baco
