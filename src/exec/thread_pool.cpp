#include "exec/thread_pool.hpp"

#include <algorithm>

namespace baco {

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        num_threads =
            static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    }
    queues_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    // Lane 0 is the caller's; spawn workers for the rest.
    for (std::size_t id = 1; id < queues_.size(); ++id)
        workers_.emplace_back([this, id] { worker_loop(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

std::function<void()>
ThreadPool::take(std::size_t self)
{
    // Own queue first (front: LIFO locality is irrelevant here, FIFO keeps
    // batch order roughly intact), then steal from victims' backs.
    {
        WorkerQueue& q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            auto task = std::move(q.tasks.front());
            q.tasks.pop_front();
            return task;
        }
    }
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        WorkerQueue& q = *queues_[(self + i) % queues_.size()];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            auto task = std::move(q.tasks.back());
            q.tasks.pop_back();
            return task;
        }
    }
    return {};
}

void
ThreadPool::finish_one()
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (--outstanding_ == 0)
        done_cv_.notify_all();
}

void
ThreadPool::worker_loop(std::size_t id)
{
    for (;;) {
        if (auto task = take(id)) {
            task();
            finish_one();
            continue;
        }
        std::unique_lock<std::mutex> lock(state_mutex_);
        work_cv_.wait(lock, [this, id] {
            if (stop_)
                return true;
            // Re-check under the state lock: new work is announced after
            // being enqueued, so a wakeup guarantees visibility.
            for (const auto& q : queues_) {
                std::lock_guard<std::mutex> qlock(q->mutex);
                if (!q->tasks.empty())
                    return true;
            }
            return false;
        });
        if (stop_)
            return;
    }
}

void
ThreadPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    {
        // Enqueue and notify under state_mutex_ so the notification
        // synchronizes with a worker mid-predicate (no lost wakeups).
        std::lock_guard<std::mutex> lock(state_mutex_);
        outstanding_ += static_cast<int>(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            WorkerQueue& q = *queues_[i % queues_.size()];
            std::lock_guard<std::mutex> qlock(q.mutex);
            q.tasks.push_back(std::move(tasks[i]));
        }
        work_cv_.notify_all();
    }

    // The caller works its own lane and steals like any worker.
    while (auto task = take(0)) {
        task();
        finish_one();
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

}  // namespace baco
