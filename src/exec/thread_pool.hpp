#ifndef BACO_EXEC_THREAD_POOL_HPP_
#define BACO_EXEC_THREAD_POOL_HPP_

/**
 * @file
 * A small work-stealing thread pool for batched black-box evaluation and
 * suite-runner fan-out.
 *
 * Each worker owns a deque; run() deals tasks round-robin across the
 * deques, workers pop from the front of their own deque and steal from the
 * back of a victim's when theirs drains. The calling thread participates
 * in the work, so a pool of size 1 degenerates to an inline loop and adds
 * no scheduling nondeterminism to single-threaded runs.
 *
 * Besides the barrier-style run(), the pool supports fire-and-forget
 * submit() for asynchronous pipelines (the EvalEngine's async mode):
 * submitted tasks run on the worker threads while the caller keeps going,
 * and wait_idle() blocks until everything outstanding has drained.
 *
 * Exceptions thrown by tasks are captured (never std::terminate): the
 * first one is rethrown by the next run() or wait_idle() call, after the
 * outstanding work has drained.
 */

#include <atomic>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"

namespace baco {

/** Work-stealing pool of persistent worker threads. */
class ThreadPool {
 public:
  /** @param num_threads worker count; 0 = hardware concurrency. */
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /** Total number of execution lanes (workers + the calling thread). */
  int size() const { return static_cast<int>(queues_.size()); }

  /**
   * Tasks enqueued but not yet picked up by any lane (sums the per-lane
   * deques). A sample, not a fence: concurrent submits/steals may move
   * tasks while the lanes are walked. Feeds the engine's queue gauges.
   */
  int queue_depth() const;

  /** Lanes currently inside a task — worker threads plus the calling
   *  thread while it participates in run(). */
  int busy_workers() const
  {
      return busy_.load(std::memory_order_relaxed);
  }

  /**
   * Run all tasks to completion. The calling thread executes tasks too and
   * returns only when every task has finished. Tasks must not call run()
   * on the same pool. Rethrows the first exception any task threw.
   */
  void run(std::vector<std::function<void()>> tasks);

  /**
   * Enqueue one task for asynchronous execution and return immediately;
   * the calling thread does not participate. With no worker threads (a
   * pool of size 1) the task runs inline before submit() returns, so a
   * single-lane pipeline stays strictly sequential. Thread-safe.
   *
   * Destroying the pool with submitted work still queued drains it
   * (every task runs before the workers join) rather than dropping it.
   */
  void submit(std::function<void()> task);

  /**
   * Block until every outstanding task (run() batches and submit()s) has
   * finished. Rethrows the first exception any task threw.
   */
  void wait_idle();

 private:
  struct WorkerQueue {
    mutable Mutex mutex;  ///< mutable: queue_depth() samples are const
    std::deque<std::function<void()>> tasks BACO_GUARDED_BY(mutex);
  };

  /** Pop from our own queue, else steal; empty function when none left. */
  std::function<void()> take(std::size_t self);
  /** Run one task, capturing its exception, and retire it. */
  void execute(std::function<void()>& task);
  void worker_loop(std::size_t id);
  void finish_one();
  /** Any lane's deque non-empty? (Workers re-check this under
   *  state_mutex_ before sleeping; locks each queue mutex in turn.) */
  bool work_queued() const;
  /** Wait for outstanding_ == 0, then surface any captured exception
   *  (rethrown after the lock is dropped). */
  void drain_and_rethrow() BACO_EXCLUDES(state_mutex_);

  // queues_[0] belongs to the calling thread; workers own the rest.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Lock order: state_mutex_ before any WorkerQueue::mutex (run(),
  // submit() and the workers' sleep predicate all nest that way; no
  // path takes them in reverse).
  Mutex state_mutex_;
  CondVar work_cv_;                   ///< wakes idle workers
  CondVar done_cv_;                   ///< wakes run() when a batch drains
  int outstanding_ BACO_GUARDED_BY(state_mutex_) = 0;  ///< unfinished tasks
  std::atomic<int> busy_{0};          ///< lanes currently executing a task
  bool stop_ BACO_GUARDED_BY(state_mutex_) = false;
  /** Round-robin lane for submit(). */
  std::size_t submit_rr_ BACO_GUARDED_BY(state_mutex_) = 0;
  /** First exception a task threw. */
  std::exception_ptr first_error_ BACO_GUARDED_BY(state_mutex_);
};

}  // namespace baco

#endif  // BACO_EXEC_THREAD_POOL_HPP_
