#include "exec/ask_tell.hpp"

#include <chrono>
#include <sstream>

namespace baco {

RngEngine
eval_rng_for(std::uint64_t run_seed, std::uint64_t index)
{
    // splitmix64 over (seed, index); index + 1 keeps index 0 distinct from
    // the raw seed.
    std::uint64_t z = run_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return RngEngine(z);
}

void
AskTellTuner::observe_one(const Configuration& c, const EvalResult& r)
{
    observe(std::vector<Configuration>{c}, std::vector<EvalResult>{r});
}

std::vector<Configuration>
AskTellTuner::suggest_with_pending(int n,
                                   const std::vector<Configuration>& pending)
{
    // Budget accounting only: in-flight evaluations will be observed, so
    // they already claim part of the remaining budget.
    int avail = remaining() - static_cast<int>(pending.size());
    if (avail <= 0)
        return {};
    return suggest(std::min(n, avail));
}

bool
AskTellTuner::restore(const TuningHistory&, const std::string&)
{
    return false;
}

TuningHistory
AskTellBase::take_history()
{
    TuningHistory h = std::move(history_);
    history_ = TuningHistory{};
    reset_sampler();
    return h;
}

std::string
AskTellBase::rng_state_string(const RngEngine* rng) const
{
    std::ostringstream oss;
    if (rng) {
        oss << rng->engine();
    } else {
        oss << RngEngine(seed_).engine();
    }
    return oss.str();
}

bool
AskTellBase::restore_rng(RngEngine& rng, const std::string& state)
{
    if (state.empty())
        return true;
    std::istringstream iss(state);
    iss >> rng.engine();
    return !iss.fail();
}

TuningHistory
drive_serial(AskTellTuner& tuner, const BlackBoxFn& objective)
{
    using Clock = std::chrono::steady_clock;
    while (tuner.remaining() > 0) {
        std::vector<Configuration> batch = tuner.suggest(1);
        if (batch.empty())
            break;
        std::uint64_t index = tuner.history().size();
        std::vector<EvalResult> results;
        results.reserve(batch.size());
        double eval_seconds = 0.0;
        for (const Configuration& c : batch) {
            RngEngine rng = eval_rng_for(tuner.run_seed(), index++);
            auto t0 = Clock::now();
            results.push_back(objective(c, rng));
            eval_seconds +=
                std::chrono::duration<double>(Clock::now() - t0).count();
        }
        tuner.observe(batch, results);
        // Charge black-box time separately so tuner_seconds stays pure
        // search overhead.
        tuner.mutable_history().eval_seconds += eval_seconds;
    }
    return tuner.take_history();
}

}  // namespace baco
