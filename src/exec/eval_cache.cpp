#include "exec/eval_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "core/parameter.hpp"
#include "core/search_space.hpp"
#include "exec/jsonl.hpp"

namespace baco {

namespace {

/** FNV-1a over a byte string (stable across platforms/runs). */
std::uint64_t
fnv1a(std::uint64_t h, const std::string& s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    h ^= 0x1f;  // field separator so "ab"+"c" != "a"+"bc"
    h *= 1099511628211ULL;
    return h;
}

/** The namespace/key separator; never appears in canonical keys. */
constexpr char kNsSep = '#';

std::string
namespaced_key(const std::string& ns, const Configuration& c)
{
    std::string key = EvalCache::canonical_key(c);
    if (ns.empty())
        return key;
    std::string out;
    out.reserve(ns.size() + 1 + key.size());
    out += ns;
    out += kNsSep;
    out += key;
    return out;
}

void
append_value(std::string& key, const ParamValue& v)
{
    char buf[64];
    if (const auto* d = std::get_if<double>(&v)) {
        key += "r:";
        key += jsonl::fmt_double(*d);  // exact IEEE round-trip
    } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
        std::snprintf(buf, sizeof buf, "i:%" PRId64, *i);
        key += buf;
    } else {
        const auto& p = std::get<Permutation>(v);
        key += "p:";
        for (std::size_t k = 0; k < p.size(); ++k) {
            if (k > 0)
                key += ',';
            std::snprintf(buf, sizeof buf, "%d", p[k]);
            key += buf;
        }
    }
}

}  // namespace

std::string
EvalCache::canonical_key(const Configuration& c)
{
    std::string key;
    key.reserve(c.size() * 8);
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (i > 0)
            key += '|';
        append_value(key, c[i]);
    }
    return key;
}

std::string
EvalCache::space_fingerprint(const SearchSpace& space)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < space.num_params(); ++i) {
        const Parameter& p = space.param(i);
        h = fnv1a(h, p.name());
        h = fnv1a(h, std::to_string(static_cast<int>(p.kind())));
        if (p.kind() == ParamKind::kReal) {
            const auto& rp = static_cast<const RealParameter&>(p);
            h = fnv1a(h, jsonl::fmt_double(rp.lo()));
            h = fnv1a(h, jsonl::fmt_double(rp.hi()));
        } else {
            for (std::size_t k = 0; k < p.num_values(); ++k)
                h = fnv1a(h, p.value_to_string(p.value_at(k)));
        }
    }
    for (const Constraint& c : space.constraints()) {
        h = fnv1a(h, c.source());
        for (const std::string& v : c.vars())
            h = fnv1a(h, v);
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
    return buf;
}

std::string
EvalCache::namespace_key(const std::string& benchmark_name,
                         const SearchSpace& space)
{
    return benchmark_name + "@" + space_fingerprint(space);
}

std::optional<EvalResult>
EvalCache::lookup(const Configuration& c) const
{
    return lookup(std::string{}, c);
}

std::optional<EvalResult>
EvalCache::lookup(const std::string& ns, const Configuration& c) const
{
    std::string key = namespaced_key(ns, c);
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    ++it->second.hits;
    // Refresh recency: a hit entry moves to the front of the LRU order.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.result;
}

void
EvalCache::insert(const Configuration& c, const EvalResult& r)
{
    insert(std::string{}, c, r);
}

void
EvalCache::insert(const std::string& ns, const Configuration& c,
                  const EvalResult& r)
{
    std::string key = namespaced_key(ns, c);
    MutexLock lock(mutex_);
    insert_locked(std::move(key), r);
}

void
EvalCache::insert_locked(std::string key, const EvalResult& r)
{
    auto [it, inserted] = entries_.emplace(std::move(key), Entry{});
    if (!inserted)
        return;  // first write wins
    it->second.result = r;
    lru_.push_front(&it->first);
    it->second.lru_it = lru_.begin();
    enforce_bound_locked();
}

void
EvalCache::enforce_bound_locked()
{
    if (max_entries_ == 0)
        return;
    while (entries_.size() > max_entries_) {
        auto victim = entries_.find(*lru_.back());
        ++evictions_;
        evicted_hits_ += victim->second.hits;
        entries_.erase(victim);
        lru_.pop_back();
    }
}

void
EvalCache::set_max_entries(std::size_t n)
{
    MutexLock lock(mutex_);
    max_entries_ = n;
    enforce_bound_locked();
}

std::size_t
EvalCache::max_entries() const
{
    MutexLock lock(mutex_);
    return max_entries_;
}

std::uint64_t
EvalCache::evictions() const
{
    MutexLock lock(mutex_);
    return evictions_;
}

std::uint64_t
EvalCache::evicted_hits() const
{
    MutexLock lock(mutex_);
    return evicted_hits_;
}

std::size_t
EvalCache::size() const
{
    MutexLock lock(mutex_);
    return entries_.size();
}

std::uint64_t
EvalCache::hits() const
{
    MutexLock lock(mutex_);
    return hits_;
}

std::uint64_t
EvalCache::misses() const
{
    MutexLock lock(mutex_);
    return misses_;
}

void
EvalCache::clear()
{
    MutexLock lock(mutex_);
    entries_.clear();
    lru_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    evicted_hits_ = 0;
}

bool
EvalCache::save(const std::string& path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    MutexLock lock(mutex_);
    // Least-recently-used first: load() inserts in file order, so the
    // hottest entries end up most recent and survive a bounded reload.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        const std::string& key = **it;
        const EvalResult& r = entries_.at(key).result;
        out << "{\"key\":\"" << key
            << "\",\"value\":" << jsonl::fmt_double(r.value)
            << ",\"feasible\":" << (r.feasible ? "true" : "false") << "}\n";
    }
    return static_cast<bool>(out);
}

bool
EvalCache::load(const std::string& path, std::size_t* corrupt_lines)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string key, value, feasible;
        if (!jsonl::field(line, "key", key) ||
            !jsonl::field(line, "value", value) ||
            !jsonl::field(line, "feasible", feasible) ||
            (feasible != "true" && feasible != "false")) {
            if (corrupt_lines)
                ++*corrupt_lines;
            continue;
        }
        EvalResult r;
        r.value = std::strtod(value.c_str(), nullptr);
        r.feasible = feasible == "true";
        MutexLock lock(mutex_);
        insert_locked(std::move(key), r);
    }
    return true;
}

}  // namespace baco
