#include "exec/eval_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <exception>
#include <thread>

#include "core/thread_annotations.hpp"
#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"
#include "obs/trace.hpp"

namespace baco {

namespace {
using Clock = std::chrono::steady_clock;

/** Engine instrumentation handles, registered once per process. */
struct EngineMetrics {
  obs::Histogram& objective = hist("engine.objective_seconds");
  obs::Histogram& queue_wait = hist("engine.queue_wait_seconds");
  obs::Histogram& tell = hist("engine.tell_seconds");
  obs::Counter& dispatched = counter("engine.dispatched_total");
  obs::Counter& cache_hits = counter("engine.cache_hits_total");
  obs::Counter& cache_misses = counter("engine.cache_misses_total");
  obs::Gauge& inflight_peak = gauge("engine.inflight_peak");
  obs::Gauge& queue_depth = gauge("engine.pool_queue_depth");
  /** Suggest-ahead pipeline accounting: speculative suggests launched,
   *  slots refilled from a prefetched suggestion, and how long the driver
   *  blocked waiting for an unfinished speculation. */
  obs::Counter& ahead_launched = counter("engine.suggest_ahead_total");
  obs::Counter& ahead_used = counter("engine.suggest_ahead_used_total");
  obs::Histogram& ahead_wait = hist("engine.suggest_ahead_wait_seconds");

  static EngineMetrics& get()
  {
      static EngineMetrics m;
      return m;
  }

 private:
  static obs::Histogram& hist(const char* name)
  {
      return obs::MetricsRegistry::global().histogram(name);
  }
  static obs::Counter& counter(const char* name)
  {
      return obs::MetricsRegistry::global().counter(name);
  }
  static obs::Gauge& gauge(const char* name)
  {
      return obs::MetricsRegistry::global().gauge(name);
  }
};

/** One completed evaluation, handed back from a pool worker. */
struct Landed {
  std::uint64_t index = 0;
  EvalResult result;
  double seconds = 0.0;
  bool from_cache = false;
  std::exception_ptr error;
};

/**
 * The async drive loop's landing strip: pool workers push completed
 * evaluations, the driver pops them in arrival order. push() notifies
 * while still holding the lock — the queue lives on drive_async's stack
 * and the loop returns as soon as it has popped the last in-flight
 * result, so an unlocked notify could touch a destroyed cv.
 */
class LandedQueue {
 public:
  void
  push(Landed l) BACO_EXCLUDES(mutex_)
  {
      MutexLock lock(mutex_);
      landed_.push_back(std::move(l));
      cv_.notify_one();
  }

  /** Block until a result lands, then take the oldest one. */
  Landed
  pop() BACO_EXCLUDES(mutex_)
  {
      MutexLock lock(mutex_);
      while (landed_.empty())
          cv_.wait(mutex_);
      Landed l = std::move(landed_.front());
      landed_.pop_front();
      return l;
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  std::deque<Landed> landed_ BACO_GUARDED_BY(mutex_);
};

/**
 * Pool lanes for the requested options. In batch mode the caller works
 * its own lane, so num_threads maps to lanes directly. In async mode the
 * caller coordinates (suggest/tell) instead of evaluating, so one extra
 * lane keeps num_threads meaning "concurrent evaluations" in both modes.
 */
int
pool_lanes(const EvalEngineOptions& opt)
{
    if (!opt.async_mode)
        return opt.num_threads;
    int n = opt.num_threads > 0
                ? opt.num_threads
                : static_cast<int>(
                      std::max(1u, std::thread::hardware_concurrency()));
    // Suggest-ahead runs the speculative tuner call on its own lane so it
    // can never be starved by (or starve) the evaluation lanes.
    return n + 1 + (opt.suggest_ahead ? 1 : 0);
}

}  // namespace

void
SuggestAhead::launch(ThreadPool& pool, AskTellTuner& tuner,
                     std::vector<Configuration> pending)
{
    assert(!active_);
    auto prom = std::make_shared<std::promise<std::vector<Configuration>>>();
    fut_ = prom->get_future();
    active_ = true;
    pool.submit([&tuner, prom, pending = std::move(pending)]() mutable {
        try {
            prom->set_value(tuner.suggest_with_pending(1, pending));
        } catch (...) {
            prom->set_exception(std::current_exception());
        }
    });
}

std::vector<Configuration>
SuggestAhead::collect()
{
    assert(active_);
    active_ = false;
    return fut_.get();
}

EvalEngine::EvalEngine(EvalEngineOptions opt)
    : opt_(opt), pool_(pool_lanes(opt))
{
    if (opt_.batch_size < 1)
        opt_.batch_size = 1;
    if (opt_.cache && opt_.cache_max_entries > 0)
        opt_.cache->set_max_entries(opt_.cache_max_entries);
}

std::vector<EvalResult>
EvalEngine::evaluate_batch(const BlackBoxFn& objective,
                           const std::vector<Configuration>& configs,
                           std::uint64_t run_seed, std::uint64_t first_index,
                           double* eval_seconds)
{
    std::vector<EvalResult> results(configs.size());
    std::vector<double> durations(configs.size(), 0.0);
    std::vector<std::size_t> to_run;
    to_run.reserve(configs.size());

    EngineMetrics& em = EngineMetrics::get();
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (opt_.cache) {
            if (auto cached =
                    opt_.cache->lookup(opt_.cache_namespace, configs[i])) {
                results[i] = *cached;
                em.cache_hits.add();
                continue;
            }
            em.cache_misses.add();
        }
        to_run.push_back(i);
    }

    std::vector<std::function<void()>> tasks;
    tasks.reserve(to_run.size());
    auto enqueue_time = Clock::now();
    for (std::size_t i : to_run) {
        tasks.push_back([&, enqueue_time, i] {
            RngEngine rng = eval_rng_for(run_seed, first_index + i);
            auto t0 = Clock::now();
            em.queue_wait.record(
                std::chrono::duration<double>(t0 - enqueue_time).count());
            em.queue_depth.set_max(static_cast<double>(pool_.queue_depth()));
            {
                obs::ScopedTimer timer(em.objective, "engine.objective",
                                       "engine");
                results[i] = objective(configs[i], rng);
            }
            durations[i] =
                std::chrono::duration<double>(Clock::now() - t0).count();
        });
    }
    em.dispatched.add(static_cast<std::uint64_t>(tasks.size()));
    pool_.run(std::move(tasks));

    if (opt_.cache) {
        for (std::size_t i : to_run)
            opt_.cache->insert(opt_.cache_namespace, configs[i], results[i]);
    }
    if (eval_seconds) {
        for (double d : durations)
            *eval_seconds += d;
    }
    return results;
}

void
EvalEngine::drive(AskTellTuner& tuner, const BlackBoxFn& objective,
                  int max_evals)
{
    if (opt_.async_mode) {
        drive_async(tuner, objective, max_evals);
        return;
    }
    int done = 0;
    while (tuner.remaining() > 0 &&
           (max_evals < 0 || done < max_evals)) {
        int n = opt_.batch_size;
        if (max_evals >= 0)
            n = std::min(n, max_evals - done);
        std::vector<Configuration> batch = tuner.suggest(n);
        if (batch.empty())
            break;
        std::uint64_t first_index = tuner.history().size();
        double eval_seconds = 0.0;
        std::vector<EvalResult> results = evaluate_batch(
            objective, batch, tuner.run_seed(), first_index, &eval_seconds);
        tuner.observe(batch, results);
        tuner.mutable_history().eval_seconds += eval_seconds;
        done += static_cast<int>(batch.size());
        if (!opt_.checkpoint_path.empty())
            save_checkpoint(opt_.checkpoint_path, tuner);
    }
}

TuningHistory
EvalEngine::run(AskTellTuner& tuner, const BlackBoxFn& objective)
{
    drive(tuner, objective, -1);
    return tuner.take_history();
}

void
EvalEngine::drive_async(AskTellTuner& tuner, const BlackBoxFn& objective,
                        int max_evals, const AsyncResultFn& on_result,
                        std::vector<PendingEval> resume_pending)
{
    LandedQueue landed;

    auto complete = [&](Landed l) { landed.push(std::move(l)); };

    // Submitted lambdas reference `complete` (and through it the queue):
    // every dispatched evaluation MUST be awaited before returning, even
    // when aborting on an objective exception.
    EngineMetrics& em = EngineMetrics::get();
    auto dispatch = [&](const Configuration& c, std::uint64_t index) {
        if (opt_.cache) {
            if (auto hit = opt_.cache->lookup(opt_.cache_namespace, c)) {
                em.cache_hits.add();
                complete(Landed{index, *hit, 0.0, true, nullptr});
                return;
            }
            em.cache_misses.add();
        }
        std::uint64_t seed = tuner.run_seed();
        em.dispatched.add();
        auto submit_time = Clock::now();
        pool_.submit([&objective, &complete, &em, this, c, index, seed,
                      submit_time] {
            Landed l;
            l.index = index;
            RngEngine rng = eval_rng_for(seed, index);
            auto t0 = Clock::now();
            em.queue_wait.record(
                std::chrono::duration<double>(t0 - submit_time).count());
            em.queue_depth.set_max(static_cast<double>(pool_.queue_depth()));
            try {
                obs::ScopedTimer timer(em.objective, "engine.objective",
                                       "engine");
                l.result = objective(c, rng);
            } catch (...) {
                l.error = std::current_exception();
            }
            l.seconds =
                std::chrono::duration<double>(Clock::now() - t0).count();
            complete(std::move(l));
        });
    };

    struct InFlight {
        Configuration config;
        std::uint64_t index = 0;
    };
    std::vector<InFlight> inflight;

    // Evaluation indices are handed out at dispatch time, sequentially
    // over the whole run: observed + in-flight always cover a prefix of
    // the index space, so the next free index is their combined count.
    std::uint64_t next_index = tuner.history().size();
    for (PendingEval& p : resume_pending) {
        inflight.push_back(InFlight{std::move(p.config), p.index});
        next_index = std::max(next_index, p.index + 1);
    }
    next_index = std::max(
        next_index, tuner.history().size() + resume_pending.size());
    for (const InFlight& f : inflight)
        dispatch(f.config, f.index);

    const int slots = opt_.batch_size;
    // With a single slot there is nothing to overlap — the pipeline is
    // disabled outright so the code path (and the tuner's RNG stream) is
    // bit-for-bit the legacy one.
    const bool use_ahead = opt_.suggest_ahead && slots >= 2;
    int told = 0;
    std::exception_ptr error;
    SuggestAhead ahead;
    std::deque<Configuration> ready;  // prefetched, not yet dispatched
    bool tuner_dry = false;

    // The suggested-but-unobserved set: everything in flight plus any
    // prefetched suggestion that has not been dispatched yet. This is the
    // constant-liar fantasy set for every suggest call, speculative or not.
    auto pending_snapshot = [&] {
        std::vector<Configuration> pending;
        pending.reserve(inflight.size() + ready.size());
        for (const InFlight& f : inflight)
            pending.push_back(f.config);
        for (const Configuration& c : ready)
            pending.push_back(c);
        return pending;
    };
    // The tuner is single-threaded state: the driver must absorb the
    // speculative call's result (or failure) before any tell/suggest.
    auto collect_ahead = [&] {
        if (!ahead.active())
            return;
        auto t0 = Clock::now();
        try {
            std::vector<Configuration> got = ahead.collect();
            if (got.empty())
                tuner_dry = true;
            for (Configuration& c : got)
                ready.push_back(std::move(c));
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
        em.ahead_wait.record(
            std::chrono::duration<double>(Clock::now() - t0).count());
    };

    // Once `error` is set the loop stops suggesting and telling and only
    // drains: it must not unwind before every dispatched evaluation has
    // landed (see the comment above `dispatch`), and exceptions can come
    // from the tuner, the checkpoint or the caller's callback as well as
    // from the objective.
    for (;;) {
        // ---- Refill free slots (skip once aborting or capped). ----
        try {
            while (!error && static_cast<int>(inflight.size()) < slots &&
                   (max_evals < 0 ||
                    told + static_cast<int>(inflight.size()) < max_evals)) {
                Configuration next_config;
                if (!ready.empty()) {
                    next_config = std::move(ready.front());
                    ready.pop_front();
                    em.ahead_used.add();
                } else if (!tuner_dry) {
                    std::vector<Configuration> next =
                        tuner.suggest_with_pending(1, pending_snapshot());
                    if (next.empty())
                        break;
                    next_config = std::move(next.front());
                } else {
                    break;
                }
                std::uint64_t index = next_index++;
                inflight.push_back(InFlight{std::move(next_config), index});
                em.inflight_peak.set_max(
                    static_cast<double>(inflight.size()));
                dispatch(inflight.back().config, index);
            }
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }

        // ---- Overlap the next suggestion with the running evaluations.
        // Launched only when a prefetch could actually be consumed (budget
        // and caps leave room for one more dispatch): a suggestion draws
        // from the tuner's RNG and dedup state, so one that could never be
        // dispatched would be silently lost from the search.
        if (use_ahead && !error && !ahead.active() && !tuner_dry &&
            !inflight.empty() && ready.empty() &&
            (max_evals < 0 ||
             told + static_cast<int>(inflight.size()) < max_evals) &&
            tuner.remaining() > static_cast<int>(inflight.size())) {
            em.ahead_launched.add();
            ahead.launch(pool_, tuner, pending_snapshot());
        }

        if (inflight.empty()) {
            if (ahead.active()) {
                collect_ahead();
                continue;  // the refill above may dispatch it
            }
            break;
        }

        // ---- Tell the next result the moment it lands. ----
        Landed l = landed.pop();
        collect_ahead();
        auto it = std::find_if(
            inflight.begin(), inflight.end(),
            [&](const InFlight& f) { return f.index == l.index; });
        Configuration config = std::move(it->config);
        inflight.erase(it);

        if (l.error) {
            if (!error)
                error = l.error;
        }
        if (error)
            continue;  // aborting: drain without telling
        try {
            std::vector<PendingEval> still_pending;
            if (!opt_.checkpoint_path.empty()) {
                still_pending.reserve(inflight.size());
                for (const InFlight& f : inflight)
                    still_pending.push_back(PendingEval{f.index, f.config});
            }
            AsyncEvent ev;
            ev.index = l.index;
            ev.config = std::move(config);
            ev.result = l.result;
            ev.eval_seconds = l.seconds;
            ev.from_cache = l.from_cache;
            {
                obs::ScopedTimer timer(em.tell, "engine.tell", "engine");
                tell_async_result(tuner, std::move(ev), opt_.cache,
                                  opt_.cache_namespace, opt_.checkpoint_path,
                                  still_pending, on_result);
            }
            ++told;
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
    }
    if (error)
        std::rethrow_exception(error);
}

TuningHistory
EvalEngine::run_async(AskTellTuner& tuner, const BlackBoxFn& objective,
                      const AsyncResultFn& on_result,
                      std::vector<PendingEval> resume_pending)
{
    drive_async(tuner, objective, -1, on_result, std::move(resume_pending));
    return tuner.take_history();
}

void
tell_async_result(AskTellTuner& tuner, AsyncEvent ev, EvalCache* cache,
                  const std::string& cache_namespace,
                  const std::string& checkpoint_path,
                  const std::vector<PendingEval>& still_pending,
                  const AsyncResultFn& on_result)
{
    if (cache && !ev.from_cache)
        cache->insert(cache_namespace, ev.config, ev.result);
    tuner.observe_one(ev.config, ev.result);
    tuner.mutable_history().eval_seconds += ev.eval_seconds;
    if (!checkpoint_path.empty())
        save_checkpoint(checkpoint_path, tuner, still_pending);
    if (on_result) {
        ev.evals = tuner.history().size();
        ev.best = tuner.history().best_value;
        on_result(ev);
    }
}

}  // namespace baco
