#include "exec/eval_engine.hpp"

#include <algorithm>
#include <chrono>

#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"

namespace baco {

namespace {
using Clock = std::chrono::steady_clock;
}

EvalEngine::EvalEngine(EvalEngineOptions opt)
    : opt_(opt), pool_(opt.num_threads)
{
    if (opt_.batch_size < 1)
        opt_.batch_size = 1;
}

std::vector<EvalResult>
EvalEngine::evaluate_batch(const BlackBoxFn& objective,
                           const std::vector<Configuration>& configs,
                           std::uint64_t run_seed, std::uint64_t first_index,
                           double* eval_seconds)
{
    std::vector<EvalResult> results(configs.size());
    std::vector<double> durations(configs.size(), 0.0);
    std::vector<std::size_t> to_run;
    to_run.reserve(configs.size());

    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (opt_.cache) {
            if (auto cached =
                    opt_.cache->lookup(opt_.cache_namespace, configs[i])) {
                results[i] = *cached;
                continue;
            }
        }
        to_run.push_back(i);
    }

    std::vector<std::function<void()>> tasks;
    tasks.reserve(to_run.size());
    for (std::size_t i : to_run) {
        tasks.push_back([&, i] {
            RngEngine rng = eval_rng_for(run_seed, first_index + i);
            auto t0 = Clock::now();
            results[i] = objective(configs[i], rng);
            durations[i] =
                std::chrono::duration<double>(Clock::now() - t0).count();
        });
    }
    pool_.run(std::move(tasks));

    if (opt_.cache) {
        for (std::size_t i : to_run)
            opt_.cache->insert(opt_.cache_namespace, configs[i], results[i]);
    }
    if (eval_seconds) {
        for (double d : durations)
            *eval_seconds += d;
    }
    return results;
}

void
EvalEngine::drive(AskTellTuner& tuner, const BlackBoxFn& objective,
                  int max_evals)
{
    int done = 0;
    while (tuner.remaining() > 0 &&
           (max_evals < 0 || done < max_evals)) {
        int n = opt_.batch_size;
        if (max_evals >= 0)
            n = std::min(n, max_evals - done);
        std::vector<Configuration> batch = tuner.suggest(n);
        if (batch.empty())
            break;
        std::uint64_t first_index = tuner.history().size();
        double eval_seconds = 0.0;
        std::vector<EvalResult> results = evaluate_batch(
            objective, batch, tuner.run_seed(), first_index, &eval_seconds);
        tuner.observe(batch, results);
        tuner.mutable_history().eval_seconds += eval_seconds;
        done += static_cast<int>(batch.size());
        if (!opt_.checkpoint_path.empty())
            save_checkpoint(opt_.checkpoint_path, tuner);
    }
}

TuningHistory
EvalEngine::run(AskTellTuner& tuner, const BlackBoxFn& objective)
{
    drive(tuner, objective, -1);
    return tuner.take_history();
}

}  // namespace baco
