#ifndef BACO_EXEC_CHECKPOINT_HPP_
#define BACO_EXEC_CHECKPOINT_HPP_

/**
 * @file
 * JSONL checkpoint/resume of tuning runs.
 *
 * A checkpoint file is one JSON object per line: a meta line (format
 * version, run seed, timing), one obs line per evaluated configuration,
 * and a state line carrying the tuner's serialized sampler RNG. Rewritten
 * atomically (tmp + rename) after every observed batch, the file lets an
 * interrupted run resume mid-budget and — because the sampler stream
 * position is restored exactly — finish with the same history an
 * uninterrupted run would have produced.
 */

#include <optional>
#include <string>

#include "exec/ask_tell.hpp"

namespace baco {

/** Everything a checkpoint file holds. */
struct CheckpointData {
  std::uint64_t seed = 0;
  TuningHistory history;
  std::string sampler_state;
};

/** Atomically (tmp + rename) write the tuner's current state to path. */
bool save_checkpoint(const std::string& path, const AskTellTuner& tuner);

/** Parse a checkpoint file; nullopt on missing/corrupt file. */
std::optional<CheckpointData> load_checkpoint(const std::string& path);

/**
 * Load path and restore the tuner from it. Returns false when the file is
 * absent/corrupt or the tuner does not support resume.
 */
bool resume_from_checkpoint(const std::string& path, AskTellTuner& tuner);

}  // namespace baco

#endif  // BACO_EXEC_CHECKPOINT_HPP_
