#ifndef BACO_EXEC_CHECKPOINT_HPP_
#define BACO_EXEC_CHECKPOINT_HPP_

/**
 * @file
 * JSONL checkpoint/resume of tuning runs.
 *
 * A checkpoint file is one JSON object per line: a meta line (format
 * version, run seed, timing), one obs line per evaluated configuration,
 * and a state line carrying the tuner's serialized sampler RNG. Rewritten
 * atomically (tmp + rename) after every observed batch, the file lets an
 * interrupted run resume mid-budget and — because the sampler stream
 * position is restored exactly — finish with the same history an
 * uninterrupted run would have produced.
 *
 * Asynchronous runs additionally write one pending line per in-flight
 * evaluation (its configuration and evaluation index): those configs were
 * already drawn from the sampler stream but not yet observed, so a resume
 * re-dispatches them under their original indices — the (seed, index)
 * noise streams make re-evaluation yield the identical result, and every
 * evaluation is told exactly once. Readers that ignore pending lines
 * (batch-mode resume) still restore a consistent tuner; the pending work
 * is then simply re-suggested from the budget that remains.
 */

#include <optional>
#include <string>
#include <vector>

#include "exec/ask_tell.hpp"

namespace baco {

/** One suggested-but-unobserved evaluation of an asynchronous run. */
struct PendingEval {
  std::uint64_t index = 0;  ///< evaluation index (noise-stream key)
  Configuration config;
};

/** Everything a checkpoint file holds. */
struct CheckpointData {
  std::uint64_t seed = 0;
  TuningHistory history;
  std::string sampler_state;
  /** In-flight evaluations of an async run (empty for batch runs). */
  std::vector<PendingEval> pending;
};

/** Atomically (tmp + rename) write the tuner's current state to path. */
bool save_checkpoint(const std::string& path, const AskTellTuner& tuner);

/**
 * save_checkpoint recording in-flight evaluations too (async drivers
 * checkpoint while work is outstanding).
 */
bool save_checkpoint(const std::string& path, const AskTellTuner& tuner,
                     const std::vector<PendingEval>& pending);

/** Parse a checkpoint file; nullopt on missing/corrupt file. */
std::optional<CheckpointData> load_checkpoint(const std::string& path);

/**
 * Load path and restore the tuner from it. Returns false when the file is
 * absent/corrupt or the tuner does not support resume. When pending is
 * non-null it receives the checkpoint's in-flight evaluations, which the
 * caller is expected to re-dispatch (see EvalEngine::drive_async); when
 * null they are dropped and the resumed tuner re-suggests fresh work.
 */
bool resume_from_checkpoint(const std::string& path, AskTellTuner& tuner,
                            std::vector<PendingEval>* pending = nullptr);

}  // namespace baco

#endif  // BACO_EXEC_CHECKPOINT_HPP_
