#ifndef BACO_EXEC_EVAL_ENGINE_HPP_
#define BACO_EXEC_EVAL_ENGINE_HPP_

/**
 * @file
 * Batched and fully asynchronous evaluation engine.
 *
 * In batch mode the engine drives an ask-tell tuner round-wise: ask for a
 * batch, evaluate the batch concurrently on a work-stealing pool, tell
 * the results back, checkpoint, repeat. Per-evaluation RNG streams are
 * split deterministically from the run seed (see eval_rng_for), so at
 * batch size 1 the engine reproduces the serial loop bit-for-bit and at
 * any batch size the history is independent of worker scheduling.
 *
 * In async mode (EvalEngineOptions::async_mode) the engine never barriers
 * on a batch: each result is told the moment it lands and the freed slot
 * is immediately refilled via suggest_with_pending(), which keeps the
 * in-flight evaluations as constant-liar fantasies. Compiler evaluation
 * times vary by orders of magnitude across configurations, so this keeps
 * every slot busy instead of idling on the slowest compile. The trade:
 * the history order now depends on completion order, so multi-slot async
 * runs are not bit-for-bit reproducible — but each individual result
 * still is (its noise stream is a pure function of (seed, index)), and a
 * single-slot async run degenerates to the serial loop exactly.
 *
 * An optional EvalCache short-circuits repeat configurations, and an
 * optional checkpoint path makes the run resumable (see checkpoint.hpp);
 * async checkpoints additionally record the in-flight evaluations so a
 * killed run re-dispatches them on resume instead of double-telling.
 */

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "exec/ask_tell.hpp"
#include "exec/checkpoint.hpp"
#include "exec/thread_pool.hpp"

namespace baco {

class EvalCache;

/** Engine knobs. */
struct EvalEngineOptions {
  /** Worker lanes; 0 = hardware concurrency. */
  int num_threads = 0;
  /**
   * Configurations requested per suggest() call; in async mode, the
   * in-flight cap (how many evaluations run concurrently).
   */
  int batch_size = 1;
  /**
   * Tell-as-results-land mode: drive()/run() stop barriering on batches
   * and keep batch_size evaluations in flight at all times (see the file
   * comment for the determinism trade-off).
   */
  bool async_mode = false;
  /**
   * Suggest-ahead pipelining (async mode only): while evaluations are in
   * flight, the next suggestion — GP refresh plus acquisition search — is
   * precomputed speculatively on a spare pool lane, so a freed slot is
   * refilled immediately instead of idling on the tuner. The speculative
   * call sees the in-flight set as constant-liar fantasies exactly like a
   * synchronous refill would; the trade is that it runs one observation
   * early (the result that frees the slot is still a fantasy, not a real
   * observation, when the prefetched suggestion is computed). Ignored
   * when fewer than two slots are configured: with one slot there is
   * nothing to overlap, and the engine stays bit-for-bit identical to the
   * non-pipelined driver.
   */
  bool suggest_ahead = false;
  /** Optional shared evaluation cache (not owned; may be null). */
  EvalCache* cache = nullptr;
  /**
   * Namespace for cache entries (EvalCache::namespace_key). Empty = the
   * anonymous namespace; set it when one cache serves several benchmarks.
   */
  std::string cache_namespace;
  /**
   * When > 0, applies an LRU bound to the attached cache at engine
   * construction (EvalCache::set_max_entries) so long-lived drivers stop
   * growing it without bound. 0 leaves the cache's bound untouched.
   */
  std::size_t cache_max_entries = 0;
  /** When nonempty, rewrite a resume checkpoint after every batch. */
  std::string checkpoint_path;
};

/** Batched ask-tell driver over a work-stealing thread pool. */
class EvalEngine {
 public:
  explicit EvalEngine(EvalEngineOptions opt = EvalEngineOptions{});

  /**
   * Advance the tuner by at most max_evals evaluations (-1 = run to budget
   * exhaustion). Stops early only when the tuner stops suggesting.
   * Dispatches to drive_async() when options().async_mode is set.
   */
  void drive(AskTellTuner& tuner, const BlackBoxFn& objective,
             int max_evals = -1);

  /** drive() to budget exhaustion, then take the finalized history. */
  TuningHistory run(AskTellTuner& tuner, const BlackBoxFn& objective);

  /**
   * Fully asynchronous drive: keep up to batch_size evaluations in
   * flight, tell each result the moment it lands, refill the freed slot
   * via suggest_with_pending(). on_result (optional) fires after every
   * tell — in completion order, on the calling thread. resume_pending
   * re-dispatches the in-flight evaluations of a killed async run under
   * their original indices (see resume_from_checkpoint); they are drained
   * even when max_evals is 0. Returns after telling max_evals results
   * (-1 = budget exhaustion) with nothing left in flight; any exception
   * — from the objective, the tuner, the checkpoint or on_result — is
   * rethrown only after every dispatched evaluation has drained.
   */
  void drive_async(AskTellTuner& tuner, const BlackBoxFn& objective,
                   int max_evals = -1, const AsyncResultFn& on_result = {},
                   std::vector<PendingEval> resume_pending = {});

  /** drive_async() to budget exhaustion, then take the history. */
  TuningHistory run_async(AskTellTuner& tuner, const BlackBoxFn& objective,
                          const AsyncResultFn& on_result = {},
                          std::vector<PendingEval> resume_pending = {});

  /**
   * Evaluate one batch concurrently. Results are returned in input order;
   * evaluation i of the batch uses eval_rng_for(run_seed, first_index+i).
   * Cache hits skip the objective. *eval_seconds (optional) accumulates
   * the summed per-evaluation durations.
   */
  std::vector<EvalResult> evaluate_batch(
      const BlackBoxFn& objective, const std::vector<Configuration>& configs,
      std::uint64_t run_seed, std::uint64_t first_index,
      double* eval_seconds = nullptr);

  const EvalEngineOptions& options() const { return opt_; }

 private:
  EvalEngineOptions opt_;
  ThreadPool pool_;
};

/**
 * One speculative suggest_with_pending(1, pending) call running on a
 * thread-pool lane, shared by the async drivers (EvalEngine and the serve
 * Coordinator) for their suggest-ahead pipelines.
 *
 * Protocol: the tuner is single-threaded state — between launch() and
 * collect() the *only* code touching the tuner is the speculative task, so
 * the driver MUST collect() before any tell/suggest/history access. The
 * task traps its own exceptions into the future (collect() rethrows), so
 * the pool's first-exception machinery never observes them.
 */
class SuggestAhead {
 public:
  /** Start the speculative call; requires !active(). pending must be the
   *  full suggested-but-unobserved set (in-flight plus any prefetched
   *  suggestions not yet dispatched). */
  void launch(ThreadPool& pool, AskTellTuner& tuner,
              std::vector<Configuration> pending);

  /** Whether a launched call has not been collected yet. */
  bool active() const { return active_; }

  /** Block until the speculative call finishes and hand over its result;
   *  rethrows whatever the tuner threw. */
  std::vector<Configuration> collect();

 private:
  std::future<std::vector<Configuration>> fut_;
  bool active_ = false;
};

/**
 * The per-tell sequence shared by the asynchronous drivers (EvalEngine
 * and the serve Coordinator): cache the result, tell the tuner, charge
 * the black-box time, checkpoint with the still-in-flight work, then
 * notify the caller. ev arrives with index/config/result/eval_seconds/
 * from_cache filled; evals and best are stamped here after the tell.
 */
void tell_async_result(AskTellTuner& tuner, AsyncEvent ev, EvalCache* cache,
                       const std::string& cache_namespace,
                       const std::string& checkpoint_path,
                       const std::vector<PendingEval>& still_pending,
                       const AsyncResultFn& on_result);

}  // namespace baco

#endif  // BACO_EXEC_EVAL_ENGINE_HPP_
