#ifndef BACO_EXEC_EVAL_ENGINE_HPP_
#define BACO_EXEC_EVAL_ENGINE_HPP_

/**
 * @file
 * Asynchronous batched evaluation engine.
 *
 * The engine drives an ask-tell tuner: ask for a batch, evaluate the batch
 * concurrently on a work-stealing pool, tell the results back, checkpoint,
 * repeat. Per-evaluation RNG streams are split deterministically from the
 * run seed (see eval_rng_for), so at batch size 1 the engine reproduces
 * the serial loop bit-for-bit and at any batch size the history is
 * independent of worker scheduling.
 *
 * An optional EvalCache short-circuits repeat configurations, and an
 * optional checkpoint path makes the run resumable (see checkpoint.hpp).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "exec/ask_tell.hpp"
#include "exec/thread_pool.hpp"

namespace baco {

class EvalCache;

/** Engine knobs. */
struct EvalEngineOptions {
  /** Worker lanes; 0 = hardware concurrency. */
  int num_threads = 0;
  /** Configurations requested per suggest() call. */
  int batch_size = 1;
  /** Optional shared evaluation cache (not owned; may be null). */
  EvalCache* cache = nullptr;
  /**
   * Namespace for cache entries (EvalCache::namespace_key). Empty = the
   * anonymous namespace; set it when one cache serves several benchmarks.
   */
  std::string cache_namespace;
  /** When nonempty, rewrite a resume checkpoint after every batch. */
  std::string checkpoint_path;
};

/** Batched ask-tell driver over a work-stealing thread pool. */
class EvalEngine {
 public:
  explicit EvalEngine(EvalEngineOptions opt = EvalEngineOptions{});

  /**
   * Advance the tuner by at most max_evals evaluations (-1 = run to budget
   * exhaustion). Stops early only when the tuner stops suggesting.
   */
  void drive(AskTellTuner& tuner, const BlackBoxFn& objective,
             int max_evals = -1);

  /** drive() to budget exhaustion, then take the finalized history. */
  TuningHistory run(AskTellTuner& tuner, const BlackBoxFn& objective);

  /**
   * Evaluate one batch concurrently. Results are returned in input order;
   * evaluation i of the batch uses eval_rng_for(run_seed, first_index+i).
   * Cache hits skip the objective. *eval_seconds (optional) accumulates
   * the summed per-evaluation durations.
   */
  std::vector<EvalResult> evaluate_batch(
      const BlackBoxFn& objective, const std::vector<Configuration>& configs,
      std::uint64_t run_seed, std::uint64_t first_index,
      double* eval_seconds = nullptr);

  const EvalEngineOptions& options() const { return opt_; }

 private:
  EvalEngineOptions opt_;
  ThreadPool pool_;
};

}  // namespace baco

#endif  // BACO_EXEC_EVAL_ENGINE_HPP_
