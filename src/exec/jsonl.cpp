#include "exec/jsonl.hpp"

#include <cstdio>

namespace baco::jsonl {

bool
field(const std::string& line, const std::string& name, std::string& out)
{
    std::string tag = "\"" + name + "\":";
    std::size_t at = line.find(tag);
    if (at == std::string::npos)
        return false;
    at += tag.size();
    if (at < line.size() && line[at] == '"') {
        std::size_t end = line.find('"', at + 1);
        if (end == std::string::npos)
            return false;
        out = line.substr(at + 1, end - at - 1);
        return true;
    }
    std::size_t end = line.find_first_of(",}", at);
    if (end == std::string::npos)
        return false;
    out = line.substr(at, end - at);
    return true;
}

std::string
fmt_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace baco::jsonl
