#include "exec/jsonl.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace baco::jsonl {

bool
field(const std::string& line, const std::string& name, std::string& out)
{
    std::string tag = "\"" + name + "\":";
    std::size_t at = line.find(tag);
    if (at == std::string::npos)
        return false;
    at += tag.size();
    if (at < line.size() && line[at] == '"') {
        std::size_t end = line.find('"', at + 1);
        if (end == std::string::npos)
            return false;
        out = line.substr(at + 1, end - at - 1);
        return true;
    }
    std::size_t end = line.find_first_of(",}", at);
    if (end == std::string::npos)
        return false;
    out = line.substr(at, end - at);
    return true;
}

std::string
fmt_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
write_config(std::ostream& out, const Configuration& c)
{
    out << '[';
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (i > 0)
            out << ',';
        if (const auto* d = std::get_if<double>(&c[i])) {
            out << "{\"r\":" << fmt_double(*d) << '}';
        } else if (const auto* v = std::get_if<std::int64_t>(&c[i])) {
            out << "{\"i\":" << *v << '}';
        } else {
            const auto& p = std::get<Permutation>(c[i]);
            out << "{\"p\":[";
            for (std::size_t k = 0; k < p.size(); ++k) {
                if (k > 0)
                    out << ',';
                out << p[k];
            }
            out << "]}";
        }
    }
    out << ']';
}

std::string
config_json(const Configuration& c)
{
    std::ostringstream oss;
    write_config(oss, c);
    return oss.str();
}

bool
parse_double_at(const std::string& s, std::size_t& at, double& out)
{
    const char* begin = s.c_str() + at;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin)
        return false;
    at += static_cast<std::size_t>(end - begin);
    return true;
}

bool
parse_int_at(const std::string& s, std::size_t& at, std::int64_t& out)
{
    const char* begin = s.c_str() + at;
    char* end = nullptr;
    out = std::strtoll(begin, &end, 10);
    if (end == begin)
        return false;
    at += static_cast<std::size_t>(end - begin);
    return true;
}

bool
parse_config(const std::string& s, std::size_t& at, Configuration& out)
{
    if (at >= s.size() || s[at] != '[')
        return false;
    ++at;
    out.clear();
    if (at < s.size() && s[at] == ']') {
        ++at;
        return true;
    }
    while (at < s.size()) {
        if (s.compare(at, 5, "{\"r\":") == 0) {
            at += 5;
            double d;
            if (!parse_double_at(s, at, d))
                return false;
            out.emplace_back(d);
        } else if (s.compare(at, 5, "{\"i\":") == 0) {
            at += 5;
            std::int64_t v;
            if (!parse_int_at(s, at, v))
                return false;
            out.emplace_back(v);
        } else if (s.compare(at, 6, "{\"p\":[") == 0) {
            at += 6;
            Permutation p;
            while (at < s.size() && s[at] != ']') {
                std::int64_t v;
                if (!parse_int_at(s, at, v))
                    return false;
                p.push_back(static_cast<int>(v));
                if (at < s.size() && s[at] == ',')
                    ++at;
            }
            if (at >= s.size())
                return false;
            ++at;  // ']'
            out.emplace_back(std::move(p));
        } else {
            return false;
        }
        if (at >= s.size() || s[at] != '}')
            return false;
        ++at;  // '}'
        if (at < s.size() && s[at] == ',') {
            ++at;
            continue;
        }
        break;
    }
    if (at >= s.size() || s[at] != ']')
        return false;
    ++at;
    return true;
}

}  // namespace baco::jsonl
