#ifndef BACO_EXEC_ASK_TELL_HPP_
#define BACO_EXEC_ASK_TELL_HPP_

/**
 * @file
 * The ask-tell tuner interface: the recommend/observe split that decouples
 * the optimization loop from black-box execution.
 *
 * A tuner no longer owns the evaluation loop. Instead it answers
 * suggest(n) with up to n configurations to try next and is told the
 * results through observe(). Any driver — the serial loop, the batched
 * EvalEngine, or an external system — can run the exchange, which is what
 * makes batching, caching and checkpoint/resume orthogonal to the search
 * method itself.
 *
 * Determinism contract: a tuner draws only from its own sampler RNG, and
 * every black-box evaluation gets an independent RNG stream derived from
 * (run seed, evaluation index) via eval_rng_for(). Serial and parallel
 * drivers therefore produce bit-identical histories at batch size 1, and
 * reproducible histories at any batch size.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.hpp"

namespace baco {

/**
 * The independent measurement-noise stream for evaluation `index` of a run
 * seeded with `run_seed` (splitmix64 over the pair). Workers evaluating a
 * batch concurrently use disjoint streams, so the schedule cannot leak
 * into the results.
 */
RngEngine eval_rng_for(std::uint64_t run_seed, std::uint64_t index);

/**
 * Ask-tell optimization interface.
 *
 * Protocol: call suggest(n), evaluate the returned configurations, then
 * report every result through observe() before the next suggest(). The
 * configurations must be observed in the order suggest() returned them.
 */
class AskTellTuner {
 public:
  virtual ~AskTellTuner() = default;

  /**
   * Propose up to n configurations to evaluate next. Returns fewer than n
   * only when the remaining budget is smaller (and an empty vector once
   * the budget is exhausted).
   */
  virtual std::vector<Configuration> suggest(int n) = 0;

  /**
   * Propose up to n more configurations while `pending` — suggested
   * earlier, still being evaluated — are in flight (the asynchronous
   * drivers' ask). Implementations must count pending against the budget
   * so suggested-plus-observed never exceeds it; model-based tuners
   * additionally treat pending as constant-liar fantasies so new
   * proposals explore away from the in-flight ones. The base
   * implementation only does the budget accounting and forwards to
   * suggest(). With pending empty this is exactly suggest(n).
   */
  virtual std::vector<Configuration> suggest_with_pending(
      int n, const std::vector<Configuration>& pending);

  /** Report evaluation results, in suggest() order. */
  virtual void observe(const std::vector<Configuration>& configs,
                       const std::vector<EvalResult>& results) = 0;

  /** Single-result convenience wrapper over observe(). */
  void observe_one(const Configuration& c, const EvalResult& r);

  /** Evaluations left before the budget is exhausted. */
  virtual int remaining() const = 0;

  /** The run seed (roots the per-evaluation RNG streams). */
  virtual std::uint64_t run_seed() const = 0;

  /** The history accumulated so far. */
  virtual const TuningHistory& history() const = 0;

  /** Mutable history access, for drivers charging eval_seconds. */
  virtual TuningHistory& mutable_history() = 0;

  /** Finalize timing bookkeeping and move the history out. */
  virtual TuningHistory take_history() = 0;

  /**
   * Opaque serialized sampler state (RNG stream position) for
   * checkpointing. Empty when the tuner does not support resume.
   */
  virtual std::string sampler_state() const { return {}; }

  /**
   * Restore a checkpointed run: replace the history and sampler state so
   * the next suggest() continues exactly where the interrupted run left
   * off. Returns false when the tuner does not support resume.
   */
  virtual bool restore(const TuningHistory& history,
                       const std::string& sampler_state);
};

/**
 * Shared scaffolding for concrete ask-tell tuners: history/budget
 * bookkeeping, run-seed plumbing, and sampler-RNG (de)serialization.
 * Derived classes implement suggest()/observe()/restore() and
 * reset_sampler() (drop lazily-built models/RNG/dedup state).
 */
class AskTellBase : public AskTellTuner {
 public:
  int remaining() const override
  {
      return budget_ - static_cast<int>(history_.size());
  }
  std::uint64_t run_seed() const override { return seed_; }
  const TuningHistory& history() const override { return history_; }
  TuningHistory& mutable_history() override { return history_; }
  TuningHistory take_history() override;

 protected:
  AskTellBase(int budget, std::uint64_t seed)
      : budget_(budget), seed_(seed)
  {
  }

  /** Drop lazily-built sampler state; next suggest() re-seeds. */
  virtual void reset_sampler() = 0;

  /** Serialize rng's stream position (seed-fresh stream when null). */
  std::string rng_state_string(const RngEngine* rng) const;

  /**
   * Restore rng from rng_state_string() output (empty = leave at seed).
   * Returns false on a parse error.
   */
  static bool restore_rng(RngEngine& rng, const std::string& state);

  int budget_;
  std::uint64_t seed_;
  TuningHistory history_;
};

/**
 * The plain sequential driver: suggest(1) / evaluate / observe until the
 * budget is exhausted. EvalEngine at batch size 1 reproduces this loop
 * bit-for-bit.
 */
TuningHistory drive_serial(AskTellTuner& tuner, const BlackBoxFn& objective);

/**
 * One result landing in an asynchronous drive (EvalEngine::drive_async,
 * Coordinator::drive_async), reported right after the tuner was told.
 */
struct AsyncEvent {
  std::uint64_t index = 0;  ///< evaluation index (noise-stream key)
  Configuration config;
  EvalResult result;
  std::size_t evals = 0;    ///< history size after this tell
  double best = 0.0;        ///< incumbent after this tell (+inf when none)
  double eval_seconds = 0.0;  ///< black-box wall-clock of this evaluation
  bool from_cache = false;
};

/** Per-result callback of the asynchronous drivers (may be empty). */
using AsyncResultFn = std::function<void(const AsyncEvent&)>;

}  // namespace baco

#endif  // BACO_EXEC_ASK_TELL_HPP_
