#ifndef BACO_EXEC_EVAL_CACHE_HPP_
#define BACO_EXEC_EVAL_CACHE_HPP_

/**
 * @file
 * Evaluation cache: canonical configuration key -> EvalResult.
 *
 * Compiler evaluations are expensive (compile + run), so repeat
 * configurations — within a run, across suite repetitions, or across
 * separate tuning sessions via save()/load() — are short-circuited. The
 * cache is thread-safe; EvalEngine consults it before dispatching work.
 *
 * Entries can be namespaced by benchmark identity (benchmark name plus a
 * structural fingerprint of its search space, see namespace_key), so one
 * persistent cache file safely serves the whole suite and every session of
 * the serve layer: the same configuration key under two benchmarks — or
 * under two revisions of one benchmark's space — never collides.
 *
 * An optional LRU bound (set_max_entries) caps memory for long-lived
 * servers: inserts beyond the bound evict the least-recently-used entry,
 * with eviction statistics for observability, and save() orders entries
 * so a bounded reload keeps the hottest ones.
 *
 * Caching replaces a fresh noisy measurement with the first recorded one,
 * so with a noisy black box a cache-enabled run is deterministic given the
 * cache contents but not bit-identical to a cache-free run. Callers that
 * need bit-exact histories (the determinism tests, baseline comparisons)
 * run with the cache off; callers that want throughput turn it on.
 */

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/thread_annotations.hpp"
#include "core/types.hpp"

namespace baco {

class SearchSpace;

/** Thread-safe configuration -> result memo with JSONL persistence. */
class EvalCache {
 public:
  /**
   * Canonical textual key of a configuration: type-tagged parameter values
   * joined with '|' (e.g. "i:4|r:0.5|p:2,0,1"). Collision-free, unlike
   * config_hash().
   */
  static std::string canonical_key(const Configuration& c);

  /**
   * Structural fingerprint of a search space as a 16-hex-digit string:
   * hashes parameter names, kinds, bounds/value sets and the known
   * constraints. Two spaces fingerprint equal iff an EvalResult cached
   * under one is valid under the other.
   */
  static std::string space_fingerprint(const SearchSpace& space);

  /**
   * The cache namespace identifying one benchmark: "<name>@<fingerprint>".
   * Keyed entries survive benchmark-set growth and space redefinitions —
   * a redefined space changes the fingerprint and thus misses cleanly.
   */
  static std::string namespace_key(const std::string& benchmark_name,
                                   const SearchSpace& space);

  /** Cached result for c, if any. Counts a hit or a miss. */
  std::optional<EvalResult> lookup(const Configuration& c) const;

  /** Namespaced lookup (empty ns = the anonymous namespace). */
  std::optional<EvalResult> lookup(const std::string& ns,
                                   const Configuration& c) const;

  /** Record the result for c (first write wins). */
  void insert(const Configuration& c, const EvalResult& r);

  /** Namespaced insert (empty ns = the anonymous namespace). */
  void insert(const std::string& ns, const Configuration& c,
              const EvalResult& r);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  /**
   * Bound the cache to at most n entries (0 = unbounded, the default).
   * When full, an insert evicts the least-recently-used entry — every
   * lookup hit refreshes its entry's recency — so long-lived servers
   * keep the hot working set instead of growing without bound. Shrinking
   * the bound below the current size evicts immediately.
   */
  void set_max_entries(std::size_t n);

  /** The configured bound (0 = unbounded). */
  std::size_t max_entries() const;

  /** Entries evicted by the LRU bound so far. */
  std::uint64_t evictions() const;

  /** Summed lookup hits the evicted entries had received (a high value
   *  means the bound is evicting entries that were still hot). */
  std::uint64_t evicted_hits() const;

  /** Drop all entries and reset the hit/miss/eviction counters. */
  void clear();

  /**
   * Persist all entries as JSONL ({"key":...,"value":...,"feasible":...}
   * per line), least-recently-used first — so load()ing into a bounded
   * cache keeps the most recently used entries and evicts the cold tail.
   * Returns false on I/O failure.
   */
  bool save(const std::string& path) const;

  /**
   * Merge entries from a save()d file (existing keys win). A corrupt
   * line — truncated by a crash mid-write, or garbage appended by a
   * faulty writer — is skipped and counted into *corrupt_lines (when
   * non-null) instead of aborting the load: one bad line must not
   * discard the thousands of valid compile results around it. Returns
   * false only when the file cannot be opened.
   */
  bool load(const std::string& path, std::size_t* corrupt_lines = nullptr);

 private:
  struct Entry {
    EvalResult result;
    std::uint64_t hits = 0;
    /** Position in lru_ (front = most recently used). */
    std::list<const std::string*>::iterator lru_it;
  };

  /** Insert under the LRU bound. */
  void insert_locked(std::string key, const EvalResult& r)
      BACO_REQUIRES(mutex_);
  /** Evict LRU entries until the bound holds. */
  void enforce_bound_locked() BACO_REQUIRES(mutex_);

  mutable Mutex mutex_;
  mutable std::unordered_map<std::string, Entry> entries_
      BACO_GUARDED_BY(mutex_);
  /** Recency order, most recently used first. Points at entries_'s own
   *  keys (stable under rehash and unrelated erases) so the bound does
   *  not double every key's memory. */
  mutable std::list<const std::string*> lru_ BACO_GUARDED_BY(mutex_);
  std::size_t max_entries_ BACO_GUARDED_BY(mutex_) = 0;  ///< 0 = unbounded
  mutable std::uint64_t hits_ BACO_GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t misses_ BACO_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ BACO_GUARDED_BY(mutex_) = 0;
  std::uint64_t evicted_hits_ BACO_GUARDED_BY(mutex_) = 0;
};

}  // namespace baco

#endif  // BACO_EXEC_EVAL_CACHE_HPP_
