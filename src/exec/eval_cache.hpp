#ifndef BACO_EXEC_EVAL_CACHE_HPP_
#define BACO_EXEC_EVAL_CACHE_HPP_

/**
 * @file
 * Evaluation cache: canonical configuration key -> EvalResult.
 *
 * Compiler evaluations are expensive (compile + run), so repeat
 * configurations — within a run, across suite repetitions, or across
 * separate tuning sessions via save()/load() — are short-circuited. The
 * cache is thread-safe; EvalEngine consults it before dispatching work.
 *
 * Caching replaces a fresh noisy measurement with the first recorded one,
 * so with a noisy black box a cache-enabled run is deterministic given the
 * cache contents but not bit-identical to a cache-free run. Callers that
 * need bit-exact histories (the determinism tests, baseline comparisons)
 * run with the cache off; callers that want throughput turn it on.
 */

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/types.hpp"

namespace baco {

/** Thread-safe configuration -> result memo with JSONL persistence. */
class EvalCache {
 public:
  /**
   * Canonical textual key of a configuration: type-tagged parameter values
   * joined with '|' (e.g. "i:4|r:0.5|p:2,0,1"). Collision-free, unlike
   * config_hash().
   */
  static std::string canonical_key(const Configuration& c);

  /** Cached result for c, if any. Counts a hit or a miss. */
  std::optional<EvalResult> lookup(const Configuration& c) const;

  /** Record the result for c (first write wins). */
  void insert(const Configuration& c, const EvalResult& r);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  /** Drop all entries and reset the hit/miss counters. */
  void clear();

  /**
   * Persist all entries as JSONL ({"key":...,"value":...,"feasible":...}
   * per line). Returns false on I/O failure.
   */
  bool save(const std::string& path) const;

  /**
   * Merge entries from a save()d file (existing keys win). Returns false
   * when the file cannot be read or parsed.
   */
  bool load(const std::string& path);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, EvalResult> entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace baco

#endif  // BACO_EXEC_EVAL_CACHE_HPP_
