#ifndef BACO_EXEC_JSONL_HPP_
#define BACO_EXEC_JSONL_HPP_

/**
 * @file
 * The tiny shared JSONL vocabulary of the exec subsystem: the cache and
 * checkpoint files are both one flat JSON object per line, written and
 * parsed by these helpers so the two formats cannot drift apart.
 */

#include <string>

namespace baco::jsonl {

/**
 * Extract the raw text of "field": from a flat JSON object line — up to
 * the next ',' or '}', with surrounding quotes stripped for string
 * values. Returns false when the field is absent or malformed. (The
 * emitted values never contain escaped quotes, so no unescaping.)
 */
bool field(const std::string& line, const std::string& name,
           std::string& out);

/** Format a double with %.17g (exact IEEE round-trip). */
std::string fmt_double(double v);

}  // namespace baco::jsonl

#endif  // BACO_EXEC_JSONL_HPP_
