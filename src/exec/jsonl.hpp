#ifndef BACO_EXEC_JSONL_HPP_
#define BACO_EXEC_JSONL_HPP_

/**
 * @file
 * The tiny shared JSONL vocabulary of the exec and serve subsystems: cache
 * files, checkpoint files and wire-protocol frames are all one flat JSON
 * object per line, written and parsed by these helpers so the formats
 * cannot drift apart. Configurations appear in checkpoints and protocol
 * frames as the same typed array ([{"r":...},{"i":...},{"p":[...]}]),
 * (de)serialized by write_config/parse_config.
 */

#include <iosfwd>
#include <string>

#include "core/types.hpp"

namespace baco::jsonl {

/**
 * Extract the raw text of "field": from a flat JSON object line — up to
 * the next ',' or '}', with surrounding quotes stripped for string
 * values. Returns false when the field is absent or malformed. (The
 * emitted values never contain escaped quotes, so no unescaping.)
 */
bool field(const std::string& line, const std::string& name,
           std::string& out);

/** Format a double with %.17g (exact IEEE round-trip). */
std::string fmt_double(double v);

/**
 * Write c as a typed JSON array: one {"r":x} / {"i":n} / {"p":[...]}
 * object per parameter, in configuration order.
 */
void write_config(std::ostream& out, const Configuration& c);

/** write_config into a string. */
std::string config_json(const Configuration& c);

/**
 * Parse the array emitted by write_config starting at s[at] (the '[').
 * Advances at past the closing ']'. Returns false on malformed input
 * (never throws).
 */
bool parse_config(const std::string& s, std::size_t& at, Configuration& out);

/** strtod at s[at]; false when no number starts there. Advances at. */
bool parse_double_at(const std::string& s, std::size_t& at, double& out);

/** strtoll at s[at]; false when no integer starts there. Advances at. */
bool parse_int_at(const std::string& s, std::size_t& at, std::int64_t& out);

}  // namespace baco::jsonl

#endif  // BACO_EXEC_JSONL_HPP_
