#ifndef BACO_SUITE_REPORT_HPP_
#define BACO_SUITE_REPORT_HPP_

/**
 * @file
 * Plain-text table/series rendering for the figure/table harnesses in
 * bench/. Output mimics the rows the paper reports so measured results can
 * be compared side by side with the published ones (EXPERIMENTS.md).
 */

#include <iostream>
#include <string>
#include <vector>

namespace baco::suite {

/** Fixed-width text table. */
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /** Render with column alignment and a header rule. */
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/** Format a double with `prec` decimals ("-" for NaN/inf). */
std::string fmt(double v, int prec = 2);

/** Format as a multiplier, e.g. "3.33x" ("-" for non-finite/negative). */
std::string fmt_factor(double v, int prec = 2);

/** Section banner for bench output. */
void print_banner(std::ostream& os, const std::string& title);

}  // namespace baco::suite

#endif  // BACO_SUITE_REPORT_HPP_
