#include "suite/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace baco::suite {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::add_row(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << "\n";
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto& row : rows_)
        print_row(row);
}

std::string
fmt(double v, int prec)
{
    if (!std::isfinite(v))
        return "-";
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

std::string
fmt_factor(double v, int prec)
{
    if (!std::isfinite(v) || v < 0.0)
        return "-";
    return fmt(v, prec) + "x";
}

void
print_banner(std::ostream& os, const std::string& title)
{
    os << "\n" << std::string(72, '=') << "\n"
       << title << "\n"
       << std::string(72, '=') << "\n";
}

}  // namespace baco::suite
