#ifndef BACO_SUITE_REGISTRY_HPP_
#define BACO_SUITE_REGISTRY_HPP_

/**
 * @file
 * Central registry of all benchmark instances (paper Table 3) and
 * Table 3-style metadata extraction.
 */

#include <string>
#include <vector>

#include "suite/benchmark.hpp"

namespace baco::suite {

/** All 25 instances: 15 TACO, 7 RISE, 3 HPVM2FPGA. */
const std::vector<Benchmark>& all_benchmarks();

/** Instances of one framework ("TACO", "RISE", "HPVM2FPGA"). */
std::vector<const Benchmark*> benchmarks_for(const std::string& framework);

/** Find an instance by name (e.g. "SpMM/scircuit").
 *  @throws std::runtime_error when absent, naming the closest
 *  registered benchmarks ("did you mean ...?"). */
const Benchmark& find_benchmark(const std::string& name);

/** Table 3 row: space structure metadata. */
struct SpaceInfo {
  std::string framework;
  std::string name;
  std::size_t dims = 0;
  std::string param_types;      ///< subset of "R/I/O/C/P"
  std::string constraint_types; ///< "K", "H", "K/H", or "-"
  double dense_size = 0.0;
  double feasible_size = 0.0;   ///< w.r.t. known constraints only
  int full_budget = 0;
};

/** Compute the Table 3 row for one benchmark (builds the space + CoT). */
SpaceInfo space_info(const Benchmark& b);

}  // namespace baco::suite

#endif  // BACO_SUITE_REGISTRY_HPP_
