#include "suite/registry.hpp"

#include <stdexcept>

#include "core/chain_of_trees.hpp"
#include "core/names.hpp"
#include "hpvm/benchmarks.hpp"
#include "rise/benchmarks.hpp"
#include "taco/benchmarks.hpp"

namespace baco::suite {

const std::vector<Benchmark>&
all_benchmarks()
{
    static const std::vector<Benchmark> kAll = [] {
        std::vector<Benchmark> out;
        for (Benchmark& b : taco::taco_suite())
            out.push_back(std::move(b));
        for (Benchmark& b : rise::rise_suite())
            out.push_back(std::move(b));
        for (Benchmark& b : hpvm::hpvm_suite())
            out.push_back(std::move(b));
        return out;
    }();
    return kAll;
}

std::vector<const Benchmark*>
benchmarks_for(const std::string& framework)
{
    std::vector<const Benchmark*> out;
    for (const Benchmark& b : all_benchmarks())
        if (b.framework == framework)
            out.push_back(&b);
    return out;
}

const Benchmark&
find_benchmark(const std::string& name)
{
    for (const Benchmark& b : all_benchmarks())
        if (b.name == name)
            return b;
    std::vector<std::string> known;
    known.reserve(all_benchmarks().size());
    for (const Benchmark& b : all_benchmarks())
        known.push_back(b.name);
    throw std::runtime_error("unknown benchmark '" + name + "'" +
                             did_you_mean(name, known));
}

SpaceInfo
space_info(const Benchmark& b)
{
    SpaceInfo info;
    info.framework = b.framework;
    info.name = b.name;
    info.full_budget = b.full_budget;

    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    info.dims = space->num_params();

    bool r = false, i = false, o = false, c = false, p = false;
    for (std::size_t k = 0; k < space->num_params(); ++k) {
        switch (space->param(k).kind()) {
          case ParamKind::kReal: r = true; break;
          case ParamKind::kInteger: i = true; break;
          case ParamKind::kOrdinal: o = true; break;
          case ParamKind::kCategorical: c = true; break;
          case ParamKind::kPermutation: p = true; break;
        }
    }
    std::string types;
    auto append = [&types](bool flag, const char* s) {
        if (!flag)
            return;
        if (!types.empty())
            types += "/";
        types += s;
    };
    append(r, "R");
    append(i, "I");
    append(o, "O");
    append(c, "C");
    append(p, "P");
    info.param_types = types;

    bool known = space->has_constraints();
    std::string constr;
    if (known)
        constr = "K";
    if (b.has_hidden_constraints)
        constr += constr.empty() ? "H" : "/H";
    info.constraint_types = constr.empty() ? "-" : constr;

    info.dense_size = space->dense_size();
    if (known && space->is_fully_discrete()) {
        ChainOfTrees cot = ChainOfTrees::build(*space);
        info.feasible_size = cot.num_feasible();
    } else {
        info.feasible_size = info.dense_size;
    }
    return info;
}

}  // namespace baco::suite
