#ifndef BACO_SUITE_RUNNER_HPP_
#define BACO_SUITE_RUNNER_HPP_

/**
 * @file
 * Experiment runner: execute any autotuner against any benchmark for a
 * budget, repeat with independent seeds, and aggregate the statistics the
 * paper's figures report (mean best-so-far trajectories, performance
 * relative to expert, expert-success counts, evaluations-to-reach factors).
 *
 * Every method is constructed through the MethodRegistry (the enum here
 * resolves by display name), so the same code path serves the serial
 * loop, the batched EvalEngine, the thread-pool fan-out of seed
 * repetitions (run_repetitions_parallel), and the serve protocol.
 *
 * The run_method_{batched,async,distributed} trio is deprecated: each is
 * now a one-line wrapper over the baco::Study front door (api/study.hpp),
 * kept for the bench harnesses and older call sites. New code should
 * build a Study and pick an ExecutionPolicy instead.
 */

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/tuner.hpp"
#include "exec/eval_engine.hpp"
#include "suite/benchmark.hpp"

namespace baco::suite {

/** The five competing methods of Sec. 5.1, plus the Fig. 8 variants. */
enum class Method {
  kBaco,
  kBacoMinusMinus,
  kAtfOpenTuner,
  kYtopt,
  kYtoptGp,
  kUniform,
  kCotSampling,
};

/** Display name ("BaCO", "ATF", "Ytopt", ...). */
std::string method_name(Method m);

/** Inverse of method_name. (The serve protocol resolves method strings
 *  through the MethodRegistry now; this survives for enum callers.) */
std::optional<Method> method_by_name(const std::string& name);

/** The paper's five headline competitors (Fig. 5-7, Tables 5-9). */
const std::vector<Method>& headline_methods();

/**
 * Build the ask-tell tuner for a method through the MethodRegistry. The
 * space reference must outlive the returned tuner. doe_samples is
 * clamped to the budget.
 */
std::unique_ptr<AskTellTuner> make_ask_tell(const SearchSpace& space,
                                            Method m, int budget,
                                            int doe_samples,
                                            std::uint64_t seed);

/** Run one method once. The SpaceVariant feeds the Fig. 8/9 ablations. */
TuningHistory run_method(const Benchmark& b, Method m, int budget,
                         std::uint64_t seed,
                         const SpaceVariant& variant = SpaceVariant{});

/**
 * Run one method once through the batched EvalEngine. At
 * exec.batch_size == 1 this matches run_method bit-for-bit; larger batches
 * evaluate concurrently with reproducible (seed-determined) histories.
 * @deprecated Wrapper over baco::Study with ExecutionPolicy::Batched.
 */
TuningHistory run_method_batched(const Benchmark& b, Method m, int budget,
                                 std::uint64_t seed,
                                 const EvalEngineOptions& exec,
                                 const SpaceVariant& variant = SpaceVariant{});

/**
 * Run one method once through the EvalEngine's tell-as-results-land
 * async mode (exec.async_mode is forced on; exec.batch_size is the
 * in-flight cap). At batch_size 1 this still matches run_method
 * bit-for-bit; larger caps trade history-order reproducibility for
 * utilization — no slot ever idles on a straggling evaluation.
 * @deprecated Wrapper over baco::Study with ExecutionPolicy::Async.
 */
TuningHistory run_method_async(const Benchmark& b, Method m, int budget,
                               std::uint64_t seed,
                               const EvalEngineOptions& exec,
                               const SpaceVariant& variant = SpaceVariant{});

/** Run BaCO with fully custom options (ablation studies). */
TuningHistory run_baco_custom(const Benchmark& b, TunerOptions opt,
                              const SpaceVariant& variant = SpaceVariant{});

/** Knobs for the distributed (coordinator + workers) execution path. */
struct DistributedOptions {
  /** In-process loopback evaluation workers to spawn. */
  int workers = 2;
  /** Configurations per suggest() round (constant-liar sharded batch);
   *  in async mode, the fleet-wide in-flight cap. */
  int batch_size = 4;
  /** Drive tell-as-results-land (Coordinator::drive_async) instead of
   *  barriering on each sharded batch. */
  bool async = false;
  /** Per-worker in-flight cap (coordinator backpressure). */
  int max_inflight_per_worker = 2;
  /** Straggler re-dispatch deadline in ms; <= 0 disables. */
  int straggler_ms = -1;
  /** When nonempty, rewrite a resume checkpoint after every batch. */
  std::string checkpoint_path;
  /** Optional shared cache, namespaced by benchmark identity. */
  EvalCache* cache = nullptr;
};

/**
 * Run one method through the serve-layer Coordinator with
 * opt.workers in-process loopback workers. The benchmark must be a
 * registry benchmark (workers resolve it by name). Shard-deterministic:
 * matches run_method_batched with the same seed and batch size
 * bit-for-bit, and run_method itself at batch_size == 1.
 * @deprecated Wrapper over baco::Study with ExecutionPolicy::Distributed.
 */
TuningHistory run_method_distributed(
    const Benchmark& b, Method m, int budget, std::uint64_t seed,
    const DistributedOptions& opt = DistributedOptions{},
    const SpaceVariant& variant = SpaceVariant{});

/** Aggregated repetitions of one (benchmark, method) cell. */
struct RepStats {
  /** Best-so-far trajectories, one per repetition (+inf until feasible). */
  std::vector<std::vector<double>> trajectories;
  double mean_tuner_seconds = 0.0;
  double mean_eval_seconds = 0.0;

  /** Mean best value after `evals` evaluations (inf-aware). */
  double mean_best_at(int evals) const;

  /** Mean performance relative to a reference cost after `evals`
   *  evaluations: mean over reps of ref / best (0 when no feasible). */
  double mean_rel_to_reference(double ref, int evals) const;

  /** Number of repetitions whose final best reached ref (Table 5). */
  int count_reached(double ref) const;

  /** Mean trajectory across repetitions (inf-aware element-wise). */
  std::vector<double> mean_trajectory() const;
};

/** Run `reps` repetitions with seeds seed0, seed0+1, ... */
RepStats run_repetitions(const Benchmark& b, Method m, int budget, int reps,
                         std::uint64_t seed0,
                         const SpaceVariant& variant = SpaceVariant{});

/**
 * run_repetitions with the repetitions fanned out across a work-stealing
 * thread pool (num_threads lanes; 0 = hardware concurrency). Results are
 * assembled in seed order, so the statistics are identical to the serial
 * sweep regardless of scheduling.
 */
RepStats run_repetitions_parallel(const Benchmark& b, Method m, int budget,
                                  int reps, std::uint64_t seed0,
                                  int num_threads = 0,
                                  const SpaceVariant& variant = SpaceVariant{});

/**
 * First evaluation count at which trajectory reaches target (<=), or -1.
 */
int evals_to_reach(const std::vector<double>& trajectory, double target);

}  // namespace baco::suite

#endif  // BACO_SUITE_RUNNER_HPP_
