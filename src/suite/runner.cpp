#include "suite/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "api/method_registry.hpp"
#include "api/study.hpp"
#include "exec/thread_pool.hpp"

namespace baco::suite {

namespace {
const double kInf = std::numeric_limits<double>::infinity();
}

std::string
method_name(Method m)
{
    switch (m) {
      case Method::kBaco: return "BaCO";
      case Method::kBacoMinusMinus: return "BaCO--";
      case Method::kAtfOpenTuner: return "ATF";
      case Method::kYtopt: return "Ytopt";
      case Method::kYtoptGp: return "Ytopt(GP)";
      case Method::kUniform: return "Uniform";
      case Method::kCotSampling: return "CoT";
    }
    return "?";
}

std::optional<Method>
method_by_name(const std::string& name)
{
    static const Method kAll[] = {
        Method::kBaco,    Method::kBacoMinusMinus, Method::kAtfOpenTuner,
        Method::kYtopt,   Method::kYtoptGp,        Method::kUniform,
        Method::kCotSampling,
    };
    for (Method m : kAll)
        if (method_name(m) == name)
            return m;
    return std::nullopt;
}

const std::vector<Method>&
headline_methods()
{
    static const std::vector<Method> kMethods = {
        Method::kBaco, Method::kAtfOpenTuner, Method::kYtopt,
        Method::kUniform, Method::kCotSampling,
    };
    return kMethods;
}

std::unique_ptr<AskTellTuner>
make_ask_tell(const SearchSpace& space, Method m, int budget, int doe_samples,
              std::uint64_t seed)
{
    // The MethodRegistry owns the factories; the enum's display name
    // resolves as a registry alias, so enum- and string-keyed callers
    // construct through the same code path.
    MethodSpec spec;
    spec.budget = budget;
    spec.doe_samples = doe_samples;
    spec.seed = seed;
    return MethodRegistry::global().make(method_name(m), space, spec);
}

TuningHistory
run_method(const Benchmark& b, Method m, int budget, std::uint64_t seed,
           const SpaceVariant& variant)
{
    std::shared_ptr<SearchSpace> space = b.make_space(variant);
    std::unique_ptr<AskTellTuner> tuner =
        make_ask_tell(*space, m, budget, b.doe_samples, seed);
    return drive_serial(*tuner, b.evaluate);
}

namespace {

/** The shared Study assembly behind the deprecated run_method_* trio. */
StudyBuilder
study_for(const Benchmark& b, Method m, int budget, std::uint64_t seed,
          const SpaceVariant& variant)
{
    StudyBuilder sb;
    sb.benchmark(b)
        .variant(variant)
        .method(method_name(m))
        .budget(budget)
        .doe(b.doe_samples)
        .seed(seed);
    return sb;
}

}  // namespace

TuningHistory
run_method_batched(const Benchmark& b, Method m, int budget,
                   std::uint64_t seed, const EvalEngineOptions& exec,
                   const SpaceVariant& variant)
{
    if (budget <= 0)  // legacy semantic: an exhausted budget, not the
        return {};    // StudyBuilder's benchmark-default fallback
    // The engine honored exec.async_mode here before the Study
    // refactor (drive() dispatches to drive_async), so the wrapper
    // keeps doing it.
    return study_for(b, m, budget, seed, variant)
        .execution(exec.async_mode
                       ? ExecutionPolicy::Async(exec.batch_size,
                                                exec.num_threads)
                       : ExecutionPolicy::Batched(exec.batch_size,
                                                  exec.num_threads))
        .cache(exec.cache, exec.cache_max_entries)
        .cache_namespace(exec.cache_namespace)
        .checkpoint(exec.checkpoint_path)
        .build()
        .run()
        .history;
}

TuningHistory
run_method_async(const Benchmark& b, Method m, int budget,
                 std::uint64_t seed, const EvalEngineOptions& exec,
                 const SpaceVariant& variant)
{
    if (budget <= 0)
        return {};
    return study_for(b, m, budget, seed, variant)
        .execution(
            ExecutionPolicy::Async(exec.batch_size, exec.num_threads))
        .cache(exec.cache, exec.cache_max_entries)
        .cache_namespace(exec.cache_namespace)
        .checkpoint(exec.checkpoint_path)
        .build()
        .run()
        .history;
}

TuningHistory
run_baco_custom(const Benchmark& b, TunerOptions opt,
                const SpaceVariant& variant)
{
    std::shared_ptr<SearchSpace> space = b.make_space(variant);
    Tuner tuner(*space, opt);
    return tuner.run(b.evaluate);
}

TuningHistory
run_method_distributed(const Benchmark& b, Method m, int budget,
                       std::uint64_t seed, const DistributedOptions& opt,
                       const SpaceVariant& variant)
{
    if (budget <= 0)
        return {};
    ExecutionPolicy policy = ExecutionPolicy::Distributed(
        opt.workers, opt.batch_size, opt.async);
    policy.max_inflight_per_worker = opt.max_inflight_per_worker;
    policy.straggler_ms = opt.straggler_ms;
    return study_for(b, m, budget, seed, variant)
        .execution(policy)
        .cache(opt.cache)
        .checkpoint(opt.checkpoint_path)
        .build()
        .run()
        .history;
}

double
RepStats::mean_best_at(int evals) const
{
    double acc = 0.0;
    int n = 0;
    for (const auto& t : trajectories) {
        if (t.empty())
            continue;
        std::size_t at = std::min<std::size_t>(
            t.size() - 1, static_cast<std::size_t>(std::max(0, evals - 1)));
        acc += t[at];
        ++n;
    }
    return n > 0 ? acc / n : kInf;
}

double
RepStats::mean_rel_to_reference(double ref, int evals) const
{
    double acc = 0.0;
    int n = 0;
    for (const auto& t : trajectories) {
        if (t.empty())
            continue;
        std::size_t at = std::min<std::size_t>(
            t.size() - 1, static_cast<std::size_t>(std::max(0, evals - 1)));
        acc += std::isfinite(t[at]) ? ref / t[at] : 0.0;
        ++n;
    }
    return n > 0 ? acc / n : 0.0;
}

int
RepStats::count_reached(double ref) const
{
    int count = 0;
    for (const auto& t : trajectories)
        if (!t.empty() && t.back() <= ref)
            ++count;
    return count;
}

std::vector<double>
RepStats::mean_trajectory() const
{
    if (trajectories.empty())
        return {};
    std::size_t len = 0;
    for (const auto& t : trajectories)
        len = std::max(len, t.size());
    std::vector<double> mean(len, 0.0);
    std::vector<int> counts(len, 0);
    for (const auto& t : trajectories) {
        for (std::size_t i = 0; i < len; ++i) {
            double v = i < t.size() ? t[i] : t.back();
            if (std::isfinite(v)) {
                mean[i] += v;
                counts[i] += 1;
            }
        }
    }
    for (std::size_t i = 0; i < len; ++i)
        mean[i] = counts[i] > 0 ? mean[i] / counts[i] : kInf;
    return mean;
}

namespace {

RepStats
assemble_stats(std::vector<TuningHistory> histories)
{
    RepStats stats;
    for (TuningHistory& h : histories) {
        stats.trajectories.push_back(h.best_trajectory());
        stats.mean_tuner_seconds += h.tuner_seconds;
        stats.mean_eval_seconds += h.eval_seconds;
    }
    if (!histories.empty()) {
        stats.mean_tuner_seconds /= static_cast<double>(histories.size());
        stats.mean_eval_seconds /= static_cast<double>(histories.size());
    }
    return stats;
}

}  // namespace

RepStats
run_repetitions(const Benchmark& b, Method m, int budget, int reps,
                std::uint64_t seed0, const SpaceVariant& variant)
{
    std::vector<TuningHistory> histories;
    histories.reserve(static_cast<std::size_t>(std::max(0, reps)));
    for (int r = 0; r < reps; ++r) {
        histories.push_back(run_method(
            b, m, budget, seed0 + static_cast<std::uint64_t>(r), variant));
    }
    return assemble_stats(std::move(histories));
}

RepStats
run_repetitions_parallel(const Benchmark& b, Method m, int budget, int reps,
                         std::uint64_t seed0, int num_threads,
                         const SpaceVariant& variant)
{
    if (reps <= 0)
        return RepStats{};
    std::vector<TuningHistory> histories(static_cast<std::size_t>(reps));
    ThreadPool pool(num_threads);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        tasks.push_back([&, r] {
            histories[static_cast<std::size_t>(r)] = run_method(
                b, m, budget, seed0 + static_cast<std::uint64_t>(r), variant);
        });
    }
    pool.run(std::move(tasks));
    return assemble_stats(std::move(histories));
}

int
evals_to_reach(const std::vector<double>& trajectory, double target)
{
    for (std::size_t i = 0; i < trajectory.size(); ++i)
        if (trajectory[i] <= target)
            return static_cast<int>(i) + 1;
    return -1;
}

}  // namespace baco::suite
