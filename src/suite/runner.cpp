#include "suite/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <thread>

#include "baselines/opentuner_like.hpp"
#include "baselines/random_search.hpp"
#include "baselines/ytopt_like.hpp"
#include "exec/eval_cache.hpp"
#include "exec/thread_pool.hpp"
#include "serve/coordinator.hpp"
#include "serve/worker.hpp"

namespace baco::suite {

namespace {
const double kInf = std::numeric_limits<double>::infinity();
}

std::string
method_name(Method m)
{
    switch (m) {
      case Method::kBaco: return "BaCO";
      case Method::kBacoMinusMinus: return "BaCO--";
      case Method::kAtfOpenTuner: return "ATF";
      case Method::kYtopt: return "Ytopt";
      case Method::kYtoptGp: return "Ytopt(GP)";
      case Method::kUniform: return "Uniform";
      case Method::kCotSampling: return "CoT";
    }
    return "?";
}

std::optional<Method>
method_by_name(const std::string& name)
{
    static const Method kAll[] = {
        Method::kBaco,    Method::kBacoMinusMinus, Method::kAtfOpenTuner,
        Method::kYtopt,   Method::kYtoptGp,        Method::kUniform,
        Method::kCotSampling,
    };
    for (Method m : kAll)
        if (method_name(m) == name)
            return m;
    return std::nullopt;
}

const std::vector<Method>&
headline_methods()
{
    static const std::vector<Method> kMethods = {
        Method::kBaco, Method::kAtfOpenTuner, Method::kYtopt,
        Method::kUniform, Method::kCotSampling,
    };
    return kMethods;
}

std::unique_ptr<AskTellTuner>
make_ask_tell(const SearchSpace& space, Method m, int budget, int doe_samples,
              std::uint64_t seed)
{
    switch (m) {
      case Method::kBaco:
      case Method::kBacoMinusMinus: {
        TunerOptions opt = m == Method::kBaco
                               ? TunerOptions::baco_defaults()
                               : TunerOptions::baco_minus_minus();
        opt.budget = budget;
        opt.doe_samples = std::min(doe_samples, budget);
        opt.seed = seed;
        return std::make_unique<Tuner>(space, opt);
      }
      case Method::kAtfOpenTuner: {
        OpenTunerLike::Options opt;
        opt.budget = budget;
        opt.initial_random = std::min(doe_samples, budget);
        opt.seed = seed;
        return std::make_unique<OpenTunerLike>(space, opt);
      }
      case Method::kYtopt:
      case Method::kYtoptGp: {
        YtoptLike::Options opt;
        opt.budget = budget;
        opt.doe_samples = std::min(doe_samples, budget);
        opt.seed = seed;
        opt.surrogate = m == Method::kYtopt
                            ? YtoptLike::Surrogate::kRandomForest
                            : YtoptLike::Surrogate::kGaussianProcess;
        return std::make_unique<YtoptLike>(space, opt);
      }
      case Method::kUniform:
      case Method::kCotSampling: {
        RandomSearchOptions opt;
        opt.budget = budget;
        opt.seed = seed;
        return std::make_unique<RandomSearchTuner>(
            space, opt, /*biased_walk=*/m == Method::kCotSampling);
      }
    }
    throw std::runtime_error("unhandled method");
}

TuningHistory
run_method(const Benchmark& b, Method m, int budget, std::uint64_t seed,
           const SpaceVariant& variant)
{
    std::shared_ptr<SearchSpace> space = b.make_space(variant);
    std::unique_ptr<AskTellTuner> tuner =
        make_ask_tell(*space, m, budget, b.doe_samples, seed);
    return drive_serial(*tuner, b.evaluate);
}

TuningHistory
run_method_batched(const Benchmark& b, Method m, int budget,
                   std::uint64_t seed, const EvalEngineOptions& exec,
                   const SpaceVariant& variant)
{
    std::shared_ptr<SearchSpace> space = b.make_space(variant);
    std::unique_ptr<AskTellTuner> tuner =
        make_ask_tell(*space, m, budget, b.doe_samples, seed);
    EvalEngineOptions eopt = exec;
    // A shared cache is namespaced by benchmark identity unless the
    // caller already pinned a namespace.
    if (eopt.cache && eopt.cache_namespace.empty())
        eopt.cache_namespace = EvalCache::namespace_key(b.name, *space);
    EvalEngine engine(eopt);
    return engine.run(*tuner, b.evaluate);
}

TuningHistory
run_method_async(const Benchmark& b, Method m, int budget,
                 std::uint64_t seed, const EvalEngineOptions& exec,
                 const SpaceVariant& variant)
{
    std::shared_ptr<SearchSpace> space = b.make_space(variant);
    std::unique_ptr<AskTellTuner> tuner =
        make_ask_tell(*space, m, budget, b.doe_samples, seed);
    EvalEngineOptions eopt = exec;
    eopt.async_mode = true;
    if (eopt.cache && eopt.cache_namespace.empty())
        eopt.cache_namespace = EvalCache::namespace_key(b.name, *space);
    EvalEngine engine(eopt);
    return engine.run_async(*tuner, b.evaluate);
}

TuningHistory
run_baco_custom(const Benchmark& b, TunerOptions opt,
                const SpaceVariant& variant)
{
    std::shared_ptr<SearchSpace> space = b.make_space(variant);
    Tuner tuner(*space, opt);
    return tuner.run(b.evaluate);
}

TuningHistory
run_method_distributed(const Benchmark& b, Method m, int budget,
                       std::uint64_t seed, const DistributedOptions& opt,
                       const SpaceVariant& variant)
{
    serve::CoordinatorOptions copt;
    copt.max_inflight_per_worker = opt.max_inflight_per_worker;
    copt.straggler_ms = opt.straggler_ms;
    serve::Coordinator coordinator(copt);

    // In-process loopback workers: same wire protocol, zero OS plumbing.
    std::vector<std::thread> worker_threads = serve::attach_loopback_workers(
        coordinator, std::max(1, opt.workers), opt.max_inflight_per_worker);

    std::shared_ptr<SearchSpace> space = b.make_space(variant);
    std::unique_ptr<AskTellTuner> tuner =
        make_ask_tell(*space, m, budget, b.doe_samples, seed);

    serve::BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = seed;
    spec.cache = opt.cache;
    if (opt.cache)
        spec.cache_namespace = EvalCache::namespace_key(b.name, *space);

    TuningHistory history;
    try {
        if (opt.async) {
            coordinator.drive_async(*tuner, spec, opt.batch_size, -1,
                                    opt.checkpoint_path);
        } else {
            coordinator.drive(*tuner, spec, opt.batch_size, -1,
                              opt.checkpoint_path);
        }
        history = tuner->take_history();
    } catch (...) {
        coordinator.shutdown();
        for (std::thread& t : worker_threads)
            t.join();
        throw;
    }
    coordinator.shutdown();
    for (std::thread& t : worker_threads)
        t.join();
    return history;
}

double
RepStats::mean_best_at(int evals) const
{
    double acc = 0.0;
    int n = 0;
    for (const auto& t : trajectories) {
        if (t.empty())
            continue;
        std::size_t at = std::min<std::size_t>(
            t.size() - 1, static_cast<std::size_t>(std::max(0, evals - 1)));
        acc += t[at];
        ++n;
    }
    return n > 0 ? acc / n : kInf;
}

double
RepStats::mean_rel_to_reference(double ref, int evals) const
{
    double acc = 0.0;
    int n = 0;
    for (const auto& t : trajectories) {
        if (t.empty())
            continue;
        std::size_t at = std::min<std::size_t>(
            t.size() - 1, static_cast<std::size_t>(std::max(0, evals - 1)));
        acc += std::isfinite(t[at]) ? ref / t[at] : 0.0;
        ++n;
    }
    return n > 0 ? acc / n : 0.0;
}

int
RepStats::count_reached(double ref) const
{
    int count = 0;
    for (const auto& t : trajectories)
        if (!t.empty() && t.back() <= ref)
            ++count;
    return count;
}

std::vector<double>
RepStats::mean_trajectory() const
{
    if (trajectories.empty())
        return {};
    std::size_t len = 0;
    for (const auto& t : trajectories)
        len = std::max(len, t.size());
    std::vector<double> mean(len, 0.0);
    std::vector<int> counts(len, 0);
    for (const auto& t : trajectories) {
        for (std::size_t i = 0; i < len; ++i) {
            double v = i < t.size() ? t[i] : t.back();
            if (std::isfinite(v)) {
                mean[i] += v;
                counts[i] += 1;
            }
        }
    }
    for (std::size_t i = 0; i < len; ++i)
        mean[i] = counts[i] > 0 ? mean[i] / counts[i] : kInf;
    return mean;
}

namespace {

RepStats
assemble_stats(std::vector<TuningHistory> histories)
{
    RepStats stats;
    for (TuningHistory& h : histories) {
        stats.trajectories.push_back(h.best_trajectory());
        stats.mean_tuner_seconds += h.tuner_seconds;
        stats.mean_eval_seconds += h.eval_seconds;
    }
    if (!histories.empty()) {
        stats.mean_tuner_seconds /= static_cast<double>(histories.size());
        stats.mean_eval_seconds /= static_cast<double>(histories.size());
    }
    return stats;
}

}  // namespace

RepStats
run_repetitions(const Benchmark& b, Method m, int budget, int reps,
                std::uint64_t seed0, const SpaceVariant& variant)
{
    std::vector<TuningHistory> histories;
    histories.reserve(static_cast<std::size_t>(std::max(0, reps)));
    for (int r = 0; r < reps; ++r) {
        histories.push_back(run_method(
            b, m, budget, seed0 + static_cast<std::uint64_t>(r), variant));
    }
    return assemble_stats(std::move(histories));
}

RepStats
run_repetitions_parallel(const Benchmark& b, Method m, int budget, int reps,
                         std::uint64_t seed0, int num_threads,
                         const SpaceVariant& variant)
{
    if (reps <= 0)
        return RepStats{};
    std::vector<TuningHistory> histories(static_cast<std::size_t>(reps));
    ThreadPool pool(num_threads);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        tasks.push_back([&, r] {
            histories[static_cast<std::size_t>(r)] = run_method(
                b, m, budget, seed0 + static_cast<std::uint64_t>(r), variant);
        });
    }
    pool.run(std::move(tasks));
    return assemble_stats(std::move(histories));
}

int
evals_to_reach(const std::vector<double>& trajectory, double target)
{
    for (std::size_t i = 0; i < trajectory.size(); ++i)
        if (trajectory[i] <= target)
            return static_cast<int>(i) + 1;
    return -1;
}

}  // namespace baco::suite
