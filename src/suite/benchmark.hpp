#ifndef BACO_SUITE_BENCHMARK_HPP_
#define BACO_SUITE_BENCHMARK_HPP_

/**
 * @file
 * The benchmark abstraction shared by the three compiler substrates: a
 * search-space factory, a black-box evaluator, reference configurations and
 * the evaluation budget from the paper's Table 3.
 */

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/evaluator.hpp"
#include "core/search_space.hpp"

namespace baco {

/**
 * Space construction variants used by the ablation studies (Fig. 8/9):
 * input log-transforms on/off and the permutation semimetric choice.
 */
struct SpaceVariant {
  bool log_transforms = true;
  PermutationMetric permutation_metric = PermutationMetric::kSpearman;
};

/** One autotuning benchmark instance (kernel x dataset/backend). */
struct Benchmark {
  std::string framework;  ///< "TACO", "RISE", or "HPVM2FPGA"
  std::string name;       ///< e.g. "SpMM/scircuit"

  int full_budget = 60;   ///< Table 3's Full Budget
  int doe_samples = 10;   ///< initial-phase size

  /** Build the search space (the same parameter order for all variants). */
  std::function<std::shared_ptr<SearchSpace>(const SpaceVariant&)> make_space;

  /** The compiler toolchain: evaluate one configuration (with noise). */
  BlackBoxFn evaluate;

  /** Noise-free objective, for expert references and landscape tests. */
  std::function<double(const Configuration&)> true_cost;

  /** Hidden-constraint check without evaluation, for tests. */
  std::function<bool(const Configuration&)> hidden_feasible;

  /** True when some configurations fail at evaluation time (Table 3's H). */
  bool has_hidden_constraints = false;

  std::optional<Configuration> expert;          ///< absent for HPVM2FPGA
  std::optional<Configuration> default_config;

  /**
   * Noise-free reference objective used for "performance relative to
   * expert": the expert's cost when an expert exists, otherwise the
   * virtual-best cost from an offline search (HPVM2FPGA, whose relative
   * performance the paper reports against the best-known design).
   */
  double reference_cost = 0.0;

  /** Budget tiers (Sec. 5.2): tiny = 1/3, small = 2/3 of full. */
  int tiny_budget() const { return std::max(1, full_budget / 3); }
  int small_budget() const { return std::max(1, 2 * full_budget / 3); }
};

}  // namespace baco

#endif  // BACO_SUITE_BENCHMARK_HPP_
