#include "hpvm/benchmarks.hpp"

#include <limits>
#include <stdexcept>

#include "hpvm/fpga_model.hpp"

namespace baco::hpvm {

namespace {

/** Per-benchmark space shape. */
struct Shape {
  int n_unroll;       ///< unrollable stages
  int max_exp;        ///< unroll exponents are 0..max_exp
  int n_fuse;         ///< fusion boolean count
  int n_priv;         ///< privatization boolean count
  int budget;         ///< Table 3's Full Budget
  int doe;
};

Shape
shape(const std::string& name)
{
    if (name == "BFS")
        return {2, 7, 1, 1, 20, 5};
    if (name == "Audio")
        return {3, 5, 2, 10, 60, 10};
    if (name == "PreEuler")
        return {3, 9, 2, 2, 60, 10};
    throw std::runtime_error("unknown HPVM benchmark '" + name + "'");
}

std::shared_ptr<SearchSpace>
build_space(const std::string& name, const SpaceVariant& v)
{
    Shape sh = shape(name);
    auto s = std::make_shared<SearchSpace>();
    (void)v;  // exponents are already log-domain; booleans have no scale
    for (int u = 0; u < sh.n_unroll; ++u)
        s->add_integer("unroll_exp" + std::to_string(u), 0, sh.max_exp);
    for (int f = 0; f < sh.n_fuse; ++f)
        s->add_categorical("fuse" + std::to_string(f), {"off", "on"});
    for (int p = 0; p < sh.n_priv; ++p)
        s->add_categorical("privatize" + std::to_string(p), {"off", "on"});
    return s;
}

EstimateResult
evaluate_config(const std::string& name, const Configuration& c)
{
    Shape sh = shape(name);
    std::vector<int> unroll;
    std::vector<bool> fuse, priv;
    std::size_t i = 0;
    for (int u = 0; u < sh.n_unroll; ++u)
        unroll.push_back(static_cast<int>(as_int(c[i++])));
    for (int f = 0; f < sh.n_fuse; ++f)
        fuse.push_back(as_int(c[i++]) == 1);
    for (int p = 0; p < sh.n_priv; ++p)
        priv.push_back(as_int(c[i++]) == 1);
    return estimate(design(name), unroll, fuse, priv);
}

Configuration
make_default(const std::string& name)
{
    Shape sh = shape(name);
    Configuration c;
    for (int u = 0; u < sh.n_unroll; ++u)
        c.push_back(std::int64_t{0});
    for (int f = 0; f < sh.n_fuse + sh.n_priv; ++f)
        c.push_back(std::int64_t{0});
    return c;
}

/**
 * Virtual best via offline random search (reference for Tables 6-8). The
 * paper reports HPVM2FPGA performance relative to the best design its own
 * tuning campaigns found, so the reference is a strong-but-reachable
 * search, not an oracle: 3000 samples (~50x the BFS budget).
 */
double
virtual_best(const std::string& name, const SearchSpace& space)
{
    RngEngine rng(0xF96AULL ^ std::hash<std::string>{}(name));
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 3000; ++i) {
        Configuration c = space.sample_unconstrained(rng);
        EstimateResult r = evaluate_config(name, c);
        if (r.feasible && r.ms < best)
            best = r.ms;
    }
    return best;
}

}  // namespace

Benchmark
make_hpvm_benchmark(const std::string& name)
{
    Shape sh = shape(name);
    Benchmark b;
    b.framework = "HPVM2FPGA";
    b.name = name;
    b.full_budget = sh.budget;
    b.doe_samples = sh.doe;
    b.make_space = [name](const SpaceVariant& v) {
        return build_space(name, v);
    };
    b.true_cost = [name](const Configuration& c) {
        return evaluate_config(name, c).ms;
    };
    b.hidden_feasible = [name](const Configuration& c) {
        return evaluate_config(name, c).feasible;
    };
    b.evaluate = [name](const Configuration& c, RngEngine& rng) -> EvalResult {
        EstimateResult r = evaluate_config(name, c);
        if (!r.feasible)
            return EvalResult::infeasible();
        // The DSE estimator is deterministic, but timing-model estimates
        // still vary slightly across compilations.
        return EvalResult{r.ms * rng.lognormal_factor(0.01), true};
    };
    b.has_hidden_constraints = true;  // resource/estimator failures
    b.default_config = make_default(name);
    b.expert = std::nullopt;  // the paper provides no HPVM2FPGA experts
    b.reference_cost = virtual_best(name, *build_space(name, SpaceVariant{}));
    return b;
}

std::vector<Benchmark>
hpvm_suite()
{
    std::vector<Benchmark> out;
    for (const char* n : {"BFS", "Audio", "PreEuler"})
        out.push_back(make_hpvm_benchmark(n));
    return out;
}

}  // namespace baco::hpvm
