#ifndef BACO_HPVM_BENCHMARKS_HPP_
#define BACO_HPVM_BENCHMARKS_HPP_

/**
 * @file
 * The HPVM2FPGA benchmark suite (paper Table 3, HPVM2FPGA rows): BFS and
 * PreEuler from Rodinia and the ILLIXR 3D spatial audio encoder, as
 * integer/categorical transformation-flag spaces with *hidden* constraints
 * only (no known constraints, matching Table 3).
 *
 * Parameter layout per benchmark: one unroll-exponent integer per pipeline
 * stage, then fusion booleans per stage boundary, then privatization
 * booleans. No expert configurations exist (the paper reports only the
 * default); the reference cost is the virtual best from an offline
 * exhaustive/sampled search.
 */

#include <vector>

#include "suite/benchmark.hpp"

namespace baco::hpvm {

/** One HPVM2FPGA benchmark: "BFS", "Audio", or "PreEuler". */
Benchmark make_hpvm_benchmark(const std::string& name);

/** All three instances. */
std::vector<Benchmark> hpvm_suite();

}  // namespace baco::hpvm

#endif  // BACO_HPVM_BENCHMARKS_HPP_
