#ifndef BACO_HPVM_FPGA_MODEL_HPP_
#define BACO_HPVM_FPGA_MODEL_HPP_

/**
 * @file
 * Analytic FPGA design-space estimator for the HPVM2FPGA benchmarks
 * (paper Sec. 2 and 5.2).
 *
 * HPVM2FPGA itself reports *estimated* execution times from its internal
 * model targeting an Intel Arria 10 GX, so an analytic estimator is the
 * faithful substrate here (DESIGN.md, substitution 3). Each benchmark is a
 * pipeline of stages; the transformation flags are loop unrolling
 * (exponent-valued integers), greedy stage fusion and argument
 * privatization (booleans). Hidden constraints arise from the device's
 * DSP/BRAM budgets and from estimator failures on specific flag
 * combinations — the spaces have *no* known constraints, matching Table 3.
 */

#include <string>
#include <vector>

#include "core/types.hpp"

namespace baco::hpvm {

/** Estimated time (ms) or an estimator/resource failure. */
struct EstimateResult {
  double ms = 0.0;
  bool feasible = true;
};

/** One accelerator pipeline stage. */
struct Stage {
  double base_cycles;   ///< latency at unroll 1
  double port_limit;    ///< max useful unroll (memory ports)
  double dsp_per_lane;  ///< DSP blocks consumed per unroll lane
  double bram_per_lane; ///< BRAM blocks per unroll lane
};

/** A benchmark's static description. */
struct FpgaDesign {
  std::string name;
  std::vector<Stage> stages;
  double clock_mhz = 200.0;
  /** Per-stage-boundary buffer cycles saved when fused. */
  double fusion_saving_cycles = 0.0;
  /** BRAM cost of fusing a boundary. */
  double fusion_bram = 0.0;
  /** Stall factor removed by privatizing arguments. */
  double privatization_gain = 0.0;
  double privatization_bram = 0.0;
};

/** Built-in designs: "BFS", "Audio", "PreEuler". */
const FpgaDesign& design(const std::string& name);

/**
 * Estimate a configuration of the design.
 *
 * @param unroll_exps  log2 unroll factor per unrollable stage
 * @param fuse         fusion toggle per stage boundary (may be shorter than
 *                     stages-1; missing entries default to off)
 * @param privatize    privatization toggle per privatizable argument
 */
EstimateResult estimate(const FpgaDesign& d,
                        const std::vector<int>& unroll_exps,
                        const std::vector<bool>& fuse,
                        const std::vector<bool>& privatize);

}  // namespace baco::hpvm

#endif  // BACO_HPVM_FPGA_MODEL_HPP_
