#include "hpvm/fpga_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace baco::hpvm {

namespace {

// Arria 10 GX 1150-class resource budgets.
const double kDspBudget = 1518.0;
const double kBramBudget = 2713.0;
const double kBaseDsp = 120.0;   // fixed infrastructure usage
const double kBaseBram = 260.0;

}  // namespace

const FpgaDesign&
design(const std::string& name)
{
    // Stage latencies loosely follow the relative scales visible in the
    // paper's Fig. 7 (BFS in single-digit ms, Audio in seconds, PreEuler
    // around 10 ms).
    static const std::vector<FpgaDesign> kDesigns = {
        {
            "BFS",
            {
                {4.0e5, 8.0, 12.0, 24.0},   // frontier expansion
                {2.5e5, 4.0, 8.0, 16.0},    // visited update
            },
            200.0,
            6.0e4, 180.0,   // fusion saving / BRAM
            0.25, 140.0,    // privatization gain / BRAM
        },
        {
            "Audio",
            {
                {6.0e5, 16.0, 40.0, 60.0},  // FIR bank
                {4.5e5, 8.0, 30.0, 45.0},   // HRTF convolution
                {3.0e5, 8.0, 26.0, 40.0},   // ambisonic rotation
            },
            240.0,
            9.0e4, 220.0,
            0.30, 90.0,
        },
        {
            "PreEuler",
            {
                {9.0e5, 8.0, 30.0, 40.0},   // flux gather
                {7.0e5, 8.0, 26.0, 36.0},   // euler update
                {3.5e5, 4.0, 14.0, 22.0},   // boundary fix-up
            },
            220.0,
            7.0e4, 200.0,
            0.20, 150.0,
        },
    };
    for (const FpgaDesign& d : kDesigns)
        if (d.name == name)
            return d;
    throw std::runtime_error("unknown FPGA design '" + name + "'");
}

EstimateResult
estimate(const FpgaDesign& d, const std::vector<int>& unroll_exps,
         const std::vector<bool>& fuse, const std::vector<bool>& privatize)
{
    double dsp = kBaseDsp;
    double bram = kBaseBram;
    double cycles = 0.0;

    for (std::size_t s = 0; s < d.stages.size(); ++s) {
        const Stage& st = d.stages[s];
        int e = s < unroll_exps.size() ? unroll_exps[s] : 0;
        double lanes = std::pow(2.0, e);

        // Estimator failure: extreme unrolling of a fused stage makes the
        // scheduling pass fail (a hidden, combination-dependent constraint).
        // The failure boundary sits well past the useful unroll range, so —
        // as in the real tool — infeasible designs cluster away from the
        // optimum rather than ringing it.
        bool fused_here = (s < fuse.size() && fuse[s]) ||
                          (s > 0 && s - 1 < fuse.size() && fuse[s - 1]);
        if (fused_here && lanes > 4.0 * st.port_limit)
            return EstimateResult{0.0, false};

        double speedup = std::min(lanes, st.port_limit);
        // Past the port limit extra lanes only add area and mux latency.
        double mux_penalty = lanes > st.port_limit
                                 ? 1.0 + 0.05 * std::log2(lanes / st.port_limit)
                                 : 1.0;
        cycles += st.base_cycles / speedup * mux_penalty +
                  30.0 * lanes;  // per-lane setup/drain
        dsp += st.dsp_per_lane * lanes;
        bram += st.bram_per_lane * lanes;
    }

    // Stage boundaries: an unfused boundary pays inter-stage buffering
    // cycles; fusing removes them at a BRAM cost. (Additive formulation so
    // heavily unrolled pipelines can never go negative.)
    for (std::size_t f = 0; f + 1 < d.stages.size(); ++f) {
        bool on = f < fuse.size() && fuse[f];
        if (on)
            bram += d.fusion_bram;
        else
            cycles += d.fusion_saving_cycles;
    }

    // Privatization removes contention stalls at BRAM cost; its gain is
    // multiplicative over the remaining cycles.
    double stall = 1.0 + d.privatization_gain;
    for (std::size_t p = 0; p < privatize.size(); ++p) {
        if (privatize[p]) {
            stall -= d.privatization_gain / static_cast<double>(
                                                std::max<std::size_t>(
                                                    1, privatize.size()));
            bram += d.privatization_bram;
        }
    }
    cycles *= std::max(1.0, stall);

    // Hidden resource constraints: the design simply fails to fit.
    if (dsp > kDspBudget || bram > kBramBudget)
        return EstimateResult{0.0, false};

    double ms = cycles / (d.clock_mhz * 1e3);
    return EstimateResult{std::max(ms, 1e-3), true};
}

}  // namespace baco::hpvm
