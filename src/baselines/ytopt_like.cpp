#include "baselines/ytopt_like.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "core/acquisition.hpp"
#include "core/chain_of_trees.hpp"
#include "core/tuner_metrics.hpp"
#include "obs/trace.hpp"
#include "gp/gp_model.hpp"
#include "rf/random_forest.hpp"

namespace baco {

namespace {
using Clock = std::chrono::steady_clock;
}

struct YtoptLike::State {
  RngEngine rng;
  std::unique_ptr<ChainOfTrees> cot;
  std::unordered_set<std::size_t> seen;
  RandomForest forest;
  GpModel gp;

  State(const SearchSpace& space, const Options& opt)
      : rng(opt.seed),
        forest([] {
            ForestOptions o;
            o.task = TreeTask::kRegression;
            o.num_trees = 40;
            return o;
        }()),
        gp(space, [] {
            GpOptions o;
            o.use_priors = false;  // plain GP, no BaCO customizations
            o.advanced_fit = false;
            return o;
        }())
  {
      // The RF mode supports known constraints (like Ytopt's ConfigSpace
      // path); the GP mode does not (matching the real tool) and samples
      // the dense space.
      bool use_gp = opt.surrogate == Surrogate::kGaussianProcess;
      if (!use_gp && space.has_constraints() && space.is_fully_discrete()) {
          try {
              cot = std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
          } catch (const std::runtime_error&) {
              cot.reset();
          }
      }
  }
};

YtoptLike::YtoptLike(const SearchSpace& space, Options opt)
    : AskTellBase(opt.budget, opt.seed), space_(&space), opt_(opt)
{
}

YtoptLike::~YtoptLike() = default;

YtoptLike::State&
YtoptLike::state()
{
    if (!state_)
        state_ = std::make_unique<State>(*space_, opt_);
    return *state_;
}

std::vector<Configuration>
YtoptLike::suggest(int n)
{
    auto start = Clock::now();
    const SearchSpace& space = *space_;
    State& st = state();
    n = std::min(n, remaining());
    std::vector<Configuration> out;
    if (n <= 0)
        return out;
    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer suggest_timer(tm.suggest, "tuner.suggest", "tuner");
    tm.suggestions.add(static_cast<std::uint64_t>(n));
    out.reserve(static_cast<std::size_t>(n));

    bool use_gp = opt_.surrogate == Surrogate::kGaussianProcess;

    auto sample_candidate = [&]() -> Configuration {
        if (use_gp)
            return space.sample_unconstrained(st.rng);
        if (st.cot)
            return st.cot->sample(st.rng, /*uniform_leaves=*/true);
        auto s = space.sample_feasible(st.rng, 2000);
        return s ? std::move(*s) : space.sample_unconstrained(st.rng);
    };

    // ---- DoE phase: plain sampling, deduplicated best-effort. ----
    const int doe_target = std::min(opt_.doe_samples, opt_.budget);
    while (static_cast<int>(out.size()) < n &&
           history_.size() + out.size() <
               static_cast<std::size_t>(doe_target)) {
        Configuration c = sample_candidate();
        for (int tries = 0;
             tries < 100 && st.seen.count(config_hash(c)); ++tries)
            c = sample_candidate();
        st.seen.insert(config_hash(c));
        out.push_back(std::move(c));
    }

    while (static_cast<int>(out.size()) < n) {
        // Training set: all observations; infeasible ones get a penalty.
        double worst = 0.0;
        bool any_feasible = false;
        for (const Observation& o : history_.observations) {
            if (o.feasible) {
                worst = std::max(worst, o.value);
                any_feasible = true;
            }
        }
        double penalty = any_feasible ? worst * opt_.penalty_factor : 1.0;

        std::vector<Configuration> xs;
        std::vector<double> ys;
        for (const Observation& o : history_.observations) {
            xs.push_back(o.config);
            ys.push_back(o.feasible ? o.value : penalty);
        }
        if (xs.size() < 2) {
            Configuration c = sample_candidate();
            st.seen.insert(config_hash(c));
            out.push_back(std::move(c));
            continue;
        }

        if (use_gp) {
            st.gp.fit(xs, ys, st.rng);
        } else {
            std::vector<std::vector<double>> enc;
            enc.reserve(xs.size());
            for (const Configuration& c : xs)
                enc.push_back(space.encode(c));
            st.forest.fit(enc, ys, st.rng);
        }

        double best = *std::min_element(ys.begin(), ys.end());

        // Acquisition over one random candidate pool (skopt-style): the
        // remaining batch slots take the top-k distinct candidates.
        int want = n - static_cast<int>(out.size());
        std::vector<std::pair<double, Configuration>> scored;
        for (int i = 0; i < opt_.pool_size; ++i) {
            Configuration c = sample_candidate();
            if (st.seen.count(config_hash(c)))
                continue;
            double mean, var;
            if (use_gp) {
                GpPrediction p = st.gp.predict(c);
                mean = p.mean;
                var = p.var;
            } else {
                ForestPrediction p =
                    st.forest.predict_with_variance(space.encode(c));
                mean = p.mean;
                var = p.var;
            }
            scored.emplace_back(expected_improvement(mean, var, best),
                                std::move(c));
        }
        std::stable_sort(scored.begin(), scored.end(),
                         [](const auto& a, const auto& b) {
                             return a.first > b.first;
                         });
        std::unordered_set<std::size_t> batch_dedup;
        for (auto& [s, c] : scored) {
            if (static_cast<int>(out.size()) >= n || want <= 0)
                break;
            std::size_t h = config_hash(c);
            if (batch_dedup.count(h))
                continue;
            batch_dedup.insert(h);
            st.seen.insert(h);
            out.push_back(std::move(c));
            --want;
        }
        while (want > 0 && static_cast<int>(out.size()) < n) {
            Configuration c = sample_candidate();
            st.seen.insert(config_hash(c));
            out.push_back(std::move(c));
            --want;
        }
    }
    history_.tuner_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
    return out;
}

void
YtoptLike::observe(const std::vector<Configuration>& configs,
                   const std::vector<EvalResult>& results)
{
    auto start = Clock::now();
    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer timer(tm.observe, "tuner.observe", "tuner");
    State& st = state();
    for (std::size_t i = 0; i < configs.size() && i < results.size(); ++i) {
        st.seen.insert(config_hash(configs[i]));
        history_.add(configs[i], results[i]);
        tm.observations.add();
    }
    history_.tuner_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
}

void
YtoptLike::reset_sampler()
{
    state_.reset();
}

std::string
YtoptLike::sampler_state() const
{
    return rng_state_string(state_ ? &state_->rng : nullptr);
}

bool
YtoptLike::restore(const TuningHistory& history,
                   const std::string& sampler_state)
{
    state_.reset();
    history_ = history;
    State& st = state();
    for (const Observation& o : history_.observations)
        st.seen.insert(config_hash(o.config));
    if (!restore_rng(st.rng, sampler_state)) {
        state_.reset();
        history_ = TuningHistory{};
        return false;
    }
    return true;
}

TuningHistory
YtoptLike::run(const BlackBoxFn& objective)
{
    state_.reset();
    history_ = TuningHistory{};
    return drive_serial(*this, objective);
}

}  // namespace baco
