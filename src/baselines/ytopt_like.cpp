#include "baselines/ytopt_like.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_set>

#include "core/acquisition.hpp"
#include "core/chain_of_trees.hpp"
#include "core/doe.hpp"
#include "gp/gp_model.hpp"
#include "rf/random_forest.hpp"

namespace baco {

namespace {
using Clock = std::chrono::steady_clock;
}

YtoptLike::YtoptLike(const SearchSpace& space, Options opt)
    : space_(&space), opt_(opt)
{
}

TuningHistory
YtoptLike::run(const BlackBoxFn& objective)
{
    const SearchSpace& space = *space_;
    RngEngine rng(opt_.seed);
    RngEngine eval_rng = rng.split();
    TuningHistory history;
    auto t0 = Clock::now();

    bool use_gp = opt_.surrogate == Surrogate::kGaussianProcess;

    // The RF mode supports known constraints (like Ytopt's ConfigSpace
    // path); the GP mode does not (matching the real tool) and samples the
    // dense space.
    std::unique_ptr<ChainOfTrees> cot;
    if (!use_gp && space.has_constraints() && space.is_fully_discrete()) {
        try {
            cot = std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
        } catch (const std::runtime_error&) {
            cot.reset();
        }
    }

    std::unordered_set<std::size_t> seen;
    auto evaluate = [&](Configuration c) {
        seen.insert(config_hash(c));
        auto te = Clock::now();
        EvalResult r = objective(c, eval_rng);
        history.eval_seconds +=
            std::chrono::duration<double>(Clock::now() - te).count();
        history.add(std::move(c), r);
    };

    auto sample_candidate = [&]() -> Configuration {
        if (use_gp)
            return space.sample_unconstrained(rng);
        if (cot)
            return cot->sample(rng, /*uniform_leaves=*/true);
        auto s = space.sample_feasible(rng, 2000);
        return s ? std::move(*s) : space.sample_unconstrained(rng);
    };

    // ---- DoE. ----
    int doe_n = std::min(opt_.doe_samples, opt_.budget);
    if (use_gp) {
        for (int i = 0; i < doe_n; ++i)
            evaluate(space.sample_unconstrained(rng));
    } else {
        for (Configuration& c :
             doe_random_sample(space, cot.get(), doe_n, rng, true))
            evaluate(std::move(c));
    }

    RandomForest forest([] {
        ForestOptions o;
        o.task = TreeTask::kRegression;
        o.num_trees = 40;
        return o;
    }());
    GpOptions gp_opt;
    gp_opt.use_priors = false;     // plain GP, no BaCO customizations
    gp_opt.advanced_fit = false;
    GpModel gp(space, gp_opt);

    while (static_cast<int>(history.size()) < opt_.budget) {
        // Training set: all observations; infeasible ones get a penalty.
        double worst = 0.0;
        bool any_feasible = false;
        for (const Observation& o : history.observations) {
            if (o.feasible) {
                worst = std::max(worst, o.value);
                any_feasible = true;
            }
        }
        double penalty = any_feasible ? worst * opt_.penalty_factor : 1.0;

        std::vector<Configuration> xs;
        std::vector<double> ys;
        for (const Observation& o : history.observations) {
            xs.push_back(o.config);
            ys.push_back(o.feasible ? o.value : penalty);
        }
        if (xs.size() < 2) {
            evaluate(sample_candidate());
            continue;
        }

        std::vector<std::vector<double>> enc;
        if (use_gp) {
            gp.fit(xs, ys, rng);
        } else {
            enc.reserve(xs.size());
            for (const Configuration& c : xs)
                enc.push_back(space.encode(c));
            forest.fit(enc, ys, rng);
        }

        double best = *std::min_element(ys.begin(), ys.end());

        // Acquisition over a random candidate pool (skopt-style).
        Configuration best_cand;
        double best_score = -std::numeric_limits<double>::infinity();
        for (int i = 0; i < opt_.pool_size; ++i) {
            Configuration c = sample_candidate();
            if (seen.count(config_hash(c)))
                continue;
            double mean, var;
            if (use_gp) {
                GpPrediction p = gp.predict(c);
                mean = p.mean;
                var = p.var;
            } else {
                ForestPrediction p =
                    forest.predict_with_variance(space.encode(c));
                mean = p.mean;
                var = p.var;
            }
            double score = expected_improvement(mean, var, best);
            if (score > best_score) {
                best_score = score;
                best_cand = std::move(c);
            }
        }
        if (best_cand.empty())
            best_cand = sample_candidate();
        evaluate(std::move(best_cand));
    }

    history.tuner_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count() -
        history.eval_seconds;
    return history;
}

}  // namespace baco
