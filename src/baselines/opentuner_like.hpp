#ifndef BACO_BASELINES_OPENTUNER_LIKE_HPP_
#define BACO_BASELINES_OPENTUNER_LIKE_HPP_

/**
 * @file
 * "ATF with OpenTuner" baseline (paper Sec. 5.1): a C++ re-implementation
 * of OpenTuner's ensemble search (Ansel et al., PACT 2014) extended with
 * ATF's known-constraint handling (Rasch et al., TACO 2021).
 *
 * OpenTuner runs a pool of search techniques — greedy mutation at two
 * scales, a differential-evolution style recombiner, pattern-style hill
 * climbing and pure random sampling — and allocates trials among them with
 * an AUC-credit multi-armed bandit. ATF contributes the Chain-of-Trees so
 * every proposal respects the known constraints.
 *
 * Hidden-constraint failures are handled the OpenTuner way: the
 * configuration is kept in the history with an effectively infinite
 * objective (no feasibility model — this is exactly the behaviour BaCO
 * improves on).
 */

#include "core/evaluator.hpp"
#include "core/search_space.hpp"

namespace baco {

/** OpenTuner-like ensemble search. */
class OpenTunerLike {
 public:
  struct Options {
    int budget = 60;
    int initial_random = 10;  ///< seed population size
    std::uint64_t seed = 0;
    int elite_size = 5;       ///< parents are drawn from the best k
    double bandit_c = 0.05;   ///< AUC bandit exploration constant
    int bandit_window = 50;   ///< sliding credit window
  };

  OpenTunerLike(const SearchSpace& space, Options opt);

  /** Run the ensemble search loop. */
  TuningHistory run(const BlackBoxFn& objective);

 private:
  const SearchSpace* space_;
  Options opt_;
};

}  // namespace baco

#endif  // BACO_BASELINES_OPENTUNER_LIKE_HPP_
