#ifndef BACO_BASELINES_OPENTUNER_LIKE_HPP_
#define BACO_BASELINES_OPENTUNER_LIKE_HPP_

/**
 * @file
 * "ATF with OpenTuner" baseline (paper Sec. 5.1): a C++ re-implementation
 * of OpenTuner's ensemble search (Ansel et al., PACT 2014) extended with
 * ATF's known-constraint handling (Rasch et al., TACO 2021).
 *
 * OpenTuner runs a pool of search techniques — greedy mutation at two
 * scales, a differential-evolution style recombiner, pattern-style hill
 * climbing and pure random sampling — and allocates trials among them with
 * an AUC-credit multi-armed bandit. ATF contributes the Chain-of-Trees so
 * every proposal respects the known constraints.
 *
 * Hidden-constraint failures are handled the OpenTuner way: the
 * configuration is kept in the history with an effectively infinite
 * objective (no feasibility model — this is exactly the behaviour BaCO
 * improves on).
 *
 * The search is exposed through the ask-tell interface: suggest() picks a
 * technique per batch member, observe() settles the bandit credit when the
 * results come back.
 */

#include <memory>

#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "exec/ask_tell.hpp"

namespace baco {

/** OpenTuner-like ensemble search. */
class OpenTunerLike : public AskTellBase {
 public:
  struct Options {
    int budget = 60;
    int initial_random = 10;  ///< seed population size
    std::uint64_t seed = 0;
    int elite_size = 5;       ///< parents are drawn from the best k
    double bandit_c = 0.05;   ///< AUC bandit exploration constant
    int bandit_window = 50;   ///< sliding credit window
  };

  OpenTunerLike(const SearchSpace& space, Options opt);
  ~OpenTunerLike() override;

  /** Run the ensemble search loop (serial ask-tell driver). */
  TuningHistory run(const BlackBoxFn& objective);

  // --- Ask-tell interface. ---
  std::vector<Configuration> suggest(int n) override;
  void observe(const std::vector<Configuration>& configs,
               const std::vector<EvalResult>& results) override;
  std::string sampler_state() const override;
  bool restore(const TuningHistory& history,
               const std::string& sampler_state) override;

 protected:
  void reset_sampler() override;

 private:
  struct State;
  State& state();

  const SearchSpace* space_;
  Options opt_;
  std::unique_ptr<State> state_;
};

}  // namespace baco

#endif  // BACO_BASELINES_OPENTUNER_LIKE_HPP_
