#ifndef BACO_BASELINES_RANDOM_SEARCH_HPP_
#define BACO_BASELINES_RANDOM_SEARCH_HPP_

/**
 * @file
 * The two random-sampling baselines (paper Sec. 5.1).
 *
 * - Uniform sampling: uniform over the *feasible* region (rejection
 *   sampling, falling back to leaf-uniform CoT sampling — the same
 *   distribution — when rejection keeps failing in sparse spaces).
 * - CoT sampling: ATF's biased root-to-leaf random walk over the
 *   Chain-of-Trees, used to study the bias discussed in Sec. 4.2.
 *
 * Both are exposed through the ask-tell interface (RandomSearchTuner), so
 * the batched EvalEngine can drive them; the run_* free functions keep the
 * original one-call API.
 */

#include <memory>

#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "exec/ask_tell.hpp"

namespace baco {

class ChainOfTrees;

/** Shared options for the sampling baselines. */
struct RandomSearchOptions {
  int budget = 60;
  std::uint64_t seed = 0;
};

/** Ask-tell random sampler (uniform or biased CoT walk). */
class RandomSearchTuner : public AskTellBase {
 public:
  /** @param biased_walk true = ATF's biased CoT walk, false = uniform. */
  RandomSearchTuner(const SearchSpace& space, RandomSearchOptions opt,
                    bool biased_walk);
  ~RandomSearchTuner() override;

  std::vector<Configuration> suggest(int n) override;
  void observe(const std::vector<Configuration>& configs,
               const std::vector<EvalResult>& results) override;
  std::string sampler_state() const override;
  bool restore(const TuningHistory& history,
               const std::string& sampler_state) override;

 protected:
  void reset_sampler() override;

 private:
  struct State;
  State& state();

  const SearchSpace* space_;
  RandomSearchOptions opt_;
  bool biased_walk_;
  std::unique_ptr<State> state_;
};

/** Uniform (bias-free) sampling over the feasible region. */
TuningHistory run_uniform_sampling(const SearchSpace& space,
                                   const BlackBoxFn& objective,
                                   const RandomSearchOptions& opt);

/** Biased CoT root-to-leaf walk sampling. Falls back to rejection sampling
 *  when the space has no (tree-compatible) known constraints. */
TuningHistory run_cot_sampling(const SearchSpace& space,
                               const BlackBoxFn& objective,
                               const RandomSearchOptions& opt);

}  // namespace baco

#endif  // BACO_BASELINES_RANDOM_SEARCH_HPP_
