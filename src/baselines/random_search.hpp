#ifndef BACO_BASELINES_RANDOM_SEARCH_HPP_
#define BACO_BASELINES_RANDOM_SEARCH_HPP_

/**
 * @file
 * The two random-sampling baselines (paper Sec. 5.1).
 *
 * - Uniform sampling: uniform over the *feasible* region (rejection
 *   sampling, falling back to leaf-uniform CoT sampling — the same
 *   distribution — when rejection keeps failing in sparse spaces).
 * - CoT sampling: ATF's biased root-to-leaf random walk over the
 *   Chain-of-Trees, used to study the bias discussed in Sec. 4.2.
 */

#include "core/evaluator.hpp"
#include "core/search_space.hpp"

namespace baco {

/** Shared options for the sampling baselines. */
struct RandomSearchOptions {
  int budget = 60;
  std::uint64_t seed = 0;
};

/** Uniform (bias-free) sampling over the feasible region. */
TuningHistory run_uniform_sampling(const SearchSpace& space,
                                   const BlackBoxFn& objective,
                                   const RandomSearchOptions& opt);

/** Biased CoT root-to-leaf walk sampling. Falls back to rejection sampling
 *  when the space has no (tree-compatible) known constraints. */
TuningHistory run_cot_sampling(const SearchSpace& space,
                               const BlackBoxFn& objective,
                               const RandomSearchOptions& opt);

}  // namespace baco

#endif  // BACO_BASELINES_RANDOM_SEARCH_HPP_
