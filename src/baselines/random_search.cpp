#include "baselines/random_search.hpp"

#include <chrono>
#include <memory>

#include "core/chain_of_trees.hpp"

namespace baco {

namespace {

using Clock = std::chrono::steady_clock;

std::unique_ptr<ChainOfTrees>
try_build_cot(const SearchSpace& space)
{
    if (!space.has_constraints() || !space.is_fully_discrete())
        return nullptr;
    try {
        return std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
    } catch (const std::runtime_error&) {
        return nullptr;
    }
}

TuningHistory
run_sampling(const SearchSpace& space, const BlackBoxFn& objective,
             const RandomSearchOptions& opt, bool biased_walk)
{
    RngEngine rng(opt.seed);
    RngEngine eval_rng = rng.split();
    TuningHistory history;
    auto t0 = Clock::now();

    std::unique_ptr<ChainOfTrees> cot = try_build_cot(space);

    for (int i = 0; i < opt.budget; ++i) {
        Configuration c;
        if (biased_walk && cot) {
            c = cot->sample(rng, /*uniform_leaves=*/false);
        } else if (cot) {
            // Leaf-uniform CoT sampling is exactly uniform over the
            // feasible region, so use it directly instead of rejection.
            c = cot->sample(rng, /*uniform_leaves=*/true);
        } else {
            auto s = space.sample_feasible(rng, 5000);
            c = s ? std::move(*s) : space.sample_unconstrained(rng);
        }
        auto te = Clock::now();
        EvalResult r = objective(c, eval_rng);
        history.eval_seconds +=
            std::chrono::duration<double>(Clock::now() - te).count();
        history.add(std::move(c), r);
    }

    history.tuner_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count() -
        history.eval_seconds;
    return history;
}

}  // namespace

TuningHistory
run_uniform_sampling(const SearchSpace& space, const BlackBoxFn& objective,
                     const RandomSearchOptions& opt)
{
    return run_sampling(space, objective, opt, /*biased_walk=*/false);
}

TuningHistory
run_cot_sampling(const SearchSpace& space, const BlackBoxFn& objective,
                 const RandomSearchOptions& opt)
{
    return run_sampling(space, objective, opt, /*biased_walk=*/true);
}

}  // namespace baco
