#include "baselines/random_search.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "core/chain_of_trees.hpp"
#include "core/tuner_metrics.hpp"
#include "obs/trace.hpp"

namespace baco {

namespace {

using Clock = std::chrono::steady_clock;

std::unique_ptr<ChainOfTrees>
try_build_cot(const SearchSpace& space)
{
    if (!space.has_constraints() || !space.is_fully_discrete())
        return nullptr;
    try {
        return std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
    } catch (const std::runtime_error&) {
        return nullptr;
    }
}

}  // namespace

struct RandomSearchTuner::State {
  RngEngine rng;
  std::unique_ptr<ChainOfTrees> cot;

  State(const SearchSpace& space, std::uint64_t seed)
      : rng(seed), cot(try_build_cot(space))
  {
  }
};

RandomSearchTuner::RandomSearchTuner(const SearchSpace& space,
                                     RandomSearchOptions opt,
                                     bool biased_walk)
    : AskTellBase(opt.budget, opt.seed),
      space_(&space),
      opt_(opt),
      biased_walk_(biased_walk)
{
}

RandomSearchTuner::~RandomSearchTuner() = default;

RandomSearchTuner::State&
RandomSearchTuner::state()
{
    if (!state_)
        state_ = std::make_unique<State>(*space_, opt_.seed);
    return *state_;
}

std::vector<Configuration>
RandomSearchTuner::suggest(int n)
{
    auto t0 = Clock::now();
    State& st = state();
    n = std::min(n, remaining());
    std::vector<Configuration> out;
    if (n <= 0)
        return out;
    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer suggest_timer(tm.suggest, "tuner.suggest", "tuner");
    tm.suggestions.add(static_cast<std::uint64_t>(n));
    out.reserve(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
        if (biased_walk_ && st.cot) {
            out.push_back(st.cot->sample(st.rng, /*uniform_leaves=*/false));
        } else if (st.cot) {
            // Leaf-uniform CoT sampling is exactly uniform over the
            // feasible region, so use it directly instead of rejection.
            out.push_back(st.cot->sample(st.rng, /*uniform_leaves=*/true));
        } else {
            auto s = space_->sample_feasible(st.rng, 5000);
            out.push_back(s ? std::move(*s)
                            : space_->sample_unconstrained(st.rng));
        }
    }
    history_.tuner_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

void
RandomSearchTuner::observe(const std::vector<Configuration>& configs,
                           const std::vector<EvalResult>& results)
{
    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer timer(tm.observe, "tuner.observe", "tuner");
    for (std::size_t i = 0; i < configs.size() && i < results.size(); ++i) {
        history_.add(configs[i], results[i]);
        tm.observations.add();
    }
}

void
RandomSearchTuner::reset_sampler()
{
    state_.reset();
}

std::string
RandomSearchTuner::sampler_state() const
{
    return rng_state_string(state_ ? &state_->rng : nullptr);
}

bool
RandomSearchTuner::restore(const TuningHistory& history,
                           const std::string& sampler_state)
{
    state_.reset();
    history_ = history;
    if (!restore_rng(state().rng, sampler_state)) {
        state_.reset();
        history_ = TuningHistory{};
        return false;
    }
    return true;
}

TuningHistory
run_uniform_sampling(const SearchSpace& space, const BlackBoxFn& objective,
                     const RandomSearchOptions& opt)
{
    RandomSearchTuner tuner(space, opt, /*biased_walk=*/false);
    return drive_serial(tuner, objective);
}

TuningHistory
run_cot_sampling(const SearchSpace& space, const BlackBoxFn& objective,
                 const RandomSearchOptions& opt)
{
    RandomSearchTuner tuner(space, opt, /*biased_walk=*/true);
    return drive_serial(tuner, objective);
}

}  // namespace baco
