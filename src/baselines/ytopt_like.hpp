#ifndef BACO_BASELINES_YTOPT_LIKE_HPP_
#define BACO_BASELINES_YTOPT_LIKE_HPP_

/**
 * @file
 * Ytopt-like baseline (paper Sec. 5.1): skopt-style Bayesian optimization
 * with a random-forest surrogate (Wu et al. 2021).
 *
 * Differences from BaCO that this baseline deliberately keeps:
 *  - infeasible (hidden-constraint) evaluations are *not* modelled
 *    separately; they are added to the training set with a large penalty
 *    objective value;
 *  - the acquisition function is optimized by scoring a random candidate
 *    pool (no local search);
 *  - no output/input log transforms, priors, or permutation structure.
 *
 * A GP-surrogate variant exists for the Fig. 8 comparison ("Ytopt (GP)"):
 * a plain GP without BaCO's customizations. Like the real Ytopt GP mode, it
 * does not support known constraints, so it samples candidates from the
 * dense space (the Fig. 8 benchmark uses a manually pruned space, matching
 * the paper's setup).
 *
 * Exposed through the ask-tell interface; suggest(n > 1) returns the top-n
 * distinct pool candidates by acquisition value.
 */

#include <memory>

#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "exec/ask_tell.hpp"

namespace baco {

/** Ytopt-like BO baseline. */
class YtoptLike : public AskTellBase {
 public:
  enum class Surrogate { kRandomForest, kGaussianProcess };

  struct Options {
    int budget = 60;
    int doe_samples = 10;
    std::uint64_t seed = 0;
    Surrogate surrogate = Surrogate::kRandomForest;
    /** Penalty multiple of the worst feasible value for failed configs. */
    double penalty_factor = 10.0;
    /** Acquisition candidate pool size. */
    int pool_size = 800;
  };

  YtoptLike(const SearchSpace& space, Options opt);
  ~YtoptLike() override;

  TuningHistory run(const BlackBoxFn& objective);

  // --- Ask-tell interface. ---
  std::vector<Configuration> suggest(int n) override;
  void observe(const std::vector<Configuration>& configs,
               const std::vector<EvalResult>& results) override;
  std::string sampler_state() const override;
  bool restore(const TuningHistory& history,
               const std::string& sampler_state) override;

 protected:
  void reset_sampler() override;

 private:
  struct State;
  State& state();

  const SearchSpace* space_;
  Options opt_;
  std::unique_ptr<State> state_;
};

}  // namespace baco

#endif  // BACO_BASELINES_YTOPT_LIKE_HPP_
