#include "baselines/opentuner_like.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_set>

#include "core/chain_of_trees.hpp"

namespace baco {

namespace {

using Clock = std::chrono::steady_clock;

/** The ensemble's sub-techniques. */
enum class Technique : int {
  kMutateUniform = 0,   ///< re-randomize 1-2 parameters of an elite parent
  kMutateLocal,         ///< step elite parent to a neighbouring value
  kDifferentialEvo,     ///< recombine elite with two random members
  kHillClimb,           ///< neighbour of the incumbent best
  kRandom,              ///< global uniform sample
  kCount,
};

/** Per-evaluation record ranked by (feasible, value). */
struct Member {
  Configuration config;
  double value = std::numeric_limits<double>::infinity();  // inf = infeasible
};

}  // namespace

OpenTunerLike::OpenTunerLike(const SearchSpace& space, Options opt)
    : space_(&space), opt_(opt)
{
}

TuningHistory
OpenTunerLike::run(const BlackBoxFn& objective)
{
    const SearchSpace& space = *space_;
    RngEngine rng(opt_.seed);
    RngEngine eval_rng = rng.split();
    TuningHistory history;
    auto t0 = Clock::now();

    std::unique_ptr<ChainOfTrees> cot;
    if (space.has_constraints() && space.is_fully_discrete()) {
        try {
            cot = std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
        } catch (const std::runtime_error&) {
            cot.reset();
        }
    }

    auto feasible_known = [&](const Configuration& c) {
        return cot ? cot->contains(c) : space.satisfies(c);
    };

    auto random_config = [&]() -> Configuration {
        if (cot)
            return cot->sample(rng, /*uniform_leaves=*/false);
        auto s = space.sample_feasible(rng, 2000);
        return s ? std::move(*s) : space.sample_unconstrained(rng);
    };

    /**
     * Repair a mutated configuration: when the known constraints broke,
     * resample the CoT trees containing the touched parameters (ATF keeps
     * proposals inside the constrained space).
     */
    auto repair = [&](Configuration& c,
                      const std::vector<std::size_t>& touched) -> bool {
        if (feasible_known(c))
            return true;
        if (!cot)
            return false;
        for (std::size_t p : touched) {
            std::size_t t = cot->tree_of(p);
            if (t != ChainOfTrees::kNoTree)
                cot->resample_tree(t, c, rng, /*uniform_leaves=*/false);
        }
        return feasible_known(c);
    };

    std::vector<Member> population;
    std::unordered_set<std::size_t> seen;

    auto evaluate = [&](Configuration c) {
        seen.insert(config_hash(c));
        auto te = Clock::now();
        EvalResult r = objective(c, eval_rng);
        history.eval_seconds +=
            std::chrono::duration<double>(Clock::now() - te).count();
        Member m;
        m.config = c;
        if (r.feasible)
            m.value = r.value;
        population.push_back(m);
        history.add(std::move(c), r);
    };

    // Elite access: indices of the best configurations.
    auto elites = [&]() {
        std::vector<std::size_t> idx(population.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::size_t k = std::min<std::size_t>(
            static_cast<std::size_t>(opt_.elite_size), idx.size());
        std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                          idx.end(), [&](std::size_t a, std::size_t b) {
                              return population[a].value < population[b].value;
                          });
        idx.resize(k);
        return idx;
    };

    // ---- Seed population. ----
    for (int i = 0; i < std::min(opt_.initial_random, opt_.budget); ++i)
        evaluate(random_config());

    // ---- AUC bandit state. ----
    const int n_tech = static_cast<int>(Technique::kCount);
    std::vector<int> uses(static_cast<std::size_t>(n_tech), 0);
    // Sliding window of (technique, improved?) outcomes.
    std::deque<std::pair<int, bool>> window;

    auto select_technique = [&]() -> Technique {
        int total_uses = 0;
        for (int u : uses)
            total_uses += u;
        double best_score = -1.0;
        int best_t = 0;
        for (int t = 0; t < n_tech; ++t) {
            double score;
            if (uses[static_cast<std::size_t>(t)] == 0) {
                score = std::numeric_limits<double>::infinity();
            } else {
                // AUC credit: recency-weighted improvements in the window.
                double auc = 0.0, norm = 0.0;
                double w = 1.0;
                for (auto it = window.rbegin(); it != window.rend(); ++it) {
                    if (it->first == t) {
                        auc += w * (it->second ? 1.0 : 0.0);
                        norm += w;
                    }
                    w *= 0.98;
                }
                double exploit = norm > 0.0 ? auc / norm : 0.0;
                score = exploit +
                        opt_.bandit_c *
                            std::sqrt(2.0 * std::log(std::max(1, total_uses)) /
                                      uses[static_cast<std::size_t>(t)]);
            }
            if (score > best_score) {
                best_score = score;
                best_t = t;
            }
        }
        return static_cast<Technique>(best_t);
    };

    // ---- Proposal generators. ----
    auto propose = [&](Technique t) -> Configuration {
        std::vector<std::size_t> elite = elites();
        const std::size_t n_params = space.num_params();
        switch (t) {
          case Technique::kRandom:
            return random_config();

          case Technique::kMutateUniform: {
            Configuration c =
                population[elite[rng.index(elite.size())]].config;
            int n_mut = 1 + static_cast<int>(rng.bernoulli(0.3));
            std::vector<std::size_t> touched;
            for (int m = 0; m < n_mut; ++m) {
                std::size_t p = rng.index(n_params);
                touched.push_back(p);
                if (cot && cot->tree_of(p) != ChainOfTrees::kNoTree) {
                    cot->resample_tree(cot->tree_of(p), c, rng, false);
                } else {
                    c[p] = space.param(p).sample(rng);
                }
            }
            if (!repair(c, touched))
                return random_config();
            return c;
          }

          case Technique::kMutateLocal: {
            Configuration c =
                population[elite[rng.index(elite.size())]].config;
            std::size_t p = rng.index(n_params);
            std::vector<ParamValue> nb = space.param(p).neighbors(c[p], rng);
            if (!nb.empty())
                c[p] = nb[rng.index(nb.size())];
            if (!repair(c, {p}))
                return random_config();
            return c;
          }

          case Technique::kHillClimb: {
            const Configuration& best =
                population[elite[0]].config;
            Configuration c = best;
            std::size_t p = rng.index(n_params);
            std::vector<ParamValue> nb = space.param(p).neighbors(c[p], rng);
            if (!nb.empty())
                c[p] = nb[rng.index(nb.size())];
            if (!repair(c, {p}))
                return random_config();
            return c;
          }

          case Technique::kDifferentialEvo: {
            const Configuration& base =
                population[elite[rng.index(elite.size())]].config;
            const Configuration& a =
                population[rng.index(population.size())].config;
            const Configuration& b =
                population[rng.index(population.size())].config;
            Configuration c = base;
            std::vector<std::size_t> touched;
            for (std::size_t p = 0; p < n_params; ++p) {
                if (!rng.bernoulli(0.4))
                    continue;
                touched.push_back(p);
                const Parameter& par = space.param(p);
                if (par.is_discrete() &&
                    par.kind() != ParamKind::kPermutation) {
                    // Index-space DE step: i_base + F * (i_a - i_b).
                    auto ia = static_cast<double>(par.index_of(a[p]));
                    auto ib = static_cast<double>(par.index_of(b[p]));
                    auto ic = static_cast<double>(par.index_of(base[p]));
                    double step = ic + 0.6 * (ia - ib);
                    auto idx = static_cast<std::int64_t>(std::llround(step));
                    idx = std::clamp<std::int64_t>(
                        idx, 0,
                        static_cast<std::int64_t>(par.num_values()) - 1);
                    c[p] = par.value_at(static_cast<std::size_t>(idx));
                } else if (par.kind() == ParamKind::kPermutation) {
                    c[p] = rng.bernoulli(0.5) ? a[p] : b[p];
                } else {
                    double va = as_real(a[p]), vb = as_real(b[p]);
                    double vc = as_real(base[p]) + 0.6 * (va - vb);
                    const auto& rp = static_cast<const RealParameter&>(par);
                    c[p] = std::clamp(vc, rp.lo(), rp.hi());
                }
            }
            if (!repair(c, touched))
                return random_config();
            return c;
          }

          case Technique::kCount:
            break;
        }
        return random_config();
    };

    // ---- Main loop. ----
    while (static_cast<int>(history.size()) < opt_.budget) {
        Technique t = select_technique();
        Configuration c;
        bool found = false;
        for (int tries = 0; tries < 8; ++tries) {
            c = propose(t);
            if (!seen.count(config_hash(c))) {
                found = true;
                break;
            }
        }
        if (!found) {
            for (int tries = 0; tries < 200 && !found; ++tries) {
                c = random_config();
                found = !seen.count(config_hash(c));
            }
        }

        double before = history.best_value;
        evaluate(std::move(c));
        bool improved = history.best_value < before;

        uses[static_cast<std::size_t>(t)] += 1;
        window.emplace_back(static_cast<int>(t), improved);
        if (static_cast<int>(window.size()) > opt_.bandit_window)
            window.pop_front();
    }

    history.tuner_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count() -
        history.eval_seconds;
    return history;
}

}  // namespace baco
