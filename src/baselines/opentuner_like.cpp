#include "baselines/opentuner_like.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "core/chain_of_trees.hpp"
#include "core/tuner_metrics.hpp"
#include "obs/trace.hpp"
#include "exec/jsonl.hpp"

namespace baco {

namespace {

using Clock = std::chrono::steady_clock;

/** The ensemble's sub-techniques. */
enum class Technique : int {
  kMutateUniform = 0,   ///< re-randomize 1-2 parameters of an elite parent
  kMutateLocal,         ///< step elite parent to a neighbouring value
  kDifferentialEvo,     ///< recombine elite with two random members
  kHillClimb,           ///< neighbour of the incumbent best
  kRandom,              ///< global uniform sample
  kCount,
};

/** Sentinel for seed-phase proposals (no bandit credit). */
constexpr int kSeedPhase = -1;

/** Per-evaluation record ranked by (feasible, value). */
struct Member {
  Configuration config;
  double value = std::numeric_limits<double>::infinity();  // inf = infeasible
};

}  // namespace

struct OpenTunerLike::State {
  RngEngine rng;
  std::unique_ptr<ChainOfTrees> cot;
  std::vector<Member> population;
  std::unordered_set<std::size_t> seen;
  std::vector<int> uses;
  /** Sliding window of (technique, improved?) outcomes. */
  std::deque<std::pair<int, bool>> window;
  /** Technique of each suggested-but-unobserved configuration, in order. */
  std::deque<int> pending;

  State(const SearchSpace& space, std::uint64_t seed)
      : rng(seed), uses(static_cast<std::size_t>(Technique::kCount), 0)
  {
      if (space.has_constraints() && space.is_fully_discrete()) {
          try {
              cot = std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
          } catch (const std::runtime_error&) {
              cot.reset();
          }
      }
  }
};

OpenTunerLike::OpenTunerLike(const SearchSpace& space, Options opt)
    : AskTellBase(opt.budget, opt.seed), space_(&space), opt_(opt)
{
}

OpenTunerLike::~OpenTunerLike() = default;

OpenTunerLike::State&
OpenTunerLike::state()
{
    if (!state_)
        state_ = std::make_unique<State>(*space_, opt_.seed);
    return *state_;
}

std::vector<Configuration>
OpenTunerLike::suggest(int n)
{
    auto start = Clock::now();
    const SearchSpace& space = *space_;
    State& st = state();
    n = std::min(n, remaining());
    std::vector<Configuration> out;
    if (n <= 0)
        return out;
    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer suggest_timer(tm.suggest, "tuner.suggest", "tuner");
    tm.suggestions.add(static_cast<std::uint64_t>(n));
    out.reserve(static_cast<std::size_t>(n));

    auto feasible_known = [&](const Configuration& c) {
        return st.cot ? st.cot->contains(c) : space.satisfies(c);
    };

    auto random_config = [&]() -> Configuration {
        if (st.cot)
            return st.cot->sample(st.rng, /*uniform_leaves=*/false);
        auto s = space.sample_feasible(st.rng, 2000);
        return s ? std::move(*s) : space.sample_unconstrained(st.rng);
    };

    /**
     * Repair a mutated configuration: when the known constraints broke,
     * resample the CoT trees containing the touched parameters (ATF keeps
     * proposals inside the constrained space).
     */
    auto repair = [&](Configuration& c,
                      const std::vector<std::size_t>& touched) -> bool {
        if (feasible_known(c))
            return true;
        if (!st.cot)
            return false;
        for (std::size_t p : touched) {
            std::size_t t = st.cot->tree_of(p);
            if (t != ChainOfTrees::kNoTree)
                st.cot->resample_tree(t, c, st.rng, /*uniform_leaves=*/false);
        }
        return feasible_known(c);
    };

    // Elite access: indices of the best configurations.
    auto elites = [&]() {
        std::vector<std::size_t> idx(st.population.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::size_t k = std::min<std::size_t>(
            static_cast<std::size_t>(opt_.elite_size), idx.size());
        std::partial_sort(
            idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
            idx.end(), [&](std::size_t a, std::size_t b) {
                return st.population[a].value < st.population[b].value;
            });
        idx.resize(k);
        return idx;
    };

    auto select_technique = [&]() -> Technique {
        const int n_tech = static_cast<int>(Technique::kCount);
        int total_uses = 0;
        for (int u : st.uses)
            total_uses += u;
        double best_score = -1.0;
        int best_t = 0;
        for (int t = 0; t < n_tech; ++t) {
            double score;
            if (st.uses[static_cast<std::size_t>(t)] == 0) {
                score = std::numeric_limits<double>::infinity();
            } else {
                // AUC credit: recency-weighted improvements in the window.
                double auc = 0.0, norm = 0.0;
                double w = 1.0;
                for (auto it = st.window.rbegin(); it != st.window.rend();
                     ++it) {
                    if (it->first == t) {
                        auc += w * (it->second ? 1.0 : 0.0);
                        norm += w;
                    }
                    w *= 0.98;
                }
                double exploit = norm > 0.0 ? auc / norm : 0.0;
                score = exploit +
                        opt_.bandit_c *
                            std::sqrt(2.0 * std::log(std::max(1, total_uses)) /
                                      st.uses[static_cast<std::size_t>(t)]);
            }
            if (score > best_score) {
                best_score = score;
                best_t = t;
            }
        }
        return static_cast<Technique>(best_t);
    };

    // ---- Proposal generators. ----
    auto propose = [&](Technique t) -> Configuration {
        std::vector<std::size_t> elite = elites();
        const std::size_t n_params = space.num_params();
        switch (t) {
          case Technique::kRandom:
            return random_config();

          case Technique::kMutateUniform: {
            Configuration c =
                st.population[elite[st.rng.index(elite.size())]].config;
            int n_mut = 1 + static_cast<int>(st.rng.bernoulli(0.3));
            std::vector<std::size_t> touched;
            for (int m = 0; m < n_mut; ++m) {
                std::size_t p = st.rng.index(n_params);
                touched.push_back(p);
                if (st.cot && st.cot->tree_of(p) != ChainOfTrees::kNoTree) {
                    st.cot->resample_tree(st.cot->tree_of(p), c, st.rng,
                                          false);
                } else {
                    c[p] = space.param(p).sample(st.rng);
                }
            }
            if (!repair(c, touched))
                return random_config();
            return c;
          }

          case Technique::kMutateLocal: {
            Configuration c =
                st.population[elite[st.rng.index(elite.size())]].config;
            std::size_t p = st.rng.index(n_params);
            std::vector<ParamValue> nb =
                space.param(p).neighbors(c[p], st.rng);
            if (!nb.empty())
                c[p] = nb[st.rng.index(nb.size())];
            if (!repair(c, {p}))
                return random_config();
            return c;
          }

          case Technique::kHillClimb: {
            const Configuration& best = st.population[elite[0]].config;
            Configuration c = best;
            std::size_t p = st.rng.index(n_params);
            std::vector<ParamValue> nb =
                space.param(p).neighbors(c[p], st.rng);
            if (!nb.empty())
                c[p] = nb[st.rng.index(nb.size())];
            if (!repair(c, {p}))
                return random_config();
            return c;
          }

          case Technique::kDifferentialEvo: {
            const Configuration& base =
                st.population[elite[st.rng.index(elite.size())]].config;
            const Configuration& a =
                st.population[st.rng.index(st.population.size())].config;
            const Configuration& b =
                st.population[st.rng.index(st.population.size())].config;
            Configuration c = base;
            std::vector<std::size_t> touched;
            for (std::size_t p = 0; p < n_params; ++p) {
                if (!st.rng.bernoulli(0.4))
                    continue;
                touched.push_back(p);
                const Parameter& par = space.param(p);
                if (par.is_discrete() &&
                    par.kind() != ParamKind::kPermutation) {
                    // Index-space DE step: i_base + F * (i_a - i_b).
                    auto ia = static_cast<double>(par.index_of(a[p]));
                    auto ib = static_cast<double>(par.index_of(b[p]));
                    auto ic = static_cast<double>(par.index_of(base[p]));
                    double step = ic + 0.6 * (ia - ib);
                    auto idx = static_cast<std::int64_t>(std::llround(step));
                    idx = std::clamp<std::int64_t>(
                        idx, 0,
                        static_cast<std::int64_t>(par.num_values()) - 1);
                    c[p] = par.value_at(static_cast<std::size_t>(idx));
                } else if (par.kind() == ParamKind::kPermutation) {
                    c[p] = st.rng.bernoulli(0.5) ? a[p] : b[p];
                } else {
                    double va = as_real(a[p]), vb = as_real(b[p]);
                    double vc = as_real(base[p]) + 0.6 * (va - vb);
                    const auto& rp = static_cast<const RealParameter&>(par);
                    c[p] = std::clamp(vc, rp.lo(), rp.hi());
                }
            }
            if (!repair(c, touched))
                return random_config();
            return c;
          }

          case Technique::kCount:
            break;
        }
        return random_config();
    };

    const int seed_target = std::min(opt_.initial_random, opt_.budget);
    for (int k = 0; k < n; ++k) {
        std::size_t virtual_evals = history_.size() + out.size();
        if (virtual_evals < static_cast<std::size_t>(seed_target)) {
            Configuration c = random_config();
            st.seen.insert(config_hash(c));
            st.pending.push_back(kSeedPhase);
            out.push_back(std::move(c));
            continue;
        }
        Technique t = select_technique();
        Configuration c;
        bool found = false;
        for (int tries = 0; tries < 8; ++tries) {
            c = propose(t);
            if (!st.seen.count(config_hash(c))) {
                found = true;
                break;
            }
        }
        if (!found) {
            for (int tries = 0; tries < 200 && !found; ++tries) {
                c = random_config();
                found = !st.seen.count(config_hash(c));
            }
        }
        st.seen.insert(config_hash(c));
        st.pending.push_back(static_cast<int>(t));
        out.push_back(std::move(c));
    }
    history_.tuner_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
    return out;
}

void
OpenTunerLike::observe(const std::vector<Configuration>& configs,
                       const std::vector<EvalResult>& results)
{
    auto start = Clock::now();
    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer timer(tm.observe, "tuner.observe", "tuner");
    tm.observations.add(static_cast<std::uint64_t>(
        std::min(configs.size(), results.size())));
    State& st = state();
    for (std::size_t i = 0; i < configs.size() && i < results.size(); ++i) {
        int technique = kSeedPhase;
        if (!st.pending.empty()) {
            technique = st.pending.front();
            st.pending.pop_front();
        }
        st.seen.insert(config_hash(configs[i]));

        double before = history_.best_value;
        Member m;
        m.config = configs[i];
        if (results[i].feasible)
            m.value = results[i].value;
        st.population.push_back(std::move(m));
        history_.add(configs[i], results[i]);

        if (technique != kSeedPhase) {
            bool improved = history_.best_value < before;
            st.uses[static_cast<std::size_t>(technique)] += 1;
            st.window.emplace_back(technique, improved);
            if (static_cast<int>(st.window.size()) > opt_.bandit_window)
                st.window.pop_front();
        }
    }
    history_.tuner_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
}

void
OpenTunerLike::reset_sampler()
{
    state_.reset();
}

std::string
OpenTunerLike::sampler_state() const
{
    // RNG stream position, then the AUC bandit credit state: per-technique
    // use counts and the sliding (technique, improved?) window. Segments
    // are ';'-separated so the whole string stays a single JSON-safe token
    // (no quotes); a state without the bandit segments restores with a
    // cold window (pre-serialization checkpoints).
    std::string out = rng_state_string(state_ ? &state_->rng : nullptr);
    if (!state_)
        return out;
    const State& st = *state_;
    out += ";uses=";
    for (std::size_t t = 0; t < st.uses.size(); ++t) {
        if (t > 0)
            out += ',';
        out += std::to_string(st.uses[t]);
    }
    out += ";win=";
    for (std::size_t i = 0; i < st.window.size(); ++i) {
        if (i > 0)
            out += '|';
        out += std::to_string(st.window[i].first);
        out += ':';
        out += st.window[i].second ? '1' : '0';
    }
    return out;
}

namespace {

/**
 * Parse "a,b,c,..." into counts. The list must have exactly uses.size()
 * entries — a mismatch (truncated state, or a checkpoint from a build
 * with a different technique set) fails the restore rather than
 * silently applying partial credit.
 */
bool
parse_uses(const std::string& s, std::vector<int>& uses)
{
    std::size_t at = 0;
    std::size_t slot = 0;
    while (at < s.size()) {
        std::int64_t v;
        if (!jsonl::parse_int_at(s, at, v))
            return false;
        // Use counts are nonnegative and small; anything else is a
        // corrupt checkpoint (a negative count would feed NaN into the
        // bandit's UCB term and silently disable a technique).
        if (slot >= uses.size() || v < 0 ||
            v > std::numeric_limits<int>::max()) {
            return false;
        }
        uses[slot] = static_cast<int>(v);
        ++slot;
        if (at < s.size()) {
            if (s[at] != ',')
                return false;
            ++at;
        }
    }
    return slot == uses.size();
}

/** Parse "t:i|t:i|..." into window entries; false on malformed input. */
bool
parse_window(const std::string& s, std::deque<std::pair<int, bool>>& window)
{
    std::size_t at = 0;
    while (at < s.size()) {
        std::int64_t t;
        if (!jsonl::parse_int_at(s, at, t))
            return false;
        if (t < 0 || t >= static_cast<std::int64_t>(Technique::kCount))
            return false;
        if (at + 1 >= s.size() || s[at] != ':' ||
            (s[at + 1] != '0' && s[at + 1] != '1')) {
            return false;
        }
        window.emplace_back(static_cast<int>(t), s[at + 1] == '1');
        at += 2;
        if (at < s.size()) {
            if (s[at] != '|')
                return false;
            ++at;
        }
    }
    return true;
}

}  // namespace

bool
OpenTunerLike::restore(const TuningHistory& history,
                       const std::string& sampler_state)
{
    state_.reset();
    history_ = history;
    State& st = state();
    for (const Observation& o : history_.observations) {
        st.seen.insert(config_hash(o.config));
        Member m;
        m.config = o.config;
        if (o.feasible)
            m.value = o.value;
        st.population.push_back(std::move(m));
    }
    bool ok = true;
    std::size_t semi = sampler_state.find(';');
    ok = restore_rng(st.rng, sampler_state.substr(0, semi));
    // Bandit credit segments (absent in old checkpoints: cold restart).
    while (ok && semi != std::string::npos) {
        std::size_t next = sampler_state.find(';', semi + 1);
        std::string seg = sampler_state.substr(
            semi + 1,
            next == std::string::npos ? std::string::npos : next - semi - 1);
        if (seg.compare(0, 5, "uses=") == 0)
            ok = parse_uses(seg.substr(5), st.uses);
        else if (seg.compare(0, 4, "win=") == 0)
            ok = parse_window(seg.substr(4), st.window);
        else
            ok = false;
        semi = next;
    }
    if (!ok) {
        state_.reset();
        history_ = TuningHistory{};
        return false;
    }
    return true;
}

TuningHistory
OpenTunerLike::run(const BlackBoxFn& objective)
{
    state_.reset();
    history_ = TuningHistory{};
    return drive_serial(*this, objective);
}

}  // namespace baco
