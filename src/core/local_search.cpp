#include "core/local_search.hpp"

#include <algorithm>
#include <limits>

namespace baco {

namespace {

/** Feasibility filter shared by pool and neighbour candidates. */
bool
is_feasible(const SearchSpace& space, const ChainOfTrees* cot,
            const Configuration& c)
{
    if (cot)
        return cot->contains(c);
    return space.satisfies(c);
}

}  // namespace

std::optional<Configuration>
local_search_maximize(const SearchSpace& space, const ChainOfTrees* cot,
                      const ScoreFn& score, RngEngine& rng,
                      const LocalSearchOptions& opt)
{
    // ---- Candidate pool. ----
    struct Scored {
      Configuration config;
      double value;
    };
    std::vector<Scored> pool;
    pool.reserve(static_cast<std::size_t>(opt.random_samples));
    for (int i = 0; i < opt.random_samples; ++i) {
        Configuration c;
        if (cot) {
            c = cot->sample(rng, opt.cot_uniform_leaves);
        } else {
            auto s = space.sample_feasible(rng, 200);
            if (!s)
                continue;
            c = std::move(*s);
        }
        double v = score(c);
        pool.push_back(Scored{std::move(c), v});
    }
    if (pool.empty())
        return std::nullopt;

    std::size_t n_starts = std::min<std::size_t>(
        static_cast<std::size_t>(opt.starts), pool.size());
    std::partial_sort(pool.begin(),
                      pool.begin() + static_cast<std::ptrdiff_t>(n_starts),
                      pool.end(), [](const Scored& a, const Scored& b) {
                          return a.value > b.value;
                      });

    Configuration best = pool[0].config;
    double best_score = pool[0].value;

    if (!opt.hill_climb)
        return best;

    // ---- Hill climbing from each start. ----
    for (std::size_t s = 0; s < n_starts; ++s) {
        Configuration cur = pool[s].config;
        double cur_score = pool[s].value;
        for (int step = 0; step < opt.max_steps; ++step) {
            // Single-parameter moves...
            std::vector<Configuration> moves = space.neighbors(cur, rng);
            // ...plus whole-tree resampling for co-dependent groups.
            if (cot) {
                for (std::size_t t = 0; t < cot->num_trees(); ++t) {
                    for (int m = 0; m < opt.tree_moves; ++m) {
                        Configuration c = cur;
                        cot->resample_tree(t, c, rng, opt.cot_uniform_leaves);
                        moves.push_back(std::move(c));
                    }
                }
            }
            double best_move_score = cur_score;
            std::optional<Configuration> best_move;
            for (Configuration& c : moves) {
                if (!is_feasible(space, cot, c))
                    continue;
                double v = score(c);
                if (v > best_move_score) {
                    best_move_score = v;
                    best_move = std::move(c);
                }
            }
            if (!best_move)
                break;  // local optimum
            cur = std::move(*best_move);
            cur_score = best_move_score;
        }
        if (cur_score > best_score) {
            best_score = cur_score;
            best = std::move(cur);
        }
    }
    return best;
}

}  // namespace baco
