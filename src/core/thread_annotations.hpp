#ifndef BACO_CORE_THREAD_ANNOTATIONS_HPP_
#define BACO_CORE_THREAD_ANNOTATIONS_HPP_

/**
 * @file
 * Clang capability-analysis (thread-safety) annotations, and the
 * annotated mutex primitives every lock in this codebase goes through.
 *
 * The serving stack is deeply concurrent — a work-stealing ThreadPool,
 * the async EvalEngine, the multi-client Acceptor, the lock-striped
 * SessionManager, the Coordinator's WorkerHealth registry — and its
 * locking discipline used to be enforced only by TSAN runs over the
 * interleavings the test suite happens to produce. These annotations
 * move that discipline to compile time: under clang, `-Wthread-safety`
 * proves on every build that a `BACO_GUARDED_BY` field is only touched
 * with its mutex held and that a `BACO_REQUIRES` function is only
 * called under the right lock. Under GCC every macro expands to
 * nothing and `baco::Mutex` behaves exactly like the `std::mutex` it
 * wraps, so the annotations cost nothing where they cannot be checked.
 *
 * Policy (see README "Correctness tooling"): new mutex-protected state
 * uses `baco::Mutex` + `baco::MutexLock`, annotates what the mutex
 * guards, and keeps lock acquisition *syntactically scoped* — the
 * analysis is per-function, so handing a held lock across a function
 * boundary (other than via `BACO_REQUIRES`) is what the few documented
 * `BACO_NO_THREAD_SAFETY_ANALYSIS` escape hatches are reserved for.
 * `scripts/check.sh --stage tidy` builds all of src/ under clang with
 * the analysis promoted to errors, and
 * tests/test_static_analysis.cmake negative-compiles an unguarded
 * access so the annotations cannot silently rot into no-ops.
 *
 * Macro set (the standard clang vocabulary, BACO_-prefixed):
 *
 *   BACO_CAPABILITY(name)      this type is a lockable capability
 *   BACO_SCOPED_CAPABILITY     RAII type that acquires/releases one
 *   BACO_GUARDED_BY(mu)        field only accessed with mu held
 *   BACO_PT_GUARDED_BY(mu)     pointee only accessed with mu held
 *   BACO_REQUIRES(mu...)       caller must hold mu (exclusively)
 *   BACO_ACQUIRE(mu...)        function acquires mu, caller must not hold
 *   BACO_RELEASE(mu...)        function releases mu, caller must hold
 *   BACO_TRY_ACQUIRE(ok, mu)   acquires mu when returning `ok`
 *   BACO_EXCLUDES(mu...)       caller must NOT hold mu (deadlock guard)
 *   BACO_ACQUIRED_BEFORE/AFTER lock-order declarations between mutexes
 *   BACO_ASSERT_CAPABILITY     runtime-checked "I hold it" assertion
 *   BACO_RETURN_CAPABILITY(mu) getter returning a reference to mu
 *   BACO_NO_THREAD_SAFETY_ANALYSIS  opt a function out (needs a reason)
 */

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define BACO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BACO_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no analysis
#endif

#define BACO_CAPABILITY(x) BACO_THREAD_ANNOTATION(capability(x))
#define BACO_SCOPED_CAPABILITY BACO_THREAD_ANNOTATION(scoped_lockable)
#define BACO_GUARDED_BY(x) BACO_THREAD_ANNOTATION(guarded_by(x))
#define BACO_PT_GUARDED_BY(x) BACO_THREAD_ANNOTATION(pt_guarded_by(x))
#define BACO_REQUIRES(...) \
  BACO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BACO_REQUIRES_SHARED(...) \
  BACO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define BACO_ACQUIRE(...) \
  BACO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BACO_RELEASE(...) \
  BACO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BACO_TRY_ACQUIRE(...) \
  BACO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BACO_EXCLUDES(...) BACO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define BACO_ACQUIRED_BEFORE(...) \
  BACO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BACO_ACQUIRED_AFTER(...) \
  BACO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define BACO_ASSERT_CAPABILITY(x) \
  BACO_THREAD_ANNOTATION(assert_capability(x))
#define BACO_RETURN_CAPABILITY(x) BACO_THREAD_ANNOTATION(lock_returned(x))
#define BACO_NO_THREAD_SAFETY_ANALYSIS \
  BACO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace baco {

class CondVar;

/**
 * std::mutex with the capability attribute, so fields can be declared
 * BACO_GUARDED_BY(mutex_) and functions BACO_REQUIRES(mutex_). Same
 * size and cost as the std::mutex it wraps; satisfies Lockable, so it
 * still composes with std::unique_lock / std::scoped_lock where a
 * movable or multi-lock handle is genuinely needed (those sites forgo
 * the compile-time proof — keep them rare and documented).
 */
class BACO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BACO_ACQUIRE() { mu_.lock(); }
  void unlock() BACO_RELEASE() { mu_.unlock(); }
  bool try_lock() BACO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/**
 * RAII lock over a baco::Mutex — the std::lock_guard of the annotated
 * world, with optional early unlock()/relock() for the handful of
 * "release before rethrow / drain" paths. The scoped-capability
 * attribute teaches the analysis that guarded fields are accessible
 * for exactly the region this object holds the mutex.
 */
class BACO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BACO_ACQUIRE(mu) : mu_(mu), held_(true)
  {
      mu_.lock();
  }

  ~MutexLock() BACO_RELEASE()
  {
      if (held_)
          mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /** Release before scope end (e.g. to rethrow without the lock). */
  void unlock() BACO_RELEASE()
  {
      held_ = false;
      mu_.unlock();
  }

  /** Re-acquire after an early unlock(). */
  void lock() BACO_ACQUIRE()
  {
      mu_.lock();
      held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/**
 * Condition variable bound to baco::Mutex. wait() takes the Mutex the
 * caller already holds (via MutexLock), stated as BACO_REQUIRES so the
 * analysis checks it; internally the held mutex is adopted into a
 * std::unique_lock for the wait and released back un-owned, so this is
 * a plain std::condition_variable wait — no condition_variable_any
 * overhead. Predicate waits are written as explicit while-loops at the
 * call sites: the analysis cannot see into a predicate lambda, and the
 * loop form keeps guarded-field reads inside the annotated scope.
 */
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /** Atomically release mu, wait, re-acquire mu. */
  void wait(Mutex& mu) BACO_REQUIRES(mu)
  {
      std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
      cv_.wait(lock);
      lock.release();  // the caller's MutexLock still owns mu
  }

  /** Timed wait; false when the deadline passed without a notify. */
  template <class Rep, class Period>
  bool wait_for(Mutex& mu,
                const std::chrono::duration<Rep, Period>& timeout)
      BACO_REQUIRES(mu)
  {
      std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
      bool notified = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
      lock.release();
      return notified;
  }

  template <class Clock, class Duration>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline)
      BACO_REQUIRES(mu)
  {
      std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
      bool notified =
          cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
      lock.release();
      return notified;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace baco

#endif  // BACO_CORE_THREAD_ANNOTATIONS_HPP_
