#ifndef BACO_CORE_EVALUATOR_HPP_
#define BACO_CORE_EVALUATOR_HPP_

/**
 * @file
 * The black-box evaluation interface and tuning history.
 *
 * A compiler toolchain is modelled as a function from configuration to
 * EvalResult: it schedules, compiles and runs (or simulates) the program and
 * reports the measured objective, or infeasibility when a hidden constraint
 * is violated (paper Fig. 2's "Compiler Toolchain" box).
 */

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "linalg/rng.hpp"

namespace baco {

/**
 * Black-box objective. The RngEngine carries the measurement-noise stream so
 * whole experiments are reproducible from a single seed. Drivers hand each
 * evaluation an independent stream derived from (run seed, evaluation
 * index) — see exec/ask_tell.hpp — so serial and batched execution draw
 * identical noise.
 */
using BlackBoxFn =
    std::function<EvalResult(const Configuration&, RngEngine&)>;

/** One evaluated configuration. */
struct Observation {
  Configuration config;
  double value = 0.0;
  bool feasible = true;
};

/** The full record of one autotuning run. */
struct TuningHistory {
  std::vector<Observation> observations;

  /** Best feasible value seen; +inf when none. */
  double best_value = std::numeric_limits<double>::infinity();
  /** Configuration achieving best_value. */
  std::optional<Configuration> best_config;

  /** Wall-clock seconds spent inside the search method itself. */
  double tuner_seconds = 0.0;
  /** Wall-clock seconds spent evaluating the black box. */
  double eval_seconds = 0.0;

  /** Record an evaluation and update the incumbent. */
  void
  add(Configuration c, EvalResult r)
  {
      observations.push_back(Observation{c, r.value, r.feasible});
      if (r.feasible && r.value < best_value) {
          best_value = r.value;
          best_config = std::move(c);
      }
  }

  /**
   * Best-so-far trajectory: entry i is the best feasible value among the
   * first i+1 evaluations (+inf before the first feasible one).
   */
  std::vector<double>
  best_trajectory() const
  {
      std::vector<double> t;
      t.reserve(observations.size());
      double best = std::numeric_limits<double>::infinity();
      for (const Observation& o : observations) {
          if (o.feasible && o.value < best)
              best = o.value;
          t.push_back(best);
      }
      return t;
  }

  /** Number of evaluations performed. */
  std::size_t size() const { return observations.size(); }
};

/** Structural equality of observations (config, value, feasibility). */
inline bool
observations_equal(const Observation& a, const Observation& b)
{
    return a.value == b.value && a.feasible == b.feasible &&
           configs_equal(a.config, b.config);
}

/**
 * Order-sensitive structural equality of two histories; wall-clock timing
 * fields are ignored (they never reproduce).
 */
inline bool
histories_equal(const TuningHistory& a, const TuningHistory& b)
{
    if (a.observations.size() != b.observations.size())
        return false;
    for (std::size_t i = 0; i < a.observations.size(); ++i) {
        if (!observations_equal(a.observations[i], b.observations[i]))
            return false;
    }
    return true;
}

}  // namespace baco

#endif  // BACO_CORE_EVALUATOR_HPP_
