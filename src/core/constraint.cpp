#include "core/constraint.hpp"

namespace baco {

Constraint
Constraint::from_expression(const std::string& src)
{
    Constraint c;
    c.expr_ = parse_expression(src);
    c.vars_ = expression_vars(*c.expr_);
    c.source_ = src;
    return c;
}

Constraint
Constraint::from_function(std::function<bool(const Configuration&)> fn,
                          std::vector<std::string> vars, std::string label)
{
    Constraint c;
    c.fn_ = std::move(fn);
    c.vars_ = std::move(vars);
    c.source_ = std::move(label);
    return c;
}

bool
Constraint::eval_expression(const EvalContext& ctx) const
{
    return expr_->eval(ctx) != 0.0;
}

}  // namespace baco
