#include "core/expression.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace baco {

namespace {

// ---------------------------------------------------------------------------
// AST nodes
// ---------------------------------------------------------------------------

class NumberExpr : public Expression {
 public:
  explicit NumberExpr(double v) : v_(v) {}
  double eval(const EvalContext&) const override { return v_; }
  void collect_vars(std::vector<std::string>&) const override {}

 private:
  double v_;
};

class VarExpr : public Expression {
 public:
  explicit VarExpr(std::string name) : name_(std::move(name)) {}

  double
  eval(const EvalContext& ctx) const override
  {
      auto it = ctx.find(name_);
      if (it == ctx.end())
          throw std::runtime_error("unbound variable '" + name_ +
                                   "' in constraint expression");
      return it->second;
  }

  void
  collect_vars(std::vector<std::string>& out) const override
  {
      out.push_back(name_);
  }

 private:
  std::string name_;
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

class BinaryExpr : public Expression {
 public:
  BinaryExpr(BinOp op, ExpressionPtr lhs, ExpressionPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  double
  eval(const EvalContext& ctx) const override
  {
      // Short-circuit logical operators.
      if (op_ == BinOp::kAnd) {
          if (lhs_->eval(ctx) == 0.0)
              return 0.0;
          return rhs_->eval(ctx) != 0.0 ? 1.0 : 0.0;
      }
      if (op_ == BinOp::kOr) {
          if (lhs_->eval(ctx) != 0.0)
              return 1.0;
          return rhs_->eval(ctx) != 0.0 ? 1.0 : 0.0;
      }
      double a = lhs_->eval(ctx);
      double b = rhs_->eval(ctx);
      switch (op_) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv: return a / b;
        case BinOp::kMod: {
            long long ia = std::llround(a);
            long long ib = std::llround(b);
            if (ib == 0)
                throw std::runtime_error("modulo by zero in constraint");
            return static_cast<double>(ia % ib);
        }
        case BinOp::kLt: return a < b ? 1.0 : 0.0;
        case BinOp::kLe: return a <= b ? 1.0 : 0.0;
        case BinOp::kGt: return a > b ? 1.0 : 0.0;
        case BinOp::kGe: return a >= b ? 1.0 : 0.0;
        case BinOp::kEq: return a == b ? 1.0 : 0.0;
        case BinOp::kNe: return a != b ? 1.0 : 0.0;
        default: break;
      }
      throw std::logic_error("unreachable binary op");
  }

  void
  collect_vars(std::vector<std::string>& out) const override
  {
      lhs_->collect_vars(out);
      rhs_->collect_vars(out);
  }

 private:
  BinOp op_;
  ExpressionPtr lhs_, rhs_;
};

enum class UnOp { kNeg, kNot };

class UnaryExpr : public Expression {
 public:
  UnaryExpr(UnOp op, ExpressionPtr arg) : op_(op), arg_(std::move(arg)) {}

  double
  eval(const EvalContext& ctx) const override
  {
      double v = arg_->eval(ctx);
      return op_ == UnOp::kNeg ? -v : (v == 0.0 ? 1.0 : 0.0);
  }

  void
  collect_vars(std::vector<std::string>& out) const override
  {
      arg_->collect_vars(out);
  }

 private:
  UnOp op_;
  ExpressionPtr arg_;
};

class CallExpr : public Expression {
 public:
  CallExpr(std::string fn, std::vector<ExpressionPtr> args)
      : fn_(std::move(fn)), args_(std::move(args))
  {
      std::size_t want = (fn_ == "min" || fn_ == "max" || fn_ == "pow") ? 2 : 1;
      if (fn_ != "log" && fn_ != "log2" && fn_ != "abs" && fn_ != "min" &&
          fn_ != "max" && fn_ != "pow" && fn_ != "floor" && fn_ != "ceil") {
          throw std::runtime_error("unknown function '" + fn_ +
                                   "' in constraint expression");
      }
      if (args_.size() != want) {
          throw std::runtime_error("function '" + fn_ + "' expects " +
                                   std::to_string(want) + " argument(s)");
      }
  }

  double
  eval(const EvalContext& ctx) const override
  {
      double a = args_[0]->eval(ctx);
      if (fn_ == "log") return std::log(a);
      if (fn_ == "log2") return std::log2(a);
      if (fn_ == "abs") return std::abs(a);
      if (fn_ == "floor") return std::floor(a);
      if (fn_ == "ceil") return std::ceil(a);
      double b = args_[1]->eval(ctx);
      if (fn_ == "min") return std::min(a, b);
      if (fn_ == "max") return std::max(a, b);
      return std::pow(a, b);
  }

  void
  collect_vars(std::vector<std::string>& out) const override
  {
      for (const auto& a : args_)
          a->collect_vars(out);
  }

 private:
  std::string fn_;
  std::vector<ExpressionPtr> args_;
};

// ---------------------------------------------------------------------------
// Tokenizer + recursive descent parser
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kNumber, kIdent, kOp, kEnd } kind;
  std::string text;
  double number = 0.0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return cur_; }

  Token
  next()
  {
      Token t = cur_;
      advance();
      return t;
  }

 private:
  void
  advance()
  {
      while (i_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[i_])))
          ++i_;
      cur_.pos = i_;
      if (i_ >= src_.size()) {
          cur_ = {Token::kEnd, "", 0.0, i_};
          return;
      }
      char c = src_[i_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
          std::size_t end = i_;
          while (end < src_.size() &&
                 (std::isdigit(static_cast<unsigned char>(src_[end])) ||
                  src_[end] == '.' || src_[end] == 'e' || src_[end] == 'E' ||
                  ((src_[end] == '+' || src_[end] == '-') && end > i_ &&
                   (src_[end - 1] == 'e' || src_[end - 1] == 'E')))) {
              ++end;
          }
          std::string text = src_.substr(i_, end - i_);
          cur_ = {Token::kNumber, text, std::stod(text), i_};
          i_ = end;
          return;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
          std::size_t end = i_;
          while (end < src_.size() &&
                 (std::isalnum(static_cast<unsigned char>(src_[end])) ||
                  src_[end] == '_' || src_[end] == '.')) {
              ++end;
          }
          cur_ = {Token::kIdent, src_.substr(i_, end - i_), 0.0, i_};
          i_ = end;
          return;
      }
      // Two-character operators first.
      static const char* two_char[] = {"<=", ">=", "==", "!=", "&&", "||"};
      for (const char* op : two_char) {
          if (src_.compare(i_, 2, op) == 0) {
              cur_ = {Token::kOp, op, 0.0, i_};
              i_ += 2;
              return;
          }
      }
      static const std::string one_char = "+-*/%<>!(),";
      if (one_char.find(c) != std::string::npos) {
          cur_ = {Token::kOp, std::string(1, c), 0.0, i_};
          ++i_;
          return;
      }
      throw std::runtime_error("unexpected character '" + std::string(1, c) +
                               "' at position " + std::to_string(i_) +
                               " in constraint expression");
  }

  const std::string& src_;
  std::size_t i_ = 0;
  Token cur_;
};

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) {}

  ExpressionPtr
  parse()
  {
      ExpressionPtr e = parse_or();
      if (lex_.peek().kind != Token::kEnd) {
          throw std::runtime_error("unexpected trailing input at position " +
                                   std::to_string(lex_.peek().pos));
      }
      return e;
  }

 private:
  bool
  accept_op(const std::string& op)
  {
      if (lex_.peek().kind == Token::kOp && lex_.peek().text == op) {
          lex_.next();
          return true;
      }
      return false;
  }

  void
  expect_op(const std::string& op)
  {
      if (!accept_op(op)) {
          throw std::runtime_error("expected '" + op + "' at position " +
                                   std::to_string(lex_.peek().pos));
      }
  }

  ExpressionPtr
  parse_or()
  {
      ExpressionPtr e = parse_and();
      while (accept_op("||"))
          e = std::make_shared<BinaryExpr>(BinOp::kOr, e, parse_and());
      return e;
  }

  ExpressionPtr
  parse_and()
  {
      ExpressionPtr e = parse_cmp();
      while (accept_op("&&"))
          e = std::make_shared<BinaryExpr>(BinOp::kAnd, e, parse_cmp());
      return e;
  }

  ExpressionPtr
  parse_cmp()
  {
      ExpressionPtr e = parse_add();
      struct { const char* text; BinOp op; } ops[] = {
          {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"==", BinOp::kEq},
          {"!=", BinOp::kNe}, {"<", BinOp::kLt}, {">", BinOp::kGt},
      };
      for (const auto& o : ops) {
          if (accept_op(o.text))
              return std::make_shared<BinaryExpr>(o.op, e, parse_add());
      }
      return e;
  }

  ExpressionPtr
  parse_add()
  {
      ExpressionPtr e = parse_mul();
      while (true) {
          if (accept_op("+"))
              e = std::make_shared<BinaryExpr>(BinOp::kAdd, e, parse_mul());
          else if (accept_op("-"))
              e = std::make_shared<BinaryExpr>(BinOp::kSub, e, parse_mul());
          else
              return e;
      }
  }

  ExpressionPtr
  parse_mul()
  {
      ExpressionPtr e = parse_unary();
      while (true) {
          if (accept_op("*"))
              e = std::make_shared<BinaryExpr>(BinOp::kMul, e, parse_unary());
          else if (accept_op("/"))
              e = std::make_shared<BinaryExpr>(BinOp::kDiv, e, parse_unary());
          else if (accept_op("%"))
              e = std::make_shared<BinaryExpr>(BinOp::kMod, e, parse_unary());
          else
              return e;
      }
  }

  ExpressionPtr
  parse_unary()
  {
      if (accept_op("-"))
          return std::make_shared<UnaryExpr>(UnOp::kNeg, parse_unary());
      if (accept_op("!"))
          return std::make_shared<UnaryExpr>(UnOp::kNot, parse_unary());
      return parse_primary();
  }

  ExpressionPtr
  parse_primary()
  {
      const Token& t = lex_.peek();
      if (t.kind == Token::kNumber) {
          double v = t.number;
          lex_.next();
          return std::make_shared<NumberExpr>(v);
      }
      if (t.kind == Token::kIdent) {
          std::string name = t.text;
          lex_.next();
          if (accept_op("(")) {
              std::vector<ExpressionPtr> args;
              if (!accept_op(")")) {
                  args.push_back(parse_or());
                  while (accept_op(","))
                      args.push_back(parse_or());
                  expect_op(")");
              }
              return std::make_shared<CallExpr>(name, std::move(args));
          }
          return std::make_shared<VarExpr>(name);
      }
      if (accept_op("(")) {
          ExpressionPtr e = parse_or();
          expect_op(")");
          return e;
      }
      throw std::runtime_error("unexpected token at position " +
                               std::to_string(t.pos) +
                               " in constraint expression");
  }

  Lexer lex_;
};

}  // namespace

ExpressionPtr
parse_expression(const std::string& source)
{
    Parser p(source);
    return p.parse();
}

std::vector<std::string>
expression_vars(const Expression& expr)
{
    std::vector<std::string> vars;
    expr.collect_vars(vars);
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    return vars;
}

}  // namespace baco
