#ifndef BACO_CORE_TYPES_HPP_
#define BACO_CORE_TYPES_HPP_

/**
 * @file
 * Fundamental value types shared across the autotuner.
 */

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace baco {

/**
 * A permutation of m elements. perm[i] = j means element i of the original
 * sequence is placed at index j in the new order (the paper's pi_i = j
 * convention from Sec. 4.1).
 */
using Permutation = std::vector<int>;

/**
 * The value a single parameter takes in a configuration:
 * - double        for real parameters,
 * - std::int64_t  for integer and ordinal values and categorical indices,
 * - Permutation   for permutation parameters.
 */
using ParamValue = std::variant<double, std::int64_t, Permutation>;

/** One point of the search space: one ParamValue per parameter, in order. */
using Configuration = std::vector<ParamValue>;

/**
 * Outcome of evaluating a configuration through a compiler toolchain.
 *
 * `feasible == false` models a hidden-constraint violation (e.g. the GPU
 * kernel failed to launch); `value` is meaningless in that case.
 */
struct EvalResult {
  double value = 0.0;
  bool feasible = true;

  static EvalResult infeasible() { return EvalResult{0.0, false}; }
};

/** Equality over ParamValue (permutations compared elementwise). */
bool param_value_equal(const ParamValue& a, const ParamValue& b);

/** Equality over whole configurations. */
bool configs_equal(const Configuration& a, const Configuration& b);

/** Stable hash of a configuration, for dedup sets. */
std::size_t config_hash(const Configuration& c);

/** Human-readable rendering of a ParamValue. */
std::string param_value_to_string(const ParamValue& v);

}  // namespace baco

#endif  // BACO_CORE_TYPES_HPP_
