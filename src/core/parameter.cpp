#include "core/parameter.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace baco {

// ---------------------------------------------------------------------------
// types.hpp helpers
// ---------------------------------------------------------------------------

bool
param_value_equal(const ParamValue& a, const ParamValue& b)
{
    if (a.index() != b.index())
        return false;
    if (std::holds_alternative<double>(a))
        return std::get<double>(a) == std::get<double>(b);
    if (std::holds_alternative<std::int64_t>(a))
        return std::get<std::int64_t>(a) == std::get<std::int64_t>(b);
    return std::get<Permutation>(a) == std::get<Permutation>(b);
}

bool
configs_equal(const Configuration& a, const Configuration& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!param_value_equal(a[i], b[i]))
            return false;
    return true;
}

std::size_t
config_hash(const Configuration& c)
{
    std::size_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::size_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (const ParamValue& v : c) {
        mix(v.index());
        if (std::holds_alternative<double>(v)) {
            mix(std::hash<double>{}(std::get<double>(v)));
        } else if (std::holds_alternative<std::int64_t>(v)) {
            mix(std::hash<std::int64_t>{}(std::get<std::int64_t>(v)));
        } else {
            for (int x : std::get<Permutation>(v))
                mix(std::hash<int>{}(x));
        }
    }
    return h;
}

std::string
param_value_to_string(const ParamValue& v)
{
    std::ostringstream os;
    if (std::holds_alternative<double>(v)) {
        os << std::get<double>(v);
    } else if (std::holds_alternative<std::int64_t>(v)) {
        os << std::get<std::int64_t>(v);
    } else {
        os << "[";
        const Permutation& p = std::get<Permutation>(v);
        for (std::size_t i = 0; i < p.size(); ++i)
            os << (i ? "," : "") << p[i];
        os << "]";
    }
    return os.str();
}

double
as_real(const ParamValue& v)
{
    if (std::holds_alternative<double>(v))
        return std::get<double>(v);
    if (std::holds_alternative<std::int64_t>(v))
        return static_cast<double>(std::get<std::int64_t>(v));
    throw std::runtime_error("as_real: value is a permutation");
}

std::int64_t
as_int(const ParamValue& v)
{
    if (std::holds_alternative<std::int64_t>(v))
        return std::get<std::int64_t>(v);
    if (std::holds_alternative<double>(v))
        return static_cast<std::int64_t>(std::llround(std::get<double>(v)));
    throw std::runtime_error("as_int: value is a permutation");
}

const Permutation&
as_permutation(const ParamValue& v)
{
    return std::get<Permutation>(v);
}

std::string
Parameter::value_to_string(const ParamValue& v) const
{
    return param_value_to_string(v);
}

// ---------------------------------------------------------------------------
// RealParameter
// ---------------------------------------------------------------------------

RealParameter::RealParameter(std::string name, double lo, double hi,
                             bool log_scale)
    : Parameter(std::move(name), ParamKind::kReal),
      lo_(lo), hi_(hi), log_scale_(log_scale)
{
    assert(lo < hi);
    if (log_scale_)
        assert(lo > 0.0);
    span_ = transform(hi_) - transform(lo_);
}

double
RealParameter::transform(double x) const
{
    return log_scale_ ? std::log(x) : x;
}

ParamValue
RealParameter::value_at(std::size_t) const
{
    throw std::runtime_error("RealParameter has no enumerable values");
}

ParamValue
RealParameter::sample(RngEngine& rng) const
{
    if (log_scale_)
        return std::exp(rng.uniform(std::log(lo_), std::log(hi_)));
    return rng.uniform(lo_, hi_);
}

std::vector<ParamValue>
RealParameter::neighbors(const ParamValue& v, RngEngine& rng) const
{
    // Gaussian perturbations in (transformed) space at two scales.
    double t = transform(as_real(v));
    std::vector<ParamValue> out;
    for (double frac : {0.02, 0.1}) {
        for (int k = 0; k < 2; ++k) {
            double cand = t + rng.normal(0.0, frac * span_);
            cand = std::clamp(cand, transform(lo_), transform(hi_));
            out.push_back(log_scale_ ? std::exp(cand) : cand);
        }
    }
    return out;
}

double
RealParameter::distance(const ParamValue& a, const ParamValue& b) const
{
    return std::abs(transform(as_real(a)) - transform(as_real(b))) / span_;
}

double
RealParameter::numeric_value(const ParamValue& v) const
{
    return as_real(v);
}

void
RealParameter::encode(const ParamValue& v, std::vector<double>& out) const
{
    out.push_back((transform(as_real(v)) - transform(lo_)) / span_);
}

// ---------------------------------------------------------------------------
// IntegerParameter
// ---------------------------------------------------------------------------

IntegerParameter::IntegerParameter(std::string name, std::int64_t lo,
                                   std::int64_t hi, bool log_scale)
    : Parameter(std::move(name), ParamKind::kInteger),
      lo_(lo), hi_(hi), log_scale_(log_scale)
{
    assert(lo <= hi);
    if (log_scale_)
        assert(lo > 0);
    span_ = (lo_ == hi_) ? 1.0 : transform(hi_) - transform(lo_);
}

double
IntegerParameter::transform(std::int64_t x) const
{
    return log_scale_ ? std::log(static_cast<double>(x))
                      : static_cast<double>(x);
}

std::size_t
IntegerParameter::num_values() const
{
    return static_cast<std::size_t>(hi_ - lo_ + 1);
}

ParamValue
IntegerParameter::value_at(std::size_t i) const
{
    assert(i < num_values());
    return lo_ + static_cast<std::int64_t>(i);
}

std::size_t
IntegerParameter::index_of(const ParamValue& v) const
{
    std::int64_t x = as_int(v);
    if (x < lo_ || x > hi_)
        return num_values();
    return static_cast<std::size_t>(x - lo_);
}

ParamValue
IntegerParameter::sample(RngEngine& rng) const
{
    return rng.uniform_int(lo_, hi_);
}

std::vector<ParamValue>
IntegerParameter::neighbors(const ParamValue& v, RngEngine&) const
{
    std::int64_t x = as_int(v);
    std::vector<ParamValue> out;
    if (x > lo_)
        out.push_back(x - 1);
    if (x < hi_)
        out.push_back(x + 1);
    return out;
}

double
IntegerParameter::distance(const ParamValue& a, const ParamValue& b) const
{
    return std::abs(transform(as_int(a)) - transform(as_int(b))) / span_;
}

double
IntegerParameter::numeric_value(const ParamValue& v) const
{
    return static_cast<double>(as_int(v));
}

void
IntegerParameter::encode(const ParamValue& v, std::vector<double>& out) const
{
    out.push_back((transform(as_int(v)) - transform(lo_)) / span_);
}

// ---------------------------------------------------------------------------
// OrdinalParameter
// ---------------------------------------------------------------------------

OrdinalParameter::OrdinalParameter(std::string name,
                                   std::vector<std::int64_t> values,
                                   bool log_scale)
    : Parameter(std::move(name), ParamKind::kOrdinal),
      values_(std::move(values)), log_scale_(log_scale)
{
    assert(!values_.empty());
    assert(std::is_sorted(values_.begin(), values_.end()));
    if (log_scale_)
        assert(values_.front() > 0);
    span_ = (values_.size() == 1)
                ? 1.0
                : transform(values_.back()) - transform(values_.front());
}

double
OrdinalParameter::transform(std::int64_t x) const
{
    return log_scale_ ? std::log(static_cast<double>(x))
                      : static_cast<double>(x);
}

ParamValue
OrdinalParameter::value_at(std::size_t i) const
{
    assert(i < values_.size());
    return values_[i];
}

std::size_t
OrdinalParameter::index_of(const ParamValue& v) const
{
    std::int64_t x = as_int(v);
    auto it = std::lower_bound(values_.begin(), values_.end(), x);
    if (it == values_.end() || *it != x)
        return values_.size();
    return static_cast<std::size_t>(it - values_.begin());
}

ParamValue
OrdinalParameter::sample(RngEngine& rng) const
{
    return values_[rng.index(values_.size())];
}

std::vector<ParamValue>
OrdinalParameter::neighbors(const ParamValue& v, RngEngine&) const
{
    std::size_t i = index_of(v);
    assert(i < values_.size());
    std::vector<ParamValue> out;
    if (i > 0)
        out.push_back(values_[i - 1]);
    if (i + 1 < values_.size())
        out.push_back(values_[i + 1]);
    return out;
}

double
OrdinalParameter::distance(const ParamValue& a, const ParamValue& b) const
{
    return std::abs(transform(as_int(a)) - transform(as_int(b))) / span_;
}

double
OrdinalParameter::numeric_value(const ParamValue& v) const
{
    return static_cast<double>(as_int(v));
}

void
OrdinalParameter::encode(const ParamValue& v, std::vector<double>& out) const
{
    out.push_back((transform(as_int(v)) - transform(values_.front())) / span_);
}

// ---------------------------------------------------------------------------
// CategoricalParameter
// ---------------------------------------------------------------------------

CategoricalParameter::CategoricalParameter(std::string name,
                                           std::vector<std::string> categories)
    : Parameter(std::move(name), ParamKind::kCategorical),
      categories_(std::move(categories))
{
    assert(!categories_.empty());
}

ParamValue
CategoricalParameter::value_at(std::size_t i) const
{
    assert(i < categories_.size());
    return static_cast<std::int64_t>(i);
}

std::size_t
CategoricalParameter::index_of(const ParamValue& v) const
{
    std::int64_t x = as_int(v);
    if (x < 0 || x >= static_cast<std::int64_t>(categories_.size()))
        return categories_.size();
    return static_cast<std::size_t>(x);
}

ParamValue
CategoricalParameter::sample(RngEngine& rng) const
{
    return static_cast<std::int64_t>(rng.index(categories_.size()));
}

std::vector<ParamValue>
CategoricalParameter::neighbors(const ParamValue& v, RngEngine&) const
{
    std::int64_t cur = as_int(v);
    std::vector<ParamValue> out;
    for (std::size_t i = 0; i < categories_.size(); ++i)
        if (static_cast<std::int64_t>(i) != cur)
            out.push_back(static_cast<std::int64_t>(i));
    return out;
}

double
CategoricalParameter::distance(const ParamValue& a, const ParamValue& b) const
{
    return (as_int(a) == as_int(b)) ? 0.0 : 1.0;
}

double
CategoricalParameter::numeric_value(const ParamValue& v) const
{
    return static_cast<double>(as_int(v));
}

void
CategoricalParameter::encode(const ParamValue& v, std::vector<double>& out) const
{
    std::int64_t idx = as_int(v);
    for (std::size_t i = 0; i < categories_.size(); ++i)
        out.push_back(static_cast<std::int64_t>(i) == idx ? 1.0 : 0.0);
}

std::string
CategoricalParameter::value_to_string(const ParamValue& v) const
{
    std::size_t i = index_of(v);
    return i < categories_.size() ? categories_[i] : "<invalid>";
}

// ---------------------------------------------------------------------------
// PermutationParameter
// ---------------------------------------------------------------------------

namespace {

std::size_t
factorial(int m)
{
    std::size_t f = 1;
    for (int i = 2; i <= m; ++i)
        f *= static_cast<std::size_t>(i);
    return f;
}

/** i-th permutation of {0..m-1} in lexicographic order (Lehmer decode). */
Permutation
nth_permutation(int m, std::size_t idx)
{
    std::vector<int> pool(static_cast<std::size_t>(m));
    std::iota(pool.begin(), pool.end(), 0);
    Permutation out;
    out.reserve(static_cast<std::size_t>(m));
    std::size_t f = factorial(m);
    for (int i = m; i >= 1; --i) {
        f /= static_cast<std::size_t>(i);
        std::size_t q = idx / f;
        idx %= f;
        out.push_back(pool[q]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(q));
    }
    return out;
}

/** Lexicographic rank of a permutation (Lehmer encode). */
std::size_t
permutation_rank(const Permutation& p)
{
    int m = static_cast<int>(p.size());
    std::size_t rank = 0;
    std::size_t f = factorial(m);
    std::vector<int> pool(p.size());
    std::iota(pool.begin(), pool.end(), 0);
    for (int i = 0; i < m; ++i) {
        f /= static_cast<std::size_t>(m - i);
        auto it = std::find(pool.begin(), pool.end(), p[static_cast<std::size_t>(i)]);
        rank += static_cast<std::size_t>(it - pool.begin()) * f;
        pool.erase(it);
    }
    return rank;
}

}  // namespace

PermutationParameter::PermutationParameter(std::string name, int m,
                                           PermutationMetric metric)
    : Parameter(std::move(name), ParamKind::kPermutation),
      m_(m), metric_(metric), factorial_(factorial(m))
{
    assert(m >= 1 && m <= 8 && "permutation enumeration limited to m <= 8");
}

std::size_t
PermutationParameter::num_values() const
{
    return factorial_;
}

ParamValue
PermutationParameter::value_at(std::size_t i) const
{
    assert(i < factorial_);
    return nth_permutation(m_, i);
}

std::size_t
PermutationParameter::index_of(const ParamValue& v) const
{
    const Permutation& p = as_permutation(v);
    if (static_cast<int>(p.size()) != m_)
        return factorial_;
    return permutation_rank(p);
}

ParamValue
PermutationParameter::sample(RngEngine& rng) const
{
    return rng.permutation(m_);
}

std::vector<ParamValue>
PermutationParameter::neighbors(const ParamValue& v, RngEngine& rng) const
{
    const Permutation& p = as_permutation(v);
    std::vector<ParamValue> out;
    // All adjacent transpositions...
    for (int i = 0; i + 1 < m_; ++i) {
        Permutation q = p;
        std::swap(q[static_cast<std::size_t>(i)],
                  q[static_cast<std::size_t>(i) + 1]);
        out.push_back(std::move(q));
    }
    // ...plus two random non-adjacent swaps for longer-range moves.
    for (int k = 0; k < 2 && m_ > 2; ++k) {
        std::size_t i = rng.index(static_cast<std::size_t>(m_));
        std::size_t j = rng.index(static_cast<std::size_t>(m_));
        if (i == j)
            continue;
        Permutation q = p;
        std::swap(q[i], q[j]);
        out.push_back(std::move(q));
    }
    return out;
}

double
PermutationParameter::distance(const ParamValue& a, const ParamValue& b) const
{
    return permutation_distance(as_permutation(a), as_permutation(b), metric_);
}

double
PermutationParameter::numeric_value(const ParamValue&) const
{
    throw std::runtime_error(
        "permutation parameter '" + name() +
        "' cannot appear in a scalar constraint expression");
}

void
PermutationParameter::encode(const ParamValue& v, std::vector<double>& out) const
{
    const Permutation& p = as_permutation(v);
    double denom = std::max(1, m_ - 1);
    for (int x : p)
        out.push_back(static_cast<double>(x) / denom);
}

}  // namespace baco
