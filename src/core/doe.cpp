#include "core/doe.hpp"

#include <unordered_set>

namespace baco {

std::vector<Configuration>
doe_random_sample(const SearchSpace& space, const ChainOfTrees* cot, int n,
                  RngEngine& rng, bool uniform_leaves)
{
    std::vector<Configuration> out;
    std::unordered_set<std::size_t> seen;
    int tries = 0;
    const int max_tries = 200 * n + 1000;
    while (static_cast<int>(out.size()) < n && tries < max_tries) {
        ++tries;
        Configuration c;
        if (cot) {
            c = cot->sample(rng, uniform_leaves);
        } else {
            auto s = space.sample_feasible(rng, 1000);
            if (!s)
                continue;
            c = std::move(*s);
        }
        std::size_t h = config_hash(c);
        if (seen.insert(h).second)
            out.push_back(std::move(c));
    }
    return out;
}

}  // namespace baco
