#ifndef BACO_CORE_DOE_HPP_
#define BACO_CORE_DOE_HPP_

/**
 * @file
 * Design of experiments: the initial uniform sampling phase that seeds the
 * predictive models (paper Sec. 3, "Initial Phase").
 */

#include <vector>

#include "core/chain_of_trees.hpp"
#include "core/search_space.hpp"

namespace baco {

/**
 * Draw n feasible configurations, deduplicated where the space allows it.
 *
 * When cot is non-null, samples come from the Chain-of-Trees
 * (uniform_leaves selects BaCO's bias-free scheme vs ATF's biased walk);
 * otherwise rejection sampling against the known constraints is used.
 * Returns fewer than n configurations only when the feasible set itself is
 * smaller than n (or rejection sampling keeps failing).
 */
std::vector<Configuration> doe_random_sample(const SearchSpace& space,
                                             const ChainOfTrees* cot, int n,
                                             RngEngine& rng,
                                             bool uniform_leaves = true);

}  // namespace baco

#endif  // BACO_CORE_DOE_HPP_
