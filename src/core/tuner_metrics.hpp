#ifndef BACO_CORE_TUNER_METRICS_HPP_
#define BACO_CORE_TUNER_METRICS_HPP_

/**
 * @file
 * The tuner-layer instrumentation handles, shared by every AskTellTuner
 * implementation — the model-based core tuner and the baseline tuners
 * (random search, OpenTuner-like, Ytopt-like) all feed the same
 * `tuner.*` metrics, so per-method latency accounting (and the
 * suggest_latency bench's instrumentation pin) holds regardless of
 * which method a study runs.
 *
 * The registry returns one stable object per name, so each translation
 * unit's get() refers to the same counters; the struct only caches the
 * references to keep the hot suggest/observe paths registration-free.
 */

#include "obs/metrics.hpp"

namespace baco {

/** Per-phase instrumentation handles, registered once per process. */
struct TunerMetrics {
  obs::Histogram& suggest = hist("tuner.suggest_seconds");
  obs::Histogram& observe = hist("tuner.observe_seconds");
  obs::Histogram& doe = hist("tuner.doe_seconds");
  obs::Histogram& model_fit = hist("tuner.model_fit_seconds");
  obs::Histogram& feasibility_fit = hist("tuner.feasibility_fit_seconds");
  obs::Histogram& acquisition = hist("tuner.acquisition_seconds");
  obs::Counter& suggestions = counter("tuner.suggestions_total");
  obs::Counter& observations = counter("tuner.observations_total");
  /** Incremental surrogate refresh accounting: O(n^2) factor appends vs
   *  full O(n^3) hyperparameter refits (core tuner only). */
  obs::Counter& model_extends = counter("tuner.model_extends_total");
  obs::Counter& model_refits = counter("tuner.model_refits_total");

  static TunerMetrics& get()
  {
      static TunerMetrics m;
      return m;
  }

 private:
  static obs::Histogram& hist(const char* name)
  {
      return obs::MetricsRegistry::global().histogram(name);
  }
  static obs::Counter& counter(const char* name)
  {
      return obs::MetricsRegistry::global().counter(name);
  }
};

}  // namespace baco

#endif  // BACO_CORE_TUNER_METRICS_HPP_
