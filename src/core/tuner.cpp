#include "core/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "core/acquisition.hpp"
#include "core/chain_of_trees.hpp"
#include "core/feasibility_model.hpp"
#include "core/tuner_metrics.hpp"
#include "obs/trace.hpp"
#include "rf/random_forest.hpp"

namespace baco {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

/** Everything the loop carries between suggest()/observe() calls. */
struct Tuner::State {
  RngEngine rng;
  std::unique_ptr<ChainOfTrees> cot;
  std::unordered_set<std::size_t> seen;
  GpModel gp;
  RandomForest rf_surrogate;
  FeasibilityModel feasibility;

  State(const SearchSpace& space, const TunerOptions& opt)
      : rng(opt.seed),
        gp(space, opt.gp),
        rf_surrogate([] {
            ForestOptions o;
            o.task = TreeTask::kRegression;
            o.num_trees = 40;
            return o;
        }()),
        feasibility(space)
  {
      // Known constraints: Chain-of-Trees when possible.
      if (opt.use_cot && space.has_constraints() &&
          space.is_fully_discrete()) {
          try {
              cot = std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
          } catch (const std::runtime_error&) {
              cot.reset();  // fall back to rejection sampling
          }
      }
  }
};

Tuner::Tuner(const SearchSpace& space, TunerOptions opt)
    : AskTellBase(opt.budget, opt.seed), space_(&space), opt_(opt)
{
}

Tuner::~Tuner() = default;

Tuner::State&
Tuner::state()
{
    if (!state_)
        state_ = std::make_unique<State>(*space_, opt_);
    return *state_;
}

Configuration
Tuner::random_unique(State& st)
{
    const SearchSpace& space = *space_;
    for (int t = 0; t < 500; ++t) {
        Configuration c;
        if (st.cot) {
            c = st.cot->sample(st.rng, opt_.cot_uniform_leaves);
        } else {
            auto s = space.sample_feasible(st.rng, 500);
            if (!s)
                continue;
            c = std::move(*s);
        }
        if (!st.seen.count(config_hash(c)))
            return c;
    }
    // The space may be (nearly) exhausted: allow a duplicate.
    if (st.cot)
        return st.cot->sample(st.rng, opt_.cot_uniform_leaves);
    auto s = space.sample_feasible(st.rng, 5000);
    if (s)
        return *s;
    return space.sample_unconstrained(st.rng);
}

Configuration
Tuner::propose(State& st, const std::vector<Configuration>& fantasy_configs,
               double fantasy_value)
{
    const SearchSpace& space = *space_;

    // Gather feasible training data, plus the batch's fantasy points.
    std::vector<Configuration> xs;
    std::vector<double> ys;
    bool log_ok = opt_.log_objective;
    for (const Observation& o : history_.observations) {
        if (!o.feasible)
            continue;
        xs.push_back(o.config);
        ys.push_back(o.value);
        if (o.value <= 0.0)
            log_ok = false;
    }
    if (xs.size() < 2)
        return random_unique(st);
    for (const Configuration& c : fantasy_configs) {
        xs.push_back(c);
        ys.push_back(fantasy_value);
        if (fantasy_value <= 0.0)
            log_ok = false;
    }
    if (log_ok) {
        for (double& y : ys)
            y = std::log(y);
    }

    // Fit the value model.
    bool use_gp = opt_.surrogate == TunerOptions::Surrogate::kGaussianProcess;
    {
        obs::ScopedTimer timer(TunerMetrics::get().model_fit,
                               "tuner.model_fit", "tuner");
        if (use_gp) {
            st.gp.fit(xs, ys, st.rng);
        } else {
            std::vector<std::vector<double>> rf_x;
            rf_x.reserve(xs.size());
            for (const Configuration& c : xs)
                rf_x.push_back(space.encode(c));
            st.rf_surrogate.fit(rf_x, ys, st.rng);
        }
    }

    // Fit the feasibility model (on real observations only).
    if (opt_.use_feasibility_model) {
        obs::ScopedTimer timer(TunerMetrics::get().feasibility_fit,
                               "tuner.feasibility_fit", "tuner");
        st.feasibility.fit(history_.observations, st.rng);
    }

    // Minimum feasibility threshold eps_f, resampled each iteration
    // with P(eps_f = 0) > 0 (Sec. 4.2).
    double eps_f = 0.0;
    if (st.feasibility.active() && opt_.use_feasibility_limit)
        eps_f = st.rng.bernoulli(1.0 / 3.0) ? 0.0 : st.rng.uniform(0.0, 0.6);

    double best = *std::min_element(ys.begin(), ys.end());

    ScoreFn score = [&](const Configuration& c) -> double {
        if (st.seen.count(config_hash(c)))
            return -2.0;  // worse than any admissible candidate
        double mean, var;
        if (use_gp) {
            GpPrediction p = st.gp.predict(c);
            mean = p.mean;
            var = p.var;
        } else {
            ForestPrediction p =
                st.rf_surrogate.predict_with_variance(space.encode(c));
            mean = p.mean;
            var = p.var;
        }
        double pf = opt_.use_feasibility_model ? st.feasibility.probability(c)
                                               : 1.0;
        double s = constrained_ei(mean, var, best, pf, eps_f);
        if (s > 0.0 && opt_.user_prior) {
            double exponent =
                opt_.prior_strength /
                static_cast<double>(std::max<std::size_t>(
                    1, history_.size() + fantasy_configs.size()));
            s *= std::pow(std::max(opt_.user_prior(c), 1e-9), exponent);
        }
        return s;
    };

    LocalSearchOptions ls = opt_.ls;
    ls.cot_uniform_leaves = opt_.cot_uniform_leaves;
    ls.hill_climb = opt_.local_search;
    std::optional<Configuration> cand;
    {
        obs::ScopedTimer timer(TunerMetrics::get().acquisition,
                               "tuner.acquisition", "tuner");
        cand = local_search_maximize(space, st.cot.get(), score, st.rng, ls);
    }

    if (!cand || st.seen.count(config_hash(*cand)))
        return random_unique(st);
    return std::move(*cand);
}

std::vector<Configuration>
Tuner::suggest(int n)
{
    return suggest_with_pending(n, {});
}

std::vector<Configuration>
Tuner::suggest_with_pending(int n, const std::vector<Configuration>& pending)
{
    auto t0 = Clock::now();
    State& st = state();
    n = std::min(n, remaining() - static_cast<int>(pending.size()));
    std::vector<Configuration> out;
    if (n <= 0)
        return out;
    out.reserve(static_cast<std::size_t>(n));

    const int doe_target = std::min(opt_.doe_samples, opt_.budget);

    // Constant liar: the incumbent value stands in for every fantasy —
    // the in-flight evaluations handed in by an asynchronous driver and
    // the batch members proposed so far — pushing new proposals away
    // from the same regions.
    double lie = std::numeric_limits<double>::infinity();
    for (const Observation& o : history_.observations) {
        if (o.feasible && o.value < lie)
            lie = o.value;
    }

    std::vector<Configuration> fantasies = pending;
    // Re-marking pending as seen is a no-op mid-run (suggesting them
    // inserted the hashes already) but repairs the dedup set after a
    // checkpoint resume, where pending never reached the history.
    for (const Configuration& c : pending)
        st.seen.insert(config_hash(c));

    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer suggest_timer(tm.suggest, "tuner.suggest", "tuner");
    for (int k = 0; k < n; ++k) {
        std::size_t virtual_evals = history_.size() + fantasies.size();
        Configuration c;
        if (virtual_evals < static_cast<std::size_t>(doe_target)) {
            obs::ScopedTimer timer(tm.doe, "tuner.doe", "tuner");
            c = random_unique(st);
        } else {
            c = propose(st, fantasies, lie);
        }
        st.seen.insert(config_hash(c));
        out.push_back(c);
        fantasies.push_back(std::move(c));
    }
    tm.suggestions.add(static_cast<std::uint64_t>(out.size()));
    history_.tuner_seconds += seconds_since(t0);
    return out;
}

void
Tuner::observe(const std::vector<Configuration>& configs,
               const std::vector<EvalResult>& results)
{
    auto t0 = Clock::now();
    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer observe_timer(tm.observe, "tuner.observe", "tuner");
    State& st = state();
    for (std::size_t i = 0; i < configs.size() && i < results.size(); ++i) {
        st.seen.insert(config_hash(configs[i]));
        history_.add(configs[i], results[i]);
        tm.observations.add();
    }
    history_.tuner_seconds += seconds_since(t0);
}

void
Tuner::reset_sampler()
{
    state_.reset();
}

std::string
Tuner::sampler_state() const
{
    return rng_state_string(state_ ? &state_->rng : nullptr);
}

bool
Tuner::restore(const TuningHistory& history, const std::string& sampler_state)
{
    state_.reset();
    history_ = history;
    State& st = state();
    for (const Observation& o : history_.observations)
        st.seen.insert(config_hash(o.config));
    if (!restore_rng(st.rng, sampler_state)) {
        // Don't leave a half-restored tuner behind.
        state_.reset();
        history_ = TuningHistory{};
        return false;
    }
    return true;
}

TuningHistory
Tuner::run(const BlackBoxFn& objective)
{
    state_.reset();
    history_ = TuningHistory{};
    return drive_serial(*this, objective);
}

}  // namespace baco
