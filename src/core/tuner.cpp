#include "core/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "core/acquisition.hpp"
#include "core/chain_of_trees.hpp"
#include "core/feasibility_model.hpp"
#include "core/tuner_metrics.hpp"
#include "obs/trace.hpp"
#include "rf/random_forest.hpp"

namespace baco {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

/** Everything the loop carries between suggest()/observe() calls. */
struct Tuner::State {
  RngEngine rng;
  std::unique_ptr<ChainOfTrees> cot;
  std::unordered_set<std::size_t> seen;
  GpModel gp;
  RandomForest rf_surrogate;
  FeasibilityModel feasibility;

  // --- Incremental-refresh bookkeeping (TunerOptions::incremental_fit). ---
  /** Feasible observations currently inside the GP (the model "base"). */
  std::size_t model_real = 0;
  /** Hashes of the fantasy rows appended past the base, in order. */
  std::vector<std::size_t> model_fantasy_hashes;
  /** New observations absorbed via extend() since the last full refit. */
  int tells_since_refit = 0;
  /** Per-point NLL right after the last full refit (drift reference). */
  double nll_after_refit = 0.0;
  /** Log-objective transform in effect at the last full fit. */
  bool model_log = false;
  /** False until the first full fit (and after any inconsistency). */
  bool model_valid = false;
  /** History size the feasibility model was last fit on. */
  std::size_t feas_fitted_on = static_cast<std::size_t>(-1);

  State(const SearchSpace& space, const TunerOptions& opt)
      : rng(opt.seed),
        gp(space, opt.gp),
        rf_surrogate([] {
            ForestOptions o;
            o.task = TreeTask::kRegression;
            o.num_trees = 40;
            return o;
        }()),
        feasibility(space)
  {
      // Known constraints: Chain-of-Trees when possible.
      if (opt.use_cot && space.has_constraints() &&
          space.is_fully_discrete()) {
          try {
              cot = std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
          } catch (const std::runtime_error&) {
              cot.reset();  // fall back to rejection sampling
          }
      }
  }
};

Tuner::Tuner(const SearchSpace& space, TunerOptions opt)
    : AskTellBase(opt.budget, opt.seed), space_(&space), opt_(opt)
{
}

Tuner::~Tuner() = default;

Tuner::State&
Tuner::state()
{
    if (!state_)
        state_ = std::make_unique<State>(*space_, opt_);
    return *state_;
}

Configuration
Tuner::random_unique(State& st)
{
    const SearchSpace& space = *space_;
    for (int t = 0; t < 500; ++t) {
        Configuration c;
        if (st.cot) {
            c = st.cot->sample(st.rng, opt_.cot_uniform_leaves);
        } else {
            auto s = space.sample_feasible(st.rng, 500);
            if (!s)
                continue;
            c = std::move(*s);
        }
        if (!st.seen.count(config_hash(c)))
            return c;
    }
    // The space may be (nearly) exhausted: allow a duplicate.
    if (st.cot)
        return st.cot->sample(st.rng, opt_.cot_uniform_leaves);
    auto s = space.sample_feasible(st.rng, 5000);
    if (s)
        return *s;
    return space.sample_unconstrained(st.rng);
}

Configuration
Tuner::propose(State& st, const std::vector<Configuration>& fantasy_configs,
               double fantasy_value)
{
    const SearchSpace& space = *space_;

    // Gather feasible training data, plus the batch's fantasy points.
    std::vector<Configuration> xs;
    std::vector<double> ys;
    bool log_ok = opt_.log_objective;
    for (const Observation& o : history_.observations) {
        if (!o.feasible)
            continue;
        xs.push_back(o.config);
        ys.push_back(o.value);
        if (o.value <= 0.0)
            log_ok = false;
    }
    if (xs.size() < 2)
        return random_unique(st);
    for (const Configuration& c : fantasy_configs) {
        xs.push_back(c);
        ys.push_back(fantasy_value);
        if (fantasy_value <= 0.0)
            log_ok = false;
    }
    if (log_ok) {
        for (double& y : ys)
            y = std::log(y);
    }
    std::size_t n_real = xs.size() - fantasy_configs.size();

    // Fit / refresh the value model.
    bool use_gp = opt_.surrogate == TunerOptions::Surrogate::kGaussianProcess;
    {
        obs::ScopedTimer timer(TunerMetrics::get().model_fit,
                               "tuner.model_fit", "tuner");
        if (use_gp && opt_.incremental_fit) {
            sync_gp(st, xs, ys, n_real, log_ok);
        } else if (use_gp) {
            st.gp.fit(xs, ys, st.rng);
        } else {
            std::vector<std::vector<double>> rf_x;
            rf_x.reserve(xs.size());
            for (const Configuration& c : xs)
                rf_x.push_back(space.encode(c));
            st.rf_surrogate.fit(rf_x, ys, st.rng);
        }
    }

    // Fit the feasibility model (on real observations only). On the
    // incremental path, skip the refit when no observation arrived since
    // the last one — repeat calls inside one constant-liar batch would
    // re-train the forest on identical data.
    if (opt_.use_feasibility_model &&
        (!opt_.incremental_fit ||
         st.feas_fitted_on != history_.observations.size())) {
        obs::ScopedTimer timer(TunerMetrics::get().feasibility_fit,
                               "tuner.feasibility_fit", "tuner");
        st.feasibility.fit(history_.observations, st.rng);
        st.feas_fitted_on = history_.observations.size();
    }

    // Minimum feasibility threshold eps_f, resampled each iteration
    // with P(eps_f = 0) > 0 (Sec. 4.2).
    double eps_f = 0.0;
    if (st.feasibility.active() && opt_.use_feasibility_limit)
        eps_f = st.rng.bernoulli(1.0 / 3.0) ? 0.0 : st.rng.uniform(0.0, 0.6);

    double best = *std::min_element(ys.begin(), ys.end());

    ScoreFn score = [&](const Configuration& c) -> double {
        if (st.seen.count(config_hash(c)))
            return -2.0;  // worse than any admissible candidate
        double mean, var;
        if (use_gp) {
            GpPrediction p = st.gp.predict(c);
            mean = p.mean;
            var = p.var;
        } else {
            ForestPrediction p =
                st.rf_surrogate.predict_with_variance(space.encode(c));
            mean = p.mean;
            var = p.var;
        }
        double pf = opt_.use_feasibility_model ? st.feasibility.probability(c)
                                               : 1.0;
        double s = constrained_ei(mean, var, best, pf, eps_f);
        if (s > 0.0 && opt_.user_prior) {
            double exponent =
                opt_.prior_strength /
                static_cast<double>(std::max<std::size_t>(
                    1, history_.size() + fantasy_configs.size()));
            s *= std::pow(std::max(opt_.user_prior(c), 1e-9), exponent);
        }
        return s;
    };

    LocalSearchOptions ls = opt_.ls;
    ls.cot_uniform_leaves = opt_.cot_uniform_leaves;
    ls.hill_climb = opt_.local_search;
    std::optional<Configuration> cand;
    {
        obs::ScopedTimer timer(TunerMetrics::get().acquisition,
                               "tuner.acquisition", "tuner");
        cand = local_search_maximize(space, st.cot.get(), score, st.rng, ls);
    }

    if (!cand || st.seen.count(config_hash(*cand)))
        return random_unique(st);
    return std::move(*cand);
}

void
Tuner::sync_gp(State& st, const std::vector<Configuration>& xs,
               const std::vector<double>& ys, std::size_t n_real, bool log_ok)
{
    TunerMetrics& tm = TunerMetrics::get();
    std::size_t n_fant = xs.size() - n_real;

    // Full refit on real observations only: fantasies are appended after,
    // so the hyperparameters and the output standardization never depend
    // on the constant-liar values.
    auto full_refit = [&]() {
        std::vector<Configuration> rx(xs.begin(),
                                      xs.begin() + static_cast<long>(n_real));
        std::vector<double> ry(ys.begin(),
                               ys.begin() + static_cast<long>(n_real));
        st.gp.fit(rx, ry, st.rng);
        st.model_real = n_real;
        st.model_fantasy_hashes.clear();
        st.tells_since_refit = 0;
        st.nll_after_refit = st.gp.data_nll_per_point();
        st.model_log = log_ok;
        st.model_valid = true;
        tm.model_refits.add();
    };

    bool need_full =
        !st.model_valid || st.model_log != log_ok ||
        st.tells_since_refit >= opt_.refit_every ||
        st.gp.size() != st.model_real + st.model_fantasy_hashes.size() ||
        st.model_real > n_real;

    if (!need_full) {
        // Fantasy rows sit after the real block, so absorbing new real
        // observations (or a diverged fantasy list) first rolls the model
        // back to its real-only base.
        std::size_t keep = 0;
        if (n_real == st.model_real) {
            while (keep < st.model_fantasy_hashes.size() && keep < n_fant &&
                   st.model_fantasy_hashes[keep] ==
                       config_hash(xs[n_real + keep]))
                ++keep;
        }
        if (keep < st.model_fantasy_hashes.size()) {
            st.gp.truncate(st.model_real + keep);
            st.model_fantasy_hashes.resize(keep);
        }

        bool appended_real = false;
        for (std::size_t i = st.model_real; i < n_real && !need_full; ++i) {
            if (st.gp.extend(xs[i], ys[i])) {
                st.model_real = i + 1;
                ++st.tells_since_refit;
                appended_real = true;
                tm.model_extends.add();
            } else {
                need_full = true;  // bordered matrix not SPD: refit
            }
        }
        // Hyperparameter-staleness check: the frozen-theta likelihood of
        // the grown training set drifting past the threshold means the
        // cheap path is no longer describing the data.
        if (!need_full && appended_real &&
            st.gp.data_nll_per_point() - st.nll_after_refit >
                opt_.refit_nll_drift)
            need_full = true;
    }

    if (need_full)
        full_refit();

    // Append the missing fantasy suffix. The model must stay a pure
    // function of (real prefix, hyperparameters, appends) — restore_gp
    // rebuilds it from exactly that — so a refusal never triggers a fit
    // that mixes liar values into the hyperparameters or the output
    // standardization. Instead, refit the real block once and retry; a
    // fantasy that refuses even a fresh factor is a near-duplicate whose
    // repulsive effect on the acquisition the existing rows already
    // provide, so it is simply left out of the model.
    bool refit_retry = false;
    for (std::size_t i = st.model_fantasy_hashes.size(); i < n_fant; ++i) {
        const Configuration& c = xs[n_real + i];
        if (st.gp.extend(c, ys[n_real + i])) {
            st.model_fantasy_hashes.push_back(config_hash(c));
            tm.model_extends.add();
        } else if (!refit_retry) {
            refit_retry = true;
            full_refit();  // drops fantasy rows; restart their appends
            i = static_cast<std::size_t>(-1);
        }
    }
}

std::vector<Configuration>
Tuner::suggest(int n)
{
    return suggest_with_pending(n, {});
}

std::vector<Configuration>
Tuner::suggest_with_pending(int n, const std::vector<Configuration>& pending)
{
    auto t0 = Clock::now();
    State& st = state();
    n = std::min(n, remaining() - static_cast<int>(pending.size()));
    std::vector<Configuration> out;
    if (n <= 0)
        return out;
    out.reserve(static_cast<std::size_t>(n));

    const int doe_target = std::min(opt_.doe_samples, opt_.budget);

    // Constant liar: the incumbent value stands in for every fantasy —
    // the in-flight evaluations handed in by an asynchronous driver and
    // the batch members proposed so far — pushing new proposals away
    // from the same regions.
    double lie = std::numeric_limits<double>::infinity();
    for (const Observation& o : history_.observations) {
        if (o.feasible && o.value < lie)
            lie = o.value;
    }

    std::vector<Configuration> fantasies = pending;
    // Re-marking pending as seen is a no-op mid-run (suggesting them
    // inserted the hashes already) but repairs the dedup set after a
    // checkpoint resume, where pending never reached the history.
    for (const Configuration& c : pending)
        st.seen.insert(config_hash(c));

    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer suggest_timer(tm.suggest, "tuner.suggest", "tuner");
    for (int k = 0; k < n; ++k) {
        std::size_t virtual_evals = history_.size() + fantasies.size();
        Configuration c;
        if (virtual_evals < static_cast<std::size_t>(doe_target)) {
            obs::ScopedTimer timer(tm.doe, "tuner.doe", "tuner");
            c = random_unique(st);
        } else {
            c = propose(st, fantasies, lie);
        }
        st.seen.insert(config_hash(c));
        out.push_back(c);
        fantasies.push_back(std::move(c));
    }
    // Roll the incremental model back to its real-observation base: the
    // leading factor block is untouched by appends, so dropping the fantasy
    // rows restores the exact pre-batch posterior for free.
    if (opt_.incremental_fit && !st.model_fantasy_hashes.empty()) {
        st.gp.truncate(st.model_real);
        st.model_fantasy_hashes.clear();
    }
    tm.suggestions.add(static_cast<std::uint64_t>(out.size()));
    history_.tuner_seconds += seconds_since(t0);
    return out;
}

void
Tuner::observe(const std::vector<Configuration>& configs,
               const std::vector<EvalResult>& results)
{
    auto t0 = Clock::now();
    TunerMetrics& tm = TunerMetrics::get();
    obs::ScopedTimer observe_timer(tm.observe, "tuner.observe", "tuner");
    State& st = state();
    for (std::size_t i = 0; i < configs.size() && i < results.size(); ++i) {
        st.seen.insert(config_hash(configs[i]));
        history_.add(configs[i], results[i]);
        tm.observations.add();
    }
    history_.tuner_seconds += seconds_since(t0);
}

void
Tuner::reset_sampler()
{
    state_.reset();
}

std::string
Tuner::sampler_state() const
{
    // RNG stream position, then (incremental GP mode only) the surrogate
    // bookkeeping: base size of the last full refit, appends since, the
    // drift reference and the frozen hyperparameters. That is enough for
    // restore() to rebuild the model bit-for-bit — without it a resumed
    // run would be forced into an extra full refit, shifting the refit
    // cadence (and the RNG draws refits consume) off the uninterrupted
    // run's. Doubles travel as hexfloats so the round trip is exact.
    std::string out = rng_state_string(state_ ? &state_->rng : nullptr);
    if (!state_ || !opt_.incremental_fit ||
        opt_.surrogate != TunerOptions::Surrogate::kGaussianProcess ||
        !state_->model_valid) {
        return out;
    }
    const State& st = *state_;
    char buf[64];
    auto hex = [&buf](double v) {
        std::snprintf(buf, sizeof buf, "%a", v);
        return std::string(buf);
    };
    out += ";gp=";
    out += std::to_string(st.model_real) + ',';
    out += std::to_string(st.tells_since_refit) + ',';
    out += st.model_log ? "1," : "0,";
    out += hex(st.nll_after_refit);
    for (double v : st.gp.hyperparams().to_vector()) {
        out += ',';
        out += hex(v);
    }
    return out;
}

bool
Tuner::restore_gp(State& st, const std::string& seg)
{
    std::vector<std::string> parts;
    std::size_t at = 0;
    while (at <= seg.size()) {
        std::size_t comma = seg.find(',', at);
        parts.push_back(seg.substr(
            at, comma == std::string::npos ? std::string::npos : comma - at));
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    std::size_t d = space_->num_params();
    if (parts.size() != 4 + d + 2)
        return false;

    char* end = nullptr;
    std::size_t model_real = std::strtoull(parts[0].c_str(), &end, 10);
    if (end == parts[0].c_str() || *end != '\0')
        return false;
    long tells = std::strtol(parts[1].c_str(), &end, 10);
    if (end == parts[1].c_str() || *end != '\0')
        return false;
    if (parts[2] != "0" && parts[2] != "1")
        return false;
    bool model_log = parts[2] == "1";
    std::vector<double> nums;
    for (std::size_t i = 3; i < parts.size(); ++i) {
        double v = std::strtod(parts[i].c_str(), &end);
        if (end == parts[i].c_str() || *end != '\0' || !std::isfinite(v))
            return false;
        nums.push_back(v);
    }
    if (tells < 0 || static_cast<std::size_t>(tells) > model_real ||
        model_real < 2 || model_real - static_cast<std::size_t>(tells) < 2)
        return false;

    // The transformed feasible prefix the checkpointed model was built on.
    std::vector<Configuration> xs;
    std::vector<double> ys;
    for (const Observation& o : history_.observations) {
        if (!o.feasible)
            continue;
        if (model_log && o.value <= 0.0)
            return false;
        xs.push_back(o.config);
        ys.push_back(model_log ? std::log(o.value) : o.value);
        if (xs.size() == model_real)
            break;
    }
    if (xs.size() < model_real)
        return false;

    std::size_t base = model_real - static_cast<std::size_t>(tells);
    GpHyperparams hp = GpHyperparams::from_vector(
        {nums.begin() + 1, nums.end()});
    st.gp.fit_with_hyperparams(
        {xs.begin(), xs.begin() + static_cast<long>(base)},
        {ys.begin(), ys.begin() + static_cast<long>(base)}, hp);
    for (std::size_t i = base; i < model_real; ++i) {
        if (!st.gp.extend(xs[i], ys[i]))
            return false;  // succeeded live; a failure here means corruption
    }
    st.model_real = model_real;
    st.model_fantasy_hashes.clear();
    st.tells_since_refit = static_cast<int>(tells);
    st.nll_after_refit = nums[0];
    st.model_log = model_log;
    st.model_valid = true;
    return true;
}

bool
Tuner::restore(const TuningHistory& history, const std::string& sampler_state)
{
    state_.reset();
    history_ = history;
    State& st = state();
    for (const Observation& o : history_.observations)
        st.seen.insert(config_hash(o.config));
    std::size_t semi = sampler_state.find(';');
    bool ok = restore_rng(st.rng, sampler_state.substr(0, semi));
    if (ok && semi != std::string::npos) {
        std::string seg = sampler_state.substr(semi + 1);
        if (seg.compare(0, 3, "gp=") == 0) {
            // The segment only applies when this tuner runs the
            // incremental GP path; otherwise it is valid but unused.
            if (opt_.incremental_fit &&
                opt_.surrogate == TunerOptions::Surrogate::kGaussianProcess)
                ok = restore_gp(st, seg.substr(3));
        } else {
            ok = false;
        }
    }
    if (!ok) {
        // Don't leave a half-restored tuner behind.
        state_.reset();
        history_ = TuningHistory{};
        return false;
    }
    return true;
}

TuningHistory
Tuner::run(const BlackBoxFn& objective)
{
    state_.reset();
    history_ = TuningHistory{};
    return drive_serial(*this, objective);
}

}  // namespace baco
