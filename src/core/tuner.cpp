#include "core/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "core/acquisition.hpp"
#include "core/doe.hpp"
#include "core/feasibility_model.hpp"
#include "rf/random_forest.hpp"

namespace baco {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

Tuner::Tuner(const SearchSpace& space, TunerOptions opt)
    : space_(&space), opt_(opt)
{
}

TuningHistory
Tuner::run(const BlackBoxFn& objective)
{
    const SearchSpace& space = *space_;
    RngEngine rng(opt_.seed);
    RngEngine eval_rng = rng.split();

    TuningHistory history;
    auto run_start = Clock::now();

    // ---- Known constraints: Chain-of-Trees when possible. ----
    std::unique_ptr<ChainOfTrees> cot;
    if (opt_.use_cot && space.has_constraints() && space.is_fully_discrete()) {
        try {
            cot = std::make_unique<ChainOfTrees>(ChainOfTrees::build(space));
        } catch (const std::runtime_error&) {
            cot.reset();  // fall back to rejection sampling
        }
    }

    std::unordered_set<std::size_t> seen;
    auto evaluate = [&](Configuration c) {
        seen.insert(config_hash(c));
        auto t0 = Clock::now();
        EvalResult r = objective(c, eval_rng);
        history.eval_seconds += seconds_since(t0);
        history.add(std::move(c), r);
    };

    auto random_unique = [&]() -> Configuration {
        for (int t = 0; t < 500; ++t) {
            Configuration c;
            if (cot) {
                c = cot->sample(rng, opt_.cot_uniform_leaves);
            } else {
                auto s = space.sample_feasible(rng, 500);
                if (!s)
                    continue;
                c = std::move(*s);
            }
            if (!seen.count(config_hash(c)))
                return c;
        }
        // The space may be (nearly) exhausted: allow a duplicate.
        if (cot)
            return cot->sample(rng, opt_.cot_uniform_leaves);
        auto s = space.sample_feasible(rng, 5000);
        if (s)
            return *s;
        return space.sample_unconstrained(rng);
    };

    // ---- Initial phase (DoE). ----
    int doe_n = std::min(opt_.doe_samples, opt_.budget);
    for (Configuration& c :
         doe_random_sample(space, cot.get(), doe_n, rng,
                           opt_.cot_uniform_leaves)) {
        if (static_cast<int>(history.size()) >= opt_.budget)
            break;
        evaluate(std::move(c));
    }

    // ---- Models. ----
    GpModel gp(space, opt_.gp);
    RandomForest rf_surrogate([] {
        ForestOptions o;
        o.task = TreeTask::kRegression;
        o.num_trees = 40;
        return o;
    }());
    FeasibilityModel feasibility(space);

    // ---- Learning phase. ----
    while (static_cast<int>(history.size()) < opt_.budget) {
        // Gather feasible training data.
        std::vector<Configuration> xs;
        std::vector<double> ys;
        bool log_ok = opt_.log_objective;
        for (const Observation& o : history.observations) {
            if (!o.feasible)
                continue;
            xs.push_back(o.config);
            ys.push_back(o.value);
            if (o.value <= 0.0)
                log_ok = false;
        }
        if (xs.size() < 2) {
            evaluate(random_unique());
            continue;
        }
        if (log_ok) {
            for (double& y : ys)
                y = std::log(y);
        }

        // Fit the value model.
        bool use_gp = opt_.surrogate == TunerOptions::Surrogate::kGaussianProcess;
        std::vector<std::vector<double>> rf_x;
        if (use_gp) {
            gp.fit(xs, ys, rng);
        } else {
            rf_x.clear();
            rf_x.reserve(xs.size());
            for (const Configuration& c : xs)
                rf_x.push_back(space.encode(c));
            rf_surrogate.fit(rf_x, ys, rng);
        }

        // Fit the feasibility model.
        if (opt_.use_feasibility_model)
            feasibility.fit(history.observations, rng);

        // Minimum feasibility threshold eps_f, resampled each iteration
        // with P(eps_f = 0) > 0 (Sec. 4.2).
        double eps_f = 0.0;
        if (feasibility.active() && opt_.use_feasibility_limit)
            eps_f = rng.bernoulli(1.0 / 3.0) ? 0.0 : rng.uniform(0.0, 0.6);

        double best = *std::min_element(ys.begin(), ys.end());

        ScoreFn score = [&](const Configuration& c) -> double {
            if (seen.count(config_hash(c)))
                return -2.0;  // worse than any admissible candidate
            double mean, var;
            if (use_gp) {
                GpPrediction p = gp.predict(c);
                mean = p.mean;
                var = p.var;
            } else {
                ForestPrediction p =
                    rf_surrogate.predict_with_variance(space.encode(c));
                mean = p.mean;
                var = p.var;
            }
            double pf = opt_.use_feasibility_model ? feasibility.probability(c)
                                                   : 1.0;
            double score = constrained_ei(mean, var, best, pf, eps_f);
            if (score > 0.0 && opt_.user_prior) {
                double exponent =
                    opt_.prior_strength /
                    static_cast<double>(std::max<std::size_t>(
                        1, history.size()));
                score *= std::pow(std::max(opt_.user_prior(c), 1e-9),
                                  exponent);
            }
            return score;
        };

        LocalSearchOptions ls = opt_.ls;
        ls.cot_uniform_leaves = opt_.cot_uniform_leaves;
        ls.hill_climb = opt_.local_search;
        std::optional<Configuration> cand =
            local_search_maximize(space, cot.get(), score, rng, ls);

        if (!cand || seen.count(config_hash(*cand)))
            cand = random_unique();
        evaluate(std::move(*cand));
    }

    history.tuner_seconds = seconds_since(run_start) - history.eval_seconds;
    return history;
}

}  // namespace baco
