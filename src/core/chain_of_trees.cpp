#include "core/chain_of_trees.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace baco {

namespace {

/** Union-find over parameter indices. */
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t
  find(std::size_t x)
  {
      while (parent_[x] != x) {
          parent_[x] = parent_[parent_[x]];
          x = parent_[x];
      }
      return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ChainOfTrees
ChainOfTrees::build(const SearchSpace& space, Options opt)
{
    ChainOfTrees cot;
    cot.space_ = &space;
    cot.param_to_tree_.assign(space.num_params(), kNoTree);

    std::size_t n = space.num_params();

    // 1. Group co-dependent parameters with union-find.
    UnionFind uf(n);
    std::vector<bool> constrained(n, false);
    for (const Constraint& k : space.constraints()) {
        std::size_t first = kNoTree;
        for (const std::string& name : k.vars()) {
            std::size_t idx = space.index_of(name);
            constrained[idx] = true;
            if (first == kNoTree)
                first = idx;
            else
                uf.unite(first, idx);
        }
    }

    // 2. Collect groups (ordered by parameter index for determinism).
    std::vector<std::vector<std::size_t>> groups;
    std::vector<std::size_t> root_to_group(n, kNoTree);
    for (std::size_t i = 0; i < n; ++i) {
        if (!constrained[i]) {
            cot.free_params_.push_back(i);
            continue;
        }
        std::size_t r = uf.find(i);
        if (root_to_group[r] == kNoTree) {
            root_to_group[r] = groups.size();
            groups.emplace_back();
        }
        groups[root_to_group[r]].push_back(i);
    }

    // 3. Assign each constraint to its group, keyed by "last parameter of
    //    the constraint in group order" so it can be checked as early as
    //    possible during the DFS.
    struct GroupInfo {
      std::vector<std::size_t> params;  // group params in index order
      // For each level d: constraints fully determined once params[0..d]
      // are assigned.
      std::vector<std::vector<const Constraint*>> checks;
    };
    std::vector<GroupInfo> infos(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
        infos[g].params = groups[g];
        infos[g].checks.resize(groups[g].size());
    }
    for (const Constraint& k : space.constraints()) {
        std::size_t g = root_to_group[uf.find(space.index_of(k.vars()[0]))];
        // Level at which all of the constraint's vars are assigned.
        std::size_t level = 0;
        for (const std::string& name : k.vars()) {
            std::size_t idx = space.index_of(name);
            auto it = std::find(infos[g].params.begin(), infos[g].params.end(),
                                idx);
            level = std::max(level, static_cast<std::size_t>(
                                        it - infos[g].params.begin()));
        }
        infos[g].checks[level].push_back(&k);
    }

    // 4. Enumerate each group into a tree via DFS with early pruning.
    for (const GroupInfo& info : infos) {
        for (std::size_t p : info.params) {
            if (!space.param(p).is_discrete()) {
                throw std::runtime_error(
                    "Chain-of-Trees requires discrete parameters; '" +
                    space.param(p).name() + "' is continuous but constrained");
            }
        }

        Tree tree;
        tree.nodes.push_back(Node{});  // virtual root

        // Scratch configuration: constraints only read assigned group
        // params, so other coordinates can hold arbitrary valid values.
        Configuration scratch;
        scratch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const Parameter& p = space.param(i);
            scratch.push_back(p.is_discrete() ? p.value_at(0)
                                              : ParamValue{0.0});
        }

        std::uint64_t leaves = 0;
        std::size_t depth = info.params.size();

        // Iterative DFS carrying the current node chain.
        struct Frame {
          std::size_t level;
          std::uint32_t node;       // tree node for this assignment
          std::size_t next_value;   // next child value index to try
        };

        // Expand: try to add child with value v at level; returns node id or
        // 0 when pruned.
        auto try_child = [&](std::size_t level, std::size_t v,
                             std::uint32_t parent) -> std::uint32_t {
            std::size_t pidx = info.params[level];
            const Parameter& p = space.param(pidx);
            scratch[pidx] = p.value_at(v);
            // Check all constraints that become fully bound at this level.
            for (const Constraint* k : info.checks[level]) {
                bool ok;
                if (k->is_expression()) {
                    EvalContext ctx;
                    for (std::size_t d = 0; d <= level; ++d) {
                        std::size_t q = info.params[d];
                        if (space.param(q).kind() == ParamKind::kPermutation)
                            continue;
                        ctx[space.param(q).name()] =
                            space.param(q).numeric_value(scratch[q]);
                    }
                    ok = k->eval_expression(ctx);
                } else {
                    ok = k->eval_function(scratch);
                }
                if (!ok)
                    return 0;
            }
            Node child;
            child.value_idx = static_cast<std::uint32_t>(v);
            tree.nodes.push_back(child);
            auto id = static_cast<std::uint32_t>(tree.nodes.size() - 1);
            tree.nodes[parent].children.push_back(id);
            return id;
        };

        std::vector<Frame> stack;
        stack.push_back(Frame{0, 0, 0});
        while (!stack.empty()) {
            Frame& f = stack.back();
            if (f.level == depth) {
                // A full feasible partial configuration: its node is a leaf.
                ++leaves;
                if (leaves > opt.max_leaves_per_tree) {
                    throw std::runtime_error(
                        "Chain-of-Trees: tree exceeds max_leaves_per_tree; "
                        "reduce the constrained subspace");
                }
                stack.pop_back();
                continue;
            }
            std::size_t pidx = info.params[f.level];
            std::size_t nvals = space.param(pidx).num_values();
            if (f.next_value >= nvals) {
                // Drop childless interior nodes so every path reaches a leaf.
                if (f.level > 0 && tree.nodes[f.node].children.empty() &&
                    f.level != depth) {
                    auto& siblings = tree.nodes[stack[stack.size() - 2].node]
                                         .children;
                    siblings.pop_back();
                }
                stack.pop_back();
                // Restore scratch for the parent level's subsequent values:
                // nothing to do — try_child overwrites scratch each time.
                continue;
            }
            std::size_t v = f.next_value++;
            std::uint32_t child = try_child(f.level, v, f.node);
            if (child != 0)
                stack.push_back(Frame{f.level + 1, child, 0});
        }

        // Compute leaf counts bottom-up. Node ids are assigned in DFS
        // preorder, so iterating in reverse visits children before parents.
        for (std::size_t i = tree.nodes.size(); i-- > 0;) {
            Node& node = tree.nodes[i];
            if (node.children.empty()) {
                // Interior childless nodes were pruned above, so any
                // remaining childless node is a true leaf — except a
                // childless root, which means the group is fully infeasible.
                node.leaf_count = (i == 0) ? 0 : 1;
                continue;
            }
            std::uint64_t acc = 0;
            for (std::uint32_t ch : node.children)
                acc += tree.nodes[ch].leaf_count;
            node.leaf_count = acc;
        }
        if (depth == 0 || tree.nodes[0].leaf_count == 0) {
            throw std::runtime_error(
                "Chain-of-Trees: a constrained group has no feasible values");
        }

        std::size_t tree_idx = cot.trees_.size();
        for (std::size_t p : info.params)
            cot.param_to_tree_[p] = tree_idx;
        cot.trees_.push_back(std::move(tree));
        cot.tree_params_.push_back(info.params);
    }

    return cot;
}

bool
ChainOfTrees::contains(const Configuration& c) const
{
    const SearchSpace& space = *space_;
    // Free parameters must merely be in range.
    for (std::size_t p : free_params_) {
        const Parameter& par = space.param(p);
        if (par.is_discrete() && par.index_of(c[p]) >= par.num_values())
            return false;
    }
    for (std::size_t t = 0; t < trees_.size(); ++t) {
        const Tree& tree = trees_[t];
        std::uint32_t node = 0;
        for (std::size_t level = 0; level < tree_params_[t].size(); ++level) {
            std::size_t pidx = tree_params_[t][level];
            std::size_t want = space.param(pidx).index_of(c[pidx]);
            std::uint32_t next = 0;
            for (std::uint32_t ch : tree.nodes[node].children) {
                if (tree.nodes[ch].value_idx == want) {
                    next = ch;
                    break;
                }
            }
            if (next == 0)
                return false;
            node = next;
        }
    }
    return true;
}

void
ChainOfTrees::walk_tree(std::size_t tree_idx, Configuration& c,
                        RngEngine& rng, bool uniform_leaves) const
{
    const SearchSpace& space = *space_;
    const Tree& tree = trees_[tree_idx];
    const auto& params = tree_params_[tree_idx];
    std::uint32_t node = 0;
    for (std::size_t level = 0; level < params.size(); ++level) {
        const auto& children = tree.nodes[node].children;
        std::uint32_t pick;
        if (uniform_leaves) {
            // Weight children by subtree leaf counts -> uniform over leaves.
            std::uint64_t total = tree.nodes[node].leaf_count;
            std::uint64_t r = static_cast<std::uint64_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
            pick = children.back();
            for (std::uint32_t ch : children) {
                std::uint64_t w = tree.nodes[ch].leaf_count;
                if (r < w) {
                    pick = ch;
                    break;
                }
                r -= w;
            }
        } else {
            pick = children[rng.index(children.size())];
        }
        std::size_t pidx = params[level];
        c[pidx] = space.param(pidx).value_at(tree.nodes[pick].value_idx);
        node = pick;
    }
}

Configuration
ChainOfTrees::sample(RngEngine& rng, bool uniform_leaves) const
{
    const SearchSpace& space = *space_;
    Configuration c(space.num_params());
    for (std::size_t p : free_params_)
        c[p] = space.param(p).sample(rng);
    // Also give tree params placeholder values before the walks fill them.
    for (std::size_t t = 0; t < trees_.size(); ++t)
        walk_tree(t, c, rng, uniform_leaves);
    return c;
}

void
ChainOfTrees::resample_tree(std::size_t tree_idx, Configuration& c,
                            RngEngine& rng, bool uniform_leaves) const
{
    walk_tree(tree_idx, c, rng, uniform_leaves);
}

std::uint64_t
ChainOfTrees::tree_leaves(std::size_t tree_idx) const
{
    return trees_[tree_idx].nodes[0].leaf_count;
}

double
ChainOfTrees::num_feasible() const
{
    double total = 1.0;
    for (std::size_t t = 0; t < trees_.size(); ++t)
        total *= static_cast<double>(tree_leaves(t));
    for (std::size_t p : free_params_) {
        const Parameter& par = space_->param(p);
        if (!par.is_discrete())
            return std::numeric_limits<double>::infinity();
        total *= static_cast<double>(par.num_values());
    }
    return total;
}

}  // namespace baco
