#ifndef BACO_CORE_EXPRESSION_HPP_
#define BACO_CORE_EXPRESSION_HPP_

/**
 * @file
 * A small expression language for known constraints (paper Sec. 4.2).
 *
 * Unlike ConfigSpace-style conjunctions of linear conditions, arbitrary
 * arithmetic (including non-linear terms such as products and modulo) is
 * supported, e.g. "p5 >= 2*p4", "n % (tile_i * tile_j) == 0",
 * "log2(ls0) + log2(ls1) <= 10".
 *
 * Grammar (standard precedence, lowest first):
 *   or    := and ('||' and)*
 *   and   := cmp ('&&' cmp)*
 *   cmp   := add (('<='|'>='|'=='|'!='|'<'|'>') add)?
 *   add   := mul (('+'|'-') mul)*
 *   mul   := unary (('*'|'/'|'%') unary)*
 *   unary := ('-'|'!') unary | primary
 *   primary := number | ident | ident '(' args ')' | '(' or ')'
 *
 * Built-in functions: log(x), log2(x), abs(x), min(a,b), max(a,b),
 * pow(a,b), floor(x), ceil(x).
 *
 * Values are doubles; booleans are encoded as 0/1 and any non-zero value is
 * truthy. '%' rounds both operands to the nearest integer first, since it is
 * used exclusively for divisibility constraints over integral parameters.
 */

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace baco {

/** Variable bindings for expression evaluation. */
using EvalContext = std::unordered_map<std::string, double>;

/** A parsed constraint expression. */
class Expression {
 public:
  virtual ~Expression() = default;

  /** Evaluate under the given variable bindings.
   *  @throws std::runtime_error on unbound variables. */
  virtual double eval(const EvalContext& ctx) const = 0;

  /** Append the names of all variables referenced to out. */
  virtual void collect_vars(std::vector<std::string>& out) const = 0;
};

using ExpressionPtr = std::shared_ptr<const Expression>;

/**
 * Parse source into an expression tree.
 * @throws std::runtime_error with position information on syntax errors.
 */
ExpressionPtr parse_expression(const std::string& source);

/** Sorted, deduplicated variable names referenced by expr. */
std::vector<std::string> expression_vars(const Expression& expr);

}  // namespace baco

#endif  // BACO_CORE_EXPRESSION_HPP_
