#ifndef BACO_CORE_PARAMETER_HPP_
#define BACO_CORE_PARAMETER_HPP_

/**
 * @file
 * The RIPOC(+Permutation) parameter hierarchy (paper Sec. 1, Sec. 4.1).
 *
 * Each parameter knows how to sample itself, enumerate its values (when
 * discrete), propose neighbours for local search, measure a normalized
 * distance between two of its values (feeding the GP kernel), and encode a
 * value as numeric features (feeding the random forests).
 */

#include <memory>
#include <string>
#include <vector>

#include "core/distance.hpp"
#include "core/types.hpp"
#include "linalg/rng.hpp"

namespace baco {

/** Parameter type tags. */
enum class ParamKind {
  kReal,
  kInteger,
  kOrdinal,
  kCategorical,
  kPermutation,
};

/** Abstract base for all parameter types. */
class Parameter {
 public:
  Parameter(std::string name, ParamKind kind)
      : name_(std::move(name)), kind_(kind) {}
  virtual ~Parameter() = default;

  const std::string& name() const { return name_; }
  ParamKind kind() const { return kind_; }

  /** True for every kind except kReal. */
  virtual bool is_discrete() const { return true; }

  /** Number of distinct values; 0 for continuous parameters. */
  virtual std::size_t num_values() const = 0;

  /** The i-th value of a discrete parameter. */
  virtual ParamValue value_at(std::size_t i) const = 0;

  /**
   * Index of a value within a discrete parameter's value list.
   * Returns num_values() when not found.
   */
  virtual std::size_t index_of(const ParamValue& v) const = 0;

  /** Uniform random value. */
  virtual ParamValue sample(RngEngine& rng) const = 0;

  /**
   * Local-search neighbours of v: the single-parameter moves reachable from
   * v (paper Sec. 3.3). May use rng for stochastic proposals (continuous
   * perturbations, random permutation swaps).
   */
  virtual std::vector<ParamValue> neighbors(const ParamValue& v,
                                            RngEngine& rng) const = 0;

  /** Normalized distance in [0, 1] between two values (GP kernel input). */
  virtual double distance(const ParamValue& a, const ParamValue& b) const = 0;

  /**
   * Numeric value used by the constraint-expression evaluator. Ordered
   * parameters return their value; categoricals their index. Permutations
   * have no scalar meaning and must not appear in scalar expressions.
   */
  virtual double numeric_value(const ParamValue& v) const = 0;

  /** Number of numeric features encode() appends. */
  virtual std::size_t num_features() const = 0;

  /** Append the feature encoding of v to out (random-forest input). */
  virtual void encode(const ParamValue& v,
                      std::vector<double>& out) const = 0;

  /** Render v for logs and reports. */
  virtual std::string value_to_string(const ParamValue& v) const;

 private:
  std::string name_;
  ParamKind kind_;
};

/**
 * Continuous parameter on [lo, hi]; optionally log-scaled, in which case
 * distances and local-search steps operate in log space (paper Sec. 4.1).
 */
class RealParameter : public Parameter {
 public:
  RealParameter(std::string name, double lo, double hi, bool log_scale = false);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  bool log_scale() const { return log_scale_; }

  bool is_discrete() const override { return false; }
  std::size_t num_values() const override { return 0; }
  ParamValue value_at(std::size_t) const override;
  std::size_t index_of(const ParamValue&) const override { return 0; }
  ParamValue sample(RngEngine& rng) const override;
  std::vector<ParamValue> neighbors(const ParamValue& v,
                                    RngEngine& rng) const override;
  double distance(const ParamValue& a, const ParamValue& b) const override;
  double numeric_value(const ParamValue& v) const override;
  std::size_t num_features() const override { return 1; }
  void encode(const ParamValue& v, std::vector<double>& out) const override;

 private:
  double transform(double x) const;
  double lo_, hi_;
  bool log_scale_;
  double span_;  // transformed range width, for normalization
};

/** Integer parameter on [lo, hi] (inclusive); optionally log-scaled. */
class IntegerParameter : public Parameter {
 public:
  IntegerParameter(std::string name, std::int64_t lo, std::int64_t hi,
                   bool log_scale = false);

  std::int64_t lo() const { return lo_; }
  std::int64_t hi() const { return hi_; }
  bool log_scale() const { return log_scale_; }

  std::size_t num_values() const override;
  ParamValue value_at(std::size_t i) const override;
  std::size_t index_of(const ParamValue& v) const override;
  ParamValue sample(RngEngine& rng) const override;
  std::vector<ParamValue> neighbors(const ParamValue& v,
                                    RngEngine& rng) const override;
  double distance(const ParamValue& a, const ParamValue& b) const override;
  double numeric_value(const ParamValue& v) const override;
  std::size_t num_features() const override { return 1; }
  void encode(const ParamValue& v, std::vector<double>& out) const override;

 private:
  double transform(std::int64_t x) const;
  std::int64_t lo_, hi_;
  bool log_scale_;
  double span_;
};

/**
 * Ordinal parameter: an explicit ascending list of comparable values (e.g.
 * tile sizes {2, 4, ..., 1024}). Optionally log-scaled, which is the natural
 * choice for exponential value lists (paper Sec. 4.1 / 4.2).
 */
class OrdinalParameter : public Parameter {
 public:
  OrdinalParameter(std::string name, std::vector<std::int64_t> values,
                   bool log_scale = false);

  const std::vector<std::int64_t>& values() const { return values_; }
  bool log_scale() const { return log_scale_; }

  std::size_t num_values() const override { return values_.size(); }
  ParamValue value_at(std::size_t i) const override;
  std::size_t index_of(const ParamValue& v) const override;
  ParamValue sample(RngEngine& rng) const override;
  std::vector<ParamValue> neighbors(const ParamValue& v,
                                    RngEngine& rng) const override;
  double distance(const ParamValue& a, const ParamValue& b) const override;
  double numeric_value(const ParamValue& v) const override;
  std::size_t num_features() const override { return 1; }
  void encode(const ParamValue& v, std::vector<double>& out) const override;

 private:
  double transform(std::int64_t x) const;
  std::vector<std::int64_t> values_;
  bool log_scale_;
  double span_;
};

/**
 * Categorical parameter: unordered labels, stored as indices into the
 * category list. Distance is Hamming (paper Sec. 4.1); features are one-hot.
 */
class CategoricalParameter : public Parameter {
 public:
  CategoricalParameter(std::string name, std::vector<std::string> categories);

  const std::vector<std::string>& categories() const { return categories_; }

  std::size_t num_values() const override { return categories_.size(); }
  ParamValue value_at(std::size_t i) const override;
  std::size_t index_of(const ParamValue& v) const override;
  ParamValue sample(RngEngine& rng) const override;
  std::vector<ParamValue> neighbors(const ParamValue& v,
                                    RngEngine& rng) const override;
  double distance(const ParamValue& a, const ParamValue& b) const override;
  double numeric_value(const ParamValue& v) const override;
  std::size_t num_features() const override { return categories_.size(); }
  void encode(const ParamValue& v, std::vector<double>& out) const override;
  std::string value_to_string(const ParamValue& v) const override;

 private:
  std::vector<std::string> categories_;
};

/**
 * Permutation parameter over m elements with a configurable semimetric
 * (Spearman by default — the paper's best performer, Sec. 5.3).
 *
 * Values enumerate in lexicographic order of the permutation vector; m is
 * limited to 8 for full enumeration (8! = 40320), which covers all loop
 * reordering spaces in the paper's benchmarks.
 */
class PermutationParameter : public Parameter {
 public:
  PermutationParameter(std::string name, int m,
                       PermutationMetric metric = PermutationMetric::kSpearman);

  int length() const { return m_; }
  PermutationMetric metric() const { return metric_; }
  /** Change the semimetric (used by the Fig. 9 ablation). */
  void set_metric(PermutationMetric m) { metric_ = m; }

  std::size_t num_values() const override;
  ParamValue value_at(std::size_t i) const override;
  std::size_t index_of(const ParamValue& v) const override;
  ParamValue sample(RngEngine& rng) const override;
  std::vector<ParamValue> neighbors(const ParamValue& v,
                                    RngEngine& rng) const override;
  double distance(const ParamValue& a, const ParamValue& b) const override;
  double numeric_value(const ParamValue& v) const override;
  std::size_t num_features() const override { return static_cast<std::size_t>(m_); }
  void encode(const ParamValue& v, std::vector<double>& out) const override;

 private:
  int m_;
  PermutationMetric metric_;
  std::size_t factorial_;
};

/** Convenience accessors with checked variant access. */
double as_real(const ParamValue& v);
std::int64_t as_int(const ParamValue& v);
const Permutation& as_permutation(const ParamValue& v);

}  // namespace baco

#endif  // BACO_CORE_PARAMETER_HPP_
