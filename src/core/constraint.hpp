#ifndef BACO_CORE_CONSTRAINT_HPP_
#define BACO_CORE_CONSTRAINT_HPP_

/**
 * @file
 * Known constraints (paper Sec. 4.2): conditions on parameter values that
 * are available to the autotuner ahead of time.
 *
 * Two flavours:
 *  - expression constraints, parsed from strings over scalar parameters
 *    ("p5 >= 2*p4", "n % tile == 0");
 *  - functional constraints, arbitrary C++ predicates over a whole
 *    Configuration (needed e.g. for permutation concordance rules, which are
 *    not scalar). Functional constraints must declare the parameter names
 *    they depend on so the Chain-of-Trees can group co-dependent parameters.
 */

#include <functional>
#include <string>
#include <vector>

#include "core/expression.hpp"
#include "core/types.hpp"

namespace baco {

/** A single known constraint. Copyable value type. */
class Constraint {
 public:
  /** Parse src as a boolean expression over scalar parameter names. */
  static Constraint from_expression(const std::string& src);

  /**
   * Wrap a predicate. @param vars names of the parameters the predicate
   * reads (drives co-dependence grouping); @param label for reports.
   */
  static Constraint from_function(
      std::function<bool(const Configuration&)> fn,
      std::vector<std::string> vars, std::string label = "<function>");

  bool is_expression() const { return expr_ != nullptr; }

  /** Evaluate an expression constraint under ctx. */
  bool eval_expression(const EvalContext& ctx) const;

  /** Evaluate a functional constraint on a full configuration. */
  bool eval_function(const Configuration& c) const { return fn_(c); }

  /** Parameter names this constraint depends on. */
  const std::vector<std::string>& vars() const { return vars_; }

  /** Source text (expression) or label (functional). */
  const std::string& source() const { return source_; }

 private:
  Constraint() = default;

  ExpressionPtr expr_;
  std::function<bool(const Configuration&)> fn_;
  std::vector<std::string> vars_;
  std::string source_;
};

}  // namespace baco

#endif  // BACO_CORE_CONSTRAINT_HPP_
