#include "core/feasibility_model.hpp"

namespace baco {

ForestOptions
FeasibilityModel::default_options()
{
    ForestOptions opt;
    opt.task = TreeTask::kClassification;
    opt.num_trees = 40;
    opt.max_depth = 16;
    opt.min_samples_leaf = 1;
    return opt;
}

FeasibilityModel::FeasibilityModel(const SearchSpace& space, ForestOptions opt)
    : space_(&space), forest_(opt)
{
}

void
FeasibilityModel::fit(const std::vector<Observation>& observations,
                      RngEngine& rng)
{
    std::size_t n_feasible = 0, n_infeasible = 0;
    for (const Observation& o : observations)
        (o.feasible ? n_feasible : n_infeasible) += 1;
    if (n_feasible == 0 || n_infeasible == 0) {
        active_ = false;
        return;
    }

    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(observations.size());
    y.reserve(observations.size());
    for (const Observation& o : observations) {
        x.push_back(space_->encode(o.config));
        y.push_back(o.feasible ? 1.0 : 0.0);
    }
    forest_.fit(x, y, rng);
    active_ = true;
}

double
FeasibilityModel::probability(const Configuration& c) const
{
    if (!active_)
        return 1.0;
    return forest_.predict(space_->encode(c));
}

}  // namespace baco
