#include "core/acquisition.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/stats.hpp"

namespace baco {

double
expected_improvement(double mean, double var, double best)
{
    double sigma = std::sqrt(std::max(var, 0.0));
    if (sigma < 1e-12)
        return std::max(best - mean, 0.0);
    double z = (best - mean) / sigma;
    double ei = (best - mean) * normal_cdf(z) + sigma * normal_pdf(z);
    return std::max(ei, 0.0);
}

double
constrained_ei(double mean, double var, double best, double p_feasible,
               double eps_f)
{
    if (p_feasible < eps_f)
        return -1.0;
    return expected_improvement(mean, var, best) * p_feasible;
}

}  // namespace baco
