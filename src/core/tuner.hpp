#ifndef BACO_CORE_TUNER_HPP_
#define BACO_CORE_TUNER_HPP_

/**
 * @file
 * The BaCO autotuner (paper Fig. 2): a configuration
 * recommendation-evaluation loop around a GP value model, an RF feasibility
 * model, EI acquisition and multi-start local search, seeded by a uniform
 * DoE phase.
 *
 * The tuner exposes the ask-tell interface (exec/ask_tell.hpp): suggest(n)
 * proposes the next batch — using the constant-liar fantasy heuristic to
 * keep batch members diverse — and observe() feeds results back. run() is
 * a thin serial driver; the batched EvalEngine drives the same object
 * concurrently.
 *
 * Every design choice studied in the paper's ablations (Sec. 5.3) is an
 * explicit switch in TunerOptions, so BaCO-- and the Fig. 9/10 variants are
 * configurations of this one class.
 */

#include <memory>

#include "core/evaluator.hpp"
#include "core/local_search.hpp"
#include "core/search_space.hpp"
#include "exec/ask_tell.hpp"
#include "gp/gp_model.hpp"

namespace baco {

/** All tuner knobs; defaults are the paper's BaCO configuration. */
struct TunerOptions {
  int budget = 60;          ///< total evaluations (DoE included)
  int doe_samples = 10;     ///< initial uniform samples
  std::uint64_t seed = 0;

  /** Log-transform the objective before modelling (Fig. 9 ablation). */
  bool log_objective = true;
  /** Use the Chain-of-Trees for known constraints (Sec. 4.2). */
  bool use_cot = true;
  /** Bias-free leaf-uniform CoT sampling (vs ATF's biased walk). */
  bool cot_uniform_leaves = true;
  /** RF feasibility model for hidden constraints (Fig. 10 ablation). */
  bool use_feasibility_model = true;
  /** Random minimum-feasibility threshold eps_f (Fig. 10 ablation). */
  bool use_feasibility_limit = true;
  /** Hill-climbing acquisition optimization; false = best-of-random-pool
   *  (part of BaCO--). */
  bool local_search = true;

  /** Value-model surrogate (Fig. 8 compares GP vs RF). */
  enum class Surrogate { kGaussianProcess, kRandomForest };
  Surrogate surrogate = Surrogate::kGaussianProcess;

  /**
   * Incremental surrogate refresh: append new observations and
   * constant-liar fantasies to the existing GP Cholesky factor in O(n^2)
   * (GpModel::extend) instead of refitting from scratch on every proposal.
   * Full hyperparameter refits still happen on a cadence (refit_every) or
   * when the per-point negative log likelihood drifts by more than
   * refit_nll_drift nats since the last refit. Disable for the legacy
   * always-refit path (debugging escape hatch; suggestions then match the
   * pre-incremental behavior exactly). Only affects the GP surrogate.
   */
  bool incremental_fit = true;
  /** Full hyperparameter refit cadence: refit after this many new
   *  observations reach the model via the incremental path. */
  int refit_every = 8;
  /** Extra full-refit trigger: per-point NLL drift (nats) since the last
   *  full refit that suggests the frozen hyperparameters have gone stale. */
  double refit_nll_drift = 1.0;

  /**
   * Optional expert prior over the optimum's location (the paper's Sec. 6
   * extension, after Souza et al.): a nonnegative weight pi(x). The
   * acquisition is multiplied by pi(x)^(prior_strength / #observations),
   * so the prior steers early iterations and washes out as evidence
   * accumulates — a misleading prior cannot prevent convergence.
   */
  std::function<double(const Configuration&)> user_prior;
  double prior_strength = 10.0;

  GpOptions gp;            ///< priors / advanced-fit switches live here
  LocalSearchOptions ls;   ///< acquisition-optimizer budgets

  /** The paper's default configuration. */
  static TunerOptions baco_defaults() { return TunerOptions{}; }

  /**
   * BaCO-- (Fig. 8): no output transform, no lengthscale priors, no local
   * search, no advanced multistart GP fitting. (The naive permutation
   * distance and disabled input log-transforms are properties of the
   * search space; benchmark definitions expose variants for those.)
   */
  static TunerOptions
  baco_minus_minus()
  {
      TunerOptions o;
      o.log_objective = false;
      o.local_search = false;
      o.gp.use_priors = false;
      o.gp.advanced_fit = false;
      return o;
  }
};

/** The BaCO autotuner. */
class Tuner : public AskTellBase {
 public:
  /**
   * @param space must outlive the tuner.
   */
  Tuner(const SearchSpace& space, TunerOptions opt = TunerOptions{});
  ~Tuner() override;

  /**
   * Run the full tuning loop against a black-box objective (serial
   * ask-tell driver; resets any previous state first).
   */
  TuningHistory run(const BlackBoxFn& objective);

  // --- Ask-tell interface. ---
  /**
   * Propose the next batch. n > 1 uses the constant-liar heuristic: each
   * already-proposed batch member is added to the model's training set
   * with the incumbent value, so later members explore elsewhere.
   */
  std::vector<Configuration> suggest(int n) override;
  /**
   * Async ask: in-flight configurations join the constant-liar fantasy
   * set exactly like the members of a synchronous batch, so a proposal
   * made while evaluations are outstanding explores away from them.
   */
  std::vector<Configuration> suggest_with_pending(
      int n, const std::vector<Configuration>& pending) override;
  void observe(const std::vector<Configuration>& configs,
               const std::vector<EvalResult>& results) override;
  std::string sampler_state() const override;
  bool restore(const TuningHistory& history,
               const std::string& sampler_state) override;

 protected:
  void reset_sampler() override;

 private:
  struct State;  ///< models, CoT, sampler RNG, dedup set (lazily built)
  State& state();
  Configuration random_unique(State& st);
  /** Model-based proposal with constant-liar fantasies mixed in. */
  Configuration propose(State& st,
                        const std::vector<Configuration>& fantasy_configs,
                        double fantasy_value);
  /**
   * Bring the GP in line with (xs, ys) = [reals..., fantasies...] on the
   * incremental path: extend the factor with new rows where possible, full
   * hyperparameter refit on the cadence/drift/escape conditions. n_real is
   * the number of leading real observations; log_ok records whether ys are
   * log-transformed (a flip forces a full refit).
   */
  void sync_gp(State& st, const std::vector<Configuration>& xs,
               const std::vector<double>& ys, std::size_t n_real,
               bool log_ok);
  /**
   * Rebuild the incremental GP from a sampler_state() "gp=" segment:
   * refit the saved base prefix under the saved hyperparameters, then
   * replay the appends — reproducing the checkpointed model bit-for-bit
   * so a resumed run keeps the refit cadence (and hence the RNG stream)
   * of the uninterrupted one. False on a malformed or inconsistent
   * segment.
   */
  bool restore_gp(State& st, const std::string& seg);

  const SearchSpace* space_;
  TunerOptions opt_;
  std::unique_ptr<State> state_;
};

}  // namespace baco

#endif  // BACO_CORE_TUNER_HPP_
