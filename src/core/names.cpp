#include "core/names.hpp"

#include <algorithm>
#include <cctype>

namespace baco {

namespace {

bool
is_prefix(const std::string& prefix, const std::string& s)
{
    return !prefix.empty() && s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::string
fold_name(const std::string& s)
{
    std::string out = s;
    for (char& c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::size_t
edit_distance(const std::string& a_raw, const std::string& b_raw)
{
    std::string a = fold_name(a_raw), b = fold_name(b_raw);
    const std::size_t n = a.size(), m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;
    // Two-row dynamic program; rows indexed by positions of b.
    std::vector<std::size_t> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            std::size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

std::vector<std::string>
closest_names(const std::string& query,
              const std::vector<std::string>& candidates,
              std::size_t max_out)
{
    const std::string q = fold_name(query);
    const std::size_t cutoff = std::max<std::size_t>(2, q.size() / 2);

    struct Scored {
        bool prefix;
        std::size_t dist;
        std::string name;
    };
    std::vector<Scored> scored;
    for (const std::string& c : candidates) {
        std::string cf = fold_name(c);
        bool prefix = is_prefix(q, cf) || is_prefix(cf, q);
        std::size_t dist = edit_distance(q, cf);
        if (!prefix && dist > cutoff)
            continue;
        scored.push_back(Scored{prefix, dist, c});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                  if (a.prefix != b.prefix)
                      return a.prefix;
                  if (a.dist != b.dist)
                      return a.dist < b.dist;
                  return a.name < b.name;
              });
    std::vector<std::string> out;
    for (const Scored& s : scored) {
        if (out.size() >= max_out)
            break;
        if (std::find(out.begin(), out.end(), s.name) == out.end())
            out.push_back(s.name);
    }
    return out;
}

std::string
did_you_mean(const std::string& query,
             const std::vector<std::string>& candidates)
{
    std::vector<std::string> close = closest_names(query, candidates);
    if (close.empty())
        return {};
    std::string out = " (did you mean ";
    for (std::size_t i = 0; i < close.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "'" + close[i] + "'";
    }
    out += "?)";
    return out;
}

}  // namespace baco
