#include "core/distance.hpp"

#include <cassert>

namespace baco {

int
kendall_distance(const Permutation& pi, const Permutation& pi2)
{
    assert(pi.size() == pi2.size());
    int n = static_cast<int>(pi.size());
    int discordant = 0;
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            bool a = pi[i] < pi[j];
            bool b = pi2[i] < pi2[j];
            if (a != b)
                ++discordant;
        }
    }
    return discordant;
}

long long
spearman_distance(const Permutation& pi, const Permutation& pi2)
{
    assert(pi.size() == pi2.size());
    long long acc = 0;
    for (std::size_t i = 0; i < pi.size(); ++i) {
        long long d = pi[i] - pi2[i];
        acc += d * d;
    }
    return acc;
}

int
hamming_distance(const Permutation& pi, const Permutation& pi2)
{
    assert(pi.size() == pi2.size());
    int acc = 0;
    for (std::size_t i = 0; i < pi.size(); ++i)
        acc += (pi[i] != pi2[i]) ? 1 : 0;
    return acc;
}

long long
max_kendall(int m)
{
    return static_cast<long long>(m) * (m - 1) / 2;
}

long long
max_spearman(int m)
{
    // Achieved by the full reversal: sum over i of (2i - (m-1))^2.
    long long mm = m;
    return (mm * mm * mm - mm) / 3;
}

long long
max_hamming(int m)
{
    return m;
}

double
permutation_distance(const Permutation& a, const Permutation& b,
                     PermutationMetric metric)
{
    int m = static_cast<int>(a.size());
    if (m <= 1)
        return 0.0;
    switch (metric) {
      case PermutationMetric::kKendall:
        return static_cast<double>(kendall_distance(a, b)) /
               static_cast<double>(max_kendall(m));
      case PermutationMetric::kSpearman:
        return static_cast<double>(spearman_distance(a, b)) /
               static_cast<double>(max_spearman(m));
      case PermutationMetric::kHamming:
        return static_cast<double>(hamming_distance(a, b)) /
               static_cast<double>(max_hamming(m));
      case PermutationMetric::kNaive:
        return (a == b) ? 0.0 : 1.0;
    }
    return 0.0;
}

}  // namespace baco
