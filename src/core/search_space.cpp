#include "core/search_space.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace baco {

std::size_t
SearchSpace::add_param(std::unique_ptr<Parameter> p)
{
    if (by_name_.count(p->name()))
        throw std::runtime_error("duplicate parameter name '" + p->name() + "'");
    std::size_t idx = params_.size();
    by_name_[p->name()] = idx;
    params_.push_back(std::move(p));
    return idx;
}

std::size_t
SearchSpace::add_real(const std::string& name, double lo, double hi,
                      bool log_scale)
{
    return add_param(std::make_unique<RealParameter>(name, lo, hi, log_scale));
}

std::size_t
SearchSpace::add_integer(const std::string& name, std::int64_t lo,
                         std::int64_t hi, bool log_scale)
{
    return add_param(
        std::make_unique<IntegerParameter>(name, lo, hi, log_scale));
}

std::size_t
SearchSpace::add_ordinal(const std::string& name,
                         std::vector<std::int64_t> values, bool log_scale)
{
    return add_param(
        std::make_unique<OrdinalParameter>(name, std::move(values), log_scale));
}

std::size_t
SearchSpace::add_categorical(const std::string& name,
                             std::vector<std::string> categories)
{
    return add_param(
        std::make_unique<CategoricalParameter>(name, std::move(categories)));
}

std::size_t
SearchSpace::add_permutation(const std::string& name, int m,
                             PermutationMetric metric)
{
    return add_param(std::make_unique<PermutationParameter>(name, m, metric));
}

void
SearchSpace::add_constraint(const std::string& expr)
{
    Constraint c = Constraint::from_expression(expr);
    for (const std::string& v : c.vars()) {
        if (!has_param(v))
            throw std::runtime_error("constraint '" + expr +
                                     "' references unknown parameter '" + v +
                                     "'");
    }
    constraints_.push_back(std::move(c));
}

void
SearchSpace::add_constraint(std::function<bool(const Configuration&)> fn,
                            std::vector<std::string> vars, std::string label)
{
    for (const std::string& v : vars) {
        if (!has_param(v))
            throw std::runtime_error("functional constraint references "
                                     "unknown parameter '" + v + "'");
    }
    constraints_.push_back(Constraint::from_function(std::move(fn),
                                                     std::move(vars),
                                                     std::move(label)));
}

std::size_t
SearchSpace::index_of(const std::string& name) const
{
    auto it = by_name_.find(name);
    if (it == by_name_.end())
        throw std::runtime_error("unknown parameter '" + name + "'");
    return it->second;
}

bool
SearchSpace::has_param(const std::string& name) const
{
    return by_name_.count(name) > 0;
}

EvalContext
SearchSpace::make_context(const Configuration& c) const
{
    EvalContext ctx;
    ctx.reserve(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        if (params_[i]->kind() == ParamKind::kPermutation)
            continue;
        ctx[params_[i]->name()] = params_[i]->numeric_value(c[i]);
    }
    return ctx;
}

bool
SearchSpace::satisfies(const Configuration& c) const
{
    if (constraints_.empty())
        return true;
    // Build the scalar context lazily: only when an expression constraint
    // exists.
    std::optional<EvalContext> ctx;
    for (const Constraint& k : constraints_) {
        if (k.is_expression()) {
            if (!ctx)
                ctx = make_context(c);
            if (!k.eval_expression(*ctx))
                return false;
        } else {
            if (!k.eval_function(c))
                return false;
        }
    }
    return true;
}

Configuration
SearchSpace::sample_unconstrained(RngEngine& rng) const
{
    Configuration c;
    c.reserve(params_.size());
    for (const auto& p : params_)
        c.push_back(p->sample(rng));
    return c;
}

std::optional<Configuration>
SearchSpace::sample_feasible(RngEngine& rng, int max_tries) const
{
    for (int t = 0; t < max_tries; ++t) {
        Configuration c = sample_unconstrained(rng);
        if (satisfies(c))
            return c;
    }
    return std::nullopt;
}

std::vector<Configuration>
SearchSpace::neighbors(const Configuration& c, RngEngine& rng) const
{
    std::vector<Configuration> out;
    for (std::size_t i = 0; i < params_.size(); ++i) {
        for (ParamValue& v : params_[i]->neighbors(c[i], rng)) {
            Configuration n = c;
            n[i] = std::move(v);
            out.push_back(std::move(n));
        }
    }
    return out;
}

std::vector<double>
SearchSpace::encode(const Configuration& c) const
{
    std::vector<double> out;
    out.reserve(num_features());
    for (std::size_t i = 0; i < params_.size(); ++i)
        params_[i]->encode(c[i], out);
    return out;
}

std::size_t
SearchSpace::num_features() const
{
    std::size_t n = 0;
    for (const auto& p : params_)
        n += p->num_features();
    return n;
}

double
SearchSpace::dim_distance(std::size_t dim, const Configuration& a,
                          const Configuration& b) const
{
    return params_[dim]->distance(a[dim], b[dim]);
}

std::string
SearchSpace::config_to_string(const Configuration& c) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < params_.size(); ++i) {
        if (i)
            os << ", ";
        os << params_[i]->name() << "=" << params_[i]->value_to_string(c[i]);
    }
    return os.str();
}

double
SearchSpace::dense_size() const
{
    double size = 1.0;
    for (const auto& p : params_) {
        if (!p->is_discrete())
            return std::numeric_limits<double>::infinity();
        size *= static_cast<double>(p->num_values());
    }
    return size;
}

bool
SearchSpace::is_fully_discrete() const
{
    for (const auto& p : params_)
        if (!p->is_discrete())
            return false;
    return true;
}

}  // namespace baco
