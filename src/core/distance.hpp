#ifndef BACO_CORE_DISTANCE_HPP_
#define BACO_CORE_DISTANCE_HPP_

/**
 * @file
 * Distance semimetrics used inside the GP kernel (paper Sec. 4.1, Fig. 3).
 *
 * Permutation semimetrics (Kendall, Spearman, Hamming) are not strict
 * metrics but form valid GP kernels (Lomeli et al. 2019). All distances
 * returned by the library are normalized to [0, 1] so a single set of
 * lengthscale priors applies to every parameter.
 */

#include "core/types.hpp"

namespace baco {

/** How a permutation parameter measures similarity between two orderings. */
enum class PermutationMetric {
  kKendall,    ///< number of discordant pairs
  kSpearman,   ///< sum of squared rank displacements (BaCO default)
  kHamming,    ///< number of elements not in their original position
  kNaive,      ///< treat the whole permutation as one categorical value
};

/** Kendall distance: number of discordant pairs between pi and pi2. */
int kendall_distance(const Permutation& pi, const Permutation& pi2);

/** Spearman's footrule-squared: sum_i (pi_i - pi2_i)^2. */
long long spearman_distance(const Permutation& pi, const Permutation& pi2);

/** Hamming distance: number of positions where pi and pi2 differ. */
int hamming_distance(const Permutation& pi, const Permutation& pi2);

/** Maximum Kendall distance over permutations of m elements: m(m-1)/2. */
long long max_kendall(int m);

/** Maximum Spearman distance over permutations of m elements: (m^3-m)/3. */
long long max_spearman(int m);

/** Maximum Hamming distance over permutations of m elements: m. */
long long max_hamming(int m);

/**
 * Normalized permutation distance in [0, 1] under the given metric.
 * kNaive returns 0 when equal and 1 otherwise.
 */
double permutation_distance(const Permutation& a, const Permutation& b,
                            PermutationMetric metric);

}  // namespace baco

#endif  // BACO_CORE_DISTANCE_HPP_
