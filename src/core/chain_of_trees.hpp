#ifndef BACO_CORE_CHAIN_OF_TREES_HPP_
#define BACO_CORE_CHAIN_OF_TREES_HPP_

/**
 * @file
 * Chain-of-Trees (CoT) for sparse constrained spaces (paper Sec. 4.2,
 * Fig. 4; originally Rasch et al., ATF).
 *
 * Parameters are grouped into co-dependent sets (connected components of the
 * "appears in the same constraint" relation). For each group, all feasible
 * partial configurations are enumerated ahead of time into a tree whose
 * levels correspond to the group's parameters. Any combination of paths from
 * the different trees — together with arbitrary values for unconstrained
 * (free) parameters — is a feasible configuration.
 *
 * Two sampling modes:
 *  - biased root-to-leaf walk (uniform child at each node): ATF's scheme,
 *    biased toward sparse subtrees;
 *  - uniform over leaves (children weighted by leaf counts): BaCO's
 *    bias-free scheme.
 */

#include <cstdint>
#include <limits>
#include <vector>

#include "core/search_space.hpp"

namespace baco {

/** Pre-enumerated feasible region of a constrained discrete space. */
class ChainOfTrees {
 public:
  struct Options {
    /** Abort tree construction past this many leaves in a single tree. */
    std::size_t max_leaves_per_tree = 4u << 20;
  };

  static constexpr std::size_t kNoTree = std::numeric_limits<std::size_t>::max();

  /**
   * Enumerate the feasible region of space.
   * @throws std::runtime_error if a constraint touches a continuous
   *         parameter or a tree exceeds Options::max_leaves_per_tree.
   */
  static ChainOfTrees build(const SearchSpace& space, Options opt);
  static ChainOfTrees build(const SearchSpace& space) {
    return build(space, Options{});
  }

  /** Number of trees (co-dependent groups). */
  std::size_t num_trees() const { return trees_.size(); }

  /** Parameter indices covered by each tree, in tree-level order. */
  const std::vector<std::vector<std::size_t>>& tree_params() const {
    return tree_params_;
  }

  /** Indices of parameters not constrained by anything. */
  const std::vector<std::size_t>& free_params() const { return free_params_; }

  /** Tree index owning a parameter, or kNoTree when free. */
  std::size_t tree_of(std::size_t param_idx) const {
    return param_to_tree_[param_idx];
  }

  /** Membership test: c's constrained coordinates lie on some leaf path of
   *  every tree. Much cheaper than re-evaluating the constraints. */
  bool contains(const Configuration& c) const;

  /**
   * Sample a feasible configuration. uniform_leaves=true gives BaCO's
   * bias-free leaf-uniform sampling; false gives ATF's biased walk. Free
   * parameters are sampled uniformly either way.
   */
  Configuration sample(RngEngine& rng, bool uniform_leaves) const;

  /** Resample only the coordinates of one tree inside c (a local-search
   *  "macro move" that stays feasible by construction). */
  void resample_tree(std::size_t tree_idx, Configuration& c, RngEngine& rng,
                     bool uniform_leaves) const;

  /** Leaves of one tree = number of feasible partial configurations. */
  std::uint64_t tree_leaves(std::size_t tree_idx) const;

  /**
   * Total feasible configurations: product of tree leaf counts and free
   * discrete parameter cardinalities. Infinity when a free parameter is
   * continuous.
   */
  double num_feasible() const;

 private:
  struct Node {
    std::uint32_t value_idx = 0;       ///< index into the level parameter's values
    std::uint64_t leaf_count = 0;      ///< leaves in this subtree
    std::vector<std::uint32_t> children;
  };

  struct Tree {
    std::vector<Node> nodes;  ///< nodes[0] is the virtual root
  };

  ChainOfTrees() = default;

  void walk_tree(std::size_t tree_idx, Configuration& c, RngEngine& rng,
                 bool uniform_leaves) const;

  const SearchSpace* space_ = nullptr;
  std::vector<Tree> trees_;
  std::vector<std::vector<std::size_t>> tree_params_;
  std::vector<std::size_t> free_params_;
  std::vector<std::size_t> param_to_tree_;
};

}  // namespace baco

#endif  // BACO_CORE_CHAIN_OF_TREES_HPP_
