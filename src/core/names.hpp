#ifndef BACO_CORE_NAMES_HPP_
#define BACO_CORE_NAMES_HPP_

/**
 * @file
 * Name-lookup helpers shared by every string-keyed registry (benchmarks,
 * methods): edit-distance ranking and "did you mean ...?" error suffixes,
 * so a typo in a benchmark or method name fails with the closest real
 * names instead of a bare "not found".
 */

#include <string>
#include <vector>

namespace baco {

/** Case-fold a name for matching (ASCII lowercase). Registry lookup
 *  and suggestion ranking share this, so they can never disagree. */
std::string fold_name(const std::string& s);

/** Case-insensitive Levenshtein distance between a and b. */
std::size_t edit_distance(const std::string& a, const std::string& b);

/**
 * Up to max_out candidates closest to query: exact-prefix matches first
 * (shortest wins), then ascending edit distance; ties break
 * alphabetically. Candidates further than half the query's length (min 2)
 * in edit distance — and not prefix-related — are not suggested at all.
 */
std::vector<std::string> closest_names(
    const std::string& query, const std::vector<std::string>& candidates,
    std::size_t max_out = 3);

/**
 * " (did you mean 'a', 'b'?)" built from closest_names, or "" when
 * nothing is close enough to suggest.
 */
std::string did_you_mean(const std::string& query,
                         const std::vector<std::string>& candidates);

}  // namespace baco

#endif  // BACO_CORE_NAMES_HPP_
