#ifndef BACO_CORE_LOCAL_SEARCH_HPP_
#define BACO_CORE_LOCAL_SEARCH_HPP_

/**
 * @file
 * Multi-start local search for acquisition-function optimization
 * (paper Sec. 3.3).
 *
 * A large uniform candidate pool is scored; the best few become start
 * points for hill climbing over single-parameter neighbourhoods, with
 * whole-tree resampling "macro moves" for co-dependent parameter groups.
 * All proposals stay inside the feasible region (CoT membership when
 * available, otherwise explicit constraint checks).
 */

#include <functional>
#include <optional>

#include "core/chain_of_trees.hpp"
#include "core/search_space.hpp"

namespace baco {

/** Local-search budget knobs. */
struct LocalSearchOptions {
  int random_samples = 600;  ///< candidate pool size
  int starts = 5;            ///< hill-climbing start points
  int max_steps = 40;        ///< steps per climb
  int tree_moves = 2;        ///< macro moves per co-dependent tree per step
  bool cot_uniform_leaves = true;
  /** When false, skip hill climbing: pick the pool's best (BaCO--). */
  bool hill_climb = true;
};

/** Score to maximize. Return -inf/negative to reject a candidate. */
using ScoreFn = std::function<double(const Configuration&)>;

/**
 * Maximize score over the feasible region. Returns nullopt when no feasible
 * candidate could be produced (pathologically sparse rejection sampling).
 */
std::optional<Configuration> local_search_maximize(
    const SearchSpace& space, const ChainOfTrees* cot, const ScoreFn& score,
    RngEngine& rng, const LocalSearchOptions& opt = LocalSearchOptions{});

}  // namespace baco

#endif  // BACO_CORE_LOCAL_SEARCH_HPP_
