#ifndef BACO_CORE_FEASIBILITY_MODEL_HPP_
#define BACO_CORE_FEASIBILITY_MODEL_HPP_

/**
 * @file
 * Hidden-constraint feasibility predictor (paper Sec. 4.2): a random-forest
 * classifier trained on every evaluated configuration (feasible or not) that
 * estimates the probability a new configuration will evaluate successfully.
 */

#include <vector>

#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "rf/random_forest.hpp"

namespace baco {

/** RF classifier over configuration feature encodings. */
class FeasibilityModel {
 public:
  explicit FeasibilityModel(const SearchSpace& space,
                            ForestOptions opt = default_options());

  /** Classifier defaults tuned for small autotuning datasets. */
  static ForestOptions default_options();

  /**
   * Refit on the full observation history. The model only becomes active
   * once both classes (feasible and infeasible) have been observed.
   */
  void fit(const std::vector<Observation>& observations, RngEngine& rng);

  /** True when the classifier has something to discriminate. */
  bool active() const { return active_; }

  /** P(feasible); 1.0 while inactive. */
  double probability(const Configuration& c) const;

 private:
  const SearchSpace* space_;
  RandomForest forest_;
  bool active_ = false;
};

}  // namespace baco

#endif  // BACO_CORE_FEASIBILITY_MODEL_HPP_
