#ifndef BACO_CORE_SEARCH_SPACE_HPP_
#define BACO_CORE_SEARCH_SPACE_HPP_

/**
 * @file
 * The autotuning search space: an ordered set of parameters plus known
 * constraints. This is the "rich input language" a portable autoscheduler
 * exposes to compilers (paper Sec. 1).
 */

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/constraint.hpp"
#include "core/parameter.hpp"
#include "core/types.hpp"
#include "linalg/rng.hpp"

namespace baco {

/** Ordered parameter collection + known constraints. */
class SearchSpace {
 public:
  SearchSpace() = default;

  // Builders; each returns the new parameter's index.
  std::size_t add_real(const std::string& name, double lo, double hi,
                       bool log_scale = false);
  std::size_t add_integer(const std::string& name, std::int64_t lo,
                          std::int64_t hi, bool log_scale = false);
  std::size_t add_ordinal(const std::string& name,
                          std::vector<std::int64_t> values,
                          bool log_scale = false);
  std::size_t add_categorical(const std::string& name,
                              std::vector<std::string> categories);
  std::size_t add_permutation(
      const std::string& name, int m,
      PermutationMetric metric = PermutationMetric::kSpearman);

  /** Add a known constraint parsed from an expression string. */
  void add_constraint(const std::string& expr);
  /** Add a known constraint as a predicate over configurations. */
  void add_constraint(std::function<bool(const Configuration&)> fn,
                      std::vector<std::string> vars,
                      std::string label = "<function>");

  std::size_t num_params() const { return params_.size(); }
  const Parameter& param(std::size_t i) const { return *params_[i]; }
  Parameter& mutable_param(std::size_t i) { return *params_[i]; }

  /** Index of a parameter by name. @throws std::runtime_error if missing. */
  std::size_t index_of(const std::string& name) const;
  /** True when a parameter with this name exists. */
  bool has_param(const std::string& name) const;

  const std::vector<Constraint>& constraints() const { return constraints_; }
  bool has_constraints() const { return !constraints_.empty(); }

  /** Scalar variable bindings for expression evaluation (permutations are
   *  omitted — they cannot appear in scalar expressions). */
  EvalContext make_context(const Configuration& c) const;

  /** True when c satisfies every known constraint. */
  bool satisfies(const Configuration& c) const;

  /** Uniform sample from the dense (unconstrained) space. */
  Configuration sample_unconstrained(RngEngine& rng) const;

  /**
   * Uniform sample from the feasible region via rejection sampling.
   * Returns nullopt when max_tries rejections occur (very sparse spaces
   * should use the Chain-of-Trees instead).
   */
  std::optional<Configuration> sample_feasible(RngEngine& rng,
                                               int max_tries = 10000) const;

  /**
   * All single-parameter moves from c (paper Sec. 3.3's neighbourhood).
   * Not filtered for feasibility — the caller applies constraint/CoT checks.
   */
  std::vector<Configuration> neighbors(const Configuration& c,
                                       RngEngine& rng) const;

  /** Numeric feature encoding of a configuration (random-forest input). */
  std::vector<double> encode(const Configuration& c) const;
  std::size_t num_features() const;

  /** Normalized per-dimension distance (GP kernel input). */
  double dim_distance(std::size_t dim, const Configuration& a,
                      const Configuration& b) const;

  /** Human-readable "name=value, ..." rendering. */
  std::string config_to_string(const Configuration& c) const;

  /** Product of value counts; infinity when any parameter is continuous. */
  double dense_size() const;

  /** True when all parameters are discrete. */
  bool is_fully_discrete() const;

 private:
  std::size_t add_param(std::unique_ptr<Parameter> p);

  std::vector<std::unique_ptr<Parameter>> params_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::vector<Constraint> constraints_;
};

}  // namespace baco

#endif  // BACO_CORE_SEARCH_SPACE_HPP_
