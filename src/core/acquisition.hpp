#ifndef BACO_CORE_ACQUISITION_HPP_
#define BACO_CORE_ACQUISITION_HPP_

/**
 * @file
 * Expected Improvement acquisition (paper Sec. 3.3) and its composition
 * with the probability of feasibility (Sec. 4.2).
 *
 * The EI here is the paper's modified, noise-free variant: it is computed
 * from the *latent* predictive distribution (no observation noise), which
 * discourages re-sampling already-measured good points in noisy discrete
 * spaces.
 */

namespace baco {

/**
 * Expected improvement of a minimization objective at a point with latent
 * predictive mean/variance, against incumbent best.
 *
 * EI = (best - mean) * Phi(z) + sigma * phi(z),  z = (best - mean) / sigma.
 * Returns 0 for degenerate variance when mean >= best.
 */
double expected_improvement(double mean, double var, double best);

/**
 * Feasibility-weighted EI: EI * p_feasible, with the minimum-feasibility
 * threshold eps_f (Sec. 4.2): candidates with p_feasible < eps_f are
 * rejected outright (returns -1 so any admissible point wins).
 */
double constrained_ei(double mean, double var, double best,
                      double p_feasible, double eps_f);

}  // namespace baco

#endif  // BACO_CORE_ACQUISITION_HPP_
