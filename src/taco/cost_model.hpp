#ifndef BACO_TACO_COST_MODEL_HPP_
#define BACO_TACO_COST_MODEL_HPP_

/**
 * @file
 * Deterministic analytic performance model of TACO-generated OpenMP sparse
 * kernels on a two-socket Xeon node (the paper's TACO testbed).
 *
 * The model is the benchmark harness's substitute for compiling and running
 * real TACO code (see DESIGN.md, substitution 1). It reproduces the
 * mechanisms that make the schedule space interesting:
 *
 *  - cache-capacity locality term, U-shaped in the log of the tile
 *    parameters, with dataset-dependent optima;
 *  - loop-order term driven by the Spearman distance to a
 *    dataset-dependent ideal order; *discordant* orders (violating the
 *    format's concordant-traversal chains) cost multiples, which is why
 *    ill-scheduled SpMV runs orders of magnitude slower (paper RQ4);
 *  - OpenMP scheduling: static suffers from row-imbalance (skew), dynamic
 *    pays a per-quantum overhead — the best choice depends on the dataset;
 *  - unrolling with a locality-dependent sweet spot;
 *  - a hidden memory constraint for TTV (per-thread workspace overflow),
 *    observable only by evaluating.
 */

#include "core/types.hpp"
#include "taco/generators.hpp"

namespace baco::taco {

/** The five tensor expressions (paper Sec. 5.2). */
enum class TacoKernel { kSpMV, kSpMM, kSDDMM, kTTV, kMTTKRP };

/** Number of loop slots in the kernel's permutation parameter. */
int kernel_perm_size(TacoKernel k);

/** Decoded schedule (see taco/benchmarks.cpp for the parameter layout). */
struct TacoSchedule {
  double chunk = 256;       ///< i-loop split factor
  double chunk2 = 32;       ///< inner/dense tile
  double unroll = 1;
  bool dynamic_sched = false;
  double omp_chunk = 8;     ///< tasks per OpenMP scheduling quantum
  double threads = 32;
  Permutation perm;         ///< loop order over the kernel's loop slots
};

/**
 * Modelled kernel runtime in milliseconds (noise-free).
 */
double taco_cost_ms(TacoKernel k, const TensorProfile& t,
                    const TacoSchedule& s);

/**
 * Hidden-constraint check: false when the configuration would crash at
 * runtime (only TTV has a hidden constraint in the TACO suite, Table 3).
 */
bool taco_hidden_feasible(TacoKernel k, const TensorProfile& t,
                          const TacoSchedule& s);

/**
 * The dataset-dependent ideal loop order. Deliberately *not* the identity
 * (the default order the paper's experts used), so permutation exploration
 * is worth roughly the ~1.1x the paper reports for TACO (RQ4).
 */
Permutation ideal_perm(TacoKernel k, const TensorProfile& t);

/** True when perm respects the format's concordant-traversal chains. */
bool perm_concordant(TacoKernel k, const Permutation& perm);

}  // namespace baco::taco

#endif  // BACO_TACO_COST_MODEL_HPP_
