#include "taco/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace baco::taco {

Matrix
CsrMatrix::to_dense() const
{
    Matrix d(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
    for (int i = 0; i < rows; ++i)
        for (int p = row_ptr[static_cast<std::size_t>(i)];
             p < row_ptr[static_cast<std::size_t>(i) + 1]; ++p)
            d(static_cast<std::size_t>(i),
              static_cast<std::size_t>(col_idx[static_cast<std::size_t>(p)])) +=
                vals[static_cast<std::size_t>(p)];
    return d;
}

void
CooTensor3::sort_entries()
{
    std::sort(entries.begin(), entries.end(),
              [](const Coord3& a, const Coord3& b) { return a.idx < b.idx; });
}

void
CooTensor4::sort_entries()
{
    std::sort(entries.begin(), entries.end(),
              [](const Coord4& a, const Coord4& b) { return a.idx < b.idx; });
}

CsrMatrix
csr_from_triplets(int rows, int cols, std::vector<std::array<int, 2>> coords,
                  std::vector<double> vals)
{
    assert(coords.size() == vals.size());
    std::vector<std::size_t> order(coords.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return coords[a] < coords[b];
    });

    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
    int prev_row = -1, prev_col = -1;
    for (std::size_t s : order) {
        int r = coords[s][0];
        int c = coords[s][1];
        if (r == prev_row && c == prev_col) {
            m.vals.back() += vals[s];  // merge duplicate coordinate
            continue;
        }
        m.col_idx.push_back(c);
        m.vals.push_back(vals[s]);
        m.row_ptr[static_cast<std::size_t>(r) + 1] += 1;
        prev_row = r;
        prev_col = c;
    }
    for (int r = 0; r < rows; ++r)
        m.row_ptr[static_cast<std::size_t>(r) + 1] +=
            m.row_ptr[static_cast<std::size_t>(r)];
    return m;
}

}  // namespace baco::taco
