#ifndef BACO_TACO_CSF_HPP_
#define BACO_TACO_CSF_HPP_

/**
 * @file
 * Compressed Sparse Fiber (CSF) storage for higher-order sparse tensors —
 * the hierarchical format TACO compiles to for tensor expressions like TTV
 * and MTTKRP (Smith & Karypis's CSF; Kjolstad et al.'s sparse levels).
 *
 * Each level l stores segment pointers pos[l] and coordinates idx[l]; a
 * path root->leaf is one nonzero. Kernels traverse fibers hierarchically,
 * which is exactly the "concordant traversal" the TACO cost model rewards:
 * iterating modes in CSF level order streams memory, iterating against it
 * requires searching.
 */

#include <vector>

#include "linalg/matrix.hpp"
#include "taco/tensor.hpp"

namespace baco::taco {

/** CSF for 3-mode tensors (levels: i -> j -> k). */
struct CsfTensor3 {
  std::array<int, 3> dims{0, 0, 0};
  // Level 0: root fibers.
  std::vector<int> idx0;              ///< distinct i coordinates
  std::vector<int> pos1;              ///< idx0[r] owns idx1[pos1[r]..pos1[r+1])
  std::vector<int> idx1;              ///< j coordinates per i-fiber
  std::vector<int> pos2;              ///< idx1[s] owns idx2[pos2[s]..pos2[s+1])
  std::vector<int> idx2;              ///< k coordinates per (i,j)-fiber
  std::vector<double> vals;           ///< aligned with idx2

  int nnz() const { return static_cast<int>(vals.size()); }

  /** Build from a (sorted or unsorted) COO tensor; duplicates are summed. */
  static CsfTensor3 from_coo(CooTensor3 coo);
};

/** CSF for 4-mode tensors (levels: i -> k -> l -> m). */
struct CsfTensor4 {
  std::array<int, 4> dims{0, 0, 0, 0};
  std::vector<int> idx0;
  std::vector<int> pos1;
  std::vector<int> idx1;
  std::vector<int> pos2;
  std::vector<int> idx2;
  std::vector<int> pos3;
  std::vector<int> idx3;
  std::vector<double> vals;

  int nnz() const { return static_cast<int>(vals.size()); }

  static CsfTensor4 from_coo(CooTensor4 coo);
};

/** A(i,j) = sum_k B(i,j,k) c_k over CSF (fiber-hierarchical traversal). */
Matrix ttv_csf(const CsfTensor3& b, const std::vector<double>& c);

/** A(i,j) = sum_klm B(i,k,l,m) C(k,j) D(l,j) E(m,j) over CSF, with factor
 *  products hoisted per fiber level (the classic CSF MTTKRP optimization:
 *  C-row reuse across the k-fiber, C*D partial product across the l-fiber). */
Matrix mttkrp4_csf(const CsfTensor4& b, const Matrix& c, const Matrix& d,
                   const Matrix& e);

}  // namespace baco::taco

#endif  // BACO_TACO_CSF_HPP_
