#ifndef BACO_TACO_GENERATORS_HPP_
#define BACO_TACO_GENERATORS_HPP_

/**
 * @file
 * Synthetic stand-ins for the paper's Table 4 tensors.
 *
 * The real evaluation uses SuiteSparse matrices, the Facebook activities
 * graph and FROSTT tensors. Those datasets are not available offline, so
 * each is described by a TensorProfile carrying its published dimensions
 * and nonzero count plus two structural statistics that drive the cost
 * model: row-imbalance (skew) and structural locality (banded-ness).
 * Profiles can also be *materialized* as real sparse tensors (optionally
 * scaled down) with the matching sparsity pattern, for the executable
 * kernels, examples and tests.
 */

#include <string>
#include <vector>

#include "linalg/rng.hpp"
#include "taco/tensor.hpp"

namespace baco::taco {

/** Structural class of the synthetic generator. */
enum class SparsityPattern {
  kUniform,   ///< uniformly random coordinates
  kBanded,    ///< entries concentrated near the diagonal (FEM/fluids)
  kPowerLaw,  ///< skewed row degrees (social networks, circuits)
};

/** Statistics describing one Table 4 dataset. */
struct TensorProfile {
  std::string name;
  int order = 2;                       ///< 2, 3 or 4 modes
  std::array<double, 4> dims{1, 1, 1, 1};
  double nnz = 0;
  double skew = 0.0;       ///< 0 = balanced rows, 1 = extremely skewed
  double locality = 0.0;   ///< 0 = scattered, 1 = tightly banded
  SparsityPattern pattern = SparsityPattern::kUniform;
  std::string source;      ///< provenance note (substituted dataset)

  double rows() const { return dims[0]; }
  double avg_nnz_per_row() const { return nnz / dims[0]; }
};

/** All built-in profiles (Table 4 plus amazon0312 used by Fig. 8). */
const std::vector<TensorProfile>& tensor_profiles();

/** Look up a profile by name. @throws std::runtime_error when unknown. */
const TensorProfile& profile(const std::string& name);

/**
 * Materialize a matrix profile as a real CSR matrix, scaled down by
 * `scale` in rows/cols/nnz (1.0 = full size). Requires order == 2.
 */
CsrMatrix generate_matrix(const TensorProfile& p, double scale,
                          RngEngine& rng);

/** Materialize a 3-tensor profile (order == 3). */
CooTensor3 generate_tensor3(const TensorProfile& p, double scale,
                            RngEngine& rng);

/** Materialize a 4-tensor profile (order == 4). */
CooTensor4 generate_tensor4(const TensorProfile& p, double scale,
                            RngEngine& rng);

}  // namespace baco::taco

#endif  // BACO_TACO_GENERATORS_HPP_
