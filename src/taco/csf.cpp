#include "taco/csf.hpp"

#include <algorithm>

namespace baco::taco {

CsfTensor3
CsfTensor3::from_coo(CooTensor3 coo)
{
    coo.sort_entries();
    CsfTensor3 t;
    t.dims = coo.dims;

    int prev_i = -1, prev_j = -1, prev_k = -1;
    for (const Coord3& e : coo.entries) {
        bool new_i = e.idx[0] != prev_i;
        bool new_j = new_i || e.idx[1] != prev_j;
        bool new_k = new_j || e.idx[2] != prev_k;
        if (!new_k) {
            t.vals.back() += e.val;  // duplicate coordinate
            continue;
        }
        if (new_i) {
            t.idx0.push_back(e.idx[0]);
            t.pos1.push_back(static_cast<int>(t.idx1.size()));
        }
        if (new_j) {
            t.idx1.push_back(e.idx[1]);
            t.pos2.push_back(static_cast<int>(t.idx2.size()));
        }
        t.idx2.push_back(e.idx[2]);
        t.vals.push_back(e.val);
        prev_i = e.idx[0];
        prev_j = e.idx[1];
        prev_k = e.idx[2];
    }
    t.pos1.push_back(static_cast<int>(t.idx1.size()));
    t.pos2.push_back(static_cast<int>(t.idx2.size()));
    return t;
}

CsfTensor4
CsfTensor4::from_coo(CooTensor4 coo)
{
    coo.sort_entries();
    CsfTensor4 t;
    t.dims = coo.dims;

    int prev0 = -1, prev1 = -1, prev2 = -1, prev3 = -1;
    for (const Coord4& e : coo.entries) {
        bool new0 = e.idx[0] != prev0;
        bool new1 = new0 || e.idx[1] != prev1;
        bool new2 = new1 || e.idx[2] != prev2;
        bool new3 = new2 || e.idx[3] != prev3;
        if (!new3) {
            t.vals.back() += e.val;
            continue;
        }
        if (new0) {
            t.idx0.push_back(e.idx[0]);
            t.pos1.push_back(static_cast<int>(t.idx1.size()));
        }
        if (new1) {
            t.idx1.push_back(e.idx[1]);
            t.pos2.push_back(static_cast<int>(t.idx2.size()));
        }
        if (new2) {
            t.idx2.push_back(e.idx[2]);
            t.pos3.push_back(static_cast<int>(t.idx3.size()));
        }
        t.idx3.push_back(e.idx[3]);
        t.vals.push_back(e.val);
        prev0 = e.idx[0];
        prev1 = e.idx[1];
        prev2 = e.idx[2];
        prev3 = e.idx[3];
    }
    t.pos1.push_back(static_cast<int>(t.idx1.size()));
    t.pos2.push_back(static_cast<int>(t.idx2.size()));
    t.pos3.push_back(static_cast<int>(t.idx3.size()));
    return t;
}

Matrix
ttv_csf(const CsfTensor3& b, const std::vector<double>& c)
{
    Matrix a(static_cast<std::size_t>(b.dims[0]),
             static_cast<std::size_t>(b.dims[1]));
    for (std::size_t r = 0; r < b.idx0.size(); ++r) {
        auto i = static_cast<std::size_t>(b.idx0[r]);
        for (int s = b.pos1[r]; s < b.pos1[r + 1]; ++s) {
            auto su = static_cast<std::size_t>(s);
            auto j = static_cast<std::size_t>(b.idx1[su]);
            double acc = 0.0;
            for (int p = b.pos2[su]; p < b.pos2[su + 1]; ++p) {
                auto pu = static_cast<std::size_t>(p);
                acc += b.vals[pu] *
                       c[static_cast<std::size_t>(b.idx2[pu])];
            }
            a(i, j) += acc;
        }
    }
    return a;
}

Matrix
mttkrp4_csf(const CsfTensor4& b, const Matrix& c, const Matrix& d,
            const Matrix& e)
{
    std::size_t rank = c.cols();
    Matrix a(static_cast<std::size_t>(b.dims[0]), rank);
    std::vector<double> kl_partial(rank);  // C(k,:) * D(l,:) per l-fiber
    std::vector<double> row_acc(rank);     // per-i accumulator

    for (std::size_t r = 0; r < b.idx0.size(); ++r) {
        auto i = static_cast<std::size_t>(b.idx0[r]);
        std::fill(row_acc.begin(), row_acc.end(), 0.0);
        for (int s = b.pos1[r]; s < b.pos1[r + 1]; ++s) {
            auto su = static_cast<std::size_t>(s);
            auto k = static_cast<std::size_t>(b.idx1[su]);
            for (int q = b.pos2[su]; q < b.pos2[su + 1]; ++q) {
                auto qu = static_cast<std::size_t>(q);
                auto l = static_cast<std::size_t>(b.idx2[qu]);
                // Hoist the C*D product across the innermost fiber.
                for (std::size_t j = 0; j < rank; ++j)
                    kl_partial[j] = c(k, j) * d(l, j);
                for (int p = b.pos3[qu]; p < b.pos3[qu + 1]; ++p) {
                    auto pu = static_cast<std::size_t>(p);
                    auto m = static_cast<std::size_t>(b.idx3[pu]);
                    double v = b.vals[pu];
                    for (std::size_t j = 0; j < rank; ++j)
                        row_acc[j] += v * kl_partial[j] * e(m, j);
                }
            }
        }
        for (std::size_t j = 0; j < rank; ++j)
            a(i, j) += row_acc[j];
    }
    return a;
}

}  // namespace baco::taco
