#ifndef BACO_TACO_KERNELS_HPP_
#define BACO_TACO_KERNELS_HPP_

/**
 * @file
 * Executable sparse tensor kernels for the five TACO expressions of the
 * paper's Sec. 5.2:
 *
 *   SpMV    a_i   = sum_k B_ik c_k
 *   SpMM    A_ij  = sum_k B_ik C_kj
 *   SDDMM   A_ij  = sum_k B_ij C_ik D_jk
 *   TTV     A_ij  = sum_k B_ijk c_k
 *   MTTKRP  A_ij  = sum_klm B_iklm C_kj D_lj E_mj
 *
 * Each has a reference implementation and a *scheduled* variant whose loop
 * structure is driven by tiling/unroll parameters; property tests verify
 * that schedules never change results — the TACO guarantee that makes
 * autoscheduling safe.
 */

#include <vector>

#include "linalg/matrix.hpp"
#include "taco/tensor.hpp"

namespace baco::taco {

/** Loop-level schedule for the executable kernels. */
struct ExecSchedule {
  int row_chunk = 64;  ///< i-loop split factor
  int col_tile = 32;   ///< dense-column tile
  int unroll = 1;      ///< inner-loop unroll factor
};

/** a = B c (reference). */
std::vector<double> spmv(const CsrMatrix& b, const std::vector<double>& c);

/** a = B c with row chunking and inner unrolling. */
std::vector<double> spmv_scheduled(const CsrMatrix& b,
                                   const std::vector<double>& c,
                                   const ExecSchedule& s);

/** A = B C (reference). */
Matrix spmm(const CsrMatrix& b, const Matrix& c);

/** A = B C with row chunking and dense-column tiling. */
Matrix spmm_scheduled(const CsrMatrix& b, const Matrix& c,
                      const ExecSchedule& s);

/** SDDMM values: out[p] = B.vals[p] * sum_k C(i,k) D(j,k) for entry p=(i,j). */
std::vector<double> sddmm(const CsrMatrix& b, const Matrix& c,
                          const Matrix& d);

/** SDDMM with k-tiling. */
std::vector<double> sddmm_scheduled(const CsrMatrix& b, const Matrix& c,
                                    const Matrix& d, const ExecSchedule& s);

/** A(i,j) = sum_k B(i,j,k) c_k over a sorted COO 3-tensor. */
Matrix ttv(const CooTensor3& b, const std::vector<double>& c);

/** A(i,j) = sum_klm B(i,k,l,m) C(k,j) D(l,j) E(m,j). */
Matrix mttkrp4(const CooTensor4& b, const Matrix& c, const Matrix& d,
               const Matrix& e);

/** MTTKRP with rank (j) tiling. */
Matrix mttkrp4_scheduled(const CooTensor4& b, const Matrix& c,
                         const Matrix& d, const Matrix& e,
                         const ExecSchedule& s);

}  // namespace baco::taco

#endif  // BACO_TACO_KERNELS_HPP_
