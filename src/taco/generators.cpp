#include "taco/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace baco::taco {

const std::vector<TensorProfile>&
tensor_profiles()
{
    // Dimensions and nonzero counts follow the paper's Table 4; skew and
    // locality are chosen to match each dataset's documented structure.
    static const std::vector<TensorProfile> kProfiles = {
        // name, order, dims, nnz, skew, locality, pattern, source
        {"ACTIVSg10K", 2, {20000, 20000, 1, 1}, 135888, 0.25, 0.55,
         SparsityPattern::kBanded, "SuiteSparse power grid (synthetic)"},
        {"email-Enron", 2, {36692, 36692, 1, 1}, 367662, 0.95, 0.10,
         SparsityPattern::kPowerLaw, "SuiteSparse social graph (synthetic)"},
        {"Goodwin_040", 2, {17922, 17922, 1, 1}, 561677, 0.15, 0.80,
         SparsityPattern::kBanded, "SuiteSparse FEM (synthetic)"},
        {"scircuit", 2, {170998, 170998, 1, 1}, 958936, 0.60, 0.35,
         SparsityPattern::kPowerLaw, "SuiteSparse circuit (synthetic)"},
        {"filter3D", 2, {106437, 106437, 1, 1}, 2707179, 0.20, 0.85,
         SparsityPattern::kBanded, "SuiteSparse 3D filter (synthetic)"},
        {"laminar_duct3D", 2, {67173, 67173, 1, 1}, 3788857, 0.25, 0.85,
         SparsityPattern::kBanded, "SuiteSparse fluid dynamics (synthetic)"},
        {"cage12", 2, {130228, 130228, 1, 1}, 2032536, 0.10, 0.50,
         SparsityPattern::kUniform, "SuiteSparse DNA electrophoresis (synthetic)"},
        {"smt", 2, {25710, 25710, 1, 1}, 3749582, 0.30, 0.70,
         SparsityPattern::kBanded, "SuiteSparse thermal (synthetic)"},
        {"amazon0312", 2, {400727, 400727, 1, 1}, 3200440, 0.85, 0.15,
         SparsityPattern::kPowerLaw, "SNAP co-purchase graph (synthetic)"},
        {"random2", 2, {10000, 10000, 1, 1}, 5000000, 0.05, 0.0,
         SparsityPattern::kUniform, "synthetic uniform"},
        {"random1", 3, {1000, 500, 100, 1}, 5000000, 0.05, 0.0,
         SparsityPattern::kUniform, "synthetic uniform 3-tensor"},
        {"facebook", 3, {1504, 42390, 39986, 1}, 737934, 0.90, 0.10,
         SparsityPattern::kPowerLaw, "Facebook activities (synthetic)"},
        {"uber", 4, {183, 24, 1140, 1717}, 3309490, 0.55, 0.30,
         SparsityPattern::kPowerLaw, "FROSTT uber (synthetic)"},
        {"nips", 4, {2482, 2482, 14036, 17}, 3101609, 0.70, 0.20,
         SparsityPattern::kPowerLaw, "FROSTT nips (synthetic)"},
        {"chicago", 4, {6186, 24, 77, 32}, 5330673, 0.40, 0.40,
         SparsityPattern::kUniform, "FROSTT chicago crime (synthetic)"},
        {"uber3", 3, {183, 1140, 1717, 1}, 1117629, 0.70, 0.25,
         SparsityPattern::kPowerLaw, "FROSTT uber 3-mode (synthetic)"},
    };
    return kProfiles;
}

const TensorProfile&
profile(const std::string& name)
{
    for (const TensorProfile& p : tensor_profiles())
        if (p.name == name)
            return p;
    throw std::runtime_error("unknown tensor profile '" + name + "'");
}

namespace {

/** Power-law row index in [0, n): row ~ u^alpha scaled (small index = hub). */
int
powerlaw_index(RngEngine& rng, int n, double skew)
{
    double alpha = 1.0 + 4.0 * skew;  // heavier tails for higher skew
    double u = rng.uniform(1e-9, 1.0);
    double x = std::pow(u, alpha);
    int idx = static_cast<int>(x * n);
    return std::min(idx, n - 1);
}

/** Column near the diagonal for banded patterns. */
int
banded_col(RngEngine& rng, int row, int cols, double locality)
{
    double width = std::max(2.0, (1.0 - locality) * cols * 0.25 + 4.0);
    int col = row + static_cast<int>(std::llround(rng.normal(0.0, width)));
    return std::clamp(col, 0, cols - 1);
}

}  // namespace

CsrMatrix
generate_matrix(const TensorProfile& p, double scale, RngEngine& rng)
{
    if (p.order != 2)
        throw std::runtime_error("profile '" + p.name + "' is not a matrix");
    int rows = std::max(8, static_cast<int>(p.dims[0] * scale));
    int cols = std::max(8, static_cast<int>(p.dims[1] * scale));
    auto nnz = static_cast<std::size_t>(std::max(1.0, p.nnz * scale));

    std::vector<std::array<int, 2>> coords;
    std::vector<double> vals;
    coords.reserve(nnz);
    vals.reserve(nnz);
    for (std::size_t e = 0; e < nnz; ++e) {
        int r, c;
        switch (p.pattern) {
          case SparsityPattern::kBanded:
            r = static_cast<int>(rng.index(static_cast<std::size_t>(rows)));
            c = banded_col(rng, r, cols, p.locality);
            break;
          case SparsityPattern::kPowerLaw:
            r = powerlaw_index(rng, rows, p.skew);
            c = powerlaw_index(rng, cols, p.skew * 0.5);
            break;
          case SparsityPattern::kUniform:
          default:
            r = static_cast<int>(rng.index(static_cast<std::size_t>(rows)));
            c = static_cast<int>(rng.index(static_cast<std::size_t>(cols)));
            break;
        }
        coords.push_back({r, c});
        vals.push_back(rng.uniform(-1.0, 1.0));
    }
    return csr_from_triplets(rows, cols, std::move(coords), std::move(vals));
}

CooTensor3
generate_tensor3(const TensorProfile& p, double scale, RngEngine& rng)
{
    if (p.order != 3)
        throw std::runtime_error("profile '" + p.name + "' is not a 3-tensor");
    CooTensor3 t;
    for (int m = 0; m < 3; ++m)
        t.dims[static_cast<std::size_t>(m)] =
            std::max(4, static_cast<int>(p.dims[static_cast<std::size_t>(m)] *
                                         scale));
    auto nnz = static_cast<std::size_t>(std::max(1.0, p.nnz * scale));
    t.entries.reserve(nnz);
    for (std::size_t e = 0; e < nnz; ++e) {
        Coord3 c;
        for (int m = 0; m < 3; ++m) {
            int dim = t.dims[static_cast<std::size_t>(m)];
            c.idx[static_cast<std::size_t>(m)] =
                p.pattern == SparsityPattern::kPowerLaw
                    ? powerlaw_index(rng, dim, p.skew)
                    : static_cast<int>(rng.index(static_cast<std::size_t>(dim)));
        }
        c.val = rng.uniform(-1.0, 1.0);
        t.entries.push_back(c);
    }
    t.sort_entries();
    return t;
}

CooTensor4
generate_tensor4(const TensorProfile& p, double scale, RngEngine& rng)
{
    if (p.order != 4)
        throw std::runtime_error("profile '" + p.name + "' is not a 4-tensor");
    CooTensor4 t;
    for (int m = 0; m < 4; ++m)
        t.dims[static_cast<std::size_t>(m)] =
            std::max(2, static_cast<int>(p.dims[static_cast<std::size_t>(m)] *
                                         scale));
    auto nnz = static_cast<std::size_t>(std::max(1.0, p.nnz * scale));
    t.entries.reserve(nnz);
    for (std::size_t e = 0; e < nnz; ++e) {
        Coord4 c;
        for (int m = 0; m < 4; ++m) {
            int dim = t.dims[static_cast<std::size_t>(m)];
            c.idx[static_cast<std::size_t>(m)] =
                p.pattern == SparsityPattern::kPowerLaw
                    ? powerlaw_index(rng, dim, p.skew)
                    : static_cast<int>(rng.index(static_cast<std::size_t>(dim)));
        }
        c.val = rng.uniform(-1.0, 1.0);
        t.entries.push_back(c);
    }
    t.sort_entries();
    return t;
}

}  // namespace baco::taco
