#ifndef BACO_TACO_BENCHMARKS_HPP_
#define BACO_TACO_BENCHMARKS_HPP_

/**
 * @file
 * The TACO benchmark suite (paper Table 3, TACO rows): five tensor
 * expressions x Table 4 datasets, 15 instances in the main suite plus
 * extra kernel/tensor combinations used by the Fig. 8/9 ablations.
 *
 * Parameter layout (fixed across kernels; indices matter for decoding):
 *   0 chunk_size      ordinal {8..4096}, log-scaled
 *   1 chunk_size2     ordinal {2..1024}, log-scaled
 *   2 unroll_factor   ordinal {1..64},   log-scaled
 *   3 omp_scheduling  categorical {static, dynamic}
 *   4 omp_chunk_size  ordinal {1..256},  log-scaled
 *   5 omp_num_threads ordinal {1..128},  log-scaled   (SpMV and TTV only)
 *   last: loop_perm   permutation over the kernel's loop slots
 *
 * Known constraints (all kernels except SpMV, matching the paper's RQ4
 * observation that one benchmark has none): unroll <= chunk_size2, and
 * concordant-traversal ordering of the loop permutation. TTV additionally
 * has the hidden workspace constraint (Table 3's H).
 */

#include <vector>

#include "suite/benchmark.hpp"
#include "taco/cost_model.hpp"

namespace baco::taco {

/** Decode a configuration of the layout above into a schedule. */
TacoSchedule decode_schedule(TacoKernel k, const Configuration& c);

/** Build one benchmark instance (any kernel x any Table 4 profile). */
Benchmark make_taco_benchmark(TacoKernel k, const std::string& tensor_name);

/** The 15 main-suite instances (Tables 5-9 coverage). */
std::vector<Benchmark> taco_suite();

}  // namespace baco::taco

#endif  // BACO_TACO_BENCHMARKS_HPP_
