#include "taco/benchmarks.hpp"

#include <cmath>
#include <limits>

namespace baco::taco {

namespace {

bool
kernel_has_threads_param(TacoKernel k)
{
    return k == TacoKernel::kSpMV || k == TacoKernel::kTTV;
}

std::string
kernel_name(TacoKernel k)
{
    switch (k) {
      case TacoKernel::kSpMV: return "SpMV";
      case TacoKernel::kSpMM: return "SpMM";
      case TacoKernel::kSDDMM: return "SDDMM";
      case TacoKernel::kTTV: return "TTV";
      case TacoKernel::kMTTKRP: return "MTTKRP";
    }
    return "?";
}

int
kernel_budget(TacoKernel k)
{
    // Table 3's Full Budget column.
    switch (k) {
      case TacoKernel::kSpMV: return 70;
      case TacoKernel::kTTV: return 70;
      default: return 60;
    }
}

std::shared_ptr<SearchSpace>
build_space(TacoKernel k, const SpaceVariant& v)
{
    auto space = std::make_shared<SearchSpace>();
    bool lg = v.log_transforms;
    space->add_ordinal("chunk_size",
                       {8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}, lg);
    space->add_ordinal("chunk_size2",
                       {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, lg);
    space->add_ordinal("unroll_factor", {1, 2, 4, 8, 16, 32, 64}, lg);
    space->add_categorical("omp_scheduling", {"static", "dynamic"});
    space->add_ordinal("omp_chunk_size", {1, 2, 4, 8, 16, 32, 64, 128, 256},
                       lg);
    if (kernel_has_threads_param(k))
        space->add_ordinal("omp_num_threads", {1, 2, 4, 8, 16, 32, 64, 128},
                           lg);
    int m = kernel_perm_size(k);
    std::size_t perm_idx =
        space->add_permutation("loop_perm", m, v.permutation_metric);

    if (k != TacoKernel::kSpMV) {
        space->add_constraint("unroll_factor <= chunk_size2");
        space->add_constraint(
            [k, perm_idx](const Configuration& c) {
                return perm_concordant(k, as_permutation(c[perm_idx]));
            },
            {"loop_perm"}, "concordant(loop_perm)");
    }
    return space;
}

/**
 * Grid used to derive the expert configuration: the best schedule the cost
 * model admits *under the default loop order* (paper Sec. 5.3: TACO experts
 * only considered the default ordering). Coarse on purpose — experts are
 * strong, not exhaustive.
 */
Configuration
derive_expert(TacoKernel k, const TensorProfile& t)
{
    std::vector<std::int64_t> chunks = {8, 16, 32, 64, 128, 256,
                                        512, 1024, 2048, 4096};
    std::vector<std::int64_t> chunk2s = {2, 4, 8, 16, 32, 64, 128, 256, 512,
                                         1024};
    std::vector<std::int64_t> unrolls = {1, 4, 16};
    std::vector<std::int64_t> omp_chunks = {4, 64};
    std::vector<std::int64_t> threads = kernel_has_threads_param(k)
                                            ? std::vector<std::int64_t>{8, 32}
                                            : std::vector<std::int64_t>{32};

    int m = kernel_perm_size(k);
    Permutation identity(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
        identity[static_cast<std::size_t>(i)] = i;

    double best = std::numeric_limits<double>::infinity();
    TacoSchedule best_s;
    for (std::int64_t c : chunks) {
        for (std::int64_t c2 : chunk2s) {
            for (std::int64_t u : unrolls) {
                if (k != TacoKernel::kSpMV && u > c2)
                    continue;  // known constraint
                for (int dyn = 0; dyn < 2; ++dyn) {
                    for (std::int64_t oc : omp_chunks) {
                        for (std::int64_t th : threads) {
                            TacoSchedule s;
                            s.chunk = static_cast<double>(c);
                            s.chunk2 = static_cast<double>(c2);
                            s.unroll = static_cast<double>(u);
                            s.dynamic_sched = dyn == 1;
                            s.omp_chunk = static_cast<double>(oc);
                            s.threads = static_cast<double>(th);
                            s.perm = identity;
                            if (!taco_hidden_feasible(k, t, s))
                                continue;
                            double v = taco_cost_ms(k, t, s);
                            if (v < best) {
                                best = v;
                                best_s = s;
                            }
                        }
                    }
                }
            }
        }
    }

    Configuration cfg;
    cfg.push_back(static_cast<std::int64_t>(best_s.chunk));
    cfg.push_back(static_cast<std::int64_t>(best_s.chunk2));
    cfg.push_back(static_cast<std::int64_t>(best_s.unroll));
    cfg.push_back(static_cast<std::int64_t>(best_s.dynamic_sched ? 1 : 0));
    cfg.push_back(static_cast<std::int64_t>(best_s.omp_chunk));
    if (kernel_has_threads_param(k))
        cfg.push_back(static_cast<std::int64_t>(best_s.threads));
    cfg.push_back(best_s.perm);
    return cfg;
}

Configuration
make_default(TacoKernel k)
{
    int m = kernel_perm_size(k);
    Permutation identity(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
        identity[static_cast<std::size_t>(i)] = i;

    Configuration cfg;
    cfg.push_back(std::int64_t{1024});  // chunk_size: coarse, untiled-ish
    cfg.push_back(std::int64_t{1024});  // chunk_size2
    cfg.push_back(std::int64_t{1});     // unroll_factor
    cfg.push_back(std::int64_t{0});     // static scheduling
    cfg.push_back(std::int64_t{256});   // omp_chunk_size
    if (kernel_has_threads_param(k))
        cfg.push_back(std::int64_t{32});
    cfg.push_back(identity);
    return cfg;
}

}  // namespace

TacoSchedule
decode_schedule(TacoKernel k, const Configuration& c)
{
    TacoSchedule s;
    s.chunk = static_cast<double>(as_int(c[0]));
    s.chunk2 = static_cast<double>(as_int(c[1]));
    s.unroll = static_cast<double>(as_int(c[2]));
    s.dynamic_sched = as_int(c[3]) == 1;
    s.omp_chunk = static_cast<double>(as_int(c[4]));
    std::size_t next = 5;
    if (kernel_has_threads_param(k)) {
        s.threads = static_cast<double>(as_int(c[next]));
        ++next;
    } else {
        s.threads = 32.0;
    }
    s.perm = as_permutation(c[next]);
    return s;
}

Benchmark
make_taco_benchmark(TacoKernel k, const std::string& tensor_name)
{
    const TensorProfile t = profile(tensor_name);  // copy into closures

    Benchmark b;
    b.framework = "TACO";
    b.name = kernel_name(k) + "/" + tensor_name;
    b.full_budget = kernel_budget(k);
    b.doe_samples = 10;
    b.make_space = [k](const SpaceVariant& v) { return build_space(k, v); };
    b.true_cost = [k, t](const Configuration& c) {
        return taco_cost_ms(k, t, decode_schedule(k, c));
    };
    b.hidden_feasible = [k, t](const Configuration& c) {
        return taco_hidden_feasible(k, t, decode_schedule(k, c));
    };
    b.evaluate = [k, t](const Configuration& c, RngEngine& rng) -> EvalResult {
        TacoSchedule s = decode_schedule(k, c);
        if (!taco_hidden_feasible(k, t, s))
            return EvalResult::infeasible();
        double v = taco_cost_ms(k, t, s) * rng.lognormal_factor(0.03);
        return EvalResult{v, true};
    };
    b.has_hidden_constraints = k == TacoKernel::kTTV;
    b.expert = derive_expert(k, t);
    b.default_config = make_default(k);
    b.reference_cost = b.true_cost(*b.expert);
    return b;
}

std::vector<Benchmark>
taco_suite()
{
    std::vector<Benchmark> out;
    // The 15 kernel x tensor combinations of the paper's Table 5.
    out.push_back(make_taco_benchmark(TacoKernel::kSpMM, "scircuit"));
    out.push_back(make_taco_benchmark(TacoKernel::kSpMM, "cage12"));
    out.push_back(make_taco_benchmark(TacoKernel::kSpMM, "laminar_duct3D"));
    out.push_back(make_taco_benchmark(TacoKernel::kSDDMM, "email-Enron"));
    out.push_back(make_taco_benchmark(TacoKernel::kSDDMM, "ACTIVSg10K"));
    out.push_back(make_taco_benchmark(TacoKernel::kSDDMM, "Goodwin_040"));
    out.push_back(make_taco_benchmark(TacoKernel::kMTTKRP, "uber"));
    out.push_back(make_taco_benchmark(TacoKernel::kMTTKRP, "nips"));
    out.push_back(make_taco_benchmark(TacoKernel::kMTTKRP, "chicago"));
    out.push_back(make_taco_benchmark(TacoKernel::kTTV, "facebook"));
    out.push_back(make_taco_benchmark(TacoKernel::kTTV, "uber3"));
    out.push_back(make_taco_benchmark(TacoKernel::kTTV, "random1"));
    out.push_back(make_taco_benchmark(TacoKernel::kSpMV, "laminar_duct3D"));
    out.push_back(make_taco_benchmark(TacoKernel::kSpMV, "cage12"));
    out.push_back(make_taco_benchmark(TacoKernel::kSpMV, "filter3D"));
    return out;
}

}  // namespace baco::taco
