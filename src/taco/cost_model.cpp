#include "taco/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/distance.hpp"

namespace baco::taco {

namespace {

/** Dense-operand width per kernel (columns of C / factor rank). */
double
dense_width(TacoKernel k)
{
    switch (k) {
      case TacoKernel::kSpMV: return 1.0;
      case TacoKernel::kSpMM: return 128.0;
      case TacoKernel::kSDDMM: return 128.0;
      case TacoKernel::kTTV: return 1.0;
      case TacoKernel::kMTTKRP: return 32.0;
    }
    return 1.0;
}

/** Useful flops per nonzero. */
double
flops_per_nnz(TacoKernel k)
{
    switch (k) {
      case TacoKernel::kSpMV: return 2.0;
      case TacoKernel::kSpMM: return 2.0 * dense_width(k);
      case TacoKernel::kSDDMM: return 2.0 * dense_width(k) + 1.0;
      case TacoKernel::kTTV: return 2.0;
      case TacoKernel::kMTTKRP: return 3.0 * dense_width(k);
    }
    return 2.0;
}

const double kSingleThreadFlops = 1.2e9;  // modelled scalar throughput
const double kL2Bytes = 1.0 * 1024 * 1024;

}  // namespace

int
kernel_perm_size(TacoKernel k)
{
    return k == TacoKernel::kMTTKRP ? 4 : 5;
}

bool
perm_concordant(TacoKernel k, const Permutation& perm)
{
    // Loop slots for 5-slot kernels: [i0, i1, k0, k1, u]; concordant CSR/CSF
    // traversal requires i0 < i1, k0 < k1 and i0 < k0 (positions).
    if (kernel_perm_size(k) == 5) {
        return perm[0] < perm[1] && perm[2] < perm[3] && perm[0] < perm[2];
    }
    // 4-slot kernels (MTTKRP): [i, k, l, m]; require i < k and l < m.
    return perm[0] < perm[1] && perm[2] < perm[3];
}

Permutation
ideal_perm(TacoKernel k, const TensorProfile& t)
{
    if (kernel_perm_size(k) == 5) {
        // Identity is [0,1,2,3,4]. Skewed datasets prefer hoisting the
        // nonzero loop split (k0) above the inner row split (i1); regular
        // banded datasets prefer the unrolled slot (u) between the k splits.
        if (t.skew > 0.5)
            return Permutation{0, 2, 1, 3, 4};  // i0 k0 i1 k1 u
        return Permutation{0, 1, 2, 4, 3};      // i0 i1 k0 u k1
    }
    // MTTKRP [i,k,l,m]: long mode first after i for skewed tensors.
    if (t.skew > 0.5)
        return Permutation{0, 2, 1, 3};
    return Permutation{0, 1, 3, 2};
}

bool
taco_hidden_feasible(TacoKernel k, const TensorProfile& t,
                     const TacoSchedule& s)
{
    if (k != TacoKernel::kTTV)
        return true;
    // TTV materializes a per-thread chunk workspace; oversized
    // chunk x thread products exhaust memory and crash at runtime.
    (void)t;
    return s.chunk * s.threads <= 65536.0;
}

double
taco_cost_ms(TacoKernel k, const TensorProfile& t, const TacoSchedule& s)
{
    const double nnz = t.nnz;
    const double rows = t.rows();
    const double width = dense_width(k);

    // ---- Serial baseline. ----
    double serial_s = nnz * flops_per_nnz(k) / kSingleThreadFlops;

    // ---- Locality factor: working set of one (chunk, chunk2) tile. ----
    double nnz_per_row = std::max(1.0, t.avg_nnz_per_row());
    double ws_bytes = s.chunk * nnz_per_row * 16.0 + s.chunk2 * width * 8.0;
    double excess = std::max(0.0, std::log2(ws_bytes / kL2Bytes));
    double locality_sensitivity = 1.0 - 0.6 * t.locality;
    double loc = 1.0 + locality_sensitivity * 0.55 * std::pow(excess, 1.3);
    // Tiny chunks cost loop overhead.
    loc += 0.45 * std::max(0.0, std::log2(16.0 / s.chunk));
    // Inner tile far below the dense width wastes the streamed operand.
    if (width > 1.0)
        loc += 0.08 * std::max(0.0, std::log2(width / 4.0 / s.chunk2));

    // ---- Loop-order factor. ----
    Permutation ideal = ideal_perm(k, t);
    double perm_f;
    if (!perm_concordant(k, s.perm)) {
        // Each violated chain multiplies the traversal cost: the compressed
        // level must be searched instead of streamed.
        int violations = 0;
        if (kernel_perm_size(k) == 5) {
            violations += s.perm[0] < s.perm[1] ? 0 : 1;
            violations += s.perm[2] < s.perm[3] ? 0 : 1;
            violations += s.perm[0] < s.perm[2] ? 0 : 1;
        } else {
            violations += s.perm[0] < s.perm[1] ? 0 : 1;
            violations += s.perm[2] < s.perm[3] ? 0 : 1;
        }
        perm_f = std::pow(7.0, violations);
    } else if (s.perm == ideal) {
        perm_f = 1.0;
    } else {
        perm_f = 1.05 +
                 0.30 * permutation_distance(s.perm, ideal,
                                             PermutationMetric::kSpearman);
    }

    // ---- Unroll factor. ----
    double opt_u = t.locality > 0.5 ? 8.0 : 2.0;
    double dev = std::log2(s.unroll / opt_u);
    double unroll_f = 0.92 + 0.025 * dev * dev;
    // Unrolling past the inner tile thrashes registers.
    if (s.unroll > s.chunk2)
        unroll_f += 0.4;

    // ---- Parallel execution. ----
    double tasks = std::max(1.0, rows / s.chunk);
    double quanta = std::max(1.0, tasks / s.omp_chunk);
    double bw_cap = 6.0 + 26.0 * t.locality;  // memory-bound scaling limit
    double eff_t = std::min({s.threads, bw_cap, tasks});

    double imbalance;
    double sched_overhead_s = 0.0;
    if (s.dynamic_sched) {
        imbalance = 1.0 + 0.12 * t.skew;
        sched_overhead_s = quanta * 1.5e-6;  // per-quantum dispatch cost
    } else {
        double quanta_per_thread = quanta / std::max(1.0, s.threads);
        imbalance =
            1.0 + t.skew * 2.2 / std::sqrt(std::max(1.0, quanta_per_thread));
    }
    // Oversubscription beyond the node's 32 cores costs context switching.
    double oversub = s.threads > 32.0 ? 1.0 + 0.2 * std::log2(s.threads / 32.0)
                                      : 1.0;

    double time_s = serial_s * loc * perm_f * unroll_f * imbalance * oversub /
                        eff_t +
                    sched_overhead_s + 2e-5;
    return time_s * 1e3;
}

}  // namespace baco::taco
