#ifndef BACO_TACO_TENSOR_HPP_
#define BACO_TACO_TENSOR_HPP_

/**
 * @file
 * Sparse tensor storage for the TACO substrate: CSR matrices and
 * coordinate-format higher-order tensors, with dense conversions for
 * reference checks.
 *
 * These are real, executable data structures (used by the scheduled kernels
 * in taco/kernels.hpp and by the examples); the benchmark harness models
 * large Table 4 tensors analytically via taco/generators.hpp profiles
 * instead of materializing them.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace baco::taco {

/** Compressed sparse row matrix. */
struct CsrMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> row_ptr;   ///< size rows+1
  std::vector<int> col_idx;   ///< size nnz
  std::vector<double> vals;   ///< size nnz

  int nnz() const { return static_cast<int>(col_idx.size()); }

  /** Dense copy for reference computations (small matrices only). */
  Matrix to_dense() const;
};

/** One coordinate-format entry of a 3-tensor. */
struct Coord3 {
  std::array<int, 3> idx;
  double val;
};

/** Coordinate-format sparse 3-tensor, sorted lexicographically by index. */
struct CooTensor3 {
  std::array<int, 3> dims{0, 0, 0};
  std::vector<Coord3> entries;

  int nnz() const { return static_cast<int>(entries.size()); }
  /** Sort entries lexicographically (kernels require sorted order). */
  void sort_entries();
};

/** One coordinate-format entry of a 4-tensor. */
struct Coord4 {
  std::array<int, 4> idx;
  double val;
};

/** Coordinate-format sparse 4-tensor, sorted lexicographically by index. */
struct CooTensor4 {
  std::array<int, 4> dims{0, 0, 0, 0};
  std::vector<Coord4> entries;

  int nnz() const { return static_cast<int>(entries.size()); }
  void sort_entries();
};

/** Build CSR from (row, col, val) triplets (duplicates summed). */
CsrMatrix csr_from_triplets(int rows, int cols,
                            std::vector<std::array<int, 2>> coords,
                            std::vector<double> vals);

}  // namespace baco::taco

#endif  // BACO_TACO_TENSOR_HPP_
