#include "taco/kernels.hpp"

#include <algorithm>
#include <cassert>

namespace baco::taco {

std::vector<double>
spmv(const CsrMatrix& b, const std::vector<double>& c)
{
    assert(static_cast<int>(c.size()) == b.cols);
    std::vector<double> a(static_cast<std::size_t>(b.rows), 0.0);
    for (int i = 0; i < b.rows; ++i) {
        double acc = 0.0;
        for (int p = b.row_ptr[static_cast<std::size_t>(i)];
             p < b.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
            acc += b.vals[static_cast<std::size_t>(p)] *
                   c[static_cast<std::size_t>(
                       b.col_idx[static_cast<std::size_t>(p)])];
        }
        a[static_cast<std::size_t>(i)] = acc;
    }
    return a;
}

std::vector<double>
spmv_scheduled(const CsrMatrix& b, const std::vector<double>& c,
               const ExecSchedule& s)
{
    assert(static_cast<int>(c.size()) == b.cols);
    assert(s.row_chunk >= 1 && s.unroll >= 1);
    std::vector<double> a(static_cast<std::size_t>(b.rows), 0.0);
    for (int i0 = 0; i0 < b.rows; i0 += s.row_chunk) {
        int i_end = std::min(b.rows, i0 + s.row_chunk);
        for (int i = i0; i < i_end; ++i) {
            int lo = b.row_ptr[static_cast<std::size_t>(i)];
            int hi = b.row_ptr[static_cast<std::size_t>(i) + 1];
            double acc = 0.0;
            int p = lo;
            // Unrolled body (manual strip-mining).
            for (; p + s.unroll <= hi; p += s.unroll) {
                for (int u = 0; u < s.unroll; ++u) {
                    auto q = static_cast<std::size_t>(p + u);
                    acc += b.vals[q] *
                           c[static_cast<std::size_t>(b.col_idx[q])];
                }
            }
            for (; p < hi; ++p) {
                auto q = static_cast<std::size_t>(p);
                acc += b.vals[q] * c[static_cast<std::size_t>(b.col_idx[q])];
            }
            a[static_cast<std::size_t>(i)] = acc;
        }
    }
    return a;
}

Matrix
spmm(const CsrMatrix& b, const Matrix& c)
{
    assert(static_cast<std::size_t>(b.cols) == c.rows());
    Matrix a(static_cast<std::size_t>(b.rows), c.cols());
    for (int i = 0; i < b.rows; ++i) {
        for (int p = b.row_ptr[static_cast<std::size_t>(i)];
             p < b.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
            auto q = static_cast<std::size_t>(p);
            auto k = static_cast<std::size_t>(b.col_idx[q]);
            double v = b.vals[q];
            for (std::size_t j = 0; j < c.cols(); ++j)
                a(static_cast<std::size_t>(i), j) += v * c(k, j);
        }
    }
    return a;
}

Matrix
spmm_scheduled(const CsrMatrix& b, const Matrix& c, const ExecSchedule& s)
{
    assert(static_cast<std::size_t>(b.cols) == c.rows());
    assert(s.row_chunk >= 1 && s.col_tile >= 1);
    Matrix a(static_cast<std::size_t>(b.rows), c.cols());
    std::size_t nc = c.cols();
    for (int i0 = 0; i0 < b.rows; i0 += s.row_chunk) {
        int i_end = std::min(b.rows, i0 + s.row_chunk);
        for (std::size_t j0 = 0; j0 < nc;
             j0 += static_cast<std::size_t>(s.col_tile)) {
            std::size_t j_end =
                std::min(nc, j0 + static_cast<std::size_t>(s.col_tile));
            for (int i = i0; i < i_end; ++i) {
                for (int p = b.row_ptr[static_cast<std::size_t>(i)];
                     p < b.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
                    auto q = static_cast<std::size_t>(p);
                    auto k = static_cast<std::size_t>(b.col_idx[q]);
                    double v = b.vals[q];
                    for (std::size_t j = j0; j < j_end; ++j)
                        a(static_cast<std::size_t>(i), j) += v * c(k, j);
                }
            }
        }
    }
    return a;
}

std::vector<double>
sddmm(const CsrMatrix& b, const Matrix& c, const Matrix& d)
{
    // A_ij = B_ij * sum_k C_ik D_jk ; C is rows x K, D is cols x K.
    assert(c.rows() == static_cast<std::size_t>(b.rows));
    assert(d.rows() == static_cast<std::size_t>(b.cols));
    assert(c.cols() == d.cols());
    std::vector<double> out(b.vals.size(), 0.0);
    std::size_t kk = c.cols();
    for (int i = 0; i < b.rows; ++i) {
        for (int p = b.row_ptr[static_cast<std::size_t>(i)];
             p < b.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
            auto q = static_cast<std::size_t>(p);
            auto j = static_cast<std::size_t>(b.col_idx[q]);
            double acc = 0.0;
            for (std::size_t k = 0; k < kk; ++k)
                acc += c(static_cast<std::size_t>(i), k) * d(j, k);
            out[q] = b.vals[q] * acc;
        }
    }
    return out;
}

std::vector<double>
sddmm_scheduled(const CsrMatrix& b, const Matrix& c, const Matrix& d,
                const ExecSchedule& s)
{
    assert(c.cols() == d.cols());
    std::vector<double> out(b.vals.size(), 0.0);
    std::size_t kk = c.cols();
    auto tile = static_cast<std::size_t>(std::max(1, s.col_tile));
    for (int i0 = 0; i0 < b.rows; i0 += s.row_chunk) {
        int i_end = std::min(b.rows, i0 + s.row_chunk);
        for (std::size_t k0 = 0; k0 < kk; k0 += tile) {
            std::size_t k_end = std::min(kk, k0 + tile);
            for (int i = i0; i < i_end; ++i) {
                for (int p = b.row_ptr[static_cast<std::size_t>(i)];
                     p < b.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
                    auto q = static_cast<std::size_t>(p);
                    auto j = static_cast<std::size_t>(b.col_idx[q]);
                    double acc = 0.0;
                    for (std::size_t k = k0; k < k_end; ++k)
                        acc += c(static_cast<std::size_t>(i), k) * d(j, k);
                    out[q] += acc;  // accumulate partial dot products
                }
            }
        }
    }
    for (std::size_t q = 0; q < out.size(); ++q)
        out[q] *= b.vals[q];
    return out;
}

Matrix
ttv(const CooTensor3& b, const std::vector<double>& c)
{
    assert(static_cast<int>(c.size()) == b.dims[2]);
    Matrix a(static_cast<std::size_t>(b.dims[0]),
             static_cast<std::size_t>(b.dims[1]));
    for (const Coord3& e : b.entries) {
        a(static_cast<std::size_t>(e.idx[0]),
          static_cast<std::size_t>(e.idx[1])) +=
            e.val * c[static_cast<std::size_t>(e.idx[2])];
    }
    return a;
}

Matrix
mttkrp4(const CooTensor4& b, const Matrix& c, const Matrix& d,
        const Matrix& e)
{
    assert(c.rows() == static_cast<std::size_t>(b.dims[1]));
    assert(d.rows() == static_cast<std::size_t>(b.dims[2]));
    assert(e.rows() == static_cast<std::size_t>(b.dims[3]));
    std::size_t rank = c.cols();
    assert(d.cols() == rank && e.cols() == rank);
    Matrix a(static_cast<std::size_t>(b.dims[0]), rank);
    for (const Coord4& t : b.entries) {
        auto i = static_cast<std::size_t>(t.idx[0]);
        auto k = static_cast<std::size_t>(t.idx[1]);
        auto l = static_cast<std::size_t>(t.idx[2]);
        auto m = static_cast<std::size_t>(t.idx[3]);
        for (std::size_t j = 0; j < rank; ++j)
            a(i, j) += t.val * c(k, j) * d(l, j) * e(m, j);
    }
    return a;
}

Matrix
mttkrp4_scheduled(const CooTensor4& b, const Matrix& c, const Matrix& d,
                  const Matrix& e, const ExecSchedule& s)
{
    std::size_t rank = c.cols();
    Matrix a(static_cast<std::size_t>(b.dims[0]), rank);
    auto tile = static_cast<std::size_t>(std::max(1, s.col_tile));
    for (std::size_t j0 = 0; j0 < rank; j0 += tile) {
        std::size_t j_end = std::min(rank, j0 + tile);
        for (const Coord4& t : b.entries) {
            auto i = static_cast<std::size_t>(t.idx[0]);
            auto k = static_cast<std::size_t>(t.idx[1]);
            auto l = static_cast<std::size_t>(t.idx[2]);
            auto m = static_cast<std::size_t>(t.idx[3]);
            for (std::size_t j = j0; j < j_end; ++j)
                a(i, j) += t.val * c(k, j) * d(l, j) * e(m, j);
        }
    }
    return a;
}

}  // namespace baco::taco
