#ifndef BACO_LINALG_CHOLESKY_HPP_
#define BACO_LINALG_CHOLESKY_HPP_

/**
 * @file
 * Cholesky factorization and SPD solves for Gaussian-process inference.
 */

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace baco {

/**
 * Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
 *
 * Produced by cholesky() / cholesky_with_jitter(); provides the solves and
 * the log-determinant needed for GP marginal-likelihood computations.
 */
class CholeskyFactor {
 public:
  explicit CholeskyFactor(Matrix l) : l_(std::move(l)) {}

  const Matrix& lower() const { return l_; }

  /** Solve L z = b (forward substitution). */
  std::vector<double> solve_lower(const std::vector<double>& b) const;

  /** Solve L^T z = b (backward substitution). */
  std::vector<double> solve_upper(const std::vector<double>& b) const;

  /** Solve A x = b where A = L L^T. */
  std::vector<double> solve(const std::vector<double>& b) const;

  /** Solve A X = B column-by-column; returns X. */
  Matrix solve_matrix(const Matrix& b) const;

  /** log |A| = 2 * sum_i log L_ii. */
  double log_det() const;

  /** A^{-1} computed via solves against the identity. */
  Matrix inverse() const;

 private:
  Matrix l_;
};

/**
 * Attempt a Cholesky factorization of a. Returns nullopt when a is not
 * (numerically) positive definite.
 */
std::optional<CholeskyFactor> cholesky(const Matrix& a);

/**
 * Cholesky with escalating diagonal jitter. Starts from initial_jitter and
 * multiplies by 10 until the factorization succeeds (at most max_tries
 * attempts). Used to keep GP kernel matrices factorizable when points are
 * near-duplicates — and when permutation *semimetrics* (which are not
 * strict metrics, paper Sec. 4.1) produce a slightly indefinite matrix.
 * The ceiling exceeds any possible negative eigenvalue (bounded by the
 * largest row sum), so a finite symmetric input always factorizes.
 *
 * @throws std::runtime_error when the matrix cannot be factorized even with
 *         the maximum jitter (e.g. non-finite entries).
 */
CholeskyFactor cholesky_with_jitter(const Matrix& a,
                                    double initial_jitter = 1e-10,
                                    int max_tries = 16);

}  // namespace baco

#endif  // BACO_LINALG_CHOLESKY_HPP_
