#ifndef BACO_LINALG_CHOLESKY_HPP_
#define BACO_LINALG_CHOLESKY_HPP_

/**
 * @file
 * Cholesky factorization and SPD solves for Gaussian-process inference.
 *
 * Besides the classic from-scratch factorization this provides *incremental*
 * row/column appends: given the factor L of an n x n SPD matrix A and the
 * bordered matrix A' = [[A, B^T], [B, C]], the factor of A' reuses L verbatim
 * and only computes the new trailing rows — O(n^2) per appended row instead
 * of the O(n^3) refactorization. This is what makes GpModel::extend and the
 * constant-liar fantasy loop cheap (ROADMAP item 1).
 */

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace baco {

/**
 * Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
 *
 * Produced by cholesky() / cholesky_with_jitter(); provides the solves and
 * the log-determinant needed for GP marginal-likelihood computations.
 */
class CholeskyFactor {
 public:
  explicit CholeskyFactor(Matrix l) : l_(std::move(l)) {}

  const Matrix& lower() const { return l_; }

  /** Current dimension n of the factored matrix. */
  std::size_t size() const { return l_.rows(); }

  /** Solve L z = b (forward substitution). */
  std::vector<double> solve_lower(const std::vector<double>& b) const;

  /** Solve L^T z = b (backward substitution). */
  std::vector<double> solve_upper(const std::vector<double>& b) const;

  /** Solve A x = b where A = L L^T. */
  std::vector<double> solve(const std::vector<double>& b) const;

  /** Solve A X = B column-by-column; returns X. */
  Matrix solve_matrix(const Matrix& b) const;

  /** log |A| = 2 * sum_i log L_ii. */
  double log_det() const;

  /** A^{-1} computed via solves against the identity. */
  Matrix inverse() const;

  /**
   * Append one row/column to the factored matrix: updates this factor from
   * L(A) to L(A') where A' = [[A, b], [b^T, d]], with cross = b (length n)
   * and diag = d. Costs one forward solve, O(n^2).
   *
   * Returns false — leaving the factor untouched — when the Schur
   * complement d - ||L^{-1} b||^2 is not safely positive, i.e. the bordered
   * matrix is not numerically SPD; callers then fall back to a full
   * (jittered) refactorization.
   */
  bool append(const std::vector<double>& cross, double diag);

  /**
   * Append a block of m rows/columns at once: updates L(A) to L(A') where
   * A' = [[A, B^T], [B, C]], with cross = B (m x n) and corner = C (m x m,
   * symmetric). Used for suggest(n) fantasy batches. O(m n^2 + m^2 n).
   * Returns false (factor untouched) when the Schur complement
   * C - L21 L21^T is not numerically SPD.
   */
  bool append_block(const Matrix& cross, const Matrix& corner);

  /**
   * Shrink back to the leading k x k factor. Exact inverse of append /
   * append_block (the leading block of L never changes), so fantasy rows
   * can be discarded without refactorizing.
   */
  void shrink(std::size_t k);

 private:
  Matrix l_;
};

/**
 * Attempt a Cholesky factorization of a. Returns nullopt when a is not
 * (numerically) positive definite.
 */
std::optional<CholeskyFactor> cholesky(const Matrix& a);

/**
 * Cholesky with escalating diagonal jitter. Starts from initial_jitter and
 * multiplies by 10 until the factorization succeeds (at most max_tries
 * attempts). Used to keep GP kernel matrices factorizable when points are
 * near-duplicates — and when permutation *semimetrics* (which are not
 * strict metrics, paper Sec. 4.1) produce a slightly indefinite matrix.
 * The ceiling exceeds any possible negative eigenvalue (bounded by the
 * largest row sum), so a finite symmetric input always factorizes.
 *
 * When applied_jitter is non-null it receives the diagonal shift that was
 * actually added (0.0 when the matrix factorized as-is). Incremental
 * appends must add the same shift to their new diagonal entries to stay
 * consistent with the factored matrix.
 *
 * @throws std::runtime_error when the matrix cannot be factorized even with
 *         the maximum jitter (e.g. non-finite entries).
 */
CholeskyFactor cholesky_with_jitter(const Matrix& a,
                                    double initial_jitter = 1e-10,
                                    int max_tries = 16,
                                    double* applied_jitter = nullptr);

}  // namespace baco

#endif  // BACO_LINALG_CHOLESKY_HPP_
