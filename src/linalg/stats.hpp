#ifndef BACO_LINALG_STATS_HPP_
#define BACO_LINALG_STATS_HPP_

/**
 * @file
 * Scalar statistics helpers shared by models and the experiment harness.
 */

#include <vector>

namespace baco {

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double>& v);

/** Unbiased sample variance; 0 when fewer than two samples. */
double variance(const std::vector<double>& v);

/** Sample standard deviation. */
double stddev(const std::vector<double>& v);

/** Geometric mean; requires strictly positive entries. */
double geometric_mean(const std::vector<double>& v);

/** Median (averages the two central values for even sizes). */
double median(std::vector<double> v);

/** p-quantile in [0,1] using linear interpolation. */
double quantile(std::vector<double> v, double p);

/** Standard normal probability density. */
double normal_pdf(double z);

/** Standard normal cumulative distribution. */
double normal_cdf(double z);

/**
 * Z-score standardization state: y -> (y - mean) / std. Guards against zero
 * standard deviation by falling back to scale 1.
 */
class Standardizer {
 public:
  /** Fit mean/scale from data. */
  void fit(const std::vector<double>& v);

  double transform(double y) const { return (y - mean_) / scale_; }
  double inverse(double z) const { return z * scale_ + mean_; }
  /** Map a standardized variance back to the original scale. */
  double inverse_variance(double var) const { return var * scale_ * scale_; }

  double mean_value() const { return mean_; }
  double scale() const { return scale_; }

 private:
  double mean_ = 0.0;
  double scale_ = 1.0;
};

}  // namespace baco

#endif  // BACO_LINALG_STATS_HPP_
