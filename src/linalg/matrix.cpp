#include "linalg/matrix.hpp"

#include <cmath>

namespace baco {

void
Matrix::resize_preserving(std::size_t new_rows, std::size_t new_cols)
{
    if (new_rows == rows_ && new_cols == cols_)
        return;
    if (new_cols == cols_) {
        // Row count change with unchanged stride: no repack needed.
        data_.resize(new_rows * cols_, 0.0);
        rows_ = new_rows;
        return;
    }
    std::vector<double> fresh(new_rows * new_cols, 0.0);
    std::size_t copy_rows = std::min(rows_, new_rows);
    std::size_t copy_cols = std::min(cols_, new_cols);
    for (std::size_t i = 0; i < copy_rows; ++i) {
        const double* src = data_.data() + i * cols_;
        double* dst = fresh.data() + i * new_cols;
        for (std::size_t j = 0; j < copy_cols; ++j)
            dst[j] = src[j];
    }
    data_ = std::move(fresh);
    rows_ = new_rows;
    cols_ = new_cols;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            t(j, i) = (*this)(i, j);
    return t;
}

std::vector<double>
mat_vec(const Matrix& a, const std::vector<double>& x)
{
    assert(x.size() == a.cols());
    std::vector<double> y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i)
        y[i] = dot_n(a.row(i), x.data(), a.cols());
    return y;
}

Matrix
mat_mat(const Matrix& a, const Matrix& b)
{
    assert(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double* ci = c.row(i);
        for (std::size_t k = 0; k < a.cols(); ++k) {
            double aik = a(i, k);
            if (aik == 0.0)
                continue;
            const double* bk = b.row(k);
            for (std::size_t j = 0; j < b.cols(); ++j)
                ci[j] += aik * bk[j];
        }
    }
    return c;
}

double
dot(const std::vector<double>& a, const std::vector<double>& b)
{
    assert(a.size() == b.size());
    return dot_n(a.data(), b.data(), a.size());
}

double
dot_n(const double* a, const double* b, std::size_t n)
{
    // Four independent accumulators: without -ffast-math a compiler may not
    // reorder a single-accumulator reduction, so the unroll is what lets it
    // keep multiple FMAs in flight (and auto-vectorize where available).
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    for (; i < n; ++i)
        s0 += a[i] * b[i];
    return (s0 + s1) + (s2 + s3);
}

std::vector<double>
axpy(const std::vector<double>& a, double s, const std::vector<double>& b)
{
    assert(a.size() == b.size());
    std::vector<double> r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = a[i] + s * b[i];
    return r;
}

double
norm2(const std::vector<double>& v)
{
    return std::sqrt(dot(v, v));
}

}  // namespace baco
