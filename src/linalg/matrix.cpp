#include "linalg/matrix.hpp"

#include <cmath>

namespace baco {

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            t(j, i) = (*this)(i, j);
    return t;
}

std::vector<double>
mat_vec(const Matrix& a, const std::vector<double>& x)
{
    assert(x.size() == a.cols());
    std::vector<double> y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j)
            acc += a(i, j) * x[j];
        y[i] = acc;
    }
    return y;
}

Matrix
mat_mat(const Matrix& a, const Matrix& b)
{
    assert(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            double aik = a(i, k);
            if (aik == 0.0)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                c(i, j) += aik * b(k, j);
        }
    }
    return c;
}

double
dot(const std::vector<double>& a, const std::vector<double>& b)
{
    assert(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

std::vector<double>
axpy(const std::vector<double>& a, double s, const std::vector<double>& b)
{
    assert(a.size() == b.size());
    std::vector<double> r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = a[i] + s * b[i];
    return r;
}

double
norm2(const std::vector<double>& v)
{
    return std::sqrt(dot(v, v));
}

}  // namespace baco
