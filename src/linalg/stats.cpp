#include "linalg/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace baco {

double
mean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

double
variance(const std::vector<double>& v)
{
    if (v.size() < 2)
        return 0.0;
    double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(v.size() - 1);
}

double
stddev(const std::vector<double>& v)
{
    return std::sqrt(variance(v));
}

double
geometric_mean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v) {
        assert(x > 0.0);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(v.size()));
}

double
median(std::vector<double> v)
{
    return quantile(std::move(v), 0.5);
}

double
quantile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double pos = p * static_cast<double>(v.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double
normal_pdf(double z)
{
    static const double inv_sqrt_2pi = 0.3989422804014327;
    return inv_sqrt_2pi * std::exp(-0.5 * z * z);
}

double
normal_cdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

void
Standardizer::fit(const std::vector<double>& v)
{
    mean_ = mean(v);
    double s = stddev(v);
    scale_ = (s > 1e-12) ? s : 1.0;
}

}  // namespace baco
