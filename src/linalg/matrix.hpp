#ifndef BACO_LINALG_MATRIX_HPP_
#define BACO_LINALG_MATRIX_HPP_

/**
 * @file
 * Minimal dense linear algebra used by the Gaussian-process substrate.
 *
 * Row-major dense matrix plus the handful of BLAS-like operations the GP
 * needs. Sizes in this library are small (kernel matrices up to a few
 * hundred rows), so clarity is preferred over blocking/vectorization tricks.
 */

#include <cassert>
#include <cstddef>
#include <vector>

namespace baco {

/** Dense row-major matrix of doubles. */
class Matrix {
 public:
  Matrix() = default;

  /** rows x cols matrix, all entries initialized to fill. */
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /** Raw storage access (row-major). */
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /** The n x n identity. */
  static Matrix identity(std::size_t n);

  /** Matrix transpose. */
  Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/** y = A x. Requires x.size() == A.cols(). */
std::vector<double> mat_vec(const Matrix& a, const std::vector<double>& x);

/** C = A B. Requires a.cols() == b.rows(). */
Matrix mat_mat(const Matrix& a, const Matrix& b);

/** Dot product of two equal-length vectors. */
double dot(const std::vector<double>& a, const std::vector<double>& b);

/** Elementwise a + s*b. */
std::vector<double> axpy(const std::vector<double>& a, double s,
                         const std::vector<double>& b);

/** Euclidean norm. */
double norm2(const std::vector<double>& v);

}  // namespace baco

#endif  // BACO_LINALG_MATRIX_HPP_
