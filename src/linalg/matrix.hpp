#ifndef BACO_LINALG_MATRIX_HPP_
#define BACO_LINALG_MATRIX_HPP_

/**
 * @file
 * Minimal dense linear algebra used by the Gaussian-process substrate.
 *
 * Row-major dense matrix plus the handful of BLAS-like operations the GP
 * needs. Sizes in this library are small (kernel matrices up to a few
 * hundred rows); the row-major layout is deliberate so the hot loops in
 * cholesky.cpp and kernel.cpp stream rows contiguously — a compiler can
 * vectorize the inner dot/saxpy kernels without any explicit intrinsics.
 */

#include <cassert>
#include <cstddef>
#include <vector>

namespace baco {

/** Dense row-major matrix of doubles. */
class Matrix {
 public:
  Matrix() = default;

  /** rows x cols matrix, all entries initialized to fill. */
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /** Contiguous row i (row-major storage), for vectorizable inner loops. */
  double* row(std::size_t i) {
    assert(i < rows_);
    return data_.data() + i * cols_;
  }
  const double* row(std::size_t i) const {
    assert(i < rows_);
    return data_.data() + i * cols_;
  }

  /** Raw storage access (row-major). */
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /**
   * Grow (or shrink) in place to new_rows x new_cols, preserving the
   * overlapping top-left block; new entries are zero. Row strides change,
   * so this is an O(rows*cols) repack — used by the incremental Cholesky
   * append, where an O(n^2) copy matches the cost of the update itself.
   */
  void resize_preserving(std::size_t new_rows, std::size_t new_cols);

  /** The n x n identity. */
  static Matrix identity(std::size_t n);

  /** Matrix transpose. */
  Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/** y = A x. Requires x.size() == A.cols(). */
std::vector<double> mat_vec(const Matrix& a, const std::vector<double>& x);

/** C = A B. Requires a.cols() == b.rows(). */
Matrix mat_mat(const Matrix& a, const Matrix& b);

/** Dot product of two equal-length vectors. */
double dot(const std::vector<double>& a, const std::vector<double>& b);

/** Dot product over raw ranges (the inner kernel of the triangular
 *  solves; unrolled 4-wide so the compiler emits vector FMAs). */
double dot_n(const double* a, const double* b, std::size_t n);

/** Elementwise a + s*b. */
std::vector<double> axpy(const std::vector<double>& a, double s,
                         const std::vector<double>& b);

/** Euclidean norm. */
double norm2(const std::vector<double>& v);

}  // namespace baco

#endif  // BACO_LINALG_MATRIX_HPP_
