#include "linalg/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace baco {

double
RngEngine::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(gen_);
}

std::int64_t
RngEngine::uniform_int(std::int64_t lo, std::int64_t hi)
{
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(gen_);
}

double
RngEngine::normal(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(gen_);
}

double
RngEngine::lognormal_factor(double sigma)
{
    return std::exp(normal(0.0, sigma));
}

double
RngEngine::gamma(double shape, double scale)
{
    std::gamma_distribution<double> dist(shape, scale);
    return dist(gen_);
}

bool
RngEngine::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(gen_);
}

std::size_t
RngEngine::index(std::size_t n)
{
    std::uniform_int_distribution<std::size_t> dist(0, n - 1);
    return dist(gen_);
}

std::vector<int>
RngEngine::permutation(int n)
{
    std::vector<int> p(static_cast<std::size_t>(n));
    std::iota(p.begin(), p.end(), 0);
    shuffle(p);
    return p;
}

std::vector<std::size_t>
RngEngine::sample_without_replacement(std::size_t n, std::size_t k)
{
    // Partial Fisher-Yates: O(n) memory, O(k) swaps.
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    if (k > n)
        k = n;
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + index(n - i);
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

RngEngine
RngEngine::split()
{
    std::uint64_t s = gen_();
    return RngEngine(s ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace baco
