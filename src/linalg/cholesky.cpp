#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace baco {

std::vector<double>
CholeskyFactor::solve_lower(const std::vector<double>& b) const
{
    std::size_t n = l_.rows();
    assert(b.size() == n);
    std::vector<double> z(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t j = 0; j < i; ++j)
            acc -= l_(i, j) * z[j];
        z[i] = acc / l_(i, i);
    }
    return z;
}

std::vector<double>
CholeskyFactor::solve_upper(const std::vector<double>& b) const
{
    std::size_t n = l_.rows();
    assert(b.size() == n);
    std::vector<double> z(n, 0.0);
    for (std::size_t ii = n; ii > 0; --ii) {
        std::size_t i = ii - 1;
        double acc = b[i];
        for (std::size_t j = i + 1; j < n; ++j)
            acc -= l_(j, i) * z[j];
        z[i] = acc / l_(i, i);
    }
    return z;
}

std::vector<double>
CholeskyFactor::solve(const std::vector<double>& b) const
{
    return solve_upper(solve_lower(b));
}

Matrix
CholeskyFactor::solve_matrix(const Matrix& b) const
{
    std::size_t n = l_.rows();
    assert(b.rows() == n);
    Matrix x(n, b.cols());
    std::vector<double> col(n);
    for (std::size_t j = 0; j < b.cols(); ++j) {
        for (std::size_t i = 0; i < n; ++i)
            col[i] = b(i, j);
        std::vector<double> sol = solve(col);
        for (std::size_t i = 0; i < n; ++i)
            x(i, j) = sol[i];
    }
    return x;
}

double
CholeskyFactor::log_det() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i)
        acc += std::log(l_(i, i));
    return 2.0 * acc;
}

Matrix
CholeskyFactor::inverse() const
{
    return solve_matrix(Matrix::identity(l_.rows()));
}

std::optional<CholeskyFactor>
cholesky(const Matrix& a)
{
    assert(a.rows() == a.cols());
    std::size_t n = a.rows();
    Matrix l(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l(i, k) * l(j, k);
            if (i == j) {
                if (acc <= 0.0 || !std::isfinite(acc))
                    return std::nullopt;
                l(i, i) = std::sqrt(acc);
            } else {
                l(i, j) = acc / l(j, j);
            }
        }
    }
    return CholeskyFactor(std::move(l));
}

CholeskyFactor
cholesky_with_jitter(const Matrix& a, double initial_jitter, int max_tries)
{
    if (auto f = cholesky(a))
        return *f;
    // Scale the jitter to the matrix magnitude so very large kernels still
    // stabilize within max_tries.
    double scale = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        scale = std::max(scale, std::abs(a(i, i)));
    if (scale == 0.0)
        scale = 1.0;
    double jitter = initial_jitter * scale;
    for (int t = 0; t < max_tries; ++t) {
        Matrix aj = a;
        for (std::size_t i = 0; i < aj.rows(); ++i)
            aj(i, i) += jitter;
        if (auto f = cholesky(aj))
            return *f;
        jitter *= 10.0;
    }
    throw std::runtime_error("cholesky_with_jitter: matrix is not SPD even "
                             "with maximum jitter");
}

}  // namespace baco
