#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace baco {

namespace {

// Schur-complement diagonal entries below this fraction of the factored
// matrix's scale are treated as "not safely positive": the math may still
// produce a finite sqrt, but the resulting factor is so ill-conditioned
// that solves amplify noise. Callers fall back to a jittered refit instead.
constexpr double kMinPivotRatio = 1e-12;

}  // namespace

std::vector<double>
CholeskyFactor::solve_lower(const std::vector<double>& b) const
{
    std::size_t n = l_.rows();
    assert(b.size() == n);
    std::vector<double> z(n, 0.0);
    // Row-oriented forward substitution: row i of L is contiguous, so the
    // inner reduction is a streaming dot product.
    for (std::size_t i = 0; i < n; ++i) {
        const double* li = l_.row(i);
        z[i] = (b[i] - dot_n(li, z.data(), i)) / li[i];
    }
    return z;
}

std::vector<double>
CholeskyFactor::solve_upper(const std::vector<double>& b) const
{
    std::size_t n = l_.rows();
    assert(b.size() == n);
    // Backward substitution against L^T, restructured into saxpy form:
    // column i of L^T is row i of L, so once z[i] is known we subtract
    // z[i] * L(i, 0..i-1) from the running right-hand side. Every access
    // streams a contiguous row instead of striding down a column.
    std::vector<double> z = b;
    for (std::size_t ii = n; ii > 0; --ii) {
        std::size_t i = ii - 1;
        const double* li = l_.row(i);
        double zi = z[i] / li[i];
        z[i] = zi;
        for (std::size_t j = 0; j < i; ++j)
            z[j] -= li[j] * zi;
    }
    return z;
}

std::vector<double>
CholeskyFactor::solve(const std::vector<double>& b) const
{
    return solve_upper(solve_lower(b));
}

Matrix
CholeskyFactor::solve_matrix(const Matrix& b) const
{
    std::size_t n = l_.rows();
    assert(b.rows() == n);
    Matrix x(n, b.cols());
    std::vector<double> col(n);
    for (std::size_t j = 0; j < b.cols(); ++j) {
        for (std::size_t i = 0; i < n; ++i)
            col[i] = b(i, j);
        std::vector<double> sol = solve(col);
        for (std::size_t i = 0; i < n; ++i)
            x(i, j) = sol[i];
    }
    return x;
}

double
CholeskyFactor::log_det() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i)
        acc += std::log(l_(i, i));
    return 2.0 * acc;
}

Matrix
CholeskyFactor::inverse() const
{
    return solve_matrix(Matrix::identity(l_.rows()));
}

bool
CholeskyFactor::append(const std::vector<double>& cross, double diag)
{
    std::size_t n = l_.rows();
    assert(cross.size() == n);
    // New bottom row: l21 solves L l21 = cross; the new pivot is the Schur
    // complement of the appended diagonal entry.
    std::vector<double> l21 = solve_lower(cross);
    double schur = diag - dot_n(l21.data(), l21.data(), n);
    double scale = diag;
    for (std::size_t i = 0; i < n; ++i)
        scale = std::max(scale, l_(i, i) * l_(i, i));
    if (!std::isfinite(schur) || schur <= kMinPivotRatio * std::max(scale, 1.0))
        return false;
    l_.resize_preserving(n + 1, n + 1);
    double* last = l_.row(n);
    for (std::size_t j = 0; j < n; ++j)
        last[j] = l21[j];
    last[n] = std::sqrt(schur);
    return true;
}

bool
CholeskyFactor::append_block(const Matrix& cross, const Matrix& corner)
{
    std::size_t n = l_.rows();
    std::size_t m = cross.rows();
    assert(cross.cols() == n);
    assert(corner.rows() == m && corner.cols() == m);
    if (m == 0)
        return true;
    // L21 row r solves L L21_r = cross_r.
    Matrix l21(m, n);
    std::vector<double> row(n);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t j = 0; j < n; ++j)
            row[j] = cross(r, j);
        std::vector<double> sol = solve_lower(row);
        for (std::size_t j = 0; j < n; ++j)
            l21(r, j) = sol[j];
    }
    // Trailing block factors the Schur complement S = C - L21 L21^T. Plain
    // cholesky (no jitter) on purpose: if S is not SPD the caller must
    // refactorize the whole bordered matrix with a consistent jitter.
    Matrix s(m, m);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c <= r; ++c) {
            double v = corner(r, c) - dot_n(l21.row(r), l21.row(c), n);
            s(r, c) = v;
            s(c, r) = v;
        }
    double scale = 1.0;
    for (std::size_t i = 0; i < n; ++i)
        scale = std::max(scale, l_(i, i) * l_(i, i));
    for (std::size_t r = 0; r < m; ++r)
        scale = std::max(scale, std::abs(corner(r, r)));
    for (std::size_t r = 0; r < m; ++r)
        if (!(s(r, r) > kMinPivotRatio * scale))
            return false;
    std::optional<CholeskyFactor> ls = cholesky(s);
    if (!ls)
        return false;
    l_.resize_preserving(n + m, n + m);
    for (std::size_t r = 0; r < m; ++r) {
        double* dst = l_.row(n + r);
        const double* src = l21.row(r);
        for (std::size_t j = 0; j < n; ++j)
            dst[j] = src[j];
        for (std::size_t c = 0; c <= r; ++c)
            dst[n + c] = ls->lower()(r, c);
    }
    return true;
}

void
CholeskyFactor::shrink(std::size_t k)
{
    assert(k <= l_.rows());
    if (k < l_.rows())
        l_.resize_preserving(k, k);
}

std::optional<CholeskyFactor>
cholesky(const Matrix& a)
{
    assert(a.rows() == a.cols());
    std::size_t n = a.rows();
    Matrix l(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double* li = l.row(i);
        for (std::size_t j = 0; j <= i; ++j) {
            // Rows i and j of L are both contiguous prefixes — the inner
            // reduction streams two rows, never a column.
            double acc = a(i, j) - dot_n(li, l.row(j), j);
            if (i == j) {
                if (acc <= 0.0 || !std::isfinite(acc))
                    return std::nullopt;
                l(i, i) = std::sqrt(acc);
            } else {
                l(i, j) = acc / l(j, j);
            }
        }
    }
    return CholeskyFactor(std::move(l));
}

CholeskyFactor
cholesky_with_jitter(const Matrix& a, double initial_jitter, int max_tries,
                     double* applied_jitter)
{
    if (auto f = cholesky(a)) {
        if (applied_jitter)
            *applied_jitter = 0.0;
        return *f;
    }
    // Scale the jitter to the matrix magnitude so very large kernels still
    // stabilize within max_tries.
    double scale = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        scale = std::max(scale, std::abs(a(i, i)));
    if (scale == 0.0)
        scale = 1.0;
    double jitter = initial_jitter * scale;
    for (int t = 0; t < max_tries; ++t) {
        Matrix aj = a;
        for (std::size_t i = 0; i < aj.rows(); ++i)
            aj(i, i) += jitter;
        if (auto f = cholesky(aj)) {
            if (applied_jitter)
                *applied_jitter = jitter;
            return *f;
        }
        jitter *= 10.0;
    }
    throw std::runtime_error("cholesky_with_jitter: matrix is not SPD even "
                             "with maximum jitter");
}

}  // namespace baco
