#ifndef BACO_LINALG_RNG_HPP_
#define BACO_LINALG_RNG_HPP_

/**
 * @file
 * Deterministic random-number utilities.
 *
 * Every stochastic component in the library draws from an explicitly passed
 * RngEngine; there is no global random state, so any experiment is exactly
 * reproducible from its seed.
 */

#include <cstdint>
#include <random>
#include <vector>

namespace baco {

/** A seeded random engine with the helpers used across the library. */
class RngEngine {
 public:
  explicit RngEngine(std::uint64_t seed = 0) : gen_(seed) {}

  /** Re-seed the engine. */
  void seed(std::uint64_t s) { gen_.seed(s); }

  /** Uniform real in [lo, hi). */
  double uniform(double lo = 0.0, double hi = 1.0);

  /** Uniform integer in [lo, hi] (inclusive). */
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /** Standard normal (mean 0, stddev 1) scaled to (mean, stddev). */
  double normal(double mean = 0.0, double stddev = 1.0);

  /** Log-normal multiplicative noise factor: exp(N(0, sigma)). */
  double lognormal_factor(double sigma);

  /** Gamma(shape, scale) draw. */
  double gamma(double shape, double scale);

  /** Bernoulli draw with success probability p. */
  bool bernoulli(double p);

  /** Uniform index in [0, n). Requires n > 0. */
  std::size_t index(std::size_t n);

  /** A uniformly random permutation of {0, ..., n-1}. */
  std::vector<int> permutation(int n);

  /** Fisher-Yates shuffle of a vector in place. */
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /** Sample k distinct indices from [0, n) without replacement. */
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /** Access the underlying engine (for std distributions). */
  std::mt19937_64& engine() { return gen_; }
  const std::mt19937_64& engine() const { return gen_; }

  /** Derive an independent engine (for splitting streams across workers). */
  RngEngine split();

 private:
  std::mt19937_64 gen_;
};

}  // namespace baco

#endif  // BACO_LINALG_RNG_HPP_
