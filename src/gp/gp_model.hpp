#ifndef BACO_GP_GP_MODEL_HPP_
#define BACO_GP_GP_MODEL_HPP_

/**
 * @file
 * Gaussian-process surrogate over a mixed-type compiler search space
 * (paper Sec. 3.2).
 *
 * The model is fit by MAP estimation: multistart L-BFGS on the negative log
 * marginal likelihood with gamma priors on the lengthscales (and weakly
 * informative priors on output scale and noise). Predictions return the
 * *latent* (noise-free) mean/variance used by the modified EI acquisition
 * (paper Sec. 3.3).
 *
 * Objective values are standardized internally; any log-transform of the
 * objective is applied by the caller (the tuner), so the ablation switches
 * compose cleanly.
 */

#include <optional>
#include <vector>

#include "core/search_space.hpp"
#include "gp/kernel.hpp"
#include "gp/lbfgs.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/stats.hpp"

namespace baco {

/** Fitting options; the defaults are BaCO's. */
struct GpOptions {
  /** Gamma lengthscale priors (paper Sec. 3.2). Off in BaCO--. */
  bool use_priors = true;
  /** Multistart MAP fitting. Off in BaCO-- (single short descent). */
  bool advanced_fit = true;

  int multistart_samples = 10;  ///< random hyperparameter draws
  int multistart_keep = 2;      ///< best starts refined with L-BFGS
  int lbfgs_iters = 40;         ///< refinement iterations per start
  int naive_lbfgs_iters = 12;   ///< iterations when advanced_fit is false

  // Prior shapes/rates (on the natural-scale hyperparameters).
  double lengthscale_shape = 2.0;
  double lengthscale_rate = 3.0;
  double outputscale_shape = 2.0;
  double outputscale_rate = 1.0;
  double noise_shape = 1.1;
  double noise_rate = 20.0;
};

/** GP posterior summary at one point (standardized-output units undone). */
struct GpPrediction {
  double mean = 0.0;
  double var = 0.0;  ///< latent variance (no observation noise)
};

/** Gaussian-process regression model. */
class GpModel {
 public:
  /** @param space the search space providing per-dimension distances. */
  explicit GpModel(const SearchSpace& space, GpOptions opt = GpOptions{});

  /**
   * Fit hyperparameters and the posterior to (xs, ys).
   * Requires xs.size() == ys.size() >= 2.
   */
  void fit(const std::vector<Configuration>& xs,
           const std::vector<double>& ys, RngEngine& rng);

  /**
   * Rebuild the posterior for (xs, ys) under fixed hyperparameters —
   * no multistart, no RNG. Used by parity tests to isolate the posterior
   * math from hyperparameter optimization, and available as a cheap
   * "refresh without refit" primitive.
   */
  void fit_with_hyperparams(const std::vector<Configuration>& xs,
                            const std::vector<double>& ys,
                            const GpHyperparams& hp);

  /**
   * Append one observation to the fitted model *without* re-optimizing
   * hyperparameters or re-standardizing: the existing Cholesky factor is
   * grown in place (O(n^2), see CholeskyFactor::append). y must be in the
   * same space as the ys of the last fit() (i.e. the caller applies any
   * log-objective transform); standardization is internal and frozen from
   * the last full fit.
   *
   * Returns false — model untouched — when the bordered kernel matrix is
   * not numerically SPD even after escalating extra jitter on the new
   * diagonal entry; the caller should fall back to a full fit().
   */
  bool extend(const Configuration& x, double y);

  /**
   * Drop training points k..n-1, restoring the model to its state before
   * the corresponding extend() calls (hyperparameters, standardizer and
   * the leading factor block are unchanged by extend). Requires k >= 2
   * and k <= size(). Used to roll back constant-liar fantasy points.
   */
  void truncate(std::size_t k);

  /**
   * Negative log marginal likelihood per training point of the *current*
   * posterior state (frozen hyperparameters, standardized outputs).
   * Cheap — reuses the stored factor and weights. The tuner compares this
   * against its value right after the last full fit to detect drift that
   * warrants re-optimizing hyperparameters.
   */
  double data_nll_per_point() const;

  /** Diagonal shift (posterior boost + jitter) baked into the factor by
   *  the last fit; extend() adds the same shift to appended diagonals. */
  double diag_shift() const { return diag_shift_; }

  /** Whether fit() has succeeded at least once. */
  bool fitted() const { return fitted_; }

  /** Posterior latent mean/variance at x (requires a prior fit()). */
  GpPrediction predict(const Configuration& x) const;

  /** Negative log posterior (NLL + priors) at hp, for tests/diagnostics. */
  double objective(const GpHyperparams& hp) const;

  /** objective() plus its analytic gradient w.r.t. the log-hyperparameter
   *  vector [lengthscales..., outputscale, noise], for tests/diagnostics. */
  double objective_with_gradient(const GpHyperparams& hp,
                                 std::vector<double>* grad) const;

  /** Hyperparameters from the last fit. */
  const GpHyperparams& hyperparams() const { return hp_; }

  /** Number of training points. */
  std::size_t size() const { return xs_.size(); }

 private:
  /** NLL + negative log priors and its gradient at theta (log space). */
  double nll(const std::vector<double>& theta,
             std::vector<double>* grad) const;

  GpHyperparams default_hyperparams() const;

  /** Rebuild tensor_, chol_, alpha_ (and diag_shift_) from xs_/ys_std_
   *  under the current hp_; shared tail of fit paths. */
  void refresh_posterior();

  /** Kernel cross-covariances k(x, xs_[i]) under the fitted scales. */
  std::vector<double> cross_covariances(const Configuration& x) const;

  const SearchSpace* space_;
  GpOptions opt_;

  std::vector<Configuration> xs_;
  std::vector<double> ys_std_;
  Standardizer standardizer_;
  DistanceTensor tensor_;

  GpHyperparams hp_;
  std::optional<GpHyperparams> warm_start_;
  std::optional<CholeskyFactor> chol_;
  std::vector<double> alpha_;
  std::vector<double> lengthscales_;  // exp of fitted log lengthscales
  double diag_shift_ = 0.0;           // boost + jitter baked into chol_
  bool fitted_ = false;
};

}  // namespace baco

#endif  // BACO_GP_GP_MODEL_HPP_
