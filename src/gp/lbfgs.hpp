#ifndef BACO_GP_LBFGS_HPP_
#define BACO_GP_LBFGS_HPP_

/**
 * @file
 * Limited-memory BFGS (Liu & Nocedal 1989) for GP hyperparameter fitting
 * (paper Sec. 3.2: multistart gradient descent with L-BFGS refinement).
 */

#include <functional>
#include <vector>

namespace baco {

/**
 * Objective callback: returns f(x) and fills grad (same size as x).
 */
using ObjectiveFn =
    std::function<double(const std::vector<double>& x,
                         std::vector<double>& grad)>;

/** L-BFGS knobs. */
struct LbfgsOptions {
  int max_iters = 50;       ///< outer iterations
  int history = 8;          ///< stored curvature pairs
  double grad_tol = 1e-5;   ///< stop when ||grad||_inf below this
  /** Stop on relative objective change below this; <= 0 disables the check
   *  (tiny line-search steps in narrow valleys can otherwise stop early). */
  double f_tol = 0.0;
  double init_step = 1.0;   ///< first trial step of each line search
  int max_line_search = 20; ///< backtracking steps
};

/** L-BFGS outcome. */
struct LbfgsResult {
  std::vector<double> x;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

/**
 * Minimize f starting from x0.
 *
 * Uses the two-loop recursion with Armijo backtracking; curvature pairs with
 * non-positive s'y are skipped for stability. Robust to objectives that
 * return non-finite values during line search (the step is shrunk).
 */
LbfgsResult lbfgs_minimize(const ObjectiveFn& f, std::vector<double> x0,
                           const LbfgsOptions& opt = LbfgsOptions{});

}  // namespace baco

#endif  // BACO_GP_LBFGS_HPP_
