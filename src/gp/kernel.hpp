#ifndef BACO_GP_KERNEL_HPP_
#define BACO_GP_KERNEL_HPP_

/**
 * @file
 * The 5/2-Matérn kernel over mixed-type distances (paper Eq. 1-2).
 *
 * k(x, x') = s2 * (1 + sqrt5*r + 5*r^2/3) * exp(-sqrt5*r),
 * r^2 = sum_d d_d(x_d, x'_d)^2 / l_d^2,
 *
 * where d_d is the parameter-type-specific normalized distance from
 * core/distance.hpp via Parameter::distance. (The paper's Eq. 1 prints
 * "5d^2"; the standard Matérn-5/2 term is 5r^2/3, which we use.)
 *
 * Hyperparameters are kept in log space: D lengthscales, the output scale
 * (signal variance) and the noise variance.
 */

#include <vector>

#include "linalg/matrix.hpp"

namespace baco {

/** GP hyperparameters in log space. */
struct GpHyperparams {
  std::vector<double> log_lengthscales;  ///< one per search-space dimension
  double log_outputscale = 0.0;          ///< log signal variance s2
  double log_noise = -9.0;               ///< log noise variance

  /** Flatten to the L-BFGS optimization vector [lengthscales..., s2, noise]. */
  std::vector<double> to_vector() const;
  /** Inverse of to_vector(). */
  static GpHyperparams from_vector(const std::vector<double>& v);
};

/** Matérn-5/2 correlation value at distance r >= 0 (unit variance). */
double matern52(double r);

/**
 * d k / d r^2 expressed through the identity
 * dk/d(log l_d) = s2 * (5/3) * (1 + sqrt5 r) exp(-sqrt5 r) * d_d^2 / l_d^2,
 * used by the analytic marginal-likelihood gradient. This helper returns the
 * factor (5/3) * (1 + sqrt5 r) * exp(-sqrt5 r).
 */
double matern52_dlog_lengthscale_factor(double r);

/**
 * Per-dimension pairwise distances for a training set. dists[d] is the
 * symmetric N x N matrix of normalized distances along dimension d.
 */
struct DistanceTensor {
  std::vector<Matrix> dists;
  std::size_t n = 0;

  std::size_t dims() const { return dists.size(); }
};

/**
 * Scaled distance r between rows i, j of the tensor under lengthscales.
 * ls[d] are *linear* (not log) lengthscales.
 */
double scaled_distance(const DistanceTensor& t, std::size_t i, std::size_t j,
                       const std::vector<double>& ls);

/**
 * Kernel matrix K = s2 * matern52(R) + noise * I over the training tensor.
 */
Matrix kernel_matrix(const DistanceTensor& t, const GpHyperparams& hp);

}  // namespace baco

#endif  // BACO_GP_KERNEL_HPP_
