#include "gp/gp_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace baco {

namespace {

const double kLogTwoPi = 1.8378770664093453;
const double kThetaBound = 8.0;  // soft box on log-hyperparameters

/** Quadratic penalty outside [-bound, bound], with gradient. */
double
box_penalty(double theta, double* grad)
{
    double excess = std::abs(theta) - kThetaBound;
    if (excess <= 0.0) {
        *grad = 0.0;
        return 0.0;
    }
    *grad = 2.0 * excess * (theta > 0 ? 1.0 : -1.0);
    return excess * excess;
}

}  // namespace

GpModel::GpModel(const SearchSpace& space, GpOptions opt)
    : space_(&space), opt_(opt)
{
}

GpHyperparams
GpModel::default_hyperparams() const
{
    GpHyperparams hp;
    hp.log_lengthscales.assign(space_->num_params(), std::log(0.5));
    hp.log_outputscale = 0.0;       // variance 1 on standardized outputs
    hp.log_noise = std::log(1e-4);
    return hp;
}

void
GpModel::fit(const std::vector<Configuration>& xs,
             const std::vector<double>& ys, RngEngine& rng)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        throw std::runtime_error("GpModel::fit needs >= 2 matching points");

    xs_ = xs;
    standardizer_.fit(ys);
    ys_std_.resize(ys.size());
    for (std::size_t i = 0; i < ys.size(); ++i)
        ys_std_[i] = standardizer_.transform(ys[i]);

    // Pairwise per-dimension distances.
    std::size_t n = xs_.size();
    std::size_t d = space_->num_params();
    tensor_.n = n;
    tensor_.dists.assign(d, Matrix(n, n));
    for (std::size_t k = 0; k < d; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                double v = space_->dim_distance(k, xs_[i], xs_[j]);
                tensor_.dists[k](i, j) = v;
                tensor_.dists[k](j, i) = v;
            }
        }
    }

    // ---- Hyperparameter optimization (multistart MAP). ----
    auto objective_fn = [this](const std::vector<double>& theta,
                               std::vector<double>& grad) {
        return nll(theta, &grad);
    };

    std::vector<std::vector<double>> starts;
    starts.push_back(default_hyperparams().to_vector());
    if (warm_start_)
        starts.push_back(warm_start_->to_vector());

    LbfgsOptions lopt;
    std::vector<double> best_theta;
    double best_f = std::numeric_limits<double>::infinity();

    if (opt_.advanced_fit) {
        // Random hyperparameter draws, screened by objective value.
        std::vector<std::pair<double, std::vector<double>>> screened;
        for (int s = 0; s < opt_.multistart_samples; ++s) {
            std::vector<double> theta(d + 2);
            for (std::size_t k = 0; k < d; ++k)
                theta[k] = rng.uniform(std::log(0.05), std::log(2.0));
            theta[d] = rng.uniform(std::log(0.1), std::log(5.0));
            theta[d + 1] = rng.uniform(std::log(1e-6), std::log(1e-2));
            double f = nll(theta, nullptr);
            if (std::isfinite(f))
                screened.emplace_back(f, std::move(theta));
        }
        std::sort(screened.begin(), screened.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (int k = 0; k < opt_.multistart_keep &&
                        k < static_cast<int>(screened.size()); ++k) {
            starts.push_back(screened[static_cast<std::size_t>(k)].second);
        }
        lopt.max_iters = opt_.lbfgs_iters;
    } else {
        lopt.max_iters = opt_.naive_lbfgs_iters;
    }

    for (const auto& start : starts) {
        LbfgsResult r = lbfgs_minimize(objective_fn, start, lopt);
        if (std::isfinite(r.f) && r.f < best_f) {
            best_f = r.f;
            best_theta = r.x;
        }
    }
    if (best_theta.empty())
        best_theta = default_hyperparams().to_vector();

    hp_ = GpHyperparams::from_vector(best_theta);
    // Clamp to the same box the objective used so the posterior matrix is
    // exactly the one the optimizer scored (and numerically factorizable).
    for (double& v : hp_.log_lengthscales)
        v = std::clamp(v, -kThetaBound, kThetaBound);
    hp_.log_outputscale = std::clamp(hp_.log_outputscale, -kThetaBound,
                                     kThetaBound);
    hp_.log_noise = std::clamp(hp_.log_noise, -kThetaBound * 2, kThetaBound);
    warm_start_ = hp_;

    refresh_posterior();
}

void
GpModel::fit_with_hyperparams(const std::vector<Configuration>& xs,
                              const std::vector<double>& ys,
                              const GpHyperparams& hp)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        throw std::runtime_error(
            "GpModel::fit_with_hyperparams needs >= 2 matching points");

    xs_ = xs;
    standardizer_.fit(ys);
    ys_std_.resize(ys.size());
    for (std::size_t i = 0; i < ys.size(); ++i)
        ys_std_[i] = standardizer_.transform(ys[i]);

    std::size_t n = xs_.size();
    std::size_t d = space_->num_params();
    tensor_.n = n;
    tensor_.dists.assign(d, Matrix(n, n));
    for (std::size_t k = 0; k < d; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                double v = space_->dim_distance(k, xs_[i], xs_[j]);
                tensor_.dists[k](i, j) = v;
                tensor_.dists[k](j, i) = v;
            }
        }
    }

    hp_ = hp;
    warm_start_ = hp_;
    refresh_posterior();
}

void
GpModel::refresh_posterior()
{
    std::size_t d = space_->num_params();
    lengthscales_.resize(d);
    for (std::size_t k = 0; k < d; ++k)
        lengthscales_[k] = std::exp(hp_.log_lengthscales[k]);
    // Permutation semimetrics are not strict metrics, so the kernel matrix
    // can be indefinite; after jitter rescues the factorization the solve
    // may still be badly conditioned (huge alpha => wild extrapolation).
    // Escalate an explicit diagonal boost until the posterior weights are
    // sane on the standardized outputs.
    Matrix kmat = kernel_matrix(tensor_, hp_);
    double boost = 0.0;
    double jitter = 0.0;
    double s2 = std::exp(hp_.log_outputscale);
    for (int attempt = 0; attempt < 10; ++attempt) {
        Matrix kj = kmat;
        for (std::size_t i = 0; i < kj.rows(); ++i)
            kj(i, i) += boost;
        chol_ = cholesky_with_jitter(kj, 1e-10, 16, &jitter);
        alpha_ = chol_->solve(ys_std_);
        double amax = 0.0;
        bool finite = true;
        for (double a : alpha_) {
            amax = std::max(amax, std::abs(a));
            finite &= std::isfinite(a);
        }
        if (finite && amax <= 1e4)
            break;
        boost = boost == 0.0 ? 1e-4 * std::max(s2, 1.0) : boost * 10.0;
    }
    // Record the total shift baked into the factored diagonal so extend()
    // appends rows of the *same* matrix the factor represents.
    diag_shift_ = boost + jitter;
    fitted_ = true;
}

std::vector<double>
GpModel::cross_covariances(const Configuration& x) const
{
    std::size_t n = xs_.size();
    std::size_t d = space_->num_params();
    double s2 = std::exp(hp_.log_outputscale);
    std::vector<double> kvec(n);
    for (std::size_t i = 0; i < n; ++i) {
        double r2 = 0.0;
        for (std::size_t k = 0; k < d; ++k) {
            double v = space_->dim_distance(k, x, xs_[i]) / lengthscales_[k];
            r2 += v * v;
        }
        kvec[i] = s2 * matern52(std::sqrt(r2));
    }
    return kvec;
}

bool
GpModel::extend(const Configuration& x, double y)
{
    if (!fitted_)
        return false;
    double s2 = std::exp(hp_.log_outputscale);
    double noise = std::exp(hp_.log_noise);
    std::vector<double> cross = cross_covariances(x);
    double diag = s2 + noise + diag_shift_;

    // Appending a near-duplicate of an existing point can make the bordered
    // matrix numerically semidefinite even though the base factor is fine.
    // Escalating jitter on the *new* diagonal entry only (extra observation
    // noise on the new point) preserves the base factor and is enough in
    // practice; if even that fails, tell the caller to refit from scratch.
    double extra = 1e-8 * std::max(diag, 1.0);
    for (int attempt = 0; attempt < 6; ++attempt) {
        if (chol_->append(cross, diag)) {
            xs_.push_back(x);
            ys_std_.push_back(standardizer_.transform(y));
            alpha_ = chol_->solve(ys_std_);
            bool finite = true;
            for (double a : alpha_)
                finite &= std::isfinite(a);
            if (finite)
                return true;
            // Roll back the bad row and report failure.
            chol_->shrink(chol_->size() - 1);
            xs_.pop_back();
            ys_std_.pop_back();
            alpha_ = chol_->solve(ys_std_);
            return false;
        }
        diag += extra;
        extra *= 10.0;
    }
    return false;
}

void
GpModel::truncate(std::size_t k)
{
    if (!fitted_ || k >= xs_.size())
        return;
    if (k < 2)
        throw std::runtime_error("GpModel::truncate below 2 points");
    xs_.resize(k);
    ys_std_.resize(k);
    chol_->shrink(k);
    alpha_ = chol_->solve(ys_std_);
}

double
GpModel::data_nll_per_point() const
{
    if (!fitted_ || ys_std_.empty())
        return 0.0;
    double n = static_cast<double>(ys_std_.size());
    double nll_val = 0.5 * dot(ys_std_, alpha_) + 0.5 * chol_->log_det() +
                     0.5 * n * kLogTwoPi;
    return nll_val / n;
}

double
GpModel::nll(const std::vector<double>& theta, std::vector<double>* grad) const
{
    std::size_t n = tensor_.n;
    std::size_t d = tensor_.dims();
    GpHyperparams hp = GpHyperparams::from_vector(theta);

    if (grad)
        grad->assign(theta.size(), 0.0);

    // Soft box to keep exp() finite.
    double penalty = 0.0;
    for (std::size_t k = 0; k < theta.size(); ++k) {
        double g = 0.0;
        penalty += box_penalty(theta[k], &g);
        if (grad)
            (*grad)[k] += g;
    }
    // Clamp for the kernel evaluation itself.
    GpHyperparams hpc = hp;
    for (double& v : hpc.log_lengthscales)
        v = std::clamp(v, -kThetaBound, kThetaBound);
    hpc.log_outputscale = std::clamp(hpc.log_outputscale, -kThetaBound,
                                     kThetaBound);
    hpc.log_noise = std::clamp(hpc.log_noise, -kThetaBound * 2, kThetaBound);

    Matrix kmat = kernel_matrix(tensor_, hpc);
    auto chol = cholesky(kmat);
    if (!chol)
        return std::numeric_limits<double>::infinity();

    std::vector<double> alpha = chol->solve(ys_std_);
    double data_fit = 0.5 * dot(ys_std_, alpha);
    double nll_val = data_fit + 0.5 * chol->log_det() +
                     0.5 * static_cast<double>(n) * kLogTwoPi + penalty;

    // Priors (MAP in log space; density includes the log-space Jacobian):
    // -log p(theta) = -shape*theta + rate*exp(theta) + const.
    auto add_prior = [&](std::size_t idx, double shape, double rate) {
        double t = theta[idx];
        double v = std::exp(std::clamp(t, -kThetaBound * 2, kThetaBound));
        nll_val += -shape * t + rate * v;
        if (grad)
            (*grad)[idx] += -shape + rate * v;
    };
    if (opt_.use_priors) {
        for (std::size_t k = 0; k < d; ++k)
            add_prior(k, opt_.lengthscale_shape, opt_.lengthscale_rate);
        add_prior(d, opt_.outputscale_shape, opt_.outputscale_rate);
        add_prior(d + 1, opt_.noise_shape, opt_.noise_rate);
    }

    if (!grad)
        return nll_val;

    // dNLL/dtheta = -0.5 tr((alpha alpha' - K^{-1}) dK/dtheta).
    Matrix kinv = chol->inverse();
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = alpha[i] * alpha[j] - kinv(i, j);

    double s2 = std::exp(hpc.log_outputscale);
    double noise = std::exp(hpc.log_noise);
    std::vector<double> ls(d);
    for (std::size_t k = 0; k < d; ++k)
        ls[k] = std::exp(hpc.log_lengthscales[k]);

    // Precompute scaled distances r_ij once.
    Matrix r(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            double v = scaled_distance(tensor_, i, j, ls);
            r(i, j) = v;
            r(j, i) = v;
        }

    // Lengthscale gradients.
    for (std::size_t k = 0; k < d; ++k) {
        double acc = 0.0;
        double l2 = ls[k] * ls[k];
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                double dd = tensor_.dists[k](i, j);
                if (dd == 0.0)
                    continue;
                double dk = s2 * matern52_dlog_lengthscale_factor(r(i, j)) *
                            (dd * dd) / l2;
                acc += 2.0 * a(i, j) * dk;  // symmetric off-diagonal pair
            }
        }
        (*grad)[k] += -0.5 * acc;
    }

    // Output scale: dK/dlog s2 = s2 * matern(r) (including the diagonal s2).
    {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            acc += a(i, i) * s2;
            for (std::size_t j = i + 1; j < n; ++j)
                acc += 2.0 * a(i, j) * s2 * matern52(r(i, j));
        }
        (*grad)[d] += -0.5 * acc;
    }

    // Noise: dK/dlog noise = noise * I.
    {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            acc += a(i, i);
        (*grad)[d + 1] += -0.5 * acc * noise;
    }

    return nll_val;
}

double
GpModel::objective(const GpHyperparams& hp) const
{
    return nll(hp.to_vector(), nullptr);
}

double
GpModel::objective_with_gradient(const GpHyperparams& hp,
                                 std::vector<double>* grad) const
{
    return nll(hp.to_vector(), grad);
}

GpPrediction
GpModel::predict(const Configuration& x) const
{
    if (!fitted_)
        throw std::runtime_error("GpModel::predict called before fit");

    double s2 = std::exp(hp_.log_outputscale);
    std::vector<double> kvec = cross_covariances(x);
    double mean_std = dot(kvec, alpha_);
    std::vector<double> v = chol_->solve_lower(kvec);
    double var_std = s2 - dot(v, v);
    var_std = std::max(var_std, 1e-12);

    GpPrediction p;
    p.mean = standardizer_.inverse(mean_std);
    p.var = standardizer_.inverse_variance(var_std);
    return p;
}

}  // namespace baco
