#include "gp/kernel.hpp"

#include <cassert>
#include <cmath>

namespace baco {

namespace {
const double kSqrt5 = 2.23606797749978969;
}

std::vector<double>
GpHyperparams::to_vector() const
{
    std::vector<double> v = log_lengthscales;
    v.push_back(log_outputscale);
    v.push_back(log_noise);
    return v;
}

GpHyperparams
GpHyperparams::from_vector(const std::vector<double>& v)
{
    assert(v.size() >= 2);
    GpHyperparams hp;
    hp.log_lengthscales.assign(v.begin(), v.end() - 2);
    hp.log_outputscale = v[v.size() - 2];
    hp.log_noise = v[v.size() - 1];
    return hp;
}

double
matern52(double r)
{
    double a = kSqrt5 * r;
    return (1.0 + a + 5.0 * r * r / 3.0) * std::exp(-a);
}

double
matern52_dlog_lengthscale_factor(double r)
{
    return (5.0 / 3.0) * (1.0 + kSqrt5 * r) * std::exp(-kSqrt5 * r);
}

double
scaled_distance(const DistanceTensor& t, std::size_t i, std::size_t j,
                const std::vector<double>& ls)
{
    double r2 = 0.0;
    for (std::size_t d = 0; d < t.dists.size(); ++d) {
        double v = t.dists[d](i, j) / ls[d];
        r2 += v * v;
    }
    return std::sqrt(r2);
}

Matrix
kernel_matrix(const DistanceTensor& t, const GpHyperparams& hp)
{
    std::size_t n = t.n;
    double s2 = std::exp(hp.log_outputscale);
    double noise = std::exp(hp.log_noise);

    // Accumulate r^2 one dimension at a time: each pass streams a single
    // distance matrix row-by-row instead of hopping across all D matrices
    // per (i, j) entry, which thrashes the cache once D x N x N outgrows L2.
    Matrix k(n, n, 0.0);
    for (std::size_t d = 0; d < t.dists.size(); ++d) {
        double inv = std::exp(-2.0 * hp.log_lengthscales[d]);
        const Matrix& dist = t.dists[d];
        for (std::size_t i = 0; i < n; ++i) {
            const double* di = dist.row(i);
            double* ki = k.row(i);
            for (std::size_t j = i + 1; j < n; ++j)
                ki[j] += di[j] * di[j] * inv;
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        double* ki = k.row(i);
        ki[i] = s2 + noise;
        for (std::size_t j = i + 1; j < n; ++j) {
            double v = s2 * matern52(std::sqrt(ki[j]));
            ki[j] = v;
            k(j, i) = v;
        }
    }
    return k;
}

}  // namespace baco
