#include "gp/kernel.hpp"

#include <cassert>
#include <cmath>

namespace baco {

namespace {
const double kSqrt5 = 2.23606797749978969;
}

std::vector<double>
GpHyperparams::to_vector() const
{
    std::vector<double> v = log_lengthscales;
    v.push_back(log_outputscale);
    v.push_back(log_noise);
    return v;
}

GpHyperparams
GpHyperparams::from_vector(const std::vector<double>& v)
{
    assert(v.size() >= 2);
    GpHyperparams hp;
    hp.log_lengthscales.assign(v.begin(), v.end() - 2);
    hp.log_outputscale = v[v.size() - 2];
    hp.log_noise = v[v.size() - 1];
    return hp;
}

double
matern52(double r)
{
    double a = kSqrt5 * r;
    return (1.0 + a + 5.0 * r * r / 3.0) * std::exp(-a);
}

double
matern52_dlog_lengthscale_factor(double r)
{
    return (5.0 / 3.0) * (1.0 + kSqrt5 * r) * std::exp(-kSqrt5 * r);
}

double
scaled_distance(const DistanceTensor& t, std::size_t i, std::size_t j,
                const std::vector<double>& ls)
{
    double r2 = 0.0;
    for (std::size_t d = 0; d < t.dists.size(); ++d) {
        double v = t.dists[d](i, j) / ls[d];
        r2 += v * v;
    }
    return std::sqrt(r2);
}

Matrix
kernel_matrix(const DistanceTensor& t, const GpHyperparams& hp)
{
    std::size_t n = t.n;
    double s2 = std::exp(hp.log_outputscale);
    double noise = std::exp(hp.log_noise);
    std::vector<double> ls(hp.log_lengthscales.size());
    for (std::size_t d = 0; d < ls.size(); ++d)
        ls[d] = std::exp(hp.log_lengthscales[d]);

    Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        k(i, i) = s2 + noise;
        for (std::size_t j = i + 1; j < n; ++j) {
            double v = s2 * matern52(scaled_distance(t, i, j, ls));
            k(i, j) = v;
            k(j, i) = v;
        }
    }
    return k;
}

}  // namespace baco
