#include "gp/lbfgs.hpp"

#include <cmath>
#include <deque>
#include <limits>

#include "linalg/matrix.hpp"

namespace baco {

namespace {

double
inf_norm(const std::vector<double>& v)
{
    double m = 0.0;
    for (double x : v)
        m = std::max(m, std::abs(x));
    return m;
}

}  // namespace

LbfgsResult
lbfgs_minimize(const ObjectiveFn& f, std::vector<double> x0,
               const LbfgsOptions& opt)
{
    std::size_t n = x0.size();
    LbfgsResult res;
    res.x = std::move(x0);

    std::vector<double> grad(n, 0.0);
    double fx = f(res.x, grad);
    if (!std::isfinite(fx)) {
        res.f = fx;
        return res;
    }

    struct Pair {
      std::vector<double> s, y;
      double rho;
    };
    std::deque<Pair> pairs;

    for (int iter = 0; iter < opt.max_iters; ++iter) {
        res.iterations = iter + 1;
        if (inf_norm(grad) < opt.grad_tol) {
            res.converged = true;
            break;
        }

        // Two-loop recursion for the search direction d = -H grad.
        std::vector<double> q = grad;
        std::vector<double> alpha(pairs.size());
        for (std::size_t i = pairs.size(); i-- > 0;) {
            alpha[i] = pairs[i].rho * dot(pairs[i].s, q);
            q = axpy(q, -alpha[i], pairs[i].y);
        }
        // Initial Hessian scaling gamma = s'y / y'y of the newest pair.
        double gamma = 1.0;
        if (!pairs.empty()) {
            const Pair& p = pairs.back();
            double yy = dot(p.y, p.y);
            if (yy > 0.0)
                gamma = dot(p.s, p.y) / yy;
        }
        for (double& v : q)
            v *= gamma;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            double beta = pairs[i].rho * dot(pairs[i].y, q);
            q = axpy(q, alpha[i] - beta, pairs[i].s);
        }
        std::vector<double> dir(n);
        for (std::size_t i = 0; i < n; ++i)
            dir[i] = -q[i];

        double descent = dot(grad, dir);
        if (descent >= 0.0) {
            // Not a descent direction (numerical trouble): reset to -grad.
            pairs.clear();
            for (std::size_t i = 0; i < n; ++i)
                dir[i] = -grad[i];
            descent = dot(grad, dir);
            if (descent >= 0.0)
                break;
        }

        // Weak-Wolfe line search with bracketing: the Armijo condition
        // rejects overlong steps, the curvature condition rejects steps so
        // short that the direction scale collapses (which stalls L-BFGS in
        // curved valleys like Rosenbrock's).
        const double c1 = 1e-4;
        const double c2 = 0.9;
        std::vector<double> x_new(n), grad_new(n);
        double f_new = fx;
        bool accepted = false;
        auto line_search = [&]() {
            double step = opt.init_step;
            double lo = 0.0;
            double hi = std::numeric_limits<double>::infinity();
            // Best Armijo-satisfying point seen, in case the curvature
            // condition is never met within the budget.
            double armijo_step = -1.0, armijo_f = fx;
            std::vector<double> armijo_x, armijo_g;
            for (int ls = 0; ls < opt.max_line_search; ++ls) {
                for (std::size_t i = 0; i < n; ++i)
                    x_new[i] = res.x[i] + step * dir[i];
                f_new = f(x_new, grad_new);
                if (!std::isfinite(f_new) ||
                    f_new > fx + c1 * step * descent) {
                    hi = step;  // too long
                    step = 0.5 * (lo + hi);
                    continue;
                }
                if (armijo_step < 0.0 || f_new < armijo_f) {
                    armijo_step = step;
                    armijo_f = f_new;
                    armijo_x = x_new;
                    armijo_g = grad_new;
                }
                if (dot(grad_new, dir) < c2 * descent) {
                    lo = step;  // too short: slope still strongly negative
                    step = std::isinf(hi) ? 2.0 * step : 0.5 * (lo + hi);
                    continue;
                }
                return true;
            }
            if (armijo_step >= 0.0) {
                x_new = std::move(armijo_x);
                grad_new = std::move(armijo_g);
                f_new = armijo_f;
                return true;
            }
            return false;
        };
        accepted = line_search();
        if (!accepted && !pairs.empty()) {
            // Stale curvature can produce a direction the line search cannot
            // use; restart from steepest descent before giving up.
            pairs.clear();
            double gnorm = std::max(1.0, inf_norm(grad));
            for (std::size_t i = 0; i < n; ++i)
                dir[i] = -grad[i] / gnorm;
            descent = dot(grad, dir);
            accepted = line_search();
        }
        if (!accepted)
            break;

        // Curvature update.
        Pair p;
        p.s.resize(n);
        p.y.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            p.s[i] = x_new[i] - res.x[i];
            p.y[i] = grad_new[i] - grad[i];
        }
        double sy = dot(p.s, p.y);
        if (sy > 1e-12) {
            p.rho = 1.0 / sy;
            pairs.push_back(std::move(p));
            if (static_cast<int>(pairs.size()) > opt.history)
                pairs.pop_front();
        }

        double f_change = std::abs(fx - f_new) /
                          std::max(1.0, std::abs(fx));
        res.x = std::move(x_new);
        x_new.assign(n, 0.0);
        grad = grad_new;
        fx = f_new;
        if (opt.f_tol > 0.0 && f_change < opt.f_tol) {
            res.converged = true;
            break;
        }
    }

    res.f = fx;
    return res;
}

}  // namespace baco
