#!/usr/bin/env bash
# clang-tidy over every src/ translation unit, against the compilation
# database of the given build dir (CMake exports compile_commands.json
# unconditionally — see CMakeLists.txt). The check set lives in the
# repo-root .clang-tidy; violations are errors (WarningsAsErrors: '*'
# there), so this script failing IS the gate — suppressions happen at
# the offending line via NOLINT(check-name) with a reason comment,
# never by loosening the config.
#
# Usage: run_clang_tidy.sh [build-dir]     (default: build-tidy)
#
# Self-skips (exit 0, loud message) when clang-tidy is not installed,
# mirroring check.sh's sanitizer probes: the tidy stage must be
# runnable everywhere and binding wherever clang exists (CI).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"

TIDY=""
if command -v clang-tidy >/dev/null 2>&1; then
    TIDY=clang-tidy
else
    for ver in 20 19 18 17 16 15 14; do
        if command -v "clang-tidy-$ver" >/dev/null 2>&1; then
            TIDY="clang-tidy-$ver"
            break
        fi
    done
fi
if [[ -z "$TIDY" ]]; then
    echo "run_clang_tidy.sh: clang-tidy unavailable; skipping"
    exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing" \
         "— configure $BUILD_DIR first (check.sh --stage tidy does)" >&2
    exit 1
fi

mapfile -t FILES < <(find src -name '*.cpp' | sort)
echo "run_clang_tidy.sh: $TIDY over ${#FILES[@]} files (config: .clang-tidy)"
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"
echo "run_clang_tidy.sh: clean"
