#!/usr/bin/env bash
# Tier-1 verify: configure, build, test — with warnings-as-errors on the
# src/exec/ and src/serve/ subsystems (BACO_WERROR_EXEC) — then the
# distributed smoke test: a coordinator with 2 loopback workers must
# reproduce the same-seed EvalEngine run end-to-end.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DBACO_WERROR_EXEC=ON
cmake --build build -j
(cd build && ctest --output-on-failure -j)

./build/baco_serve --selftest
