#!/usr/bin/env bash
# Tier-1 verify: configure, build, test — with warnings-as-errors on the
# src/exec/ subsystem (BACO_WERROR_EXEC).
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DBACO_WERROR_EXEC=ON
cmake --build build -j
cd build && ctest --output-on-failure -j
