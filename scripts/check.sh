#!/usr/bin/env bash
# The one verification script CI jobs and local runs share, split into
# selectable stages so both invoke identical commands:
#
#   tier1     configure + build (warnings-as-errors on src/exec +
#             src/serve via BACO_WERROR_EXEC) + the full ctest suite
#   selftest  baco_serve --selftest: distributed-vs-batched Study
#             parity, the async fleet drive, and the multi-client
#             socket leg (2 concurrent unix-socket clients must match
#             2 sequential stdio runs bit-for-bit)
#   bench     bench_async_utilization with --json: tell-as-results-land
#             must beat the batched engine >= 1.5x on heavy-tailed
#             delays — for the Uniform mean AND the BaCO row with
#             suggest-ahead pipelining; bench_suggest_latency:
#             per-method suggest() p50/p99 vs history length with the
#             obs instrumentation pin, plus the >= 5x incremental-vs-
#             scratch p50 gate at the deepest history level;
#             bench_micro_gp: GP substrate micro-costs with the gated
#             append-vs-refactor speedup row;
#             bench_serve_load: the socket stack under multi-client
#             contention (throughput scaling gate) plus the distributed
#             trace leg (2 baco_worker child processes must land on one
#             merged Chrome timeline); then scripts/bench_diff.py gates
#             every BENCH_*.json artifact against the committed
#             bench/baselines/ (regression past a row's tolerance fails;
#             refresh deliberately with bench_diff.py --update-baselines)
#   tsan      ThreadSanitizer build (BACO_SANITIZE=thread) of the
#             concurrency-heavy exec + serve tests
#   asan      AddressSanitizer build (BACO_SANITIZE=address) of the
#             api + exec + serve tests
#
# Usage: check.sh [--stage tier1|selftest|bench|tsan|asan|all]...
#        (repeatable; default: all — with a pass/fail summary table)
#
# Environment: BACO_BUILD_TYPE (default Release), BACO_BUILD_DIR
# (default build), CXX/CC for the compiler, ccache auto-detected.
set -euo pipefail

# Resolve before cd: the driver re-invokes this script per stage, and a
# relative $0 would dangle once we chdir to the repo root.
SELF="$(cd "$(dirname "$0")" && pwd)/$(basename "$0")"
cd "$(dirname "$0")/.."

BUILD_TYPE="${BACO_BUILD_TYPE:-Release}"
BUILD_DIR="${BACO_BUILD_DIR:-build}"

CMAKE_EXTRA=()
if command -v ccache >/dev/null 2>&1; then
    CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

usage() {
    echo "usage: $0 [--stage tier1|selftest|bench|tsan|asan|all]..." >&2
    exit 2
}

# ---- Stage bodies (each runs under the top-level set -e). -----------------

build_main() {
    cmake -B "$BUILD_DIR" -S . -DBACO_WERROR_EXEC=ON \
          -DCMAKE_BUILD_TYPE="$BUILD_TYPE" "${CMAKE_EXTRA[@]}"
    cmake --build "$BUILD_DIR" -j
}

stage_tier1() {
    build_main
    (cd "$BUILD_DIR" && ctest --output-on-failure -j)
}

stage_selftest() {
    build_main
    "./$BUILD_DIR/baco_serve" --selftest
}

stage_bench() {
    build_main
    "./$BUILD_DIR/bench_async_utilization" --reps 2 \
        --json "$BUILD_DIR/BENCH_async_utilization.json"
    # Re-check the artifact itself: the trajectory CI uploads must agree
    # with the exit code, so a bench that stops writing it fails here.
    grep -q '"speedup_ok": true' "$BUILD_DIR/BENCH_async_utilization.json"
    grep -q '"baco_speedup_ok": true' "$BUILD_DIR/BENCH_async_utilization.json"
    grep -q '"quality_ok": true' "$BUILD_DIR/BENCH_async_utilization.json"
    "./$BUILD_DIR/bench_suggest_latency" \
        --json "$BUILD_DIR/BENCH_suggest_latency.json" \
        --trace "$BUILD_DIR/trace_suggest_latency.json"
    grep -q '"obs_ok": true' "$BUILD_DIR/BENCH_suggest_latency.json"
    grep -q '"incremental_ok": true' "$BUILD_DIR/BENCH_suggest_latency.json"
    "./$BUILD_DIR/bench_micro_gp" --reps 3 \
        --json "$BUILD_DIR/BENCH_micro_gp.json"
    "./$BUILD_DIR/bench_serve_load" --reps 2 \
        --json "$BUILD_DIR/BENCH_serve_load.json" \
        --trace "$BUILD_DIR/trace_serve_distributed.json" \
        --worker-bin "./$BUILD_DIR/baco_worker"
    grep -q '"serve_ok": true' "$BUILD_DIR/BENCH_serve_load.json"
    grep -q '"trace_ok": true' "$BUILD_DIR/BENCH_serve_load.json"
    # Ratchet: gated rows must not regress >tolerance vs the committed
    # baselines (dimensionless ratios only, so the gate is portable).
    if command -v python3 >/dev/null 2>&1; then
        python3 scripts/bench_diff.py \
            "$BUILD_DIR/BENCH_async_utilization.json" \
            "$BUILD_DIR/BENCH_suggest_latency.json" \
            "$BUILD_DIR/BENCH_serve_load.json" \
            "$BUILD_DIR/BENCH_micro_gp.json"
    else
        echo "check.sh: python3 unavailable; skipping bench_diff gate"
    fi
}

sanitizer_available() {
    local flag="$1"
    if echo 'int main(){return 0;}' | "${CXX:-c++}" "-fsanitize=$flag" \
           -x c++ - -o /tmp/baco_san_probe 2>/dev/null; then
        rm -f /tmp/baco_san_probe
        return 0
    fi
    return 1
}

# The concurrency-heavy exec + serve surface (CmdWorkerAddress… in
# test_serve_socket additionally spawns ./baco_worker), plus the obs
# layer: its lock-free metric updates and per-thread trace buffers are
# exactly what TSAN exists to check. test_exec_async rides along with
# the suggest-ahead pipeline tests, and test_linalg_incremental puts
# the Cholesky append path (raw pointer arithmetic over Matrix rows)
# under the sanitizers too.
SAN_TARGETS=(test_exec_engine test_exec_async test_exec_pool
             test_exec_cache test_exec_checkpoint test_obs
             test_linalg_incremental
             test_serve_protocol test_serve_session
             test_serve_distributed test_serve_fuzz test_serve_socket
             baco_worker)
SAN_REGEX='test_exec_(engine|async|pool|cache|checkpoint)|test_obs|test_linalg_incremental|test_serve_(protocol|session|distributed|fuzz|socket)'

stage_tsan() {
    if ! sanitizer_available thread; then
        echo "check.sh: thread sanitizer unavailable; skipping TSAN stage"
        return 0
    fi
    cmake -B build-tsan -S . -DBACO_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${CMAKE_EXTRA[@]}"
    cmake --build build-tsan -j --target "${SAN_TARGETS[@]}"
    (cd build-tsan && ctest --output-on-failure -R "$SAN_REGEX" -j 4)
}

stage_asan() {
    if ! sanitizer_available address; then
        echo "check.sh: address sanitizer unavailable; skipping ASAN stage"
        return 0
    fi
    # The Study front door fans out across every execution back-end, so
    # the ASAN leg runs its parity suite on top of the exec/serve tests.
    cmake -B build-asan -S . -DBACO_SANITIZE=address \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${CMAKE_EXTRA[@]}"
    cmake --build build-asan -j --target test_api_study "${SAN_TARGETS[@]}"
    (cd build-asan && ctest --output-on-failure \
          -R "test_api_study|$SAN_REGEX" -j 4)
}

# ---- Driver. --------------------------------------------------------------
# Each stage runs as a child `check.sh --run-one <stage>` process: that
# keeps `set -e` live inside stage bodies (an `if stage_x; ...` in this
# shell would suspend it) while the parent collects per-stage verdicts
# for the summary table.

if [[ "${1:-}" == "--run-one" ]]; then
    [[ $# -eq 2 ]] || usage
    case "$2" in
      tier1|selftest|bench|tsan|asan) "stage_$2" ;;
      *) usage ;;
    esac
    exit 0
fi

STAGES=()
while [[ $# -gt 0 ]]; do
    case "$1" in
      --stage)
        shift
        [[ $# -gt 0 ]] || usage
        STAGES+=("$1")
        ;;
      -h|--help) usage ;;
      *) usage ;;
    esac
    shift
done
[[ ${#STAGES[@]} -gt 0 ]] || STAGES=(all)

EXPANDED=()
for stage in "${STAGES[@]}"; do
    case "$stage" in
      all) EXPANDED+=(tier1 selftest bench tsan asan) ;;
      tier1|selftest|bench|tsan|asan) EXPANDED+=("$stage") ;;
      *) usage ;;
    esac
done

declare -A VERDICT
FAILED=0
for stage in "${EXPANDED[@]}"; do
    echo
    echo "==== check.sh stage: $stage ===="
    if "$SELF" --run-one "$stage"; then
        VERDICT[$stage]=PASS
    else
        VERDICT[$stage]=FAIL
        FAILED=1
    fi
done

echo
echo "==== check.sh summary ===="
printf '%-10s %s\n' "stage" "result"
printf '%-10s %s\n' "-----" "------"
for stage in "${EXPANDED[@]}"; do
    printf '%-10s %s\n' "$stage" "${VERDICT[$stage]}"
done
exit "$FAILED"
