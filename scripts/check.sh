#!/usr/bin/env bash
# Tier-1 verify: configure, build, test — with warnings-as-errors on the
# src/exec/ and src/serve/ subsystems (BACO_WERROR_EXEC) — then the
# distributed smoke test (a Study driven distributed over 2 loopback
# workers must reproduce the same-seed batched Study end-to-end, plus
# the async fleet drive), the async utilization bench
# (tell-as-results-land must beat the batched engine >= 1.5x on
# heavy-tailed delays), a TSAN (BACO_SANITIZE=thread) build of the
# concurrency-heavy exec + serve tests, and an ASAN
# (BACO_SANITIZE=address) build of the api + exec + serve tests.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DBACO_WERROR_EXEC=ON
cmake --build build -j
(cd build && ctest --output-on-failure -j)

./build/baco_serve --selftest

./build/bench_async_utilization --reps 2

# ---- ThreadSanitizer pass over the exec + serve test suite. ----
if echo 'int main(){return 0;}' | "${CXX:-c++}" -fsanitize=thread -x c++ - \
       -o /tmp/baco_tsan_probe 2>/dev/null; then
    rm -f /tmp/baco_tsan_probe
    cmake -B build-tsan -S . -DBACO_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build-tsan -j --target \
          test_exec_engine test_exec_async test_exec_pool \
          test_exec_cache test_exec_checkpoint \
          test_serve_protocol test_serve_session \
          test_serve_distributed test_serve_fuzz
    (cd build-tsan && ctest --output-on-failure \
          -R 'test_exec_(engine|async|pool|cache|checkpoint)|test_serve_(protocol|session|distributed|fuzz)' \
          -j 4)
else
    echo "check.sh: thread sanitizer unavailable; skipping TSAN pass"
fi

# ---- AddressSanitizer pass over the api + exec + serve test suite. ----
# The Study front door fans out across every execution back-end, so the
# ASAN leg runs its parity suite on top of the exec/serve tests.
if echo 'int main(){return 0;}' | "${CXX:-c++}" -fsanitize=address -x c++ - \
       -o /tmp/baco_asan_probe 2>/dev/null; then
    rm -f /tmp/baco_asan_probe
    cmake -B build-asan -S . -DBACO_SANITIZE=address \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build-asan -j --target \
          test_api_study \
          test_exec_engine test_exec_async test_exec_pool \
          test_exec_cache test_exec_checkpoint \
          test_serve_protocol test_serve_session \
          test_serve_distributed test_serve_fuzz
    (cd build-asan && ctest --output-on-failure \
          -R 'test_api_study|test_exec_(engine|async|pool|cache|checkpoint)|test_serve_(protocol|session|distributed|fuzz)' \
          -j 4)
else
    echo "check.sh: address sanitizer unavailable; skipping ASAN pass"
fi
