#!/usr/bin/env bash
# The one verification script CI jobs and local runs share, split into
# selectable stages so both invoke identical commands:
#
#   tier1     configure + build (warnings-as-errors on src/exec +
#             src/serve via BACO_WERROR_EXEC) + the full ctest suite
#   selftest  baco_serve --selftest: distributed-vs-batched Study
#             parity, the async fleet drive, and the multi-client
#             socket leg (2 concurrent unix-socket clients must match
#             2 sequential stdio runs bit-for-bit)
#   bench     bench_async_utilization with --json: tell-as-results-land
#             must beat the batched engine >= 1.5x on heavy-tailed
#             delays — for the Uniform mean AND the BaCO row with
#             suggest-ahead pipelining; bench_suggest_latency:
#             per-method suggest() p50/p99 vs history length with the
#             obs instrumentation pin, plus the >= 5x incremental-vs-
#             scratch p50 gate at the deepest history level;
#             bench_micro_gp: GP substrate micro-costs with the gated
#             append-vs-refactor speedup row;
#             bench_serve_load: the socket stack under multi-client
#             contention (throughput scaling gate) plus the distributed
#             trace leg (2 baco_worker child processes must land on one
#             merged Chrome timeline); then scripts/bench_diff.py gates
#             every BENCH_*.json artifact against the committed
#             bench/baselines/ (regression past a row's tolerance fails;
#             refresh deliberately with bench_diff.py --update-baselines)
#   tidy      clang build with -Wthread-safety promoted to errors
#             (BACO_THREAD_SAFETY=ON, which also runs the negative-
#             compile checks in tests/test_static_analysis.cmake at
#             configure time), then clang-tidy over src/ with the
#             curated .clang-tidy check set; self-skips when clang is
#             not installed (the analysis does not exist in GCC)
#   tsan      ThreadSanitizer build (BACO_SANITIZE=thread), full ctest
#             suite
#   asan      AddressSanitizer build (BACO_SANITIZE=address), full
#             ctest suite
#   ubsan     UndefinedBehaviorSanitizer build (BACO_SANITIZE=undefined,
#             -fno-sanitize-recover), full ctest suite
#   soak      the nightly tier (NOT part of `all` — CI runs it on a
#             schedule, not per PR): TSAN build when available, the
#             stress+integration ctest suites at their long timeouts,
#             then an extended bench_serve_load soak (8x the PR reps,
#             concurrent fleet runs included) whose serve_ok flag must
#             hold after the long haul
#
# Usage: check.sh [--stage tier1|selftest|bench|tidy|tsan|asan|ubsan|soak|all]...
#        (repeatable; default: all — with a pass/fail summary table)
#
# Environment: BACO_BUILD_TYPE (default Release), BACO_BUILD_DIR
# (default build), CXX/CC for the compiler, ccache auto-detected.
set -euo pipefail

# Resolve before cd: the driver re-invokes this script per stage, and a
# relative $0 would dangle once we chdir to the repo root.
SELF="$(cd "$(dirname "$0")" && pwd)/$(basename "$0")"
cd "$(dirname "$0")/.."

BUILD_TYPE="${BACO_BUILD_TYPE:-Release}"
BUILD_DIR="${BACO_BUILD_DIR:-build}"

CMAKE_EXTRA=()
if command -v ccache >/dev/null 2>&1; then
    CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

usage() {
    echo "usage: $0 [--stage tier1|selftest|bench|tidy|tsan|asan|ubsan|soak|all]..." >&2
    exit 2
}

# ---- Stage bodies (each runs under the top-level set -e). -----------------

build_main() {
    cmake -B "$BUILD_DIR" -S . -DBACO_WERROR_EXEC=ON \
          -DCMAKE_BUILD_TYPE="$BUILD_TYPE" "${CMAKE_EXTRA[@]}"
    cmake --build "$BUILD_DIR" -j
}

stage_tier1() {
    build_main
    (cd "$BUILD_DIR" && ctest --output-on-failure -j)
}

stage_selftest() {
    build_main
    "./$BUILD_DIR/baco_serve" --selftest
}

stage_bench() {
    build_main
    "./$BUILD_DIR/bench_async_utilization" --reps 2 \
        --json "$BUILD_DIR/BENCH_async_utilization.json"
    # Re-check the artifact itself: the trajectory CI uploads must agree
    # with the exit code, so a bench that stops writing it fails here.
    grep -q '"speedup_ok": true' "$BUILD_DIR/BENCH_async_utilization.json"
    grep -q '"baco_speedup_ok": true' "$BUILD_DIR/BENCH_async_utilization.json"
    grep -q '"quality_ok": true' "$BUILD_DIR/BENCH_async_utilization.json"
    "./$BUILD_DIR/bench_suggest_latency" \
        --json "$BUILD_DIR/BENCH_suggest_latency.json" \
        --trace "$BUILD_DIR/trace_suggest_latency.json"
    grep -q '"obs_ok": true' "$BUILD_DIR/BENCH_suggest_latency.json"
    grep -q '"incremental_ok": true' "$BUILD_DIR/BENCH_suggest_latency.json"
    "./$BUILD_DIR/bench_micro_gp" --reps 3 \
        --json "$BUILD_DIR/BENCH_micro_gp.json"
    "./$BUILD_DIR/bench_serve_load" --reps 2 \
        --json "$BUILD_DIR/BENCH_serve_load.json" \
        --trace "$BUILD_DIR/trace_serve_distributed.json" \
        --worker-bin "./$BUILD_DIR/baco_worker"
    grep -q '"serve_ok": true' "$BUILD_DIR/BENCH_serve_load.json"
    grep -q '"trace_ok": true' "$BUILD_DIR/BENCH_serve_load.json"
    # Ratchet: gated rows must not regress >tolerance vs the committed
    # baselines (dimensionless ratios only, so the gate is portable).
    if command -v python3 >/dev/null 2>&1; then
        python3 scripts/bench_diff.py \
            "$BUILD_DIR/BENCH_async_utilization.json" \
            "$BUILD_DIR/BENCH_suggest_latency.json" \
            "$BUILD_DIR/BENCH_serve_load.json" \
            "$BUILD_DIR/BENCH_micro_gp.json"
    else
        echo "check.sh: python3 unavailable; skipping bench_diff gate"
    fi
}

find_clang() {
    # Newest first; the bare name (a distro default or a PATH symlink)
    # wins over versioned fallbacks.
    local base="$1" ver
    if command -v "$base" >/dev/null 2>&1; then
        echo "$base"
        return 0
    fi
    for ver in 20 19 18 17 16 15 14; do
        if command -v "$base-$ver" >/dev/null 2>&1; then
            echo "$base-$ver"
            return 0
        fi
    done
    return 1
}

stage_tidy() {
    # Clang-only stage: GCC has neither -Wthread-safety nor clang-tidy.
    # Self-skips (like the sanitizer probes below) so GCC-only boxes
    # still pass --stage all; CI installs clang so the analysis gates
    # every merge.
    local clangxx
    if ! clangxx="$(find_clang clang++)"; then
        echo "check.sh: clang++ unavailable; skipping tidy stage" \
             "(thread-safety analysis and clang-tidy require clang)"
        return 0
    fi
    # BACO_THREAD_SAFETY promotes the capability analysis to errors and
    # the configure step runs tests/test_static_analysis.cmake — the
    # negative-compile proof that the annotations still reject unguarded
    # access. Fresh build dir per compiler: mixing GCC/clang caches in
    # one tree poisons both.
    cmake -B build-tidy -S . \
          -DCMAKE_CXX_COMPILER="$clangxx" \
          -DBACO_THREAD_SAFETY=ON -DBACO_WERROR_EXEC=ON \
          -DCMAKE_BUILD_TYPE="$BUILD_TYPE" "${CMAKE_EXTRA[@]}"
    cmake --build build-tidy -j
    scripts/run_clang_tidy.sh build-tidy
}

sanitizer_available() {
    local flag="$1"
    if echo 'int main(){return 0;}' | "${CXX:-c++}" "-fsanitize=$flag" \
           -x c++ - -o /tmp/baco_san_probe 2>/dev/null; then
        rm -f /tmp/baco_san_probe
        return 0
    fi
    return 1
}

# One sanitizer leg: dedicated build dir, full build, full ctest suite.
# Hand-picked target lists used to slice these legs down; the full suite
# is the point now — every test already carries a TIMEOUT label
# (300/600/900s by unit/integration/stress), so a wedged interleaving
# fails fast instead of stalling the job.
run_sanitizer_suite() {
    local name="$1" value="$2"
    cmake -B "build-$name" -S . -DBACO_SANITIZE="$value" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${CMAKE_EXTRA[@]}"
    cmake --build "build-$name" -j
    (cd "build-$name" && ctest --output-on-failure -j 2)
}

stage_tsan() {
    if ! sanitizer_available thread; then
        echo "check.sh: thread sanitizer unavailable; skipping TSAN stage"
        return 0
    fi
    run_sanitizer_suite tsan thread
}

stage_asan() {
    if ! sanitizer_available address; then
        echo "check.sh: address sanitizer unavailable; skipping ASAN stage"
        return 0
    fi
    run_sanitizer_suite asan address
}

stage_ubsan() {
    if ! sanitizer_available undefined; then
        echo "check.sh: undefined sanitizer unavailable; skipping UBSAN stage"
        return 0
    fi
    run_sanitizer_suite ubsan undefined
}

stage_soak() {
    # The nightly tier: long-running races only surface under sustained
    # load, so soak the serving stack under TSAN (plain RelWithDebInfo
    # when TSAN is unavailable) instead of the PR-sized smoke runs.
    local soak_flags=()
    if sanitizer_available thread; then
        soak_flags+=(-DBACO_SANITIZE=thread)
    else
        echo "check.sh: thread sanitizer unavailable; soaking without TSAN"
    fi
    cmake -B build-soak -S . "${soak_flags[@]}" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo "${CMAKE_EXTRA[@]}"
    cmake --build build-soak -j
    # The suites already labeled long-running (TIMEOUT 600/900s), run
    # whole — the concurrency/serving surface lives in these.
    (cd build-soak && ctest --output-on-failure -j 2 -L 'stress|integration')
    # Extended serve_load soak: 8x the PR-gate reps, which multiplies
    # every phase's budget — including the overlapping fleet runs — and
    # keeps the acceptor/coordinator under load long enough for slow
    # leaks and rare interleavings to show. The artifact's own ok flag
    # is the verdict; no baseline gate (soak boxes vary too much).
    "./build-soak/bench_serve_load" --reps 8 \
        --json build-soak/BENCH_serve_load_soak.json
    grep -q '"serve_ok": true' build-soak/BENCH_serve_load_soak.json
}

# ---- Driver. --------------------------------------------------------------
# Each stage runs as a child `check.sh --run-one <stage>` process: that
# keeps `set -e` live inside stage bodies (an `if stage_x; ...` in this
# shell would suspend it) while the parent collects per-stage verdicts
# for the summary table.

if [[ "${1:-}" == "--run-one" ]]; then
    [[ $# -eq 2 ]] || usage
    case "$2" in
      tier1|selftest|bench|tidy|tsan|asan|ubsan|soak) "stage_$2" ;;
      *) usage ;;
    esac
    exit 0
fi

STAGES=()
while [[ $# -gt 0 ]]; do
    case "$1" in
      --stage)
        shift
        [[ $# -gt 0 ]] || usage
        STAGES+=("$1")
        ;;
      -h|--help) usage ;;
      *) usage ;;
    esac
    shift
done
[[ ${#STAGES[@]} -gt 0 ]] || STAGES=(all)

EXPANDED=()
for stage in "${STAGES[@]}"; do
    case "$stage" in
      # soak is deliberately not in `all`: it is the nightly tier.
      all) EXPANDED+=(tier1 selftest bench tidy tsan asan ubsan) ;;
      tier1|selftest|bench|tidy|tsan|asan|ubsan|soak) EXPANDED+=("$stage") ;;
      *) usage ;;
    esac
done

declare -A VERDICT
FAILED=0
for stage in "${EXPANDED[@]}"; do
    echo
    echo "==== check.sh stage: $stage ===="
    if "$SELF" --run-one "$stage"; then
        VERDICT[$stage]=PASS
    else
        VERDICT[$stage]=FAIL
        FAILED=1
    fi
done

echo
echo "==== check.sh summary ===="
printf '%-10s %s\n' "stage" "result"
printf '%-10s %s\n' "-----" "------"
for stage in "${EXPANDED[@]}"; do
    printf '%-10s %s\n' "$stage" "${VERDICT[$stage]}"
done
exit "$FAILED"
