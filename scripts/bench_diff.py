#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts against committed baselines.

Every bench harness writes a machine-readable summary with a "rows"
array; rows carrying "gated": true name a "gate_metric" (the field to
compare), a "gate_direction" ("higher_better" or "lower_better") and
optionally a per-row "tolerance" (default --tolerance, 0.15). This
script matches each gated row to the baseline row with the same "key"
in bench/baselines/<same basename> and fails when the metric regressed
past the tolerance:

    higher_better: regression when new < base * (1 - tol)
    lower_better:  regression when new > base * (1 + tol)

Gated rows present in the baseline but missing from the new artifact
fail too (a bench silently dropping its gate must not pass), as does a
missing baseline file (run the bench once and commit the artifact to
bench/baselines/ when adding a new harness).

Usage: bench_diff.py NEW.json [NEW.json ...]
                     [--baseline-dir bench/baselines] [--tolerance 0.15]
                     [--update-baselines] [--markdown FILE]

--markdown FILE additionally appends the verdicts as a GitHub-flavored
markdown table (one row per gate) — pass "$GITHUB_STEP_SUMMARY" in CI
to surface the diff on the workflow run page.

Improvements are reported but never fail: the point is a ratchet
against regressions, not a pin of exact numbers.

--update-baselines replaces the committed baselines with the given
artifacts instead of gating against them. Before copying it prints,
per gated row, the old -> new gate-metric movement the refresh locks
in, so the diff is reviewable in the same terminal (and in the git
diff of bench/baselines/ afterwards). New artifacts without a prior
baseline are installed verbatim.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        key = row.get("key")
        if key is not None:
            rows[key] = row
    return rows


def check_artifact(new_path, baseline_dir, default_tol):
    """Returns a list of (key, message, failed) verdicts."""
    base_path = os.path.join(baseline_dir, os.path.basename(new_path))
    if not os.path.exists(base_path):
        return [("-", f"no baseline {base_path} — run the bench and "
                 "commit its artifact there", True)]
    new_rows = load_rows(new_path)
    base_rows = load_rows(base_path)
    verdicts = []

    for key, base in sorted(base_rows.items()):
        if not base.get("gated"):
            continue
        new = new_rows.get(key)
        if new is None:
            verdicts.append((key, "gated row missing from new artifact",
                             True))
            continue
        metric = base.get("gate_metric")
        direction = base.get("gate_direction", "higher_better")
        tol = float(new.get("tolerance", base.get("tolerance",
                                                  default_tol)))
        if metric is None or metric not in base or metric not in new:
            verdicts.append((key, f"gate_metric {metric!r} missing",
                             True))
            continue
        b, n = float(base[metric]), float(new[metric])
        if direction == "higher_better":
            failed = n < b * (1.0 - tol)
            change = (n - b) / b if b else 0.0
        else:
            failed = n > b * (1.0 + tol)
            change = (b - n) / b if b else 0.0
        word = "regressed" if failed else (
            "improved" if change > 0 else "ok")
        verdicts.append(
            (key, f"{metric} {b:.4g} -> {n:.4g} "
             f"({change:+.1%}, tol {tol:.0%}) {word}", failed))

    # New gated rows without a baseline are informational: the next
    # baseline refresh picks them up.
    for key, new in sorted(new_rows.items()):
        if new.get("gated") and key not in base_rows:
            verdicts.append((key, "new gated row (no baseline yet)",
                             False))
    if not any(base.get("gated") for base in base_rows.values()):
        verdicts.append(("-", "baseline has no gated rows", True))
    return verdicts


def update_baselines(artifacts, baseline_dir):
    """Install artifacts as the new baselines, printing what moves."""
    os.makedirs(baseline_dir, exist_ok=True)
    for path in artifacts:
        base_path = os.path.join(baseline_dir, os.path.basename(path))
        new_rows = load_rows(path)
        old_rows = load_rows(base_path) if os.path.exists(base_path) \
            else {}
        print(f"== updating {base_path} from {path}")
        for key, new in sorted(new_rows.items()):
            if not new.get("gated"):
                continue
            metric = new.get("gate_metric")
            if metric is None or metric not in new:
                print(f"  [warn] {key}: gate_metric {metric!r} missing "
                      "from new artifact")
                continue
            old = old_rows.get(key)
            if old is not None and metric in old:
                print(f"  {key}: {metric} {float(old[metric]):.4g} -> "
                      f"{float(new[metric]):.4g}")
            else:
                print(f"  {key}: {metric} (new) -> "
                      f"{float(new[metric]):.4g}")
        for key, old in sorted(old_rows.items()):
            if old.get("gated") and key not in new_rows:
                print(f"  [warn] {key}: gated row dropped by refresh")
        with open(path) as f:
            doc = f.read()
        with open(base_path, "w") as f:
            f.write(doc)
    print(f"bench_diff: {len(artifacts)} baseline(s) updated — review "
          f"the git diff of {baseline_dir}/ before committing")
    return 0


def write_markdown(path, results):
    """Append the verdicts as one GFM table (CI step summaries)."""
    with open(path, "a") as f:
        f.write("## Bench gates\n\n")
        f.write("| Artifact | Gate | Verdict | Status |\n")
        f.write("|---|---|---|---|\n")
        for artifact, key, message, bad in results:
            status = ":x: FAIL" if bad else ":white_check_mark: ok"
            cells = [os.path.basename(artifact), key,
                     message.replace("|", "\\|"), status]
            f.write("| " + " | ".join(cells) + " |\n")
        overall = any(bad for _, _, _, bad in results)
        f.write(f"\n**bench_diff: {'FAILED' if overall else 'ok'}**\n")


def main():
    ap = argparse.ArgumentParser(
        description="gate BENCH_*.json against committed baselines")
    ap.add_argument("artifacts", nargs="+")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--update-baselines", action="store_true",
                    help="install the artifacts as the new baselines "
                    "(prints the per-gate old -> new diff) instead of "
                    "gating against them")
    ap.add_argument("--markdown", metavar="FILE",
                    help="append the verdicts as a markdown table to "
                    "FILE (e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args()

    if args.update_baselines:
        return update_baselines(args.artifacts, args.baseline_dir)

    failed = False
    results = []
    for path in args.artifacts:
        print(f"== {path} vs {args.baseline_dir}/"
              f"{os.path.basename(path)}")
        for key, message, bad in check_artifact(path, args.baseline_dir,
                                                args.tolerance):
            print(f"  [{'FAIL' if bad else ' ok '}] {key}: {message}")
            results.append((path, key, message, bad))
            failed |= bad
    if args.markdown:
        write_markdown(args.markdown, results)
    print("bench_diff:", "FAILED" if failed else "ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
