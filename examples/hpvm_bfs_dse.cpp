// FPGA design-space exploration on the HPVM2FPGA BFS benchmark: a tiny
// 256-design space that can be enumerated exhaustively, so we can show how
// close BaCO gets to the true optimum with the paper's tiny budget of 20
// (and tiny = 6) estimator invocations.

#include <iostream>
#include <limits>

#include "hpvm/benchmarks.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;

int
main()
{
    Benchmark b = hpvm::make_hpvm_benchmark("BFS");
    auto space = b.make_space(SpaceVariant{});

    // Exhaustive ground truth over all 8*8*2*2 = 256 designs.
    double best_true = std::numeric_limits<double>::infinity();
    Configuration best_cfg;
    int feasible_count = 0;
    for (std::int64_t u0 = 0; u0 <= 7; ++u0) {
        for (std::int64_t u1 = 0; u1 <= 7; ++u1) {
            for (std::int64_t f = 0; f <= 1; ++f) {
                for (std::int64_t p = 0; p <= 1; ++p) {
                    Configuration c{u0, u1, f, p};
                    if (!b.hidden_feasible(c))
                        continue;
                    ++feasible_count;
                    double ms = b.true_cost(c);
                    if (ms < best_true) {
                        best_true = ms;
                        best_cfg = c;
                    }
                }
            }
        }
    }
    std::cout << "BFS design space: 256 designs, " << feasible_count
              << " fit on the modelled Arria 10 (hidden constraints)\n";
    std::cout << "exhaustive optimum: " << best_true << " ms at "
              << space->config_to_string(best_cfg) << "\n\n";

    for (int budget : {6, 13, 20}) {  // tiny / small / full (Table 3)
        TuningHistory h = run_method(b, Method::kBaco, budget, 5);
        std::cout << "BaCO with budget " << budget << ": best "
                  << h.best_value << " ms ("
                  << 100.0 * best_true / h.best_value
                  << "% of the exhaustive optimum)\n";
    }
    std::cout << "\ndefault design: " << b.true_cost(*b.default_config)
              << " ms\n";
    return 0;
}
