// Quickstart: autotune a toy "compiler" through the baco::Study front
// door in ~40 lines of API use.
//
// Demonstrates: declaring a mixed search space (ordinal, categorical,
// permutation) with a known constraint through StudyBuilder's inline
// parameter DSL, wiring a black-box evaluator, picking a method from the
// MethodRegistry and an ExecutionPolicy, and running the study. Swap the
// execution line for ExecutionPolicy::Batched(4) or ::Async(4) and
// nothing else changes.

#include <cmath>
#include <iostream>

#include "api/baco.hpp"

using namespace baco;

int
main()
{
    // 1. The black box: schedule, compile, run; here a synthetic model with
    //    an optimum at tile=32, unroll=4, dynamic, loop order (0,2,1).
    BlackBoxFn compile_and_run = [](const Configuration& c,
                                    RngEngine& noise) -> EvalResult {
        double tile = static_cast<double>(as_int(c[0]));
        double unroll = static_cast<double>(as_int(c[1]));
        bool dynamic = as_int(c[2]) == 1;
        const Permutation& order = as_permutation(c[3]);

        double ms = 10.0;
        ms += std::pow(std::log2(tile / 32.0), 2);
        ms += 0.5 * std::pow(std::log2(unroll / 4.0), 2);
        ms += dynamic ? 0.0 : 1.2;
        ms += order == Permutation{0, 2, 1} ? 0.0 : 1.0;
        // Pretend very large tiles crash the backend: a hidden constraint.
        if (tile == 256 && unroll == 8)
            return EvalResult::infeasible();
        return EvalResult{ms * noise.lognormal_factor(0.02), true};
    };

    // 2. Declare the scheduling space your compiler exposes and tune.
    Study study =
        StudyBuilder()
            .ordinal("tile", {4, 8, 16, 32, 64, 128, 256},
                     /*log_scale=*/true)
            .ordinal("unroll", {1, 2, 4, 8}, /*log_scale=*/true)
            .categorical("schedule", {"static", "dynamic"})
            .permutation("loop_order", 3)
            // Known constraint, handled ahead of time via Chain-of-Trees.
            .constraint("unroll <= tile")
            .objective(compile_and_run)
            .method("baco")  // any MethodRegistry name: "random", ...
            .budget(40)
            .doe(8)
            .seed(2024)
            .execution(ExecutionPolicy::Serial())
            .build();
    StudyResult result = study.run();

    // 3. Inspect the result.
    const TuningHistory& history = result.history;
    std::cout << "evaluations: " << history.size() << "\n";
    std::cout << "best runtime: " << history.best_value << " ms\n";
    std::cout << "best schedule: "
              << study.space().config_to_string(*history.best_config)
              << "\n";

    std::cout << "\nbest-so-far trajectory:\n";
    std::vector<double> traj = history.best_trajectory();
    for (std::size_t i = 0; i < traj.size(); i += 5)
        std::cout << "  after " << (i + 1) << " evals: " << traj[i]
                  << " ms\n";
    return 0;
}
