// Quickstart: autotune a toy "compiler" with BaCO in ~40 lines of API use.
//
// Demonstrates: declaring a mixed search space (ordinal, categorical,
// permutation) with a known constraint, wiring a black-box evaluator, and
// running the tuner.

#include <cmath>
#include <iostream>

#include "core/tuner.hpp"

using namespace baco;

int
main()
{
    // 1. Describe the scheduling space your compiler exposes.
    SearchSpace space;
    space.add_ordinal("tile", {4, 8, 16, 32, 64, 128, 256},
                      /*log_scale=*/true);
    space.add_ordinal("unroll", {1, 2, 4, 8}, /*log_scale=*/true);
    space.add_categorical("schedule", {"static", "dynamic"});
    space.add_permutation("loop_order", 3);
    // Known constraint, handled ahead of time via the Chain-of-Trees.
    space.add_constraint("unroll <= tile");

    // 2. The black box: schedule, compile, run; here a synthetic model with
    //    an optimum at tile=32, unroll=4, dynamic, loop order (0,2,1).
    BlackBoxFn compile_and_run = [](const Configuration& c,
                                    RngEngine& noise) -> EvalResult {
        double tile = static_cast<double>(as_int(c[0]));
        double unroll = static_cast<double>(as_int(c[1]));
        bool dynamic = as_int(c[2]) == 1;
        const Permutation& order = as_permutation(c[3]);

        double ms = 10.0;
        ms += std::pow(std::log2(tile / 32.0), 2);
        ms += 0.5 * std::pow(std::log2(unroll / 4.0), 2);
        ms += dynamic ? 0.0 : 1.2;
        ms += order == Permutation{0, 2, 1} ? 0.0 : 1.0;
        // Pretend very large tiles crash the backend: a hidden constraint.
        if (tile == 256 && unroll == 8)
            return EvalResult::infeasible();
        return EvalResult{ms * noise.lognormal_factor(0.02), true};
    };

    // 3. Tune.
    TunerOptions options;
    options.budget = 40;
    options.doe_samples = 8;
    options.seed = 2024;
    Tuner tuner(space, options);
    TuningHistory history = tuner.run(compile_and_run);

    // 4. Inspect the result.
    std::cout << "evaluations: " << history.size() << "\n";
    std::cout << "best runtime: " << history.best_value << " ms\n";
    std::cout << "best schedule: "
              << space.config_to_string(*history.best_config) << "\n";

    std::cout << "\nbest-so-far trajectory:\n";
    std::vector<double> traj = history.best_trajectory();
    for (std::size_t i = 0; i < traj.size(); i += 5)
        std::cout << "  after " << (i + 1) << " evals: " << traj[i]
                  << " ms\n";
    return 0;
}
