// Autotune a *real, executing* sparse kernel: a baco::Study drives the
// scheduled C++ SpMM kernel (taco/kernels.hpp) on a scaled-down synthetic
// scircuit matrix, measuring actual wall-clock time per configuration —
// the empirical-autotuner loop of the paper with a real black box,
// declared through the Study front door's inline parameter DSL.

#include <chrono>
#include <iostream>

#include "api/baco.hpp"
#include "taco/generators.hpp"
#include "taco/kernels.hpp"

using namespace baco;
using namespace baco::taco;
using Clock = std::chrono::steady_clock;

int
main()
{
    // A real CSR matrix with scircuit's structure at 5% scale.
    RngEngine data_rng(7);
    CsrMatrix b = generate_matrix(profile("scircuit"), 0.05, data_rng);
    Matrix c(static_cast<std::size_t>(b.cols), 32);
    for (double& v : c.data())
        v = data_rng.uniform(-1, 1);
    std::cout << "SpMM on synthetic scircuit @5%: " << b.rows << "x"
              << b.cols << ", " << b.nnz() << " nonzeros, C has "
              << c.cols() << " columns\n";

    BlackBoxFn measure = [&](const Configuration& cfg,
                             RngEngine&) -> EvalResult {
        ExecSchedule s;
        s.row_chunk = static_cast<int>(as_int(cfg[0]));
        s.col_tile = static_cast<int>(as_int(cfg[1]));
        // Median of three timed runs to tame measurement noise.
        double best_ms = 1e30;
        for (int rep = 0; rep < 3; ++rep) {
            auto t0 = Clock::now();
            Matrix a = spmm_scheduled(b, c, s);
            double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
            // Prevent the compiler from discarding the computation.
            if (a(0, 0) == 12345.6789)
                std::cout << "";
            best_ms = std::min(best_ms, ms);
        }
        return EvalResult{best_ms, true};
    };

    Study study =
        StudyBuilder()
            .ordinal("row_chunk", {1, 4, 16, 64, 256, 1024, 4096}, true)
            .ordinal("col_tile", {1, 2, 4, 8, 16, 32}, true)
            .constraint("col_tile <= row_chunk * 32")
            .objective(measure)
            .method("baco")
            .budget(20)
            .doe(6)
            .seed(1)
            .build();
    StudyResult result = study.run();

    const TuningHistory& history = result.history;
    std::cout << "best measured: " << history.best_value << " ms with "
              << study.space().config_to_string(*history.best_config)
              << "\n";

    // Compare against the untuned baseline schedule.
    Configuration baseline{std::int64_t{4096}, std::int64_t{1}};
    RngEngine unused(0);
    double base_ms = measure(baseline, unused).value;
    std::cout << "baseline (row_chunk=4096, col_tile=1): " << base_ms
              << " ms -> speedup " << base_ms / history.best_value << "x\n";
    return 0;
}
