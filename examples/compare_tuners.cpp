// Head-to-head comparison of all five autotuners on one benchmark,
// printing the Fig. 7-style evolution table — a minimal version of the
// bench/ harnesses for interactive use.
//
// Usage: compare_tuners [benchmark-name] (default: SDDMM/email-Enron)

#include <iostream>
#include <map>

#include "suite/registry.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;

int
main(int argc, char** argv)
{
    std::string name = argc > 1 ? argv[1] : "SDDMM/email-Enron";
    const Benchmark& b = find_benchmark(name);

    std::cout << "benchmark: " << b.framework << " " << b.name
              << " (budget " << b.full_budget << ")\n";
    std::cout << "expert reference: " << fmt(b.reference_cost, 3)
              << " ms\n\n";

    const int reps = 3;
    std::map<Method, RepStats> stats;
    for (Method m : headline_methods())
        stats[m] = run_repetitions(b, m, b.full_budget, reps, 17);

    std::vector<std::string> headers{"evals"};
    for (Method m : headline_methods())
        headers.push_back(method_name(m));
    TextTable table(headers);
    int step = std::max(1, b.full_budget / 10);
    for (int e = step; e <= b.full_budget; e += step) {
        std::vector<std::string> row{std::to_string(e)};
        for (Method m : headline_methods())
            row.push_back(fmt(stats[m].mean_best_at(e), 3));
        table.add_row(row);
    }
    table.print(std::cout);

    std::cout << "\nperformance relative to expert at full budget:\n";
    for (Method m : headline_methods()) {
        std::cout << "  " << method_name(m) << ": "
                  << fmt(stats[m].mean_rel_to_reference(b.reference_cost,
                                                        b.full_budget),
                         2)
                  << "x\n";
    }
    return 0;
}
