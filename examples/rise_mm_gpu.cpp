// Tune the RISE MM_GPU benchmark: a 10-dimensional ordinal space with
// known divisibility constraints *and* hidden resource constraints (work-
// group limits, local memory, registers). Shows how BaCO's feasibility
// model learns to avoid crashing configurations.

#include <iostream>

#include "rise/benchmarks.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;

namespace {
std::string
fmt_ms(double v)
{
    return fmt(v, 3) + " ms";
}
}  // namespace

int
main()
{
    Benchmark b = rise::make_rise_benchmark("MM_GPU");
    auto space = b.make_space(SpaceVariant{});
    std::cout << "MM_GPU: " << space->num_params()
              << " ordinal parameters, known constraints:";
    for (const Constraint& k : space->constraints())
        std::cout << "  [" << k.source() << "]";
    std::cout << "\nexpert (semi-automated search): "
              << fmt_ms(b.reference_cost) << "\n\n";

    TuningHistory h = run_method(b, Method::kBaco, b.full_budget, 3);

    int crashes = 0;
    for (const Observation& o : h.observations)
        crashes += o.feasible ? 0 : 1;

    std::cout << "evaluations: " << h.size() << " (" << crashes
              << " hit hidden constraints and failed to launch)\n";
    std::cout << "best found: " << fmt_ms(h.best_value) << " with\n  "
              << space->config_to_string(*h.best_config) << "\n";
    std::cout << "relative to expert: " << b.reference_cost / h.best_value
              << "x\n";

    std::cout << "\nfailure pattern over time (x = infeasible):\n  ";
    for (const Observation& o : h.observations)
        std::cout << (o.feasible ? '.' : 'x');
    std::cout << "\n(the feasibility model pushes failures toward the "
                 "start of the run)\n";
    return 0;
}
