// baco_serve: the distributed tuning service.
//
// By default it serves the JSONL session protocol on its standard
// streams — one connection. With --listen unix:PATH or
// --listen tcp:HOST:PORT it becomes a multi-client server: an accept
// loop serves every connection against one shared SessionManager (and
// worker fleet), so any number of clients tune concurrently, and
// baco_worker --connect processes can join the fleet over the same
// socket. The Coordinator multiplexes concurrent fleet-driven runs with
// fair round-robin scheduling; --max-active-runs caps how many run
// requests may share the fleet at once (further runs get a structured
// "busy" error frame, optionally after waiting --admission-wait-ms).
// --max-clients bounds concurrent connections; --max-sessions
// caps the in-memory session registry (excess sessions spill their
// checkpoints to disk and reload transparently on the next request —
// requires --checkpoint-dir). SIGINT/SIGTERM stop the accept loop
// gracefully: live connections are closed, sessions checkpointed.
//
// Evaluation workers either run in-process (--workers N), as child
// processes spawned from --worker-cmd (each wired through pipes), or
// attach over the --listen socket at runtime.
//
// --async drives every server-side run request tell-as-results-land
// (Coordinator::drive_async / EvalEngine async mode), streaming one
// result frame per landed evaluation; clients can also opt in per
// request with "async":true on the run frame.
//
// --selftest runs the hermetic end-to-end checks (the same parity
// contracts the ctest suite enforces): a Study driven with
// ExecutionPolicy::Distributed must reproduce the same-seed
// ExecutionPolicy::Batched run bit-for-bit, an async fleet drive must
// complete the full budget without stalling, and two concurrent
// Unix-socket clients against one acceptor must produce bit-for-bit
// the histories of two sequential stdio runs.
//
// --list enumerates the registered benchmarks and MethodRegistry
// methods (the names open_session and Study accept) and exits.
//
// Observability: --metrics-interval N appends one JSONL line with the
// full metrics registry (counters, gauges, histogram percentiles) every
// N seconds to --metrics-file (default stderr); SIGUSR1 triggers an
// immediate dump at any time. Clients can also pull the same registry
// over the wire with a stats frame (SessionClient::stats()).
// --health-interval N appends one JSONL fleet-health line (per-worker
// state/inflight/completed/EWMA latency from the coordinator's
// WorkerHealth registry) every N seconds to --health-file. --trace FILE
// records spans for the whole serving lifetime and exports one merged
// Chrome timeline on shutdown — server spans on the "server" track plus
// every span buffer the workers shipped back over the wire, each on its
// own worker-N track. Status lines are structured events (JSONL on
// stderr by default); --log-file redirects, --log-level filters.
//
// Usage:
//   baco_serve [--listen unix:PATH|tcp:HOST:PORT]
//              [--max-clients N] [--max-sessions N]
//              [--max-active-runs N] [--admission-wait-ms N]
//              [--checkpoint-dir DIR] [--cache FILE]
//              [--workers N] [--worker-cmd CMD]
//              [--idle-timeout SECONDS] [--async]
//              [--metrics-interval SECONDS] [--metrics-file PATH]
//              [--health-interval SECONDS] [--health-file PATH]
//              [--trace FILE] [--log-file PATH] [--log-level LEVEL]
//   baco_serve --selftest [benchmark]
//   baco_serve --list

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/baco.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/coordinator.hpp"
#include "serve/server.hpp"
#include "serve/session_manager.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"

namespace {

/** SIGINT/SIGTERM target: flips the acceptor's stop flag (both calls on
 *  the stop path — shutdown(2), unlink(2) — are async-signal-safe, but
 *  they can clobber errno, which the interrupted syscall's caller is
 *  about to read — hence the save/restore). */
baco::serve::Acceptor* g_acceptor = nullptr;

void
stop_on_signal(int)
{
    const int saved_errno = errno;
    if (g_acceptor)
        g_acceptor->stop();
    errno = saved_errno;
}

/** SIGUSR1 target: ask the metrics publisher for an immediate dump
 *  (nothing happens in signal context). An atomic, not a volatile
 *  sig_atomic_t: the flag is read by the publisher THREAD, not by the
 *  interrupted code, and sig_atomic_t is only a handler-to-same-thread
 *  contract — cross-thread visibility needs the atomic (lock-free for
 *  int everywhere we build, so the store stays async-signal-safe). */
std::atomic<int> g_dump_metrics{0};

void
dump_on_signal(int)
{
    const int saved_errno = errno;
    g_dump_metrics.store(1, std::memory_order_relaxed);
    errno = saved_errno;
}

/**
 * Background metrics publisher: appends one JSONL line with the full
 * registry snapshot every `interval` seconds (0 = on demand only) and
 * whenever SIGUSR1 raised g_dump_metrics, to `path` ("" or "-" =
 * stderr). The poll loop wakes every 200ms, so a SIGUSR1 dump lands
 * within that latency and stop() returns promptly.
 */
class MetricsPublisher {
 public:
    void
    start(double interval_seconds, std::string path)
    {
        interval_ = interval_seconds;
        path_ = std::move(path);
        start_time_ = std::chrono::steady_clock::now();
        thread_ = std::thread([this] { loop(); });
    }

    void
    stop()
    {
        if (!thread_.joinable())
            return;
        stop_.store(true);
        thread_.join();
    }

    void
    dump(const char* reason)
    {
        using std::chrono::duration;
        using std::chrono::steady_clock;
        double uptime =
            duration<double>(steady_clock::now() - start_time_).count();
        char extra[128];
        std::snprintf(extra, sizeof extra,
                      "\"ts\":%lld,\"uptime_s\":%.3f,\"reason\":\"%s\"",
                      static_cast<long long>(std::time(nullptr)), uptime,
                      reason);
        std::string line =
            baco::obs::MetricsRegistry::global().snapshot().to_json(extra);
        if (path_.empty() || path_ == "-") {
            std::fprintf(stderr, "%s\n", line.c_str());
            return;
        }
        if (FILE* f = std::fopen(path_.c_str(), "a")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }

 private:
    void
    loop()
    {
        using std::chrono::duration;
        using std::chrono::steady_clock;
        auto last = steady_clock::now();
        while (!stop_.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
            if (g_dump_metrics.exchange(0, std::memory_order_relaxed))
                dump("sigusr1");
            if (interval_ > 0 &&
                duration<double>(steady_clock::now() - last).count() >=
                    interval_) {
                last = steady_clock::now();
                dump("interval");
            }
        }
    }

    std::atomic<bool> stop_{false};
    std::thread thread_;
    double interval_ = 0.0;
    std::string path_;
    std::chrono::steady_clock::time_point start_time_;
};

/**
 * Background fleet-health publisher: every `interval` seconds appends
 * one JSONL line with the coordinator's WorkerHealth registry (safe
 * mid-run: health() has its own mutex) to `path` ("" or "-" = stderr).
 */
class HealthPublisher {
 public:
    void
    start(baco::serve::Coordinator* coordinator, double interval_seconds,
          std::string path)
    {
        if (!coordinator || interval_seconds <= 0)
            return;
        coordinator_ = coordinator;
        interval_ = interval_seconds;
        path_ = std::move(path);
        start_time_ = std::chrono::steady_clock::now();
        thread_ = std::thread([this] { loop(); });
    }

    void
    stop()
    {
        if (!thread_.joinable())
            return;
        stop_.store(true);
        thread_.join();
    }

    void
    dump()
    {
        using std::chrono::duration;
        using std::chrono::steady_clock;
        double uptime =
            duration<double>(steady_clock::now() - start_time_).count();
        char head[96];
        std::snprintf(head, sizeof head,
                      "{\"ts\":%lld,\"uptime_s\":%.3f,\"workers\":[",
                      static_cast<long long>(std::time(nullptr)), uptime);
        std::string line = head;
        bool first = true;
        for (const baco::serve::WorkerHealthSnapshot& h :
             coordinator_->health()) {
            char entry[256];
            std::snprintf(
                entry, sizeof entry,
                "%s{\"worker\":%d,\"state\":\"%s\",\"inflight\":%d,"
                "\"completed\":%llu,\"heartbeats\":%llu,"
                "\"ewma_latency_s\":%.6g,\"last_seen_s\":%.3f,"
                "\"heartbeat_ms\":%d}",
                first ? "" : ",", h.worker, h.state.c_str(), h.inflight,
                static_cast<unsigned long long>(h.completed),
                static_cast<unsigned long long>(h.heartbeats),
                h.ewma_latency_s, h.last_seen_s, h.heartbeat_ms);
            line += entry;
            first = false;
        }
        line += "]}";
        if (path_.empty() || path_ == "-") {
            std::fprintf(stderr, "%s\n", line.c_str());
            return;
        }
        if (FILE* f = std::fopen(path_.c_str(), "a")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }

 private:
    void
    loop()
    {
        using std::chrono::duration;
        using std::chrono::steady_clock;
        auto last = steady_clock::now();
        while (!stop_.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            if (duration<double>(steady_clock::now() - last).count() >=
                interval_) {
                last = steady_clock::now();
                dump();
            }
        }
    }

    std::atomic<bool> stop_{false};
    std::thread thread_;
    baco::serve::Coordinator* coordinator_ = nullptr;
    double interval_ = 0.0;
    std::string path_;
    std::chrono::steady_clock::time_point start_time_;
};

/**
 * Socket leg: two clients tuning different sessions CONCURRENTLY over a
 * Unix socket against one acceptor must produce bit-for-bit the same
 * histories as two sequential single-connection (stdio-shaped) runs
 * with the same seeds — serve::socket_parity_check, the same contract
 * tests/test_serve_socket.cpp pins over unix AND tcp listeners.
 */
bool
selftest_socket(const std::string& benchmark_name)
{
    using namespace baco::serve;
    std::string path =
        "/tmp/baco_selftest_" + std::to_string(::getpid()) + ".sock";
    SocketParityResult parity = socket_parity_check(
        "unix:" + path, benchmark_name, "baco", /*budget=*/12,
        /*batch=*/3, /*seed1=*/21, /*seed2=*/22);
    std::printf("baco_serve selftest: socket leg — 2 concurrent unix-"
                "socket clients %s 2 sequential stdio runs (2 x %zu "
                "evals) [%s]%s%s\n",
                parity.ok ? "==" : "!=", parity.evals_per_client,
                parity.ok ? "ok" : "FAILED",
                parity.detail.empty() ? "" : ": ",
                parity.detail.c_str());
    return parity.ok;
}

int
selftest(const std::string& benchmark_name)
{
    using namespace baco;
    const int budget = 16;
    const std::uint64_t seed = 17;
    const int batch = 4;

    auto study_with = [&](ExecutionPolicy policy) {
        return StudyBuilder()
            .benchmark(benchmark_name)
            .method("baco")
            .budget(budget)
            .seed(seed)
            .execution(policy)
            .build()
            .run();
    };

    StudyResult reference = study_with(ExecutionPolicy::Batched(batch));
    StudyResult distributed =
        study_with(ExecutionPolicy::Distributed(2, batch));

    bool ok = histories_equal(reference.history, distributed.history);
    std::printf("baco_serve selftest: %s — %zu evals, best %.6g, "
                "Study[distributed, 2 workers] %s Study[batched=%d]\n",
                distributed.benchmark.c_str(), distributed.history.size(),
                distributed.history.best_value, ok ? "==" : "!=", batch);

    // Async leg: a tell-as-results-land fleet drive must still exhaust
    // the budget and find a finite best (history order is scheduling-
    // dependent, so no bit-for-bit claim here).
    StudyResult async = study_with(
        ExecutionPolicy::Distributed(2, batch, /*async=*/true));
    bool async_ok =
        async.history.size() == static_cast<std::size_t>(budget) &&
        async.history.best_config.has_value();
    std::printf("baco_serve selftest: async fleet drive — %zu/%d evals, "
                "best %.6g [%s]\n",
                async.history.size(), budget, async.history.best_value,
                async_ok ? "ok" : "FAILED");

    bool socket_ok = selftest_socket(benchmark_name);
    return ok && async_ok && socket_ok ? 0 : 1;
}

int
list_registry()
{
    using namespace baco;
    std::printf("benchmarks (%zu):\n", suite::all_benchmarks().size());
    for (const Benchmark& b : suite::all_benchmarks())
        std::printf("  %-10s %-24s budget %d\n", b.framework.c_str(),
                    b.name.c_str(), b.full_budget);
    MethodRegistry& registry = MethodRegistry::global();
    std::printf("methods:\n");
    for (const std::string& name : registry.names())
        std::printf("  %s\n", name.c_str());
    auto aliases = registry.aliases();
    if (!aliases.empty()) {
        std::printf("method aliases:\n");
        for (const auto& [alias, canonical] : aliases)
            std::printf("  %-12s -> %s\n", alias.c_str(),
                        canonical.c_str());
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::signal(SIGPIPE, SIG_IGN);
    using namespace baco;

    std::string checkpoint_dir;
    std::string cache_file;
    std::string worker_cmd;
    std::string listen_spec;
    int workers = 0;
    int max_clients = 64;
    int max_active_runs = 0;
    int admission_wait_ms = 0;
    long max_sessions = 0;
    double idle_timeout = 0.0;
    double metrics_interval = 0.0;
    std::string metrics_file;
    double health_interval = 0.0;
    std::string health_file;
    std::string trace_file;
    std::string log_file;
    std::string log_level = "info";
    bool async_runs = false;
    bool run_selftest = false;
    bool run_list = false;
    std::string selftest_benchmark = "SDDMM/email-Enron";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--checkpoint-dir" && i + 1 < argc) {
            checkpoint_dir = argv[++i];
        } else if (arg == "--cache" && i + 1 < argc) {
            cache_file = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = std::atoi(argv[++i]);
        } else if (arg == "--worker-cmd" && i + 1 < argc) {
            worker_cmd = argv[++i];
        } else if (arg == "--listen" && i + 1 < argc) {
            listen_spec = argv[++i];
        } else if (arg == "--max-clients" && i + 1 < argc) {
            max_clients = std::atoi(argv[++i]);
        } else if (arg == "--max-sessions" && i + 1 < argc) {
            max_sessions = std::atol(argv[++i]);
        } else if (arg == "--max-active-runs" && i + 1 < argc) {
            max_active_runs = std::atoi(argv[++i]);
        } else if (arg == "--admission-wait-ms" && i + 1 < argc) {
            admission_wait_ms = std::atoi(argv[++i]);
        } else if (arg == "--idle-timeout" && i + 1 < argc) {
            idle_timeout = std::atof(argv[++i]);
        } else if (arg == "--metrics-interval" && i + 1 < argc) {
            metrics_interval = std::atof(argv[++i]);
        } else if (arg == "--metrics-file" && i + 1 < argc) {
            metrics_file = argv[++i];
        } else if (arg == "--health-interval" && i + 1 < argc) {
            health_interval = std::atof(argv[++i]);
        } else if (arg == "--health-file" && i + 1 < argc) {
            health_file = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_file = argv[++i];
        } else if (arg == "--log-file" && i + 1 < argc) {
            log_file = argv[++i];
        } else if (arg == "--log-level" && i + 1 < argc) {
            log_level = argv[++i];
        } else if (arg == "--async") {
            async_runs = true;
        } else if (arg == "--selftest") {
            run_selftest = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                selftest_benchmark = argv[++i];
        } else if (arg == "--list") {
            run_list = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--listen unix:PATH|tcp:HOST:PORT] "
                         "[--max-clients N] [--max-sessions N] "
                         "[--max-active-runs N] [--admission-wait-ms N] "
                         "[--checkpoint-dir DIR] [--cache FILE] "
                         "[--workers N] [--worker-cmd CMD] "
                         "[--idle-timeout S] [--async] "
                         "[--metrics-interval S] [--metrics-file PATH] "
                         "[--health-interval S] [--health-file PATH] "
                         "[--trace FILE] [--log-file PATH] "
                         "[--log-level LEVEL] | "
                         "--selftest [benchmark] | --list\n",
                         argv[0]);
            return 2;
        }
    }
    if (max_sessions > 0 && checkpoint_dir.empty()) {
        std::fprintf(stderr,
                     "baco_serve: --max-sessions requires "
                     "--checkpoint-dir (spilled sessions live in their "
                     "checkpoints)\n");
        return 2;
    }

    {
        obs::LogLevel level = obs::LogLevel::kInfo;
        if (!obs::parse_log_level(log_level, level)) {
            std::fprintf(stderr, "baco_serve: unknown log level '%s'\n",
                         log_level.c_str());
            return 2;
        }
        obs::EventLog::global().configure(level, log_file);
    }

    if (run_list)
        return list_registry();
    if (run_selftest)
        return selftest(selftest_benchmark);

    if (!trace_file.empty())
        obs::Trace::enable();

    EvalCache cache;
    if (!cache_file.empty())
        cache.load(cache_file);  // absent file = start empty

    serve::SessionManagerOptions sopt;
    sopt.checkpoint_dir = checkpoint_dir;
    sopt.idle_timeout_seconds = idle_timeout;
    sopt.cache = cache_file.empty() ? nullptr : &cache;
    if (max_sessions > 0)
        sopt.max_live_sessions = static_cast<std::size_t>(max_sessions);
    serve::SessionManager sessions(sopt);

    // --worker-cmd implies at least one worker.
    if (!worker_cmd.empty() && workers <= 0)
        workers = 1;

    serve::CoordinatorOptions copt;
    copt.max_active_runs = max_active_runs;
    copt.admission_wait_ms = admission_wait_ms;
    serve::Coordinator coordinator(copt);
    std::vector<std::thread> worker_threads;
    std::vector<int> worker_pids;
    if (workers > 0) {
        if (!worker_cmd.empty()) {
            for (int w = 0; w < workers; ++w) {
                serve::ChildProcess child =
                    serve::spawn_process({worker_cmd});
                if (!child.transport ||
                    coordinator.add_worker(std::move(child.transport)) < 0) {
                    obs::log_error("serve", "worker_attach_failed",
                                   obs::LogFields()
                                       .num("worker", w)
                                       .str("cmd", worker_cmd));
                    return 1;
                }
                worker_pids.push_back(child.pid);
            }
        } else {
            worker_threads =
                serve::attach_loopback_workers(coordinator, workers);
        }
        obs::log_info("serve", "fleet_ready",
                      obs::LogFields()
                          .num("workers", coordinator.num_workers())
                          .str("mode", worker_cmd.empty() ? "in-process"
                                                          : worker_cmd));
    }

    serve::ServerContext ctx;
    ctx.sessions = &sessions;
    ctx.coordinator = &coordinator;
    ctx.async_runs = async_runs;

    // The publisher runs in every serving mode: --metrics-interval
    // makes it periodic, and SIGUSR1 forces a dump either way.
    MetricsPublisher metrics;
    metrics.start(metrics_interval, metrics_file);
    std::signal(SIGUSR1, dump_on_signal);
    HealthPublisher health;
    health.start(&coordinator, health_interval, health_file);

    serve::ServeStats stats;
    if (!listen_spec.empty()) {
        // ---- Multi-client socket server. ----
        std::string error;
        std::optional<serve::SocketAddress> addr =
            serve::parse_socket_address(listen_spec, &error);
        serve::Listener listener;
        if (!addr || !listener.open(*addr, &error)) {
            obs::log_error("serve", "listen_failed",
                           obs::LogFields()
                               .str("address", listen_spec)
                               .str("error", error));
            return 1;
        }
        serve::AcceptorOptions aopt;
        aopt.max_clients = max_clients;
        serve::Acceptor acceptor(std::move(listener), ctx, aopt);
        g_acceptor = &acceptor;
        std::signal(SIGINT, stop_on_signal);
        std::signal(SIGTERM, stop_on_signal);
        obs::log_info("serve", "listening",
                      obs::LogFields()
                          .str("address", acceptor.address().str())
                          .num("max_clients", max_clients)
                          .num("max_sessions",
                               static_cast<std::int64_t>(max_sessions)));
        acceptor.run();
        g_acceptor = nullptr;
        serve::AcceptorStats astats = acceptor.stats();
        stats.requests = astats.requests;
        stats.errors = astats.errors;
        obs::log_info(
            "serve", "acceptor_stopped",
            obs::LogFields()
                .num("connections", astats.accepted)
                .num("peak_clients", astats.peak_clients)
                .num("workers_attached", astats.workers_attached)
                .num("rejected", astats.rejected)
                .num("requests", astats.requests)
                .num("errors", astats.errors)
                .num("sessions_spilled", sessions.spill_count())
                .num("sessions_reloaded", sessions.reload_count()));
    } else {
        // ---- Single connection on the standard streams. ----
        serve::PipeTransport stdio(0, 1, /*owns_fds=*/false);
        stats = serve_connection(stdio, ctx);
    }

    metrics.stop();
    if (metrics_interval > 0 || !metrics_file.empty())
        metrics.dump("shutdown");
    health.stop();
    if (health_interval > 0)
        health.dump();
    sessions.checkpoint_all();
    // Shutdown before the trace export: the coordinator's goodbye drain
    // collects the workers' final span buffers, so the exported timeline
    // has every track complete.
    coordinator.shutdown();
    for (std::thread& t : worker_threads)
        t.join();
    for (int pid : worker_pids)
        serve::wait_process(pid);
    if (!cache_file.empty())
        cache.save(cache_file);
    if (!trace_file.empty()) {
        bool exported = obs::Trace::export_chrome(trace_file);
        obs::log_info("serve", "trace_exported",
                      obs::LogFields()
                          .str("file", trace_file)
                          .flag("ok", exported)
                          .str("run", obs::Trace::run_id()));
    }

    obs::log_info("serve", "exit",
                  obs::LogFields()
                      .num("requests", stats.requests)
                      .num("errors", stats.errors));
    return 0;
}
