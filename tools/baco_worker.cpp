// baco_worker: a serve-protocol evaluation worker.
//
// By default it speaks JSONL frames on its standard streams, so a
// coordinator attaches it through pipes directly (baco_serve
// --worker-cmd), or across hosts through ssh/socat. Two socket modes
// remove the process-spawning relationship so fleets scale across
// machines:
//
//   --connect unix:PATH|tcp:HOST:PORT   dial a `baco_serve --listen`
//       server (or anything accepting worker hellos) and join its
//       evaluation fleet;
//   --listen unix:PATH|tcp:HOST:PORT    run as a worker daemon: serve
//       one coordinator connection at a time (this is the endpoint
//       ExecutionPolicy::Remote addresses name).
//
// Evaluates registry benchmarks under the (seed, index)-derived noise
// streams, so any worker placement yields identical tuning histories.
//
// Usage: baco_worker [--capacity N]
//                    [--connect ADDR | --listen ADDR [--once]]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "serve/transport.hpp"
#include "serve/worker.hpp"

int
main(int argc, char** argv)
{
    std::signal(SIGPIPE, SIG_IGN);

    baco::serve::WorkerOptions opt;
    std::string connect_spec;
    std::string listen_spec;
    bool once = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--capacity") == 0 && i + 1 < argc) {
            opt.capacity = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--connect") == 0 &&
                   i + 1 < argc) {
            connect_spec = argv[++i];
        } else if (std::strcmp(argv[i], "--listen") == 0 &&
                   i + 1 < argc) {
            listen_spec = argv[++i];
        } else if (std::strcmp(argv[i], "--once") == 0) {
            once = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--capacity N] [--connect "
                         "unix:PATH|tcp:HOST:PORT | --listen "
                         "unix:PATH|tcp:HOST:PORT [--once]]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!connect_spec.empty() && !listen_spec.empty()) {
        std::fprintf(stderr,
                     "baco_worker: --connect and --listen are mutually "
                     "exclusive\n");
        return 2;
    }

    std::uint64_t evaluated = 0;
    if (!connect_spec.empty()) {
        std::string error;
        std::unique_ptr<baco::serve::Transport> transport =
            baco::serve::connect_socket(connect_spec, &error);
        if (!transport) {
            std::fprintf(stderr, "baco_worker: %s\n", error.c_str());
            return 1;
        }
        evaluated = baco::serve::run_worker_loop(*transport, opt);
    } else if (!listen_spec.empty()) {
        std::string error;
        std::optional<baco::serve::SocketAddress> addr =
            baco::serve::parse_socket_address(listen_spec, &error);
        baco::serve::Listener listener;
        if (!addr || !listener.open(*addr, &error)) {
            std::fprintf(stderr, "baco_worker: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "baco_worker: listening on %s\n",
                     listener.address().str().c_str());
        // One coordinator at a time: a worker daemon outlives its
        // coordinators (each disconnect just frees it for the next),
        // unless --once asked for a single engagement.
        do {
            std::unique_ptr<baco::serve::Transport> transport =
                listener.accept();
            if (!transport)
                break;
            evaluated += baco::serve::run_worker_loop(*transport, opt);
        } while (!once);
    } else {
        baco::serve::PipeTransport stdio(0, 1, /*owns_fds=*/false);
        evaluated = baco::serve::run_worker_loop(stdio, opt);
    }
    std::fprintf(stderr, "baco_worker: %llu evaluations served\n",
                 static_cast<unsigned long long>(evaluated));
    return 0;
}
